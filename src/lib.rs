#![forbid(unsafe_code)]

//! # pnut — Petri-Net Utility Tools, reproduced in Rust
//!
//! A reproduction of the P-NUT system from Razouk, *The Use of Petri
//! Nets for Modeling Pipelined Processors* (UC Irvine ICS TR 87-29 /
//! DAC 1988): an extended timed Petri net model plus the toolset the
//! paper describes for simulating, animating, and analyzing models of
//! pipelined processors.
//!
//! This umbrella crate re-exports the individual tools:
//!
//! | module | crate | paper section |
//! |---|---|---|
//! | [`core`] | `pnut-core` | §1 — the extended TPN model |
//! | [`sim`] | `pnut-sim` | §4.1 — the simulation engine |
//! | [`trace`] | `pnut-trace` | §4.1 — traces, filtering, piping |
//! | [`stat`] | `pnut-stat` | §4.2 — performance statistics |
//! | [`anim`] | `pnut-anim` | §4.3 — animation |
//! | [`tracer`] | `pnut-tracer` | §4.4 — timing analysis & queries |
//! | [`reach`] | `pnut-reach` | §4 — reachability & temporal logic |
//! | [`lang`] | `pnut-lang` | — the textual net format |
//! | [`pipeline`] | `pnut-pipeline` | §2–§3 — the processor models |
//! | [`obs`] | `pnut-obs` | — metrics, phase spans, heartbeats (`docs/OBSERVABILITY.md`) |
//! | [`analysis`] | `pnut-analysis` | — structural lint & invariant cross-checks (`docs/STATIC_ANALYSIS.md`) |
//!
//! # Quickstart
//!
//! Reproduce the paper's Figure 5 experiment and read off the processor
//! metrics:
//!
//! ```
//! use pnut::pipeline::{run_experiment, ThreeStageConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let outcome = run_experiment(&ThreeStageConfig::default(), 1, 10_000)?;
//! println!("{}", outcome.report);   // Figure 5 layout
//! println!("{}", outcome.metrics);  // §4.2 interpretation
//! # Ok(())
//! # }
//! ```

pub use pnut_analysis as analysis;
pub use pnut_analytic as analytic;
pub use pnut_anim as anim;
pub use pnut_core as core;
pub use pnut_lang as lang;
pub use pnut_obs as obs;
pub use pnut_pipeline as pipeline;
pub use pnut_reach as reach;
pub use pnut_sim as sim;
pub use pnut_stat as stat;
pub use pnut_trace as trace;
pub use pnut_tracer as tracer;
