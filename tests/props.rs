//! Property-based tests over randomly generated nets and expressions.

use pnut::core::{Expr, NetBuilder, Time};
use proptest::prelude::*;

/// A randomly generated (but always well-formed) net description.
#[derive(Debug, Clone)]
struct RandomNet {
    places: Vec<u32>,
    transitions: Vec<RandomTransition>,
}

#[derive(Debug, Clone)]
struct RandomTransition {
    inputs: Vec<(usize, u32)>,
    outputs: Vec<(usize, u32)>,
    inhibitors: Vec<usize>,
    firing: u64,
    enabling: u64,
    frequency: f64,
}

fn arb_net() -> impl Strategy<Value = RandomNet> {
    (1usize..5).prop_flat_map(|nplaces| {
        let place_tokens = proptest::collection::vec(0u32..4, nplaces);
        let transition = (
            proptest::collection::vec((0..nplaces, 1u32..3), 0..3),
            proptest::collection::vec((0..nplaces, 1u32..3), 0..3),
            proptest::collection::vec(0..nplaces, 0..2),
            0u64..4,
            0u64..4,
            0.25f64..4.0,
        )
            .prop_map(
                |(inputs, outputs, inhibitors, firing, enabling, frequency)| RandomTransition {
                    inputs,
                    outputs,
                    inhibitors,
                    firing,
                    enabling,
                    frequency,
                },
            );
        (place_tokens, proptest::collection::vec(transition, 1..5)).prop_map(
            |(places, transitions)| RandomNet {
                places,
                transitions,
            },
        )
    })
}

fn build(spec: &RandomNet) -> pnut::core::Net {
    let mut b = NetBuilder::new("random");
    for (i, &tokens) in spec.places.iter().enumerate() {
        b.place(format!("p{i}"), tokens);
    }
    for (i, t) in spec.transitions.iter().enumerate() {
        let mut tb = b.transition(format!("t{i}"));
        // Dedup inputs/outputs per place by accumulating weights, since
        // the builder allows duplicates but equality on round-trips is
        // cleaner without them.
        for &(p, w) in &t.inputs {
            tb = tb.input_weighted(format!("p{p}"), w);
        }
        for &(p, w) in &t.outputs {
            tb = tb.output_weighted(format!("p{p}"), w);
        }
        for &p in &t.inhibitors {
            tb = tb.inhibitor(format!("p{p}"));
        }
        // Input-free transitions are always enabled, so without an
        // enabling delay they would (correctly) trip the engine's
        // instant-livelock guard; space their starts by >= 1 tick.
        let enabling = if t.inputs.is_empty() {
            t.enabling.max(1)
        } else {
            t.enabling
        };
        tb.firing(t.firing)
            .enabling(enabling)
            .frequency(t.frequency)
            .add();
    }
    b.build().expect("generated nets are well-formed")
}

/// Simulate, treating an instant-livelock rejection (a Zeno model the
/// generator can produce: zero-delay token-gaining loops) as a skip —
/// the engine is *specified* to reject those models.
fn sim_or_skip(net: &pnut::core::Net, seed: u64, ticks: u64) -> Option<pnut::trace::RecordedTrace> {
    match pnut::sim::simulate(net, seed, Time::from_ticks(ticks)) {
        Ok(t) => Some(t),
        Err(pnut::sim::SimError::InstantLivelock { .. }) => None,
        Err(e) => panic!("unexpected simulation failure: {e}"),
    }
}

/// Net effect on the marking of one complete firing of `t`.
fn net_effect(net: &pnut::core::Net, tid: pnut::core::TransitionId, places: usize) -> Vec<i64> {
    let mut eff = vec![0i64; places];
    let t = net.transition(tid);
    for &(p, w) in t.inputs() {
        eff[p.index()] -= i64::from(w);
    }
    for &(p, w) in t.outputs() {
        eff[p.index()] += i64::from(w);
    }
    eff
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Final marking = initial + Σ effects of finished firings + pending
    /// input-removals of unfinished firings: the fundamental token
    /// conservation law of the firing rule.
    #[test]
    fn token_conservation(spec in arb_net(), seed in 0u64..1000) {
        let net = build(&spec);
        let Some(trace) = sim_or_skip(&net, seed, 60) else { return Ok(()); };
        let report = pnut::stat::analyze(&trace);
        let places = net.place_count();
        let mut expected: Vec<i64> = net
            .initial_marking()
            .as_slice()
            .iter()
            .map(|&t| i64::from(t))
            .collect();
        for (tid, t) in net.transitions() {
            let stats = report.transition(t.name()).expect("in report");
            let eff = net_effect(&net, tid, places);
            for (e, x) in expected.iter_mut().zip(&eff) {
                *e += x * stats.ends as i64;
            }
            // Unfinished firings removed inputs but produced nothing.
            let unfinished = (stats.starts - stats.ends) as i64;
            for &(p, w) in t.inputs() {
                expected[p.index()] -= i64::from(w) * unfinished;
            }
        }
        let last = trace.states().last().expect("at least initial");
        let actual: Vec<i64> = last
            .marking
            .as_slice()
            .iter()
            .map(|&t| i64::from(t))
            .collect();
        prop_assert_eq!(actual, expected);
    }

    /// Markings are never negative and states are monotone in time.
    #[test]
    fn states_are_sane(spec in arb_net(), seed in 0u64..1000) {
        let net = build(&spec);
        let Some(trace) = sim_or_skip(&net, seed, 50) else { return Ok(()); };
        let mut prev_time = Time::ZERO;
        let mut prev_index = None;
        for s in trace.states() {
            prop_assert!(s.time >= prev_time, "time must not go backwards");
            if let Some(p) = prev_index {
                prop_assert_eq!(s.index, p + 1, "state indices are dense");
            }
            prev_time = s.time;
            prev_index = Some(s.index);
        }
    }

    /// Statistics are internally consistent: min <= avg <= max,
    /// std-dev finite, starts >= ends, throughput = ends / length.
    #[test]
    fn stat_identities(spec in arb_net(), seed in 0u64..1000) {
        let net = build(&spec);
        let Some(trace) = sim_or_skip(&net, seed, 80) else { return Ok(()); };
        let report = pnut::stat::analyze(&trace);
        let length = report.length.ticks() as f64;
        for p in &report.places {
            prop_assert!(f64::from(p.min_tokens) <= p.avg_tokens + 1e-9);
            prop_assert!(p.avg_tokens <= f64::from(p.max_tokens) + 1e-9);
            prop_assert!(p.std_dev.is_finite() && p.std_dev >= 0.0);
        }
        for t in &report.transitions {
            prop_assert!(t.starts >= t.ends);
            prop_assert!(f64::from(t.min_concurrent) <= t.avg_concurrent + 1e-9);
            prop_assert!(t.avg_concurrent <= f64::from(t.max_concurrent) + 1e-9);
            if length > 0.0 {
                prop_assert!((t.throughput - t.ends as f64 / length).abs() < 1e-9);
            }
        }
    }

    /// Traces survive JSON round-trips bit-for-bit.
    #[test]
    fn trace_roundtrip(spec in arb_net(), seed in 0u64..1000) {
        let net = build(&spec);
        let Some(trace) = sim_or_skip(&net, seed, 40) else { return Ok(()); };
        let mut buf = Vec::new();
        trace.write_json(&mut buf).expect("serializes");
        let back = pnut::trace::RecordedTrace::read_json(buf.as_slice()).expect("parses");
        prop_assert_eq!(trace, back);
    }

    /// The textual language round-trips every generated net.
    #[test]
    fn lang_roundtrip(spec in arb_net()) {
        let net = build(&spec);
        let text = pnut::lang::print(&net);
        let back = pnut::lang::parse(&text).expect("parses own output");
        prop_assert_eq!(net, back);
    }

    /// Simulation is a pure function of (net, seed, horizon).
    #[test]
    fn simulation_is_deterministic(spec in arb_net(), seed in 0u64..1000) {
        let net = build(&spec);
        let Some(a) = sim_or_skip(&net, seed, 50) else { return Ok(()); };
        let b = sim_or_skip(&net, seed, 50).expect("same model, same seed, same outcome");
        prop_assert_eq!(a, b);
    }
}

// ---------------------------------------------------------------------------
// Paged-analysis properties
// ---------------------------------------------------------------------------

/// Build the untimed or timed reachability graph, skipping nets whose
/// state space exceeds the cap (random nets are routinely unbounded —
/// the generator's input-free transitions mint tokens forever).
fn reach_or_skip(
    net: &pnut::core::Net,
    timed: bool,
    options: &pnut::reach::ReachOptions,
) -> Option<pnut::reach::ReachabilityGraph> {
    let build = if timed {
        pnut::reach::graph::build_timed
    } else {
        pnut::reach::graph::build_untimed
    };
    match build(net, options) {
        Ok(g) => Some(g),
        Err(pnut::reach::ReachError::StateLimit { .. }) => None,
        Err(e) => panic!("unexpected reachability failure: {e}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Paged and unpaged analyses agree on random nets: deadlocks,
    /// place bounds, and L1-liveness computed through the
    /// segment-ordered read path at a 1-byte budget (maximum eviction
    /// churn — every sealed segment is spilled the moment it is not
    /// pinned) match the fully resident run exactly. This is the
    /// analysis-path analogue of the build-determinism properties:
    /// paging may change where rows live mid-analysis, never what any
    /// analysis computes.
    #[test]
    fn paged_analyses_agree_with_unpaged(spec in arb_net(), timed in proptest::bool::ANY) {
        let net = build(&spec);
        let resident_opts = pnut::reach::ReachOptions {
            max_states: 3000,
            ..pnut::reach::ReachOptions::default()
        };
        let paged_opts = pnut::reach::ReachOptions {
            mem_budget: 1,
            ..resident_opts.clone()
        };
        let Some(mut resident) = reach_or_skip(&net, timed, &resident_opts) else {
            return Ok(());
        };
        let mut paged = reach_or_skip(&net, timed, &paged_opts)
            .expect("the budget never changes whether a net fits the state cap");
        prop_assert_eq!(&paged, &resident, "stores/edges must be bit-identical");
        prop_assert_eq!(paged.deadlocks(), resident.deadlocks());
        prop_assert_eq!(paged.place_bounds(), resident.place_bounds());
        for (tid, _) in net.transitions() {
            prop_assert_eq!(
                paged.ever_fires(tid),
                resident.ever_fires(tid),
                "liveness of transition {} diverged",
                tid.index()
            );
        }
        // And a reachability formula through the CTL fixpoints (the
        // generated places are named p0, p1, ...).
        let f = pnut::reach::Formula::parse("EF (p0 = 0)").expect("parses");
        let a = pnut::reach::ctl::check(&mut paged, &net, &f).expect("checks");
        let b = pnut::reach::ctl::check(&mut resident, &net, &f).expect("checks");
        prop_assert_eq!(a, b);
    }
}

// ---------------------------------------------------------------------------
// Expression language properties
// ---------------------------------------------------------------------------

fn arb_binop() -> impl Strategy<Value = pnut::core::expr::BinOp> {
    use pnut::core::expr::BinOp;
    prop_oneof![
        Just(BinOp::Or),
        Just(BinOp::And),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Rem),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    use pnut::core::expr::{Func, UnaryOp};
    let leaf = prop_oneof![
        (-100i64..100).prop_map(Expr::Int),
        any::<bool>().prop_map(Expr::Bool),
        "[a-z][a-z0-9_]{0,6}".prop_map(Expr::Var),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (arb_binop(), inner.clone(), inner.clone()).prop_map(|(op, a, b)| Expr::Binary(
                op,
                Box::new(a),
                Box::new(b)
            )),
            inner
                .clone()
                .prop_map(|a| Expr::Unary(UnaryOp::Neg, Box::new(a))),
            inner
                .clone()
                .prop_map(|a| Expr::Unary(UnaryOp::Not, Box::new(a))),
            ("[a-z][a-z0-9_]{0,6}", inner.clone()).prop_map(|(t, i)| Expr::Index(t, Box::new(i))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Call(Func::Min, vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Call(Func::Max, vec![a, b])),
            inner.clone().prop_map(|a| Expr::Call(Func::Abs, vec![a])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Call(Func::Irand, vec![a, b])),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, a, b)| Expr::If(
                Box::new(c),
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
}

/// An environment binding a subset of the short names `arb_expr` can
/// reference, so generated expressions hit bound variables, unbound
/// variables, tables, and missing tables alike.
fn arb_env() -> impl Strategy<Value = pnut::core::Env> {
    (
        proptest::collection::btree_map("[a-z]", -8i64..8, 0..4),
        proptest::collection::btree_map("[a-z]", proptest::collection::vec(-8i64..8, 0..4), 0..3),
    )
        .prop_map(|(vars, tables)| {
            let mut env = pnut::core::Env::new();
            for (name, v) in vars {
                env.set_var(name, pnut::core::expr::Value::Int(v));
            }
            for (name, t) in tables {
                env.define_table(name, t);
            }
            env
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// print → parse → print reaches a fixpoint after one step (the
    /// ASTs may differ in harmless ways like `-(1)` vs the literal `-1`,
    /// but the printed form must stabilize and stay parseable).
    #[test]
    fn expr_print_parse_print_fixpoint(e in arb_expr()) {
        let once = e.to_string();
        let parsed = Expr::parse(&once).expect("own output parses");
        let twice = parsed.to_string();
        prop_assert_eq!(&once, &twice);
        let reparsed = Expr::parse(&twice).expect("fixpoint parses");
        prop_assert_eq!(parsed, reparsed);
    }

    /// The bytecode compiler agrees with the tree interpreter on any
    /// generated expression under any generated environment — same
    /// value or same error, and the same number of randomness draws.
    #[test]
    fn compiled_expressions_match_interpreter(e in arb_expr(), env in arb_env()) {
        use pnut::core::expr::compile::{EnvSlots, Program, Scratch, SlotMap};
        let mut vars = std::collections::BTreeSet::new();
        let mut tables = std::collections::BTreeSet::new();
        collect_names(&e, &mut vars, &mut tables);
        for (name, _) in env.vars() {
            vars.insert(name.to_string());
        }
        for (name, _) in env.tables() {
            tables.insert(name.to_string());
        }
        let map = SlotMap::from_names(vars, tables);
        let program = Program::compile(&e, &map).expect("all names are mapped");
        let mut slots = EnvSlots::new();
        slots.load(&map, &env);
        let mut vm = Scratch::new();
        prop_assert_eq!(e.eval_pure(&env), program.eval_pure(&slots, &map, &mut vm));
        let mut ri = pnut::core::CyclingRandomness::new();
        let mut rc = pnut::core::CyclingRandomness::new();
        prop_assert_eq!(e.eval(&env, &mut ri), program.eval(&slots, &map, &mut vm, &mut rc));
        prop_assert_eq!(ri, rc, "randomness draw order diverged");
    }
}

/// Every variable and table name `e` references (the props-local
/// analogue of the compiler's internal collector).
fn collect_names(
    e: &Expr,
    vars: &mut std::collections::BTreeSet<String>,
    tables: &mut std::collections::BTreeSet<String>,
) {
    match e {
        Expr::Int(_) | Expr::Bool(_) => {}
        Expr::Var(v) => {
            vars.insert(v.clone());
        }
        Expr::Index(t, i) => {
            tables.insert(t.clone());
            collect_names(i, vars, tables);
        }
        Expr::Unary(_, a) => collect_names(a, vars, tables),
        Expr::Binary(_, a, b) => {
            collect_names(a, vars, tables);
            collect_names(b, vars, tables);
        }
        Expr::Call(_, args) => {
            for a in args {
                collect_names(a, vars, tables);
            }
        }
        Expr::If(c, a, b) => {
            collect_names(c, vars, tables);
            collect_names(a, vars, tables);
            collect_names(b, vars, tables);
        }
    }
}

// ---------------------------------------------------------------------------
// Analysis-tool properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every computed P-invariant verifies algebraically, and its token
    /// sum is conserved at quiescent states of any simulation.
    #[test]
    fn p_invariants_hold_on_random_nets(spec in arb_net(), seed in 0u64..100) {
        let net = build(&spec);
        let invariants = pnut::core::invariant::p_invariants(&net);
        for inv in &invariants {
            prop_assert!(pnut::core::invariant::verify_p_invariant(
                &net,
                &inv.weights
            ));
        }
        // Inhibitor arcs only *restrict* behaviour, so conservation
        // still holds along any actual run at in-flight-free states.
        let Some(trace) = sim_or_skip(&net, seed, 40) else { return Ok(()); };
        let states: Vec<_> = trace.states().collect();
        for inv in &invariants {
            let expect = inv.token_sum(&states[0].marking);
            for s in &states {
                if s.firing_counts.iter().all(|&c| c == 0) {
                    prop_assert_eq!(inv.token_sum(&s.marking), expect);
                }
            }
        }
    }

    /// Every computed T-invariant verifies algebraically.
    #[test]
    fn t_invariants_verify(spec in arb_net()) {
        let net = build(&spec);
        for inv in pnut::core::invariant::t_invariants(&net) {
            prop_assert!(pnut::core::invariant::verify_t_invariant(
                &net,
                &inv.weights
            ));
        }
    }

    /// Heatmap activities are fractions, and the hottest transition (if
    /// any) agrees with the stat report's busiest transition.
    #[test]
    fn heatmap_activity_in_unit_interval(spec in arb_net(), seed in 0u64..100) {
        let net = build(&spec);
        let Some(trace) = sim_or_skip(&net, seed, 60) else { return Ok(()); };
        let h = pnut::anim::Heatmap::from_trace(&trace);
        for row in h.places.iter().chain(&h.transitions) {
            prop_assert!(
                (0.0..=1.0 + 1e-9).contains(&row.activity),
                "{}: {}",
                row.name,
                row.activity
            );
        }
    }

    /// Batch means lie between the series min and max of the tracked
    /// place's token count.
    #[test]
    fn batch_means_bounded_by_extremes(spec in arb_net(), seed in 0u64..100) {
        let net = build(&spec);
        let Some(trace) = sim_or_skip(&net, seed, 100) else { return Ok(()); };
        let name = net.place(pnut::core::PlaceId::new(0)).name().to_string();
        let mut bm = pnut::stat::BatchMeans::new(&name, 20);
        trace.replay(&mut bm);
        let report = pnut::stat::analyze(&trace);
        let stats = report.place(&name).expect("place exists");
        for b in bm.batches() {
            prop_assert!(*b >= f64::from(stats.min_tokens) - 1e-9);
            prop_assert!(*b <= f64::from(stats.max_tokens) + 1e-9);
        }
    }
}
