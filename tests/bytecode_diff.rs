//! Differential battery for the bytecode compiler.
//!
//! The compiled evaluator in `pnut_core::expr::compile` replaced the
//! tree-walking interpreter on every hot path, so its contract is
//! *bit-identical observable behaviour*: same values, same
//! [`EvalError`]s (variant **and** payload), same randomness draw
//! order. These tests pin that contract three ways:
//!
//! 1. per-expression and per-action parity over a corpus covering the
//!    full grammar and every error variant;
//! 2. graph-level equality on the paper models across the whole
//!    `jobs × mem_budget` grid;
//! 3. a 40-net seeded [`random_net`] sweep, untimed and timed, against
//!    the frozen AST-walking seed construction where it applies.

use pnut::core::expr::compile::{ActionProgram, EnvSlots, Program, Scratch, SlotMap};
use pnut::core::expr::{Action, Env, EvalError, Expr, Value};
use pnut::core::CyclingRandomness;
use pnut::reach::graph::{
    build_timed, build_untimed, EdgeLabel, ReachError, ReachOptions, ReachabilityGraph,
};
use pnut_bench::legacy_reach::{self, LegacyGraph};
use pnut_bench::workloads::random_net;
use pnut_pipeline::{interpreted, sequential, three_stage, ThreeStageConfig};

// ---------------------------------------------------------------------------
// Expression parity
// ---------------------------------------------------------------------------

/// One slot map for the whole corpus: names deliberately include
/// `missing`/`nosuch`, which no environment binds, so unknown-name
/// failures surface at *runtime* (the interpreter's behaviour), not at
/// lowering time.
fn corpus_map() -> SlotMap {
    SlotMap::from_names(
        ["b", "big", "missing", "x", "y"].map(String::from),
        ["nosuch", "t", "u"].map(String::from),
    )
}

fn corpus_envs() -> Vec<Env> {
    let mut e1 = Env::new();
    e1.set_var("x", Value::Int(3));
    e1.set_var("y", Value::Int(2));
    e1.set_var("b", Value::Bool(true));
    e1.set_var("big", Value::Int(i64::MAX));
    e1.define_table("t", vec![10, 20, 30]);
    e1.define_table("u", vec![]);

    let mut e2 = Env::new();
    e2.set_var("x", Value::Int(0));
    e2.set_var("y", Value::Int(-7));
    e2.set_var("b", Value::Bool(false));
    e2.define_table("t", vec![5]);

    vec![e1, e2, Env::new()]
}

/// Every production of the grammar, plus one expression per
/// [`EvalError`] variant. Which error (if any) fires depends on the
/// environment — the point is that *whatever* happens, it happens
/// identically on both evaluators.
const EXPR_CORPUS: &[&str] = &[
    // Plain values and arithmetic.
    "1 + 2 * 3 - 4",
    "x + y",
    "x * y % (y + 10)",
    "x / (y + 8)",
    "-x",
    "-(0 - big)",
    // Comparisons and equality (including cross-type equality).
    "x < y",
    "x <= 3",
    "y > 0",
    "y >= -7",
    "x == y",
    "x != y",
    "b == (x == 0)",
    "x == (x == x)",
    // Short-circuit logic: the untaken side may contain errors.
    "b && x < 3",
    "b || x / 0 == 1",
    "!b || b",
    "!b && missing == 1",
    "false && 1 / 0 == 0",
    "true || nosuch[0] == 0",
    // Conditionals, both arms reachable across the corpus envs.
    "b ? x : y",
    "x < y ? t[0] : x + 1",
    // Calls.
    "min(x, y)",
    "max(x, y * 2)",
    "abs(y)",
    "abs(0 - x)",
    "min(abs(y), max(x, 1))",
    // Indexing.
    "t[0]",
    "t[x - 2]",
    "t[x] + t[y + 8]",
    // Error cases: division, overflow, type mismatches, unknown names,
    // bounds, empty random ranges.
    "x / 0",
    "x % 0",
    "y / 0 + 1",
    "big + 1",
    "0 - big - 2",
    "big * 2",
    "-(0 - 9223372036854775807 - 1)",
    "b + 1",
    "!x",
    "-b",
    "x && b",
    "b ? 1 : x ? 2 : 3",
    "missing + 1",
    "nosuch[0]",
    "t[99]",
    "t[0 - 1]",
    "u[0]",
    "irand(5, 1)",
    "irand(x, 100)",
    "irand(b, 1)",
    "min(b, missing)",
    "max(missing, b)",
];

#[test]
fn expression_corpus_matches_interpreter_pure() {
    let map = corpus_map();
    let mut slots = EnvSlots::new();
    let mut vm = Scratch::new();
    for env in corpus_envs() {
        slots.load(&map, &env);
        for src in EXPR_CORPUS {
            let e = Expr::parse(src).expect("corpus parses");
            let p = Program::compile(&e, &map).expect("corpus lowers");
            assert_eq!(
                e.eval_pure(&env),
                p.eval_pure(&slots, &map, &mut vm),
                "pure evaluation of `{src}` diverged on {env:?}"
            );
        }
    }
}

#[test]
fn expression_corpus_matches_interpreter_with_rng() {
    let map = corpus_map();
    let mut slots = EnvSlots::new();
    let mut vm = Scratch::new();
    for env in corpus_envs() {
        slots.load(&map, &env);
        for src in EXPR_CORPUS {
            let e = Expr::parse(src).expect("corpus parses");
            let p = Program::compile(&e, &map).expect("corpus lowers");
            // Independent deterministic sources: equal results *and*
            // equal post-run counters prove the draw order matches.
            let mut ri = CyclingRandomness::new();
            let mut rc = CyclingRandomness::new();
            assert_eq!(
                e.eval(&env, &mut ri),
                p.eval(&slots, &map, &mut vm, &mut rc),
                "evaluation of `{src}` diverged on {env:?}"
            );
            assert_eq!(ri, rc, "rng draw count diverged on `{src}`");
        }
    }
}

#[test]
fn every_eval_error_variant_is_exercised_by_the_corpus() {
    // Guard against corpus rot: if the expression language grows a new
    // failure mode, the corpus must grow with it.
    let map = corpus_map();
    let mut slots = EnvSlots::new();
    let mut vm = Scratch::new();
    let mut seen = std::collections::HashSet::new();
    for env in corpus_envs() {
        slots.load(&map, &env);
        for src in EXPR_CORPUS {
            let e = Expr::parse(src).expect("corpus parses");
            let p = Program::compile(&e, &map).expect("corpus lowers");
            if let Err(err) = p.eval_pure(&slots, &map, &mut vm) {
                seen.insert(std::mem::discriminant(&err));
                // And one with randomness available, so the pure-only
                // RandomnessUnavailable is not the sole irand outcome.
                let mut rng = CyclingRandomness::new();
                if let Err(err) = p.eval(&slots, &map, &mut vm, &mut rng) {
                    seen.insert(std::mem::discriminant(&err));
                }
            }
        }
    }
    let all = [
        EvalError::UnknownVariable(String::new()),
        EvalError::UnknownTable(String::new()),
        EvalError::IndexOutOfBounds {
            table: String::new(),
            index: 0,
            len: 0,
        },
        EvalError::TypeMismatch {
            expected: "",
            found: "",
        },
        EvalError::DivisionByZero,
        EvalError::Overflow,
        EvalError::EmptyRandomRange { lo: 0, hi: 0 },
        EvalError::RandomnessUnavailable,
    ];
    for variant in &all {
        assert!(
            seen.contains(&std::mem::discriminant(variant)),
            "corpus never produces {variant:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// Action parity
// ---------------------------------------------------------------------------

const ACTION_CORPUS: &[&str] = &[
    "x = x + 1;",
    "x = y; y = x * 2;",
    "t[0] = t[0] + 1;",
    "t[x] = y; x = t[x];",
    "x = irand(1, 3); y = irand(0, x);",
    "x = b ? 1 : 0;",
    // Failing actions: earlier assignments must still have landed.
    "x = 1; y = missing;",
    "x = 2; t[99] = 0;",
    "x = 3; nosuch[0] = 1;",
    "x = 4; t[b] = 0;",
    "x = 5; t[0] = b;",
    "x = x / 0;",
];

#[test]
fn action_corpus_matches_interpreter_including_partial_failures() {
    let map = corpus_map();
    let mut slots = EnvSlots::new();
    let mut vm = Scratch::new();
    for env in corpus_envs() {
        for src in ACTION_CORPUS {
            let a = Action::parse(src).expect("corpus parses");
            let p = ActionProgram::compile(&a, &map).expect("corpus lowers");
            let mut env_i = env.clone();
            slots.load(&map, &env);
            let mut ri = CyclingRandomness::new();
            let mut rc = CyclingRandomness::new();
            let got_i = a.apply(&mut env_i, &mut ri);
            let got_c = p.apply(&mut slots, &map, &mut vm, &mut rc);
            assert_eq!(got_i, got_c, "action `{src}` diverged on {env:?}");
            assert_eq!(ri, rc, "rng draw count diverged on `{src}`");
            // The environment after the action — including writes that
            // landed before a failure — must round-trip identically.
            assert_eq!(
                env_i,
                slots.to_env(&map),
                "environment after `{src}` diverged"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Graph-level parity
// ---------------------------------------------------------------------------

const TINY_BUDGET: usize = 64 * 1024;

fn grid() -> impl Iterator<Item = ReachOptions> {
    [1usize, 4].into_iter().flat_map(|jobs| {
        [usize::MAX, TINY_BUDGET]
            .into_iter()
            .map(move |mem_budget| ReachOptions {
                jobs,
                mem_budget,
                ..ReachOptions::default()
            })
    })
}

fn assert_matches_legacy(g: &ReachabilityGraph, l: &LegacyGraph, what: &str) {
    assert_eq!(g.state_count(), l.state_count(), "{what}: state counts");
    assert_eq!(g.edge_count(), l.edge_count(), "{what}: edge counts");
    for i in 0..g.state_count() {
        let a = g.state(i).expect("resident graph");
        let b = l.state(i);
        assert_eq!(
            a.marking.as_slice(),
            b.marking.as_slice(),
            "{what}: state {i}"
        );
        assert_eq!(a.env, &b.env, "{what}: env of state {i}");
        assert_eq!(a.in_flight, &b.in_flight[..], "{what}: in-flight of {i}");
        let got: Vec<(EdgeLabel, usize)> = g
            .successors(i)
            .expect("resident graph")
            .iter()
            .map(|&(label, target)| (label, target as usize))
            .collect();
        assert_eq!(got, l.successors(i), "{what}: edges of state {i}");
    }
}

#[test]
fn paper_models_are_bit_identical_across_the_grid() {
    let nets = [
        three_stage::build(&ThreeStageConfig::default()).expect("builds"),
        sequential::build(&ThreeStageConfig::default()).expect("builds"),
        interpreted::build(&interpreted::InterpretedConfig {
            for_analysis: true,
            ..interpreted::InterpretedConfig::default()
        })
        .expect("builds"),
    ];
    for net in &nets {
        let untimed = build_untimed(net, &ReachOptions::default()).expect("untimed");
        let legacy = legacy_reach::build_untimed(net, &ReachOptions::default()).expect("legacy");
        assert_matches_legacy(&untimed, &legacy, net.name());
        let timed = build_timed(net, &ReachOptions::default()).expect("timed");
        for options in grid() {
            let g = build_untimed(net, &options).expect("untimed grid build");
            assert_eq!(
                g,
                untimed,
                "untimed `{}` diverged at {options:?}",
                net.name()
            );
            let g = build_timed(net, &options).expect("timed grid build");
            assert_eq!(g, timed, "timed `{}` diverged at {options:?}", net.name());
        }
    }
}

/// Build, treating a state-space overflow as a skip (random nets are
/// routinely unbounded).
fn try_build(
    build: fn(&pnut_core::Net, &ReachOptions) -> Result<ReachabilityGraph, ReachError>,
    net: &pnut_core::Net,
    options: &ReachOptions,
) -> Option<ReachabilityGraph> {
    match build(net, options) {
        Ok(g) => Some(g),
        Err(ReachError::StateLimit { .. }) => None,
        Err(e) => panic!("unexpected reachability failure on `{}`: {e}", net.name()),
    }
}

#[test]
fn random_net_sweep_is_bit_identical_and_matches_the_seed() {
    let base = ReachOptions {
        max_states: 2_000,
        ..ReachOptions::default()
    };
    let (mut untimed_built, mut timed_built) = (0, 0);
    for seed in 0..40 {
        let net = random_net(seed);
        if let Some(reference) = try_build(build_untimed, &net, &base) {
            untimed_built += 1;
            // The frozen seed construction accepts every deterministic
            // untimed net, so the whole sweep cross-checks against the
            // AST-walking implementation.
            let legacy = legacy_reach::build_untimed(&net, &base).expect("legacy untimed");
            assert_matches_legacy(&reference, &legacy, net.name());
            for options in grid() {
                let options = ReachOptions {
                    max_states: base.max_states,
                    ..options
                };
                let g = build_untimed(&net, &options).expect("within the cap");
                assert_eq!(g, reference, "untimed seed {seed} diverged at {options:?}");
            }
        }
        if let Some(reference) = try_build(build_timed, &net, &base) {
            timed_built += 1;
            // The seed's timed construction predates expression delays
            // and enabling clocks, so it only cross-checks the subset
            // it accepts.
            if let Ok(legacy) = legacy_reach::build_timed(&net, &base) {
                assert_matches_legacy(&reference, &legacy, net.name());
            }
            for options in grid() {
                let options = ReachOptions {
                    max_states: base.max_states,
                    ..options
                };
                let g = build_timed(&net, &options).expect("within the cap");
                assert_eq!(g, reference, "timed seed {seed} diverged at {options:?}");
            }
        }
    }
    // The sweep must actually sweep: if the generator drifts into
    // producing mostly-unbounded nets, these counts catch it.
    assert!(
        untimed_built >= 20,
        "only {untimed_built}/40 untimed nets built"
    );
    assert!(timed_built >= 15, "only {timed_built}/40 timed nets built");
}
