//! Reachability-based verification of the pipeline models: boundedness,
//! absence of deadlock, and CTL properties — the paper's §4 "other
//! tools" exercised on the §2 system.

use pnut::core::NetBuilder;
use pnut::pipeline::{three_stage, ThreeStageConfig};
use pnut::reach::{ctl, graph};

fn untimed(net: &pnut::core::Net) -> graph::ReachabilityGraph {
    graph::build_untimed(net, &graph::ReachOptions::default()).expect("bounded")
}

#[test]
fn full_pipeline_model_is_bounded_and_deadlock_free() {
    let net = three_stage::build(&ThreeStageConfig::default()).expect("builds");
    let mut g = untimed(&net);
    assert!(g.state_count() > 10, "nontrivial state space");
    assert!(
        g.deadlocks().expect("paged sweep").is_empty(),
        "the pipeline must never deadlock: {:?}",
        g.deadlocks()
    );
    // Boundedness facts: the bus is 1-safe, the buffer 6-bounded.
    let bounds = g.place_bounds().expect("paged sweep");
    let bound_of = |name: &str| bounds[net.place_id(name).expect("exists").index()];
    assert_eq!(bound_of("Bus_busy"), 1);
    assert_eq!(bound_of("Bus_free"), 1);
    assert_eq!(bound_of("Full_I_buffers"), 6);
    assert_eq!(bound_of("Empty_I_buffers"), 6);
    assert_eq!(bound_of("Execution_unit"), 1);
    assert_eq!(bound_of("Decoder_ready"), 1);
}

#[test]
fn every_transition_of_the_pipeline_can_fire() {
    // L1-liveness: the model contains no dead transitions.
    let net = three_stage::build(&ThreeStageConfig::default()).expect("builds");
    let mut g = untimed(&net);
    for (tid, t) in net.transitions() {
        assert!(
            g.ever_fires(tid).expect("paged sweep"),
            "transition `{}` can never fire",
            t.name()
        );
    }
}

#[test]
fn ctl_invariants_of_the_pipeline() {
    let net = three_stage::build(&ThreeStageConfig::default()).expect("builds");
    let mut g = untimed(&net);
    for (formula, expect) in [
        // The §4.4 invariant, proved over *all* behaviours here, not
        // just one trace.
        ("AG (Bus_free + Bus_busy = 1)", true),
        ("AG (Empty_I_buffers + Full_I_buffers <= 6)", true),
        // The buffer can fill completely...
        ("EF (Full_I_buffers = 6)", true),
        // ...and the decoder can always eventually get a new instruction.
        ("AG EF (Decoded_instruction = 1)", true),
        // The bus is always eventually freed, over all behaviours
        // (AG AF would be false only with an execution starving the bus).
        ("AG (Bus_busy = 1 -> EF (Bus_free = 1))", true),
        // At most one instruction is ever in the execution unit.
        ("AG (Issued_instruction + Executed <= 1)", true),
        // Sanity: something that must be false.
        ("AG (Bus_busy = 0)", false),
        ("EF (Full_I_buffers = 7)", false),
    ] {
        let f = ctl::Formula::parse(formula).expect("parses");
        let outcome = ctl::check(&mut g, &net, &f).expect("checks");
        assert_eq!(
            outcome.holds_initially, expect,
            "CTL formula `{formula}` expected {expect}"
        );
    }
}

#[test]
fn timed_reachability_of_a_pipeline_fragment() {
    // The decode/issue fragment with constant firing times admits a
    // timed graph; check that in-flight decoding is visible as state.
    let mut b = NetBuilder::new("fragment");
    b.place("Full_I_buffers", 2);
    b.place("Decoder_ready", 1);
    b.place("Decoded", 0);
    b.place("Done", 0);
    b.transition("Decode")
        .input("Full_I_buffers")
        .input("Decoder_ready")
        .output("Decoded")
        .firing(1)
        .add();
    b.transition("Issue")
        .input("Decoded")
        .output("Decoder_ready")
        .output("Done")
        .add();
    let net = b.build().expect("builds");
    let mut g = graph::build_timed(&net, &graph::ReachOptions::default()).expect("bounded");
    assert!(
        (4..=16).contains(&g.state_count()),
        "small timed graph, got {}",
        g.state_count()
    );
    // Some state has Decode in flight.
    let decode = net.transition_id("Decode").expect("exists");
    assert!((0..g.state_count()).any(|i| {
        g.state(i)
            .expect("resident graph")
            .in_flight
            .iter()
            .any(|&(t, _)| t == decode)
    }));
    // Terminal state: both instructions done.
    let done = net.place_id("Done").expect("exists");
    let deadlocks = g.deadlocks().expect("paged sweep");
    assert_eq!(deadlocks.len(), 1);
    assert_eq!(
        g.state(deadlocks[0])
            .expect("resident graph")
            .marking
            .tokens(done),
        2
    );
}

#[test]
fn interpreted_model_reachability_is_rejected_randomness() {
    // The §3 model uses irand in its decode action: reachability must
    // refuse it rather than silently linearize the distribution.
    let net = pnut::pipeline::interpreted::build(
        &pnut::pipeline::interpreted::InterpretedConfig::default(),
    )
    .expect("builds");
    assert_eq!(
        graph::build_untimed(&net, &graph::ReachOptions::default()).unwrap_err(),
        graph::ReachError::UsesRandom
    );
}

#[test]
fn structural_and_reachability_bounds_agree_on_the_bus() {
    let net = three_stage::build(&ThreeStageConfig::default()).expect("builds");
    // Structural: the bus group is conservative.
    let group = [
        net.place_id("Bus_free").expect("exists"),
        net.place_id("Bus_busy").expect("exists"),
    ];
    assert!(pnut::core::analysis::conservation_violations(&net, &group).is_empty());
    // Reachability: therefore the group sum is the initial sum in every
    // state.
    let g = untimed(&net);
    for i in 0..g.state_count() {
        let s = g.state(i).expect("resident graph");
        assert_eq!(
            s.marking.tokens(group[0]) + s.marking.tokens(group[1]),
            1,
            "state {i}"
        );
    }
}

#[test]
fn invariant_basis_contains_the_bus_conservation_law() {
    let net = three_stage::build(&ThreeStageConfig::default()).expect("builds");
    let invariants = pnut::core::invariant::p_invariants(&net);
    assert!(!invariants.is_empty(), "the pipeline has conservation laws");
    for inv in &invariants {
        assert!(pnut::core::invariant::verify_p_invariant(
            &net,
            &inv.weights
        ));
    }
    // The §4.4 bus law is itself a P-invariant (every transition moves
    // the bus token between exactly these two places), provable
    // algebraically without any state exploration:
    let free = net.place_id("Bus_free").expect("exists").index();
    let busy = net.place_id("Bus_busy").expect("exists").index();
    let mut canonical = vec![0i64; net.place_count()];
    canonical[free] = 1;
    canonical[busy] = 1;
    assert!(
        pnut::core::invariant::verify_p_invariant(&net, &canonical),
        "Bus_free + Bus_busy is conserved"
    );
    // And the computed basis spans laws touching the bus.
    assert!(
        invariants
            .iter()
            .any(|i| i.weights[free] != 0 || i.weights[busy] != 0),
        "some basis law must involve the bus"
    );
    // And every invariant's token sum is conserved along a simulated run.
    let trace = pnut::sim::simulate(&net, 5, pnut::core::Time::from_ticks(500)).expect("runs");
    let states: Vec<_> = trace.states().collect();
    for inv in &invariants {
        let expect = inv.token_sum(&states[0].marking);
        // Firing times move tokens into transitions; conservation holds
        // exactly at quiescent points, so check only states where no
        // firing is in flight.
        for s in &states {
            if s.firing_counts.iter().all(|&c| c == 0) {
                assert_eq!(
                    inv.token_sum(&s.marking),
                    expect,
                    "invariant violated at quiescent state {}",
                    s.index
                );
            }
        }
    }
}

#[test]
fn coverability_agrees_with_reachability_on_a_plain_fragment() {
    // The prefetch fragment without inhibitors is a plain net: both
    // tools must agree it is bounded with the same buffer bounds.
    let mut b = NetBuilder::new("prefetch_plain");
    b.place("Bus_free", 1);
    b.place("Bus_busy", 0);
    b.place("Empty_I_buffers", 6);
    b.place("Full_I_buffers", 0);
    b.place("pre_fetching", 0);
    b.transition("Start_prefetch")
        .input("Bus_free")
        .input_weighted("Empty_I_buffers", 2)
        .output("Bus_busy")
        .output("pre_fetching")
        .add();
    b.transition("End_prefetch")
        .input("Bus_busy")
        .input("pre_fetching")
        .output("Bus_free")
        .output_weighted("Full_I_buffers", 2)
        .add();
    b.transition("Consume")
        .input("Full_I_buffers")
        .output("Empty_I_buffers")
        .add();
    let net = b.build().expect("builds");

    let mut g = untimed(&net);
    let tree = pnut::reach::coverability::coverability_tree(
        &net,
        &pnut::reach::coverability::CoverOptions::default(),
    )
    .expect("plain net");
    assert!(!tree.is_unbounded());
    let bounds = g.place_bounds().expect("paged sweep");
    for (pid, p) in net.places() {
        assert_eq!(
            tree.place_bound(pid),
            Some(bounds[pid.index()]),
            "bound mismatch on {}",
            p.name()
        );
    }
}
