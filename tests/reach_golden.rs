//! Golden equivalence tests for the interned reachability engine.
//!
//! The zero-copy `StateStore` + CSR construction in `pnut_reach` must be
//! *semantically identical* to the seed construction it replaced — same
//! states, same discovery order, same edges. The seed implementation is
//! kept frozen in [`pnut_bench::legacy_reach`]; these tests run both on
//! the paper's models and compare state-by-state and edge-by-edge, and
//! pin the expected state/edge counts as golden numbers so a regression
//! in either implementation is caught even if both drift together.

use pnut::reach::graph::{build_timed, build_untimed, EdgeLabel, ReachOptions, ReachabilityGraph};
use pnut_bench::legacy_reach::{self, LegacyGraph};
use pnut_bench::workloads::{timed_fragment, wide_toggle};
use pnut_core::Net;
use pnut_pipeline::{interpreted, sequential, three_stage, ThreeStageConfig};

fn with_jobs(jobs: usize) -> ReachOptions {
    ReachOptions {
        jobs,
        ..ReachOptions::default()
    }
}

/// A 64 KiB resident-arena budget: far below the golden models' state
/// arenas, so the pager must seal, evict, and refault segments
/// throughout the build.
const TINY_BUDGET: usize = 64 * 1024;

fn with_budget(jobs: usize, mem_budget: usize) -> ReachOptions {
    ReachOptions {
        jobs,
        mem_budget,
        ..ReachOptions::default()
    }
}

fn assert_equivalent(g: &ReachabilityGraph, l: &LegacyGraph) {
    assert_eq!(g.state_count(), l.state_count(), "state counts differ");
    assert_eq!(g.edge_count(), l.edge_count(), "edge counts differ");
    for i in 0..g.state_count() {
        let a = g.state(i).expect("resident graph");
        let b = l.state(i);
        assert_eq!(
            a.marking.as_slice(),
            b.marking.as_slice(),
            "marking of state {i} differs"
        );
        assert_eq!(a.env, &b.env, "environment of state {i} differs");
        assert_eq!(
            a.in_flight,
            &b.in_flight[..],
            "in-flight of state {i} differs"
        );
        let got: Vec<(EdgeLabel, usize)> = g
            .successors(i)
            .expect("resident graph")
            .iter()
            .map(|&(label, target)| (label, target as usize))
            .collect();
        assert_eq!(got, l.successors(i), "edges of state {i} differ");
    }
}

fn untimed_pair(net: &Net) -> (ReachabilityGraph, LegacyGraph) {
    let options = ReachOptions::default();
    (
        build_untimed(net, &options).expect("interned build"),
        legacy_reach::build_untimed(net, &options).expect("legacy build"),
    )
}

#[test]
fn three_stage_untimed_matches_seed_construction() {
    let net = three_stage::build(&ThreeStageConfig::default()).expect("builds");
    let (g, l) = untimed_pair(&net);
    assert_equivalent(&g, &l);
    assert_eq!((g.state_count(), g.edge_count()), (614, 1988));
}

#[test]
fn sequential_untimed_matches_seed_construction() {
    let net = sequential::build(&ThreeStageConfig::default()).expect("builds");
    let (g, l) = untimed_pair(&net);
    assert_equivalent(&g, &l);
    assert_eq!((g.state_count(), g.edge_count()), (19, 26));
}

#[test]
fn interpreted_untimed_matches_seed_construction() {
    // The analysis variant: round-robin dispatch, serialized branch
    // resolution (the simulation variant uses `irand`, which
    // reachability rejects, and has an unbounded untimed state space).
    let config = interpreted::InterpretedConfig {
        for_analysis: true,
        ..interpreted::InterpretedConfig::default()
    };
    let net = interpreted::build(&config).expect("builds");
    let (g, l) = untimed_pair(&net);
    assert_equivalent(&g, &l);
    assert_eq!((g.state_count(), g.edge_count()), (3383, 8887));
    // Round-robin decode cycles `ty` through the five types, so the
    // interner sees a bounded set of distinct environments.
    assert_eq!(g.store().env_count(), 20);
}

/// Golden timed state/edge counts for the full paper pipelines — the
/// graphs the enabling-clock state extension unlocked (the seed
/// construction rejects every one of these nets because their
/// memory-completion transitions use enabling delays). Each build is
/// also asserted bit-identical across `jobs ∈ {1, 4}` ×
/// `mem_budget ∈ {unlimited, 64 KiB}`.
#[test]
fn timed_pipelines_have_golden_counts_and_deterministic_builds() {
    let cases: [(Net, (usize, usize)); 3] = [
        (
            three_stage::build(&ThreeStageConfig::default()).expect("builds"),
            (3391, 4876),
        ),
        (
            interpreted::build(&interpreted::InterpretedConfig {
                for_analysis: true,
                ..interpreted::InterpretedConfig::default()
            })
            .expect("builds"),
            (638, 984),
        ),
        (
            sequential::build(&ThreeStageConfig::default()).expect("builds"),
            (32, 39),
        ),
    ];
    for (net, (states, edges)) in &cases {
        let reference = build_timed(net, &ReachOptions::default()).expect("timed build");
        assert_eq!(
            (reference.state_count(), reference.edge_count()),
            (*states, *edges),
            "timed golden counts of `{}`",
            net.name()
        );
        // The whole point of the extension: enabling clocks really are
        // part of the reachable state space of these models.
        assert!(
            (0..reference.state_count()).any(|i| !reference
                .state(i)
                .expect("resident graph")
                .enabling
                .is_empty()),
            "`{}` should carry enabling clocks",
            net.name()
        );
        // The frozen seed construction still rejects these nets — the
        // golden counts above cannot be cross-checked against it.
        assert!(
            legacy_reach::build_timed(net, &ReachOptions::default()).is_err(),
            "seed construction unexpectedly accepts `{}`",
            net.name()
        );
        for jobs in [1, 4] {
            for budget in [usize::MAX, TINY_BUDGET] {
                let g = build_timed(net, &with_budget(jobs, budget)).expect("timed build");
                assert_eq!(
                    g,
                    reference,
                    "timed build of `{}` diverged at jobs = {jobs}, budget = {budget:#x}",
                    net.name()
                );
            }
        }
    }
}

#[test]
fn timed_fragment_matches_seed_construction() {
    let net = timed_fragment(3);
    let options = ReachOptions::default();
    let g = build_timed(&net, &options).expect("interned build");
    let l = legacy_reach::build_timed(&net, &options).expect("legacy build");
    assert_equivalent(&g, &l);
    println!(
        "timed fragment: {} states, {} edges",
        g.state_count(),
        g.edge_count()
    );
}

#[test]
fn parallel_untimed_builds_are_bit_identical_on_the_golden_models() {
    let nets = [
        three_stage::build(&ThreeStageConfig::default()).expect("builds"),
        sequential::build(&ThreeStageConfig::default()).expect("builds"),
        interpreted::build(&interpreted::InterpretedConfig {
            for_analysis: true,
            ..interpreted::InterpretedConfig::default()
        })
        .expect("builds"),
    ];
    for net in &nets {
        let seq = build_untimed(net, &ReachOptions::default()).expect("sequential build");
        for jobs in [2, 4, 8] {
            let par = build_untimed(net, &with_jobs(jobs)).expect("parallel build");
            assert_eq!(
                par,
                seq,
                "parallel build (jobs = {jobs}) diverged on `{}`",
                net.name()
            );
        }
    }
}

#[test]
fn parallel_timed_build_is_bit_identical_on_the_fragment() {
    let net = timed_fragment(3);
    let seq = build_timed(&net, &ReachOptions::default()).expect("sequential build");
    for jobs in [2, 4, 8] {
        let par = build_timed(&net, &with_jobs(jobs)).expect("parallel build");
        assert_eq!(par, seq, "timed parallel build (jobs = {jobs}) diverged");
    }
}

#[test]
fn parallel_build_is_bit_identical_on_wide_frontiers() {
    // The paper pipelines never grow a frontier past a few dozen states,
    // so their parallel builds run the level machinery without spawning.
    // The toggle lattice has levels thousands of states wide, forcing
    // real cross-thread interning through the sharded pending tables.
    let net = wide_toggle(13); // 8192 states, max level width C(13,6) = 1716
    let seq = build_untimed(&net, &ReachOptions::default()).expect("sequential build");
    assert_eq!(seq.state_count(), 1 << 13);
    for jobs in [2, 4, 8] {
        let par = build_untimed(&net, &with_jobs(jobs)).expect("parallel build");
        assert_eq!(par, seq, "wide parallel build (jobs = {jobs}) diverged");
    }
}

#[test]
fn parallel_interpreted_stress_is_stable_across_repeats() {
    // Run the 3383-state interpreted build repeatedly at several worker
    // counts to shake out interleaving bugs in the shard/splice path:
    // any racy key reduction or splice ordering would show up as a
    // store/edge mismatch in some repetition.
    let net = interpreted::build(&interpreted::InterpretedConfig {
        for_analysis: true,
        ..interpreted::InterpretedConfig::default()
    })
    .expect("builds");
    let seq = build_untimed(&net, &ReachOptions::default()).expect("sequential build");
    for round in 0..6 {
        for jobs in [2, 4, 8] {
            let par = build_untimed(&net, &with_jobs(jobs)).expect("parallel build");
            assert_eq!(par, seq, "round {round}, jobs = {jobs} diverged");
        }
    }
}

#[test]
fn paged_builds_are_bit_identical_at_any_budget_and_job_count() {
    // The disk-backed pager must never change results: (jobs ∈ {1, 4})
    // × (budget ∈ {unlimited, 64 KiB}) on the golden models and the
    // wide-toggle lattice, all equal to the plain in-memory build.
    let nets = [
        three_stage::build(&ThreeStageConfig::default()).expect("builds"),
        interpreted::build(&interpreted::InterpretedConfig {
            for_analysis: true,
            ..interpreted::InterpretedConfig::default()
        })
        .expect("builds"),
        wide_toggle(13),
    ];
    for net in &nets {
        let reference = build_untimed(net, &ReachOptions::default()).expect("reference build");
        for jobs in [1, 4] {
            for budget in [usize::MAX, TINY_BUDGET] {
                let g = build_untimed(net, &with_budget(jobs, budget)).expect("paged build");
                assert_eq!(
                    g,
                    reference,
                    "jobs = {jobs}, budget = {budget:#x} diverged on `{}`",
                    net.name()
                );
                if budget == TINY_BUDGET && net.name() == "wide_toggle" {
                    assert!(
                        g.store().spilled_bytes() > 0,
                        "64 KiB must actually force eviction on the lattice (jobs = {jobs})"
                    );
                }
            }
        }
    }
    // Timed graphs page their in-flight arenas through the same path.
    let net = timed_fragment(3);
    let reference = build_timed(&net, &ReachOptions::default()).expect("reference build");
    for jobs in [1, 4] {
        let g = build_timed(&net, &with_budget(jobs, TINY_BUDGET)).expect("paged timed build");
        assert_eq!(g, reference, "timed paged build (jobs = {jobs}) diverged");
    }
}

#[test]
fn paged_build_stays_inside_the_budget_envelope() {
    // A workload whose arenas far exceed the budget must complete with
    // peak resident arena bytes ≤ budget + one state segment + one
    // edge segment (the documented envelope of the sequential build:
    // probe hits fault at most one state segment in, and the edge
    // arena — which shares the byte ledger since the CSR rows page —
    // grows by at most one segment's rows before its own `&mut` point
    // evicts back down).
    let net = wide_toggle(13); // 8192 states × 26 places ≫ 64 KiB
    let g = build_untimed(&net, &with_budget(1, TINY_BUDGET)).expect("paged build");
    assert!(g.spilled_bytes() > 0, "the budget must force spilling");
    let slack = g.max_state_segment_bytes() + g.max_edge_segment_bytes();
    assert!(
        g.resident_bytes() <= TINY_BUDGET + slack,
        "resident {} exceeds budget {} + segments {}",
        g.resident_bytes(),
        TINY_BUDGET,
        slack
    );
    assert!(
        g.peak_resident_bytes() <= TINY_BUDGET + slack,
        "peak {} exceeds budget {} + segments {}",
        g.peak_resident_bytes(),
        TINY_BUDGET,
        slack
    );
    // The edge arena really is paged: the 8192-row CSR (~190 KiB of
    // edges) cannot have stayed resident under a 64 KiB budget.
    assert!(
        g.max_edge_segment_bytes() > 0,
        "edge segments must have sealed"
    );
}

#[test]
fn state_limit_is_deterministic_and_consistent_on_a_paged_store() {
    // The cap must surface the same deterministic error whether or not
    // the store is paging (and regardless of worker count), and the
    // build must fail cleanly rather than leave a half-spilled store.
    use pnut_core::NetBuilder;
    let mut b = NetBuilder::new("unbounded");
    b.place("p", 0);
    b.transition("gen").output("p").add();
    let net = b.build().expect("builds");
    let reference = build_untimed(&net, &with_jobs(1)).expect_err("unbounded");
    for jobs in [1, 4] {
        let e = build_untimed(&net, &with_budget(jobs, 4 * 1024)).expect_err("unbounded");
        assert_eq!(e, reference, "jobs = {jobs} reported a different limit");
    }
    // A capped build that *fits* must agree with the uncapped one even
    // when the cap bites exactly at a segment boundary's worth of
    // states under a tiny budget.
    let lattice = wide_toggle(13);
    let full = build_untimed(&lattice, &ReachOptions::default()).expect("reference");
    for jobs in [1, 4] {
        let opts = ReachOptions {
            max_states: full.state_count(),
            ..with_budget(jobs, TINY_BUDGET)
        };
        let g = build_untimed(&lattice, &opts).expect("exactly at the cap");
        assert_eq!(g, full, "jobs = {jobs} diverged at the exact cap");
        let opts = ReachOptions {
            max_states: full.state_count() - 1,
            ..with_budget(jobs, TINY_BUDGET)
        };
        let e = build_untimed(&lattice, &opts).expect_err("one below the cap");
        assert_eq!(
            e,
            pnut::reach::graph::ReachError::StateLimit {
                limit: full.state_count() - 1
            },
            "jobs = {jobs}"
        );
    }
}

#[test]
fn spill_io_failures_are_reported_not_panicked() {
    // An unusable spill directory must surface as ReachError::Spill
    // from the first forced eviction — no expect/panic on file ops.
    let mut missing = std::env::temp_dir();
    missing.push(format!("pnut-golden-no-such-dir-{}", std::process::id()));
    missing.push("nested");
    let options = ReachOptions {
        spill_dir: Some(missing),
        ..with_budget(1, TINY_BUDGET)
    };
    let err = build_untimed(&wide_toggle(13), &options).expect_err("spill dir is unusable");
    assert!(
        matches!(err, pnut::reach::graph::ReachError::Spill(_)),
        "expected a spill error, got {err:?}"
    );
}

#[test]
fn rebuilds_are_deterministic_on_the_paper_models() {
    let three = three_stage::build(&ThreeStageConfig::default()).expect("builds");
    let seq = sequential::build(&ThreeStageConfig::default()).expect("builds");
    let options = ReachOptions::default();
    for net in [&three, &seq, &timed_fragment(3)] {
        let a = build_untimed(net, &options).expect("first build");
        let b = build_untimed(net, &options).expect("second build");
        assert_eq!(a, b, "untimed rebuild of `{}` differs", net.name());
    }
    let a = build_timed(&timed_fragment(3), &options).expect("first build");
    let b = build_timed(&timed_fragment(3), &options).expect("second build");
    assert_eq!(a, b, "timed rebuild differs");
}
