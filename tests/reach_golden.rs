//! Golden equivalence tests for the interned reachability engine.
//!
//! The zero-copy `StateStore` + CSR construction in `pnut_reach` must be
//! *semantically identical* to the seed construction it replaced — same
//! states, same discovery order, same edges. The seed implementation is
//! kept frozen in [`pnut_bench::legacy_reach`]; these tests run both on
//! the paper's models and compare state-by-state and edge-by-edge, and
//! pin the expected state/edge counts as golden numbers so a regression
//! in either implementation is caught even if both drift together.

use pnut::reach::graph::{build_timed, build_untimed, EdgeLabel, ReachOptions, ReachabilityGraph};
use pnut_bench::legacy_reach::{self, LegacyGraph};
use pnut_bench::workloads::{timed_fragment, wide_toggle};
use pnut_core::Net;
use pnut_pipeline::{interpreted, sequential, three_stage, ThreeStageConfig};

fn with_jobs(jobs: usize) -> ReachOptions {
    ReachOptions {
        jobs,
        ..ReachOptions::default()
    }
}

fn assert_equivalent(g: &ReachabilityGraph, l: &LegacyGraph) {
    assert_eq!(g.state_count(), l.state_count(), "state counts differ");
    assert_eq!(g.edge_count(), l.edge_count(), "edge counts differ");
    for i in 0..g.state_count() {
        let a = g.state(i);
        let b = l.state(i);
        assert_eq!(
            a.marking.as_slice(),
            b.marking.as_slice(),
            "marking of state {i} differs"
        );
        assert_eq!(a.env, &b.env, "environment of state {i} differs");
        assert_eq!(
            a.in_flight,
            &b.in_flight[..],
            "in-flight of state {i} differs"
        );
        let got: Vec<(EdgeLabel, usize)> = g
            .successors(i)
            .iter()
            .map(|&(label, target)| (label, target as usize))
            .collect();
        assert_eq!(got, l.successors(i), "edges of state {i} differ");
    }
}

fn untimed_pair(net: &Net) -> (ReachabilityGraph, LegacyGraph) {
    let options = ReachOptions::default();
    (
        build_untimed(net, &options).expect("interned build"),
        legacy_reach::build_untimed(net, &options).expect("legacy build"),
    )
}

#[test]
fn three_stage_untimed_matches_seed_construction() {
    let net = three_stage::build(&ThreeStageConfig::default()).expect("builds");
    let (g, l) = untimed_pair(&net);
    assert_equivalent(&g, &l);
    assert_eq!((g.state_count(), g.edge_count()), (614, 1988));
}

#[test]
fn sequential_untimed_matches_seed_construction() {
    let net = sequential::build(&ThreeStageConfig::default()).expect("builds");
    let (g, l) = untimed_pair(&net);
    assert_equivalent(&g, &l);
    assert_eq!((g.state_count(), g.edge_count()), (19, 26));
}

#[test]
fn interpreted_untimed_matches_seed_construction() {
    // The analysis variant: round-robin dispatch, serialized branch
    // resolution (the simulation variant uses `irand`, which
    // reachability rejects, and has an unbounded untimed state space).
    let config = interpreted::InterpretedConfig {
        for_analysis: true,
        ..interpreted::InterpretedConfig::default()
    };
    let net = interpreted::build(&config).expect("builds");
    let (g, l) = untimed_pair(&net);
    assert_equivalent(&g, &l);
    assert_eq!((g.state_count(), g.edge_count()), (3383, 8887));
    // Round-robin decode cycles `ty` through the five types, so the
    // interner sees a bounded set of distinct environments.
    assert_eq!(g.store().env_count(), 20);
}

#[test]
fn timed_fragment_matches_seed_construction() {
    let net = timed_fragment(3);
    let options = ReachOptions::default();
    let g = build_timed(&net, &options).expect("interned build");
    let l = legacy_reach::build_timed(&net, &options).expect("legacy build");
    assert_equivalent(&g, &l);
    println!(
        "timed fragment: {} states, {} edges",
        g.state_count(),
        g.edge_count()
    );
}

#[test]
fn parallel_untimed_builds_are_bit_identical_on_the_golden_models() {
    let nets = [
        three_stage::build(&ThreeStageConfig::default()).expect("builds"),
        sequential::build(&ThreeStageConfig::default()).expect("builds"),
        interpreted::build(&interpreted::InterpretedConfig {
            for_analysis: true,
            ..interpreted::InterpretedConfig::default()
        })
        .expect("builds"),
    ];
    for net in &nets {
        let seq = build_untimed(net, &ReachOptions::default()).expect("sequential build");
        for jobs in [2, 4, 8] {
            let par = build_untimed(net, &with_jobs(jobs)).expect("parallel build");
            assert_eq!(
                par,
                seq,
                "parallel build (jobs = {jobs}) diverged on `{}`",
                net.name()
            );
        }
    }
}

#[test]
fn parallel_timed_build_is_bit_identical_on_the_fragment() {
    let net = timed_fragment(3);
    let seq = build_timed(&net, &ReachOptions::default()).expect("sequential build");
    for jobs in [2, 4, 8] {
        let par = build_timed(&net, &with_jobs(jobs)).expect("parallel build");
        assert_eq!(par, seq, "timed parallel build (jobs = {jobs}) diverged");
    }
}

#[test]
fn parallel_build_is_bit_identical_on_wide_frontiers() {
    // The paper pipelines never grow a frontier past a few dozen states,
    // so their parallel builds run the level machinery without spawning.
    // The toggle lattice has levels thousands of states wide, forcing
    // real cross-thread interning through the sharded pending tables.
    let net = wide_toggle(13); // 8192 states, max level width C(13,6) = 1716
    let seq = build_untimed(&net, &ReachOptions::default()).expect("sequential build");
    assert_eq!(seq.state_count(), 1 << 13);
    for jobs in [2, 4, 8] {
        let par = build_untimed(&net, &with_jobs(jobs)).expect("parallel build");
        assert_eq!(par, seq, "wide parallel build (jobs = {jobs}) diverged");
    }
}

#[test]
fn parallel_interpreted_stress_is_stable_across_repeats() {
    // Run the 3383-state interpreted build repeatedly at several worker
    // counts to shake out interleaving bugs in the shard/splice path:
    // any racy key reduction or splice ordering would show up as a
    // store/edge mismatch in some repetition.
    let net = interpreted::build(&interpreted::InterpretedConfig {
        for_analysis: true,
        ..interpreted::InterpretedConfig::default()
    })
    .expect("builds");
    let seq = build_untimed(&net, &ReachOptions::default()).expect("sequential build");
    for round in 0..6 {
        for jobs in [2, 4, 8] {
            let par = build_untimed(&net, &with_jobs(jobs)).expect("parallel build");
            assert_eq!(par, seq, "round {round}, jobs = {jobs} diverged");
        }
    }
}

#[test]
fn rebuilds_are_deterministic_on_the_paper_models() {
    let three = three_stage::build(&ThreeStageConfig::default()).expect("builds");
    let seq = sequential::build(&ThreeStageConfig::default()).expect("builds");
    let options = ReachOptions::default();
    for net in [&three, &seq, &timed_fragment(3)] {
        let a = build_untimed(net, &options).expect("first build");
        let b = build_untimed(net, &options).expect("second build");
        assert_eq!(a, b, "untimed rebuild of `{}` differs", net.name());
    }
    let a = build_timed(&timed_fragment(3), &options).expect("first build");
    let b = build_timed(&timed_fragment(3), &options).expect("second build");
    assert_eq!(a, b, "timed rebuild differs");
}
