//! Budget-envelope harness for *paged analyses*: verification — not
//! just graph construction — must run inside `--mem-budget`.
//!
//! Two properties are locked in for every analysis (CTL model
//! checking, deadlock detection, place bounds, L1-liveness, Markov
//! steady state) on the paper pipelines and the wide toggle lattice.
//!
//! **Bit-identical results** across `budget ∈ {unlimited, 64 KiB}` ×
//! `jobs ∈ {1, 4}`: paging and parallelism change where rows live and
//! how fast they are found, never what any analysis computes.
//!
//! **The analysis-phase resident envelope**: with the peak probe reset
//! after the build, the segment-ordered sweeps keep peak resident
//! arena bytes ≤ budget + one pinned guard (state segment + edge
//! segment) + one segment of slack. Sweeping under `&self` the old way
//! would fault the whole store resident; this harness is what keeps
//! that regression from coming back.

use pnut::core::Net;
use pnut::reach::ctl;
use pnut::reach::graph::{build_timed, build_untimed, ReachOptions, ReachabilityGraph};
use pnut_bench::workloads::wide_toggle;
use pnut_pipeline::{interpreted, three_stage, ThreeStageConfig};

/// Far below every workload's combined state + edge arenas, so sweeps
/// must evict and refault throughout.
const TINY_BUDGET: usize = 64 * 1024;

fn options(jobs: usize, mem_budget: usize) -> ReachOptions {
    ReachOptions {
        jobs,
        mem_budget,
        ..ReachOptions::default()
    }
}

/// Everything the analyses under test compute, for cross-configuration
/// equality.
#[derive(Debug, PartialEq)]
struct AnalysisResults {
    states: usize,
    edges: usize,
    bounds: Vec<u32>,
    deadlocks: Vec<usize>,
    /// Per-transition L1-liveness.
    fires: Vec<bool>,
    /// Full per-state satisfaction sets, one per formula (stronger
    /// than comparing `holds_initially`).
    ctl: Vec<Vec<bool>>,
}

/// Build `net` under `(jobs, budget)` and run the whole analysis
/// battery with the peak probe scoped to the analysis phase; when the
/// budget is finite, assert the envelope.
fn run_battery(
    net: &Net,
    timed: bool,
    jobs: usize,
    budget: usize,
    formulas: &[&str],
) -> AnalysisResults {
    let build = if timed { build_timed } else { build_untimed };
    let mut g: ReachabilityGraph = build(net, &options(jobs, budget)).expect("bounded build");
    // Scope the high-water probe to the analysis phase: everything the
    // build faulted in is the build's business, already covered by the
    // construction envelope tests in `reach_golden.rs`.
    g.reset_peak_resident_bytes();

    let bounds = g.place_bounds().expect("paged sweep");
    let deadlocks = g.deadlocks().expect("paged sweep");
    let fires: Vec<bool> = net
        .transitions()
        .map(|(tid, _)| g.ever_fires(tid).expect("paged sweep"))
        .collect();
    let ctl: Vec<Vec<bool>> = formulas
        .iter()
        .map(|f| {
            let formula = ctl::Formula::parse(f).expect("formula parses");
            ctl::check(&mut g, net, &formula)
                .expect("names resolve")
                .satisfying
        })
        .collect();

    if budget != usize::MAX {
        let guard = g.max_state_segment_bytes() + g.max_edge_segment_bytes();
        let slack = guard + g.max_state_segment_bytes().max(g.max_edge_segment_bytes());
        assert!(
            g.peak_resident_bytes() <= budget + slack,
            "`{}` (timed={timed}, jobs={jobs}): analysis phase peaked at {} resident \
             bytes, exceeding budget {budget} + guard {guard} + one-segment slack",
            net.name(),
            g.peak_resident_bytes(),
        );
    }

    AnalysisResults {
        states: g.state_count(),
        edges: g.edge_count(),
        bounds,
        deadlocks,
        fires,
        ctl,
    }
}

/// The harness proper: the reference run (unlimited budget, one job)
/// must match every other configuration bit for bit, and the budgeted
/// runs must actually exercise paging when the graph outgrows the
/// budget.
fn assert_battery_invariant(net: &Net, timed: bool, formulas: &[&str], expect_spill: bool) {
    let reference = run_battery(net, timed, 1, usize::MAX, formulas);
    for jobs in [1, 4] {
        for budget in [usize::MAX, TINY_BUDGET] {
            if (jobs, budget) == (1, usize::MAX) {
                continue;
            }
            let got = run_battery(net, timed, jobs, budget, formulas);
            assert_eq!(
                got,
                reference,
                "`{}` (timed={timed}) diverged at jobs={jobs}, budget={budget:#x}",
                net.name()
            );
        }
    }
    if expect_spill {
        // Double-check the budgeted configuration is not vacuous: the
        // build alone must already have spilled.
        let g = (if timed { build_timed } else { build_untimed })(net, &options(1, TINY_BUDGET))
            .expect("bounded build");
        assert!(
            g.spilled_bytes() > 0,
            "`{}` never spilled at 64 KiB — the envelope assertions are vacuous",
            net.name()
        );
    }
}

fn interpreted_analysis_net() -> Net {
    interpreted::build(&interpreted::InterpretedConfig {
        for_analysis: true,
        ..interpreted::InterpretedConfig::default()
    })
    .expect("analysis config builds")
}

#[test]
fn three_stage_analyses_are_budget_invariant() {
    let net = three_stage::build(&ThreeStageConfig::default()).expect("builds");
    let formulas = [
        "AG (Bus_free + Bus_busy = 1)",
        "EF (Full_I_buffers = 6)",
        "AG (Bus_busy = 1 -> AF (Bus_free = 1))",
    ];
    // Untimed: 614 states — fits 64 KiB, so only result-equality is
    // interesting. Timed: 3391 states — the arenas outgrow the budget
    // and the envelope assertion has teeth.
    assert_battery_invariant(&net, false, &formulas, false);
    assert_battery_invariant(&net, true, &formulas, true);
}

#[test]
fn interpreted_analyses_are_budget_invariant() {
    let net = interpreted_analysis_net();
    let formulas = [
        "AG (Bus_free + Bus_busy = 1)",
        "AG EF (ready_to_issue_instruction = 0)",
    ];
    // Untimed: 3383 states over a wide marking — spills at 64 KiB.
    assert_battery_invariant(&net, false, &formulas, true);
    assert_battery_invariant(&net, true, &formulas, false);
}

#[test]
fn wide_toggle_analyses_are_budget_invariant() {
    // 8192 states × 26 places plus a ~190 KiB edge arena: both arena
    // families are far past the budget, so every sweep — including
    // each CTL fixpoint iteration — must stream segments through the
    // 64 KiB window.
    let net = wide_toggle(13);
    let formulas = [
        "AG (u0 + d0 = 1)",
        "EF (d0 = 1 and d12 = 1)",
        "AG EF (d12 = 1)",
    ];
    assert_battery_invariant(&net, false, &formulas, true);
}

/// The packaged one-call sweep, `for_each_state_in_segments`, is the
/// convenience entry point for analyses that need states *and* edges
/// together (external consumers get the pin → scan → maintain
/// discipline without hand-rolling the loop): it must visit every
/// state exactly once in index order, agree with the specialized
/// analyses, and stay inside the same envelope.
#[test]
fn for_each_state_in_segments_agrees_with_the_analyses() {
    let net = wide_toggle(13);
    let mut g = build_untimed(&net, &options(1, TINY_BUDGET)).expect("bounded build");
    g.reset_peak_resident_bytes();

    let mut visited = Vec::new();
    let mut bounds = vec![0u32; net.place_count()];
    let mut deadlocks = Vec::new();
    let mut edge_total = 0usize;
    g.for_each_state_in_segments(|i, state, succs| {
        visited.push(i);
        for (b, &t) in bounds.iter_mut().zip(state.marking.as_slice()) {
            *b = (*b).max(t);
        }
        if succs.is_empty() {
            deadlocks.push(i);
        }
        edge_total += succs.len();
    })
    .expect("sweep completes");

    let guard = g.max_state_segment_bytes() + g.max_edge_segment_bytes();
    let slack = guard + g.max_state_segment_bytes().max(g.max_edge_segment_bytes());
    assert!(
        g.peak_resident_bytes() <= TINY_BUDGET + slack,
        "for_each sweep peaked at {} resident bytes (budget {TINY_BUDGET} + slack {slack})",
        g.peak_resident_bytes()
    );
    assert_eq!(visited, (0..g.state_count()).collect::<Vec<_>>());
    assert_eq!(edge_total, g.edge_count());
    assert_eq!(bounds, g.place_bounds().expect("paged sweep"));
    assert_eq!(deadlocks, g.deadlocks().expect("paged sweep"));
}

/// Deterministic random-net agreement sweep — the always-on analogue
/// of the `paged_analyses_agree_with_unpaged` property in
/// `tests/props.rs` (which needs the `proptest` crate and is gated
/// behind the `proptest-tests` feature the offline build cannot
/// enable): a 1-byte budget forces maximum eviction churn, and every
/// analysis must agree with the fully resident run on dozens of
/// generated nets.
#[test]
fn random_nets_paged_analyses_agree_with_unpaged() {
    use pnut::core::NetBuilder;

    // xorshift64*: tiny, deterministic, good enough to vary structure.
    let mut seed = 0x9e37_79b9_7f4a_7c15u64;
    let mut rng = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    let mut checked = 0;
    for case in 0..40u32 {
        let places = 1 + (rng() % 4) as usize;
        let transitions = 1 + (rng() % 4) as usize;
        let mut b = NetBuilder::new(format!("rand{case}"));
        for p in 0..places {
            b.place(format!("p{p}"), (rng() % 3) as u32);
        }
        for t in 0..transitions {
            let mut tb = b.transition(format!("t{t}"));
            for _ in 0..rng() % 3 {
                tb = tb.input_weighted(
                    format!("p{}", rng() as usize % places),
                    1 + (rng() % 2) as u32,
                );
            }
            for _ in 0..rng() % 3 {
                tb = tb.output_weighted(
                    format!("p{}", rng() as usize % places),
                    1 + (rng() % 2) as u32,
                );
            }
            tb.firing(rng() % 3).enabling(rng() % 3).add();
        }
        let net = b.build().expect("generated nets are well-formed");
        for timed in [false, true] {
            let build = if timed { build_timed } else { build_untimed };
            let capped = ReachOptions {
                max_states: 2000,
                ..ReachOptions::default()
            };
            let Ok(mut resident) = build(&net, &capped) else {
                continue; // unbounded: StateLimit, nothing to compare
            };
            let mut paged = build(
                &net,
                &ReachOptions {
                    mem_budget: 1,
                    ..capped.clone()
                },
            )
            .expect("the budget never changes whether a net fits the cap");
            assert_eq!(paged, resident, "case {case} (timed={timed}) diverged");
            assert_eq!(paged.deadlocks(), resident.deadlocks(), "case {case}");
            assert_eq!(paged.place_bounds(), resident.place_bounds(), "case {case}");
            for (tid, _) in net.transitions() {
                assert_eq!(
                    paged.ever_fires(tid),
                    resident.ever_fires(tid),
                    "case {case} liveness of t{}",
                    tid.index()
                );
            }
            let f = ctl::Formula::parse("EF (p0 = 0)").expect("parses");
            assert_eq!(
                ctl::check(&mut paged, &net, &f).expect("checks"),
                ctl::check(&mut resident, &net, &f).expect("checks"),
                "case {case} CTL diverged"
            );
            checked += 1;
        }
    }
    assert!(
        checked >= 20,
        "too few bounded cases ({checked}) — generator drifted"
    );
}

#[test]
fn markov_steady_state_is_budget_invariant() {
    use pnut::analytic::markov::{steady_state, MarkovOptions};
    // The Markov path builds its own timed graph and sweeps it twice
    // (chain extraction, place averages); `steady_state` additionally
    // self-asserts the analysis-phase envelope in debug builds whenever
    // a finite budget is set, so running it at 64 KiB *is* the
    // envelope test. Here: results must also be bit-identical across
    // budget × jobs.
    for net in [
        three_stage::build(&ThreeStageConfig::default()).expect("builds"),
        interpreted_analysis_net(),
    ] {
        let reference = steady_state(&net, &MarkovOptions::default()).expect("analyzable");
        for jobs in [1, 4] {
            for budget in [usize::MAX, TINY_BUDGET] {
                if (jobs, budget) == (1, usize::MAX) {
                    continue;
                }
                let opts = MarkovOptions {
                    jobs,
                    mem_budget: budget,
                    ..MarkovOptions::default()
                };
                let got = steady_state(&net, &opts).expect("analyzable");
                assert_eq!(
                    got,
                    reference,
                    "`{}` markov diverged at jobs={jobs}, budget={budget:#x}",
                    net.name()
                );
            }
        }
    }
}
