//! The checked-in `models/*.pn` artifacts must stay in sync with the
//! model builders (regenerate with
//! `cargo run -p pnut-bench --bin export_models`).

use std::path::Path;

fn read_model(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("models")
        .join(name);
    std::fs::read_to_string(path).expect("model file exists")
}

#[test]
fn three_stage_model_file_matches_builder() {
    let net = pnut::pipeline::three_stage::build(&pnut::pipeline::ThreeStageConfig::default())
        .expect("builds");
    assert_eq!(read_model("three_stage.pn"), pnut::lang::print(&net));
}

#[test]
fn interpreted_model_file_matches_builder() {
    let net = pnut::pipeline::interpreted::build(
        &pnut::pipeline::interpreted::InterpretedConfig::default(),
    )
    .expect("builds");
    assert_eq!(read_model("interpreted.pn"), pnut::lang::print(&net));
}

#[test]
fn interpreted_analysis_model_file_matches_builder() {
    // The irand-free variant `reach --timed`/`markov` accept.
    let net = pnut::pipeline::interpreted::build(&pnut::pipeline::interpreted::InterpretedConfig {
        for_analysis: true,
        ..pnut::pipeline::interpreted::InterpretedConfig::default()
    })
    .expect("builds");
    assert_eq!(
        read_model("interpreted_analysis.pn"),
        pnut::lang::print(&net)
    );
}

#[test]
fn sequential_model_file_matches_builder() {
    let net = pnut::pipeline::sequential::build(&pnut::pipeline::ThreeStageConfig::default())
        .expect("builds");
    assert_eq!(read_model("sequential.pn"), pnut::lang::print(&net));
}

#[test]
fn model_files_parse_and_simulate() {
    for name in [
        "three_stage.pn",
        "interpreted.pn",
        "interpreted_analysis.pn",
        "sequential.pn",
    ] {
        let net = pnut::lang::parse(&read_model(name)).expect("parses");
        let trace =
            pnut::sim::simulate(&net, 1, pnut::core::Time::from_ticks(500)).expect("simulates");
        assert!(!trace.deltas().is_empty(), "{name} produced no events");
    }
}
