//! Self-hosted closure: the pager's fault/evict/probe protocol —
//! whose implementation `pnut-reach` model-checks operationally with
//! the in-tree interleaving checker (`crates/reach/tests/race_model.rs`)
//! — encoded as a Petri net in `models/pager_protocol.pn` and verified
//! with the repo's *own* reachability and CTL tools. The toolset
//! proves the concurrency discipline of the very pager it runs on.
//!
//! The encoding (two worker tokens, one segment):
//!
//! * `W_idle → W_probe` — a worker probes a marking.
//! * `fast_path_hit` — the slot pointer is non-null (`seg_resident`
//!   read non-destructively): the worker borrows the data (`W_read`).
//! * `fast_path_miss` — the inhibitor arc on `seg_resident` is the
//!   null-pointer test: the worker heads for the fault lock.
//! * `lock_acquire` / `recheck_hit` / `reload_install` — the fault
//!   path: take the lock, re-check the slot (the inhibitor arc on
//!   `reload_install` *is* the re-check), install, release. The borrow
//!   (`W_read`) outlives the critical section, exactly as
//!   `fault()` returns its `&S` after dropping the guard.
//! * `evict` — `maintain()` under `&mut self`: the inhibitor arcs on
//!   every worker place are the borrow checker's guarantee that no
//!   probe is in flight.
//!
//! The broken variants below mirror the seeded mutants of the
//! operational checker's mutation battery, and the same invariants
//! that kill them there fail here.

use pnut::core::{Net, NetBuilder};
use pnut::reach::{ctl, graph};

fn protocol_file() -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("models")
        .join("pager_protocol.pn");
    std::fs::read_to_string(path).expect("model file exists")
}

fn untimed(net: &Net) -> graph::ReachabilityGraph {
    graph::build_untimed(net, &graph::ReachOptions::default()).expect("bounded")
}

fn holds(g: &mut graph::ReachabilityGraph, net: &Net, formula: &str) -> bool {
    let f = ctl::Formula::parse(formula).expect("parses");
    ctl::check(g, net, &f).expect("checks").holds_initially
}

#[test]
fn pager_protocol_net_verifies() {
    let net = pnut::lang::parse(&protocol_file()).expect("parses");
    let mut g = untimed(&net);
    assert!(
        g.deadlocks().expect("paged sweep").is_empty(),
        "the protocol must never deadlock: {:?}",
        g.deadlocks()
    );
    for (formula, expect) in [
        // The fault lock is a real lock: conserved and held at most once.
        ("AG (lock_free + lock_held = 1)", true),
        ("AG (lock_held <= 1)", true),
        // Mutual exclusion of the fault critical section.
        ("AG (W_crit <= 1)", true),
        // Exactly-once install: the re-check (inhibitor arc) makes a
        // double residency — the ledger leak — unreachable.
        ("AG (seg_resident <= 1)", true),
        // No dangling dereference: a live borrow implies live memory.
        // This is the invariant the FREE_IN_FAULT mutant breaks.
        ("AG (W_read >= 1 -> seg_resident = 1)", true),
        // Worker conservation.
        ("AG (W_idle + W_probe + W_wait + W_crit + W_read = 2)", true),
        // The concurrency is real: both workers can read at once...
        ("EF (W_read = 2)", true),
        // ...a reader can overlap the other worker's fault...
        ("EF (W_read + W_crit = 2)", true),
        // ...and the segment can always eventually be evicted again.
        ("AG EF (seg_resident = 0)", true),
        // Sanity falsehoods.
        ("AG (seg_resident = 0)", false),
        ("EF (lock_held = 2)", false),
    ] {
        assert_eq!(
            holds(&mut g, &net, formula),
            expect,
            "CTL formula `{formula}` expected {expect}"
        );
    }
}

/// Rebuild the checked-in net programmatically, with two seams where
/// the broken variants diverge. Keeping one builder for all three nets
/// guarantees the variants differ from the verified model *only* in
/// the seeded bug.
fn build_protocol(drop_recheck: bool, free_in_fault: bool) -> Net {
    let mut b = NetBuilder::new("pager_protocol");
    b.place("W_idle", 2);
    b.place("W_probe", 0);
    b.place("W_wait", 0);
    b.place("W_crit", 0);
    b.place("W_read", 0);
    b.place("lock_free", 1);
    b.place("lock_held", 0);
    b.place("seg_resident", 0);
    b.transition("probe_start")
        .input("W_idle")
        .output("W_probe")
        .add();
    b.transition("fast_path_hit")
        .input("W_probe")
        .input("seg_resident")
        .output("W_read")
        .output("seg_resident")
        .add();
    b.transition("fast_path_miss")
        .input("W_probe")
        .output("W_wait")
        .inhibitor("seg_resident")
        .add();
    b.transition("lock_acquire")
        .input("W_wait")
        .input("lock_free")
        .output("W_crit")
        .output("lock_held")
        .add();
    if !drop_recheck {
        // DROP_FAULT_RECHECK deletes the resident short-circuit…
        b.transition("recheck_hit")
            .input("W_crit")
            .input("lock_held")
            .input("seg_resident")
            .output("W_read")
            .output("lock_free")
            .output("seg_resident")
            .add();
    }
    {
        let t = b
            .transition("reload_install")
            .input("W_crit")
            .input("lock_held")
            .output("W_read")
            .output("lock_free")
            .output("seg_resident");
        // …and the inhibitor arc that *is* the re-check, so the fault
        // path re-installs over a live installation.
        if drop_recheck {
            t.add();
        } else {
            t.inhibitor("seg_resident").add();
        }
    }
    b.transition("read_done")
        .input("W_read")
        .output("W_idle")
        .add();
    b.transition("evict")
        .input("seg_resident")
        .inhibitor("W_probe")
        .inhibitor("W_wait")
        .inhibitor("W_crit")
        .inhibitor("W_read")
        .add();
    if free_in_fault {
        // FREE_IN_FAULT: the faulter frees a resident segment under
        // `&self`, without the evict transition's inhibitor arcs.
        b.transition("free_during_fault")
            .input("W_crit")
            .input("lock_held")
            .input("seg_resident")
            .output("W_crit")
            .output("lock_held")
            .add();
    }
    b.build().expect("builds")
}

#[test]
fn checked_in_model_matches_builder() {
    assert_eq!(
        protocol_file(),
        pnut::lang::print(&build_protocol(false, false))
    );
}

#[test]
fn drop_recheck_variant_leaks_a_double_install() {
    let net = build_protocol(true, false);
    let mut g = untimed(&net);
    // The exactly-once invariant the verified model proves now fails:
    // two faulters can both install, doubling residency (the leak the
    // operational checker reports as `FailureKind::Leak`).
    assert!(!holds(&mut g, &net, "AG (seg_resident <= 1)"));
    assert!(holds(&mut g, &net, "EF (seg_resident = 2)"));
    // The lock itself is still sound — the bug is past the lock.
    assert!(holds(&mut g, &net, "AG (lock_held <= 1)"));
}

#[test]
fn free_in_fault_variant_dangles_a_borrow() {
    let net = build_protocol(false, true);
    let mut g = untimed(&net);
    // A reader's borrow can outlive the memory: the no-dangling-deref
    // invariant fails (the use-after-free the operational checker
    // reports as `Race`/`UseAfterFree`).
    assert!(!holds(&mut g, &net, "AG (W_read >= 1 -> seg_resident = 1)"));
    assert!(holds(&mut g, &net, "EF (W_read >= 1 and seg_resident = 0)"));
    // Mutual exclusion still holds — the free races readers, not the lock.
    assert!(holds(&mut g, &net, "AG (W_crit <= 1)"));
}
