//! End-to-end contracts for the `pnut_obs` recorder across the real
//! engines (see `docs/OBSERVABILITY.md`):
//!
//! * **Off means off**: with no recorder installed, a full build leaves
//!   every counter at zero and records no spans.
//! * **Determinism at jobs=1**: two identical runs produce *identical*
//!   metric snapshots ([`pnut::obs::Snapshot::metrics_eq`] — spans are
//!   wall-clock and excluded).
//! * **Conservation at jobs>1**: schedule-dependent counters still obey
//!   the catalogue's invariants (probes ≥ hits, misses == states,
//!   faults == reloads on a clean run, level count matches jobs=1).
//!
//! The recorder is process-global, so this lives in its own test
//! binary and every test serializes on one mutex.

use std::sync::{Mutex, MutexGuard};

use pnut::obs;
use pnut::reach::graph::{build_untimed, ReachOptions};
use pnut_bench::workloads::wide_toggle;

static RECORDER: Mutex<()> = Mutex::new(());

struct Installed<'a>(#[allow(dead_code)] MutexGuard<'a, ()>);

fn serial<'a>() -> Installed<'a> {
    Installed(RECORDER.lock().unwrap_or_else(|e| e.into_inner()))
}

impl Drop for Installed<'_> {
    fn drop(&mut self) {
        obs::uninstall();
    }
}

fn options(jobs: usize, mem_budget: usize) -> ReachOptions {
    ReachOptions {
        jobs,
        mem_budget,
        ..ReachOptions::default()
    }
}

#[test]
fn no_recorder_means_no_telemetry() {
    let _g = serial();
    obs::install(); // reset any residue from a poisoned prior test...
    obs::uninstall(); // ...then run with the recorder OFF.
    let net = wide_toggle(10);
    let g = build_untimed(&net, &options(1, 64 * 1024)).expect("builds");
    assert_eq!(g.state_count(), 1 << 10);
    let snap = obs::snapshot();
    assert!(
        snap.counters.iter().all(|&(_, v)| v == 0),
        "disabled counters must stay zero: {:?}",
        snap.counters
    );
    assert!(snap.gauges.iter().all(|&(_, v)| v == 0));
    assert!(snap.hists.iter().all(|h| h.count == 0));
    assert!(snap.spans.is_empty(), "no spans without a recorder");
}

#[test]
fn sequential_runs_snapshot_identically() {
    let _g = serial();
    let net = wide_toggle(10);
    // 16 KiB is far below the ~forty-byte-per-state arena of 1024
    // states, so the build must evict sealed segments and fault them
    // back in for duplicate probes.
    let snap = |()| {
        obs::install();
        let g = build_untimed(&net, &options(1, 16 * 1024)).expect("builds");
        assert_eq!(g.state_count(), 1 << 10);
        drop(g);
        obs::uninstall();
        obs::snapshot()
    };
    let a = snap(());
    let b = snap(());
    assert!(
        a.metrics_eq(&b),
        "jobs=1 runs must be metric-identical:\n{:?}\nvs\n{:?}",
        a.counters,
        b.counters
    );
    // Sanity: the runs actually recorded something.
    assert_eq!(a.counter("store.misses"), 1 << 10, "misses == states");
    assert!(a.counter("pager.faults") > 0, "a 64 KiB budget must page");
    assert!(!a.spans.is_empty(), "the build span was recorded");
    assert!(
        a.spans.iter().any(|s| s.path == "build"),
        "span paths: {:?}",
        a.spans.iter().map(|s| &s.path).collect::<Vec<_>>()
    );
}

#[test]
fn parallel_counters_obey_the_catalogue_invariants() {
    let _g = serial();
    let net = wide_toggle(10);

    obs::install();
    let g = build_untimed(&net, &options(1, 64 * 1024)).expect("builds");
    drop(g);
    obs::uninstall();
    let seq = obs::snapshot();

    obs::install();
    let g = build_untimed(&net, &options(4, 64 * 1024)).expect("builds");
    assert_eq!(g.state_count(), 1 << 10);
    drop(g);
    obs::uninstall();
    let par = obs::snapshot();

    for snap in [&seq, &par] {
        assert!(
            snap.counter("store.probes") >= snap.counter("store.hits"),
            "every hit is a probe"
        );
        assert_eq!(
            snap.counter("store.misses"),
            1 << 10,
            "misses == distinct states at any job count"
        );
        assert_eq!(
            snap.counter("pager.faults"),
            snap.counter("pager.reloads"),
            "clean runs reload every fault"
        );
        assert_eq!(snap.counter("pager.fault_failures"), 0);
        assert!(
            snap.gauge("pager.peak_resident_bytes") >= snap.gauge("pager.resident_bytes"),
            "peak ratchets"
        );
    }
    // Level barriers are bit-identical between sequential and parallel
    // builds, so the level count (and peak frontier) must agree even
    // though fault/probe schedules differ.
    assert_eq!(seq.counter("reach.levels"), par.counter("reach.levels"));
    assert_eq!(
        seq.gauge("reach.peak_frontier"),
        par.gauge("reach.peak_frontier")
    );
    // Only parallel builds splice pending shards at barriers.
    let splices = par
        .hists
        .iter()
        .find(|h| h.name == "store.splice_states")
        .expect("registered");
    assert!(splices.count > 0, "parallel build splices shards");
}
