//! End-to-end contracts for the `pnut_obs` recorder across the real
//! engines (see `docs/OBSERVABILITY.md`):
//!
//! * **Off means off**: with no recorder installed, a full build leaves
//!   every counter at zero and records no spans.
//! * **Determinism at jobs=1**: two identical runs produce *identical*
//!   metric snapshots ([`pnut::obs::Snapshot::metrics_eq`] — spans are
//!   wall-clock and excluded).
//! * **Conservation at jobs>1**: schedule-dependent counters still obey
//!   the catalogue's invariants (probes ≥ hits, misses == states,
//!   faults == reloads on a clean run, level count matches jobs=1).
//!
//! The recorder is process-global, so this lives in its own test
//! binary and every test serializes on one mutex.

use std::sync::{Mutex, MutexGuard};

use pnut::obs;
use pnut::reach::graph::{build_untimed, ReachOptions};
use pnut_bench::workloads::wide_toggle;

static RECORDER: Mutex<()> = Mutex::new(());

struct Installed<'a>(#[allow(dead_code)] MutexGuard<'a, ()>);

fn serial<'a>() -> Installed<'a> {
    Installed(RECORDER.lock().unwrap_or_else(|e| e.into_inner()))
}

impl Drop for Installed<'_> {
    fn drop(&mut self) {
        obs::uninstall();
    }
}

fn options(jobs: usize, mem_budget: usize) -> ReachOptions {
    ReachOptions {
        jobs,
        mem_budget,
        ..ReachOptions::default()
    }
}

#[test]
fn no_recorder_means_no_telemetry() {
    let _g = serial();
    obs::install(); // reset any residue from a poisoned prior test...
    obs::uninstall(); // ...then run with the recorder OFF.
    let net = wide_toggle(10);
    let g = build_untimed(&net, &options(1, 64 * 1024)).expect("builds");
    assert_eq!(g.state_count(), 1 << 10);
    let snap = obs::snapshot();
    assert!(
        snap.counters.iter().all(|&(_, v)| v == 0),
        "disabled counters must stay zero: {:?}",
        snap.counters
    );
    assert!(snap.gauges.iter().all(|&(_, v)| v == 0));
    assert!(snap.hists.iter().all(|h| h.count == 0));
    assert!(snap.spans.is_empty(), "no spans without a recorder");
}

#[test]
fn sequential_runs_snapshot_identically() {
    let _g = serial();
    let net = wide_toggle(10);
    // 16 KiB is far below the ~forty-byte-per-state arena of 1024
    // states, so the build must evict sealed segments and fault them
    // back in for duplicate probes.
    let snap = |()| {
        obs::install();
        let g = build_untimed(&net, &options(1, 16 * 1024)).expect("builds");
        assert_eq!(g.state_count(), 1 << 10);
        drop(g);
        obs::uninstall();
        obs::snapshot()
    };
    let a = snap(());
    let b = snap(());
    assert!(
        a.metrics_eq(&b),
        "jobs=1 runs must be metric-identical:\n{:?}\nvs\n{:?}",
        a.counters,
        b.counters
    );
    // Sanity: the runs actually recorded something.
    assert_eq!(a.counter("store.misses"), 1 << 10, "misses == states");
    assert!(a.counter("pager.faults") > 0, "a 64 KiB budget must page");
    assert!(!a.spans.is_empty(), "the build span was recorded");
    assert!(
        a.spans.iter().any(|s| s.path == "build"),
        "span paths: {:?}",
        a.spans.iter().map(|s| &s.path).collect::<Vec<_>>()
    );
}

#[test]
fn parallel_counters_obey_the_catalogue_invariants() {
    let _g = serial();
    let net = wide_toggle(10);

    obs::install();
    let g = build_untimed(&net, &options(1, 64 * 1024)).expect("builds");
    drop(g);
    obs::uninstall();
    let seq = obs::snapshot();

    obs::install();
    let g = build_untimed(&net, &options(4, 64 * 1024)).expect("builds");
    assert_eq!(g.state_count(), 1 << 10);
    drop(g);
    obs::uninstall();
    let par = obs::snapshot();

    for snap in [&seq, &par] {
        assert!(
            snap.counter("store.probes") >= snap.counter("store.hits"),
            "every hit is a probe"
        );
        assert_eq!(
            snap.counter("store.misses"),
            1 << 10,
            "misses == distinct states at any job count"
        );
        assert_eq!(
            snap.counter("pager.faults"),
            snap.counter("pager.reloads"),
            "clean runs reload every fault"
        );
        assert_eq!(snap.counter("pager.fault_failures"), 0);
        assert!(
            snap.gauge("pager.peak_resident_bytes") >= snap.gauge("pager.resident_bytes"),
            "peak ratchets"
        );
    }
    // Level barriers are bit-identical between sequential and parallel
    // builds, so the level count (and peak frontier) must agree even
    // though fault/probe schedules differ.
    assert_eq!(seq.counter("reach.levels"), par.counter("reach.levels"));
    assert_eq!(
        seq.gauge("reach.peak_frontier"),
        par.gauge("reach.peak_frontier")
    );
    // Only parallel builds splice pending shards at barriers.
    let splices = par
        .hists
        .iter()
        .find(|h| h.name == "store.splice_states")
        .expect("registered");
    assert!(splices.count > 0, "parallel build splices shards");
}

/// Satellite audit of the fault counters: every reload error path —
/// injected I/O error, short read, bad version/kind header — must tick
/// `pager.fault_failures` exactly once before propagating, the silent
/// data corruption must NOT (it reloads "successfully"; only a
/// semantic check can catch it), and `faults == fault_failures +
/// reloads` holds after every step.
#[test]
fn fault_failures_tick_on_every_reload_error_path() {
    use pnut::core::expr::Env;
    use pnut::reach::pager::fail;
    use pnut::reach::{PagerConfig, StateStore};

    let _g = serial();

    // Hooks are process-global; disarm them even if an assert fires.
    struct Disarm;
    impl Drop for Disarm {
        fn drop(&mut self) {
            fail::reset_spill_failures();
        }
    }
    let _d = Disarm;

    // A store whose sealed segments are spilled (same shape as the
    // reach crate's injection suite: grain 64, 140 two-place states).
    let cfg = PagerConfig {
        mem_budget: 512,
        spill_dir: None,
    };
    let mut s = StateStore::with_config(2, &cfg);
    let env = s.intern_env(&Env::new()).expect("env");
    for i in 0..140u32 {
        s.intern(&[i, 0], env, &[], &[]).expect("intern");
    }
    s.maintain().expect("seal + evict");
    assert!(s.spilled_bytes() > 0, "setup must actually spill");
    obs::install();

    let seq = || {
        let snap = obs::snapshot();
        (
            snap.counter("pager.faults"),
            snap.counter("pager.fault_failures"),
            snap.counter("pager.reloads"),
            snap.counter("pager.spill_read_bytes"),
        )
    };

    // Baseline: one clean fault to learn the image length L.
    assert_eq!(s.try_marking_slice(0).expect("clean fault"), &[0, 0]);
    let (f, ff, r, len) = seq();
    assert_eq!((f, ff, r), (1, 0, 1), "clean fault: one reload");
    assert!(len > 0, "the reload read the image");
    s.maintain().expect("evict the faulted segment again");

    // 1. I/O error: the read itself fails — no bytes are accounted.
    fail::fail_nth_spill_read(1);
    s.try_marking_slice(0).expect_err("injected I/O error");
    assert_eq!(seq(), (2, 1, 1, len), "I/O error path");

    // 2. Short read: the bytes arrive (and are counted — half of
    // them), but the format's bounds checks reject the image.
    fail::truncate_nth_spill_read(1);
    s.try_marking_slice(0)
        .expect_err("truncated image rejected");
    assert_eq!(seq(), (3, 2, 1, len + len / 2), "short-read path");

    // 3. Bad version/kind header: a full-length read whose header word
    // is garbage fails validation before anything is materialized.
    fail::bad_header_nth_spill_read(1);
    s.try_marking_slice(0).expect_err("garbled header rejected");
    assert_eq!(seq(), (4, 3, 1, 2 * len + len / 2), "bad-header path");

    // 4. Silent marking corruption: structurally valid, so the reload
    // *succeeds* — fault_failures must NOT tick; the flipped token
    // count is visible in the reloaded data (that is what the
    // `--check-invariants` semantic sweep exists to catch).
    fail::corrupt_nth_spill_read(1);
    assert_eq!(
        s.try_marking_slice(0).expect("silent corruption reloads"),
        &[1, 0],
        "the low bit of the first marking byte flipped"
    );
    assert_eq!(
        seq(),
        (5, 3, 2, 3 * len + len / 2),
        "silent-corruption path"
    );
    s.maintain().expect("evict the corrupted reload");

    // 5. The corruption mangled only the in-memory reload, never the
    // spill file: a clean refault restores the true data.
    assert_eq!(s.try_marking_slice(0).expect("clean refault"), &[0, 0]);
    assert_eq!(seq(), (6, 3, 3, 4 * len + len / 2), "clean refault");
}
