//! Static gate for the fallible paged read path: the post-build
//! analysis code in `graph.rs`, `ctl.rs`, and `markov.rs` must never
//! reintroduce a panicking accessor — a spill fault degrades the one
//! analysis that hit it, never the process (see docs/CONCURRENCY.md).
//!
//! The gate reads the sources (tier-1, no extra tooling): `panic!` is
//! banned outright outside `#[cfg(test)]`, and every `.expect(` /
//! `.unwrap(` must carry a message on the explicit allowlist below —
//! all of which sit on the *build* path (exploration workers, compiled
//! delay slots), where an internal-invariant panic is still the right
//! call. Adding a new expect to these files means consciously adding
//! its message here, with a reason it cannot be on the paged read
//! path. The deleted `Self::paged` helper must stay deleted.

use std::path::Path;

/// Everything before the test module — the gate covers shipped code
/// only.
fn non_test_source(path: &str) -> String {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(root.join(path)).unwrap_or_else(|e| {
        panic!("gate must be able to read {path}: {e}");
    });
    match src.find("#[cfg(test)]") {
        Some(idx) => src[..idx].to_owned(),
        None => src,
    }
}

/// Build-path invariants allowed to stay panicking, by expect message.
/// Every entry must be justified: none of these can execute during a
/// post-build segment sweep.
const ALLOWED_EXPECTS: &[(&str, &str)] = &[
    // Compiled delay slots: filled at net-compile time, read during
    // exploration — the paged analyses never evaluate delays.
    ("non-constant slot holds an expression delay", "build"),
    ("has_action", "build"),
    // Exploration worker pool: shard locks and joins exist only while
    // the graph is under construction (`&mut` exploration).
    ("env shard lock", "build"),
    ("state shard lock", "build"),
    ("worker thread panicked", "build"),
    ("shard lock", "build"),
    ("worker errors handled above", "build"),
    // Frontier bookkeeping during construction.
    ("non-empty", "build"),
    // Markov chain extraction guards a state it just classified as
    // non-deadlock in the same loop iteration — no I/O in between.
    ("non-deadlock state has an edge", "extraction invariant"),
];

const GATED_FILES: &[&str] = &[
    "crates/reach/src/graph.rs",
    "crates/reach/src/ctl.rs",
    "crates/analytic/src/markov.rs",
];

#[test]
fn paged_read_path_has_no_panics() {
    for path in GATED_FILES {
        let src = non_test_source(path);
        for (lineno, line) in src.lines().enumerate() {
            let lineno = lineno + 1;
            let code = line.trim_start();
            if code.starts_with("//") {
                continue;
            }
            assert!(
                !code.contains("panic!"),
                "{path}:{lineno}: `panic!` on the paged read/analysis path:\n  {code}\n\
                 return `Err(ReachError::Spill(..))` (or the analysis' error type) instead"
            );
            for needle in [".expect(", ".unwrap("] {
                let mut rest = code;
                while let Some(pos) = rest.find(needle) {
                    // The CTL parser's own `self.expect(&Tok…)` helper
                    // is not `Option::expect`.
                    let is_parser_helper = needle == ".expect(" && rest[..pos].ends_with("self");
                    let allowed = ALLOWED_EXPECTS
                        .iter()
                        .any(|(msg, _)| code.contains(&format!("\"{msg}\"")));
                    assert!(
                        is_parser_helper || allowed,
                        "{path}:{lineno}: unlisted `{needle}` in gated file:\n  {code}\n\
                         if this is genuinely unreachable from a segment sweep, add its \
                         message to ALLOWED_EXPECTS with a justification; otherwise \
                         thread a Result"
                    );
                    rest = &rest[pos + needle.len()..];
                }
            }
        }
    }
}

/// The panicking fault helper is gone for good: `try_pin_segment` and
/// the fallible accessors are the only way to touch paged rows.
#[test]
fn the_infallible_paged_helper_stays_deleted() {
    for path in ["crates/reach/src/graph.rs", "crates/reach/src/store.rs"] {
        let src = non_test_source(path);
        assert!(
            !src.contains("fn paged"),
            "{path}: the `paged` panic helper was deliberately deleted; \
             do not resurrect it — use the Result-returning accessors"
        );
    }
}

/// Multi-line expect calls (message on the next line) would dodge the
/// line-based scan above; hold the whole gated surface to a fixed
/// count so any new expect/unwrap shows up in review.
#[test]
fn expect_count_is_pinned() {
    let mut total = 0usize;
    for path in GATED_FILES {
        let src = non_test_source(path);
        total += src.matches(".expect(").count() + src.matches(".unwrap(").count();
    }
    // 11 build-path expects in graph.rs, 3 parser `self.expect` calls
    // in ctl.rs, 1 extraction invariant + 1 doc example in markov.rs.
    assert!(
        total <= 16,
        "gated files gained a new `.expect(`/`.unwrap(` (now {total}); \
         the paged read path must stay panic-free — thread a Result or \
         justify it in tests/no_panic_gate.rs"
    );
}
