//! Cross-crate semantic checks: the §1 time-semantics claims, the trace
//! pipeline composition, and tool agreement on the same run.

use pnut::core::{NetBuilder, Time};
use pnut::sim::Simulator;
use pnut::stat::StatCollector;
use pnut::trace::{Filter, FilterSpec, Recorder, Tee};

/// "Firing times can be easily simulated using enabling times" (§1):
/// a transition with firing time d behaves, for place occupancy of its
/// surroundings, like hold-place + enabling-d + atomic-move.
#[test]
fn firing_time_simulated_by_enabling_time() {
    // Version A: firing time 4 on `work`.
    let mut a = NetBuilder::new("firing");
    a.place("src", 1);
    a.place("dst", 0);
    a.transition("work")
        .input("src")
        .output("dst")
        .firing(4)
        .add();
    a.transition("back")
        .input("dst")
        .output("src")
        .firing(1)
        .add();
    let net_a = a.build().expect("builds");

    // Version B: explicit holding place + enabling time 4 + atomic end.
    let mut b = NetBuilder::new("enabling");
    b.place("src", 1);
    b.place("hold", 0);
    b.place("dst", 0);
    b.transition("work_start").input("src").output("hold").add();
    b.transition("work_end")
        .input("hold")
        .output("dst")
        .enabling(4)
        .add();
    b.transition("back")
        .input("dst")
        .output("src")
        .firing(1)
        .add();
    let net_b = b.build().expect("builds");

    let horizon = Time::from_ticks(1000);
    let ra = pnut::stat::analyze(&pnut::sim::simulate(&net_a, 0, horizon).expect("runs"));
    let rb = pnut::stat::analyze(&pnut::sim::simulate(&net_b, 0, horizon).expect("runs"));

    // dst occupancy identical: filled at 4, 9, 14, ... for 1 tick each.
    let da = ra.place("dst").expect("exists").avg_tokens;
    let db = rb.place("dst").expect("exists").avg_tokens;
    assert!((da - db).abs() < 1e-9, "dst occupancy: {da} vs {db}");
    // Completion counts identical.
    assert_eq!(
        ra.transition("work").expect("exists").ends,
        rb.transition("work_end").expect("exists").ends
    );
}

/// The §1 equivalence again, but cross-validated on the *timed
/// reachability graphs* rather than on simulation statistics: a
/// firing-time transition and its hand-desugared hold-place +
/// enabling-time + atomic-move encoding must produce isomorphic timed
/// graphs once the desugared atomic move is contracted (the one extra
/// instantaneous internal step the encoding introduces). This pins the
/// enabling-clock semantics of `build_timed` against the independent
/// firing-time semantics it has always had.
#[test]
fn enabling_clock_graph_matches_hold_place_desugaring() {
    use pnut::reach::graph::{build_timed, EdgeLabel, ReachOptions};
    use std::collections::BTreeMap;

    // Version A: firing time 4 on `work`, delayed return via `back`.
    let mut a = NetBuilder::new("firing");
    a.place("src", 1);
    a.place("dst", 0);
    a.transition("work")
        .input("src")
        .output("dst")
        .firing(4)
        .add();
    a.transition("back")
        .input("dst")
        .output("src")
        .firing(1)
        .add();
    let net_a = a.build().expect("builds");

    // Version B: the desugaring — an instantaneous start moves the
    // token to a hold place; an enabling-4 atomic move completes.
    let mut b = NetBuilder::new("enabling");
    b.place("src", 1);
    b.place("hold", 0);
    b.place("dst", 0);
    b.transition("work_start").input("src").output("hold").add();
    b.transition("work_end")
        .input("hold")
        .output("dst")
        .enabling(4)
        .add();
    b.transition("back")
        .input("dst")
        .output("src")
        .firing(1)
        .add();
    let net_b = b.build().expect("builds");

    let options = ReachOptions::default();
    let ga = build_timed(&net_a, &options).expect("A builds");
    let gb = build_timed(&net_b, &options).expect("B builds via enabling clocks");
    // B spends one extra state per round inside the hold hand-off.
    assert_eq!(ga.state_count(), 4);
    assert_eq!(gb.state_count(), 5);

    // Contract B's `work_end` edges (the internal atomic move) with a
    // union-find, then compare the quotient to A edge-by-edge.
    let we = net_b.transition_id("work_end").expect("exists");
    let mut rep: Vec<usize> = (0..gb.state_count()).collect();
    fn find(rep: &mut [usize], mut i: usize) -> usize {
        while rep[i] != i {
            rep[i] = rep[rep[i]];
            i = rep[i];
        }
        i
    }
    for s in 0..gb.state_count() {
        for &(l, t) in gb.successors(s).expect("resident graph") {
            if l == EdgeLabel::Fire(we) {
                let (rs, rt) = (find(&mut rep, s), find(&mut rep, t as usize));
                rep[rs] = rt;
            }
        }
    }
    let label = |name: &str, l: EdgeLabel, net: &pnut::core::Net| -> String {
        match l {
            EdgeLabel::Fire(t) => {
                let n = net.transition(t).name();
                (if n == name { "work" } else { n }).to_string()
            }
            EdgeLabel::Advance(d) => format!("+{d}"),
        }
    };
    let mut quotient: BTreeMap<usize, BTreeMap<String, usize>> = BTreeMap::new();
    for s in 0..gb.state_count() {
        for &(l, t) in gb.successors(s).expect("resident graph") {
            if l == EdgeLabel::Fire(we) {
                continue;
            }
            let (qs, qt) = (find(&mut rep, s), find(&mut rep, t as usize));
            let prev = quotient
                .entry(qs)
                .or_default()
                .insert(label("work_start", l, &net_b), qt);
            assert!(prev.is_none_or(|p| p == qt), "nondeterministic quotient");
        }
    }

    // Lock-step walk: the quotient must be isomorphic to A under the
    // work_start ↦ work renaming, advance labels included.
    let initial_b = find(&mut rep, 0);
    let mut matched: BTreeMap<usize, usize> = BTreeMap::new(); // A state -> quotient rep
    let mut queue = vec![(0usize, initial_b)];
    while let Some((sa, qb)) = queue.pop() {
        match matched.get(&sa) {
            Some(&seen) => {
                assert_eq!(seen, qb, "A state {sa} maps to two quotient states");
                continue;
            }
            None => {
                matched.insert(sa, qb);
            }
        }
        let edges_a: BTreeMap<String, usize> = ga
            .successors(sa)
            .expect("resident graph")
            .iter()
            .map(|&(l, t)| (label("work", l, &net_a), t as usize))
            .collect();
        let edges_b = quotient.get(&qb).cloned().unwrap_or_default();
        assert_eq!(
            edges_a.keys().collect::<Vec<_>>(),
            edges_b.keys().collect::<Vec<_>>(),
            "edge labels differ at A state {sa} / quotient state {qb}"
        );
        for (l, ta) in edges_a {
            queue.push((ta, edges_b[&l]));
        }
    }
    assert_eq!(matched.len(), ga.state_count(), "walk covered all of A");
}

/// An expression-valued enabling time that resolves to a constant must
/// be *indistinguishable* from writing the constant directly — the
/// constant-delay desugaring that pins the arm-time resolution
/// semantics: `build_timed` evaluates `Delay::Expr` enabling times
/// against the state's environment at the moment the clock arms
/// (mirroring the simulator's `refresh_enabling`), so a never-written
/// variable behaves exactly like its initial value.
#[test]
fn expression_enabling_time_matches_constant_desugaring() {
    use pnut::reach::graph::{build_timed, ReachOptions};

    let build = |expr: bool| {
        let mut b = NetBuilder::new(if expr { "expr" } else { "const" });
        b.place("src", 1);
        b.place("dst", 0);
        if expr {
            b.var("d", 4);
        }
        let t = b.transition("work").input("src").output("dst");
        if expr {
            t.enabling_expr(pnut::core::Expr::parse("d").unwrap()).add();
        } else {
            t.enabling(4).add();
        }
        b.transition("back")
            .input("dst")
            .output("src")
            .firing(1)
            .add();
        b.build().expect("builds")
    };

    let ge = build_timed(&build(true), &ReachOptions::default()).expect("expr builds");
    let gc = build_timed(&build(false), &ReachOptions::default()).expect("const builds");
    // The environments differ (the expr net carries `d`), so compare
    // everything *but* them: state-by-state markings, in-flight and
    // enabling multisets, and edge-by-edge successors. BFS order is
    // driven by structure alone, so the graphs must line up index by
    // index.
    assert_eq!(ge.state_count(), gc.state_count(), "state counts differ");
    assert_eq!(ge.edge_count(), gc.edge_count(), "edge counts differ");
    for i in 0..ge.state_count() {
        let (a, b) = (
            ge.state(i).expect("resident graph"),
            gc.state(i).expect("resident graph"),
        );
        assert_eq!(
            a.marking.as_slice(),
            b.marking.as_slice(),
            "marking of state {i}"
        );
        assert_eq!(a.in_flight, b.in_flight, "in-flight of state {i}");
        assert_eq!(
            a.enabling, b.enabling,
            "enabling clocks of state {i} (arm-time resolution must \
             yield the constant's countdown)"
        );
        assert_eq!(
            ge.successors(i).expect("resident graph"),
            gc.successors(i).expect("resident graph"),
            "edges of state {i}"
        );
    }
    // The clock really arms at 4 somewhere (the test is not vacuous).
    assert!(
        (0..ge.state_count()).any(|i| ge
            .state(i)
            .expect("resident graph")
            .enabling
            .contains(&(build(true).transition_id("work").unwrap(), 4))),
        "the expression delay must arm a 4-tick clock"
    );
}

/// The converse direction is impossible (§1): an enabling time reacts to
/// *disabling* by resetting, which a firing time cannot, because firing
/// removes the tokens. Demonstrate the observable difference.
#[test]
fn enabling_time_not_expressible_as_firing_time() {
    // A competitor steals the token after 2 ticks. With enabling time 4,
    // `slow` never completes; with firing time 4 it grabs the token at
    // t=0 and always completes.
    let build = |use_enabling: bool| {
        let mut b = NetBuilder::new("steal");
        b.place("tok", 1);
        b.place("slow_done", 0);
        b.place("gone", 0);
        let t = b.transition("slow").input("tok").output("slow_done");
        if use_enabling {
            t.enabling(4).add();
        } else {
            t.firing(4).add();
        }
        b.transition("thief")
            .input("tok")
            .output("gone")
            .enabling(2)
            .add();
        b.build().expect("builds")
    };

    let horizon = Time::from_ticks(100);
    let with_enabling =
        pnut::stat::analyze(&pnut::sim::simulate(&build(true), 0, horizon).expect("runs"));
    let with_firing =
        pnut::stat::analyze(&pnut::sim::simulate(&build(false), 0, horizon).expect("runs"));

    assert_eq!(
        with_enabling.transition("slow").expect("exists").ends,
        0,
        "enabling version loses the race and resets"
    );
    assert_eq!(
        with_firing.transition("slow").expect("exists").ends,
        1,
        "firing version commits at t=0 (both start-eligible, but firing \
         wins instantly while enabling must wait)"
    );
}

/// Filtered statistics agree with unfiltered statistics on the places
/// kept — filtering loses detail, never accuracy (§4.1).
#[test]
fn filter_preserves_kept_statistics() {
    let net = pnut::pipeline::three_stage::build(&pnut::pipeline::ThreeStageConfig::default())
        .expect("builds");
    let mut sim = Simulator::new(&net, 9).expect("constructs");

    let spec = FilterSpec::new()
        .keep_place("Bus_busy")
        .keep_transition("Issue");
    let mut sinks = Tee::new(
        StatCollector::new(),
        Filter::new(spec, Tee::new(StatCollector::new(), Recorder::new())),
    );
    sim.run(Time::from_ticks(5_000), &mut sinks).expect("runs");
    let (full, filtered_stack) = sinks.into_parts();
    let (filtered, recorder) = filtered_stack.into_inner().into_parts();

    let full = full.into_report().expect("complete");
    let filtered = filtered.into_report().expect("complete");

    let a = full.place("Bus_busy").expect("kept");
    let b = filtered.place("Bus_busy").expect("kept");
    assert!((a.avg_tokens - b.avg_tokens).abs() < 1e-12);
    assert_eq!(a.max_tokens, b.max_tokens);

    let ia = full.transition("Issue").expect("kept");
    let ib = filtered.transition("Issue").expect("kept");
    assert_eq!(ia.starts, ib.starts);
    assert!((ia.throughput - ib.throughput).abs() < 1e-12);

    // And the filtered trace really is significantly smaller.
    let small = recorder.into_trace().expect("complete");
    assert!(
        small.deltas().len() < 6_000,
        "filtered trace is a fraction of the full one ({} deltas kept)",
        small.deltas().len()
    );
}

/// The animator, the state iterator, and the stat tool must agree on
/// event counts for the same trace.
#[test]
fn tools_agree_on_event_counts() {
    let net = pnut::pipeline::three_stage::build(&pnut::pipeline::ThreeStageConfig::default())
        .expect("builds");
    let trace = pnut::sim::simulate(&net, 4, Time::from_ticks(2_000)).expect("runs");
    let report = pnut::stat::analyze(&trace);

    // Frames = atomic steps; states = steps + initial.
    let mut anim = pnut::anim::Animator::new(&trace);
    let mut frames = 0usize;
    while anim.step().is_some() {
        frames += 1;
    }
    assert_eq!(frames + 1, trace.states().count());

    // Start deltas == summed transition starts.
    let start_deltas = trace
        .deltas()
        .iter()
        .filter(|d| matches!(d.kind, pnut::trace::DeltaKind::Start { .. }))
        .count() as u64;
    assert_eq!(start_deltas, report.events_started);
}

/// A recorded trace replayed through the stat tool gives the same
/// report as live streaming (determinism of the trace pipeline).
#[test]
fn replay_equals_live() {
    let net = pnut::pipeline::three_stage::build(&pnut::pipeline::ThreeStageConfig::default())
        .expect("builds");
    let mut sim = Simulator::new(&net, 21).expect("constructs");
    let mut sinks = Tee::new(Recorder::new(), StatCollector::new());
    sim.run(Time::from_ticks(3_000), &mut sinks).expect("runs");
    let (rec, live) = sinks.into_parts();
    let live = live.into_report().expect("complete");
    let replayed = pnut::stat::analyze(&rec.into_trace().expect("complete"));
    assert_eq!(live, replayed);
}

/// JSON round-trip across crate boundaries with a real model trace.
#[test]
fn trace_json_roundtrip_full_model() {
    let net = pnut::pipeline::three_stage::build(&pnut::pipeline::ThreeStageConfig::default())
        .expect("builds");
    let trace = pnut::sim::simulate(&net, 6, Time::from_ticks(500)).expect("runs");
    let mut buf = Vec::new();
    trace.write_json(&mut buf).expect("serializes");
    let back = pnut::trace::RecordedTrace::read_json(buf.as_slice()).expect("deserializes");
    assert_eq!(trace, back);
    assert_eq!(pnut::stat::analyze(&trace), pnut::stat::analyze(&back));
}

/// The textual language round-trips the full paper model and the
/// parsed net simulates identically.
#[test]
fn lang_roundtrip_preserves_behaviour() {
    let net = pnut::pipeline::three_stage::build(&pnut::pipeline::ThreeStageConfig::default())
        .expect("builds");
    let text = pnut::lang::print(&net);
    let reparsed = pnut::lang::parse(&text).expect("parses");
    assert_eq!(net, reparsed);

    let horizon = Time::from_ticks(2_000);
    let t1 = pnut::sim::simulate(&net, 77, horizon).expect("runs");
    let t2 = pnut::sim::simulate(&reparsed, 77, horizon).expect("runs");
    assert_eq!(t1.deltas(), t2.deltas());
}
