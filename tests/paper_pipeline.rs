//! End-to-end reproduction checks for the paper's §2 experiment:
//! build the three-stage model, simulate 10 000 cycles, and verify that
//! the statistics have the *shape* of Figure 5 and that the §4.4
//! queries hold on the real trace.
#![allow(clippy::field_reassign_with_default)]

use pnut::core::Time;
use pnut::pipeline::{run_experiment, three_stage, ThreeStageConfig};
use pnut::tracer::query::Query;

fn fig5() -> pnut::pipeline::ExperimentOutcome {
    run_experiment(&ThreeStageConfig::default(), 1, 10_000).expect("experiment runs")
}

#[test]
fn run_statistics_block_shape() {
    let o = fig5();
    // Paper: 11755 started / 11753 finished over 10 000 cycles. Our
    // transition inventory differs slightly; assert the same regime.
    assert!(o.summary.events_started > 5_000);
    assert!(o.summary.events_started < 20_000);
    assert!(o.summary.events_finished <= o.summary.events_started);
    assert!(o.summary.events_started - o.summary.events_finished < 10);
    assert!(!o.summary.quiescent, "pipeline never deadlocks");
}

#[test]
fn instruction_rate_matches_paper_regime() {
    // Paper: Issue throughput 0.1238 instructions/cycle.
    let o = fig5();
    let ipc = o.metrics.instructions_per_cycle;
    assert!(
        (0.08..=0.16).contains(&ipc),
        "IPC should be near the paper's 0.124, got {ipc}"
    );
}

#[test]
fn bus_utilization_and_breakdown() {
    // Paper: bus 0.6582 = prefetch 0.3107 + fetch 0.2275 + store 0.12.
    let o = fig5();
    let m = &o.metrics;
    assert!(
        (0.5..=0.8).contains(&m.bus_utilization),
        "bus utilization near 0.66, got {}",
        m.bus_utilization
    );
    let sum = m.bus_prefetch + m.bus_operand_fetch + m.bus_store;
    assert!(
        (sum - m.bus_utilization).abs() < 0.02,
        "breakdown must account for (almost) all bus activity: {sum} vs {}",
        m.bus_utilization
    );
    // Ordering as in the paper: prefetch > fetch > store.
    assert!(m.bus_prefetch > m.bus_operand_fetch);
    assert!(m.bus_operand_fetch > m.bus_store);
}

#[test]
fn buffer_and_stage_occupancy_shape() {
    // Paper: Full 4.621 / Empty 0.7576; decoder almost always busy
    // (0.0014 idle); execution unit idle 0.2739.
    let o = fig5();
    let m = &o.metrics;
    assert!(
        m.avg_full_ibuf > 3.5,
        "buffer mostly full: {}",
        m.avg_full_ibuf
    );
    assert!(
        m.avg_empty_ibuf < 1.5,
        "few empty slots: {}",
        m.avg_empty_ibuf
    );
    assert!(
        m.decoder_idle < 0.05,
        "decoder nearly saturated: {}",
        m.decoder_idle
    );
    assert!(
        (0.1..=0.5).contains(&m.exec_unit_idle),
        "execution unit partially idle: {}",
        m.exec_unit_idle
    );
    // Figure 5's largest execution occupancy is the 50-cycle class.
    let busiest = m
        .exec_busy
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("five classes");
    assert_eq!(busiest, 4, "exec_type_5 dominates occupancy (paper: 0.29)");
}

#[test]
fn instruction_mix_follows_frequencies() {
    let o = fig5();
    let (t1, t2, t3) = o.metrics.type_counts;
    let total = (t1 + t2 + t3) as f64;
    assert!(total > 500.0);
    let share1 = t1 as f64 / total;
    let share2 = t2 as f64 / total;
    let share3 = t3 as f64 / total;
    assert!((0.62..=0.78).contains(&share1), "type 1 ~70%: {share1}");
    assert!((0.14..=0.26).contains(&share2), "type 2 ~20%: {share2}");
    assert!((0.05..=0.16).contains(&share3), "type 3 ~10%: {share3}");
}

#[test]
fn paper_queries_hold_on_the_real_trace() {
    let net = three_stage::build(&ThreeStageConfig::default()).expect("model builds");
    let trace = pnut::sim::simulate(&net, 1, Time::from_ticks(10_000)).expect("runs");

    let invariant =
        Query::parse("forall s in S [ Bus_busy(s) + Bus_free(s) = 1 ]").expect("parses");
    assert!(invariant.check(&trace).expect("evaluates").holds);

    // The paper asks whether the buffer ever refills completely after
    // the initial state; in the steady state it rarely does, but with a
    // full buffer at t=0 being *drained*, the complement query must
    // hold: it is sometimes not full.
    let sometimes_drained =
        Query::parse("exists s in S [ Empty_I_buffers(s) > 0 ]").expect("parses");
    assert!(sometimes_drained.check(&trace).expect("evaluates").holds);

    let type5 = Query::parse("exists s in S [ exec_type_5(s) > 0 ]").expect("parses");
    assert!(
        type5.check(&trace).expect("evaluates").holds,
        "a 50-cycle instruction occurs in 10k cycles with p=.05"
    );
}

#[test]
fn analytic_steady_state_matches_simulation_on_the_paper_model() {
    // The enabling-clock timed state makes the §2 model analyzable
    // *exactly* — no sampling. The analytic Issue throughput must agree
    // with the simulated instruction rate up to the simulation's own
    // noise (the paper's Figure 5 reports 0.1238 instructions/cycle).
    use pnut::analytic::markov::{steady_state, MarkovOptions};
    let net = three_stage::build(&ThreeStageConfig::default()).expect("model builds");
    let ss = steady_state(&net, &MarkovOptions::default())
        .expect("enabling delays are part of the timed class now");
    let issue = ss.throughput(net.transition_id("Issue").expect("exists"));
    assert!(
        (0.08..=0.16).contains(&issue),
        "analytic IPC near the paper's 0.124, got {issue}"
    );
    let o = run_experiment(&ThreeStageConfig::default(), 1, 50_000).expect("runs");
    let sim = o.metrics.instructions_per_cycle;
    assert!(
        (issue - sim).abs() / sim < 0.05,
        "analytic {issue} vs simulated {sim} instructions/cycle"
    );
    // The bus utilization numbers must line up too.
    let busy = ss.avg_tokens(net.place_id("Bus_busy").expect("exists"));
    assert!(
        (busy - o.metrics.bus_utilization).abs() < 0.05,
        "analytic bus {busy} vs simulated {}",
        o.metrics.bus_utilization
    );
}

#[test]
fn cache_models_are_analyzable_end_to_end() {
    // §3: adding a cache with a 90% hit ratio shortens the effective
    // memory latency; the steady state of the cache-enabled model must
    // build (it leans on both enabling clocks and frequency-routed
    // hit/miss choice) and show a strictly faster pipeline.
    use pnut::analytic::markov::{steady_state, MarkovOptions};
    use pnut::pipeline::CacheConfig;
    let base = three_stage::build(&ThreeStageConfig::default()).expect("builds");
    let base_ss = steady_state(&base, &MarkovOptions::default()).expect("base analyzable");
    let mut c = ThreeStageConfig::default();
    c.cache = Some(CacheConfig {
        hit_ratio: 0.9,
        hit_cycles: 1,
    });
    let cached = three_stage::build(&c).expect("builds");
    let cached_ss = steady_state(&cached, &MarkovOptions::default()).expect("cache analyzable");
    let ipc = |net: &pnut::core::Net, ss: &pnut::analytic::markov::SteadyState| {
        ss.throughput(net.transition_id("Issue").expect("exists"))
    };
    assert!(
        ipc(&cached, &cached_ss) > ipc(&base, &base_ss) * 1.2,
        "a 90% cache must speed the pipeline up: {} vs {}",
        ipc(&cached, &cached_ss),
        ipc(&base, &base_ss)
    );
}

#[test]
fn different_seeds_are_statistically_consistent() {
    // Five seeds: IPC spread should be modest (the model is ergodic).
    let ipcs: Vec<f64> = (0..5)
        .map(|seed| {
            run_experiment(&ThreeStageConfig::default(), seed, 10_000)
                .expect("runs")
                .metrics
                .instructions_per_cycle
        })
        .collect();
    let mean = ipcs.iter().sum::<f64>() / ipcs.len() as f64;
    for ipc in &ipcs {
        assert!(
            (ipc - mean).abs() / mean < 0.15,
            "seed variation too large: {ipcs:?}"
        );
    }
}

#[test]
fn memory_speed_sweep_is_monotone() {
    // The intro claim: memory speed strongly affects performance.
    let mut prev_ipc = f64::INFINITY;
    for mem in [1u64, 3, 5, 9, 15] {
        let mut c = ThreeStageConfig::default();
        c.mem_access_cycles = mem;
        let o = run_experiment(&c, 11, 15_000).expect("runs");
        let ipc = o.metrics.instructions_per_cycle;
        assert!(
            ipc <= prev_ipc * 1.03,
            "slower memory must not speed up the pipeline: mem={mem} ipc={ipc} prev={prev_ipc}"
        );
        prev_ipc = ipc;
    }
}

#[test]
fn ibuf_size_sweep_saturates() {
    // Bigger buffers help until the decoder is the bottleneck.
    let ipc_at = |words: u32| {
        let mut c = ThreeStageConfig::default();
        c.ibuf_words = words;
        run_experiment(&c, 5, 15_000)
            .expect("runs")
            .metrics
            .instructions_per_cycle
    };
    let small = ipc_at(2);
    let medium = ipc_at(6);
    let large = ipc_at(12);
    assert!(
        medium >= small * 0.98,
        "6 words >= 2 words: {medium} vs {small}"
    );
    assert!(
        (large - medium).abs() / medium < 0.2,
        "returns diminish past the paper's 6 words: {large} vs {medium}"
    );
}
