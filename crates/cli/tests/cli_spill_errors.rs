//! End-to-end CLI acceptance of the fallible paged read path: when a
//! spill reload fails mid-analysis, the `pnut` binary must print
//! `error: …segment N…` on stderr, emit **no partial report** on
//! stdout, exit nonzero — and `--metrics-json` must still write a
//! valid snapshot (the `ObsSession` guard emits on the error path).
//!
//! Injection is armed through the binary's `PNUT_TEST_FAIL_SPILL_READ`
//! test hook (see `src/main.rs`), so each run's countdown is private
//! to its own child process — no cross-test serialization needed.

use std::path::{Path, PathBuf};
use std::process::Command;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pnut-spill-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// An untimed chain whose 64-place marking outgrows a 64 KiB budget
/// (the same shape the reach crate's injection matrix uses).
fn write_wide_chain(dir: &Path) -> String {
    let mut model = String::from("net wide\nplace src = 800\nplace dst = 0\n");
    for p in 0..62 {
        model.push_str(&format!("place w{p} = 1\n"));
    }
    model.push_str("trans step\n  in src\n  out dst\nend\n");
    let path = dir.join("wide.pn");
    std::fs::write(&path, model).unwrap();
    path.to_string_lossy().into_owned()
}

/// A timed, lock-serialized token ring for `markov` with the same
/// wide-marking trick (no deadlock, so a steady state exists).
fn write_wide_ring(dir: &Path) -> String {
    let mut model = String::from("net ring\nplace src = 100\nplace dst = 0\nplace lock = 1\n");
    for p in 0..125 {
        model.push_str(&format!("place w{p} = 1\n"));
    }
    model.push_str(
        "trans step\n  in src\n  in lock\n  out dst\n  out lock\n  firing 2\nend\n\
         trans back\n  in dst\n  in lock\n  out src\n  out lock\n  firing 1\nend\n",
    );
    let path = dir.join("ring.pn");
    std::fs::write(&path, model).unwrap();
    path.to_string_lossy().into_owned()
}

struct RunResult {
    code: i32,
    stdout: String,
    stderr: String,
}

fn run(args: &[&str], fail_read: Option<u64>) -> RunResult {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pnut"));
    cmd.args(args);
    match fail_read {
        Some(n) => cmd.env("PNUT_TEST_FAIL_SPILL_READ", n.to_string()),
        None => cmd.env_remove("PNUT_TEST_FAIL_SPILL_READ"),
    };
    let out = cmd.output().expect("pnut binary runs");
    RunResult {
        code: out.status.code().expect("not killed by a signal"),
        stdout: String::from_utf8_lossy(&out.stdout).into_owned(),
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
    }
}

/// Pull `{"type":"counter","name":"<name>","value":N}` out of an
/// NDJSON metrics file.
fn counter(metrics: &str, name: &str) -> u64 {
    let needle = format!(r#""name":"{name}","value":"#);
    for line in metrics.lines() {
        if let Some(pos) = line.find(&needle) {
            let rest = &line[pos + needle.len()..];
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            return digits.parse().expect("counter value parses");
        }
    }
    panic!("counter {name} not found in metrics:\n{metrics}");
}

/// The error contract, shared by both subcommand tests.
fn assert_spill_failure(r: &RunResult, metrics_path: &Path, what: &str) {
    assert_eq!(r.code, 1, "{what}: spill failures are errors: {}", r.stderr);
    assert!(
        r.stdout.is_empty(),
        "{what}: no partial report on stdout, got:\n{}",
        r.stdout
    );
    assert!(
        r.stderr.contains("error") && r.stderr.contains("segment"),
        "{what}: stderr must name the failed segment, got:\n{}",
        r.stderr
    );
    // The ObsSession guard still emitted a valid snapshot on the error
    // path, and the failed reload is visible in it.
    let metrics = std::fs::read_to_string(metrics_path)
        .unwrap_or_else(|e| panic!("{what}: metrics written despite the error: {e}"));
    assert!(
        metrics.lines().count() > 1
            && metrics
                .lines()
                .all(|l| l.starts_with('{') && l.ends_with('}')),
        "{what}: metrics snapshot must stay valid NDJSON:\n{metrics}"
    );
    assert!(
        counter(&metrics, "pager.fault_failures") >= 1,
        "{what}: the failed reload must be on the record"
    );
}

#[test]
fn reach_ctl_reload_failure_is_a_clean_error() {
    let dir = tmpdir("ctl");
    let model = write_wide_chain(&dir);
    let metrics = dir.join("m.json");
    let metrics_str = metrics.to_string_lossy().into_owned();
    let args = [
        "reach",
        model.as_str(),
        "--ctl",
        "EG (src + dst = 800)",
        "--mem-budget",
        "64KiB",
        "--metrics-json",
        metrics_str.as_str(),
    ];

    // Clean metering run: learn the total fault count, so the injected
    // run fails the *last* reload — deep inside the CTL fixpoint, the
    // final analysis the `reach` subcommand runs.
    let clean = run(&args, None);
    assert_eq!(clean.code, 0, "clean run passes: {}", clean.stderr);
    assert!(
        clean.stdout.contains("CTL"),
        "full report: {}",
        clean.stdout
    );
    let faults = counter(&std::fs::read_to_string(&metrics).unwrap(), "pager.faults");
    assert!(faults > 0, "a 64 KiB budget must page");

    let injected = run(&args, Some(faults));
    assert_spill_failure(&injected, &metrics, "reach --ctl");

    // Same invocation, fault cleared: bit-identical to the clean run.
    let retry = run(&args, None);
    assert_eq!((retry.code, retry.stdout), (0, clean.stdout), "retry");
}

#[test]
fn markov_reload_failure_is_a_clean_error() {
    let dir = tmpdir("markov");
    let model = write_wide_ring(&dir);
    let metrics = dir.join("m.json");
    let metrics_str = metrics.to_string_lossy().into_owned();
    let args = [
        "markov",
        model.as_str(),
        "--mem-budget",
        "64KiB",
        "--metrics-json",
        metrics_str.as_str(),
    ];

    let clean = run(&args, None);
    assert_eq!(clean.code, 0, "clean run passes: {}", clean.stderr);
    let faults = counter(&std::fs::read_to_string(&metrics).unwrap(), "pager.faults");
    assert!(faults > 0, "a 64 KiB budget must page");

    // Fail the last reload: the place-average sweep of the analysis.
    let injected = run(&args, Some(faults));
    assert_spill_failure(&injected, &metrics, "markov");

    let retry = run(&args, None);
    assert_eq!((retry.code, retry.stdout), (0, clean.stdout), "retry");
}
