#![forbid(unsafe_code)]

//! # pnut-cli — the P-NUT toolset as a command line
//!
//! P-NUT is "a collection of tools" (paper abstract) in the UNIX mold:
//! the simulator emits traces, and specialized tools consume them. This
//! crate packages the reproduction the same way:
//!
//! ```text
//! pnut check model.pn                 structural report + invariants
//! pnut print model.pn                 parse and pretty-print (canonicalize)
//! pnut sim model.pn --until 10000 --seed 1 -o trace.json
//! pnut stat trace.json                Figure 5 statistics report
//! pnut filter trace.json --place Bus_busy --trans Issue -o small.json
//! pnut query trace.json 'forall s in S [ Bus_busy(s) + Bus_free(s) = 1 ]'
//! pnut timeline trace.json --from 100 --to 200 --probe Bus_busy
//! pnut anim trace.json --max-frames 20
//! pnut reach model.pn --ctl 'AG (Bus_free + Bus_busy = 1)'
//! pnut cover model.pn                 Karp–Miller boundedness check
//! pnut cycle model.pn                 analytic cycle time (marked graphs)
//! ```
//!
//! Exit codes: `0` success, `1` usage or processing error, `2` a check
//! or query evaluated to *false* (so shell scripts can branch on model
//! properties, grep-style).

use pnut_core::{Net, Time};
use pnut_obs as obs;
use pnut_trace::{RecordedTrace, TraceSink};
use std::fmt::Write as _;
use std::fs;

/// Everything that can go wrong while running a command.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        err(format!("i/o error: {e}"))
    }
}

/// Minimal argument cursor: positionals plus `--flag value` options.
struct Args<'a> {
    items: &'a [String],
    used: Vec<bool>,
}

impl<'a> Args<'a> {
    fn new(items: &'a [String]) -> Self {
        Args {
            items,
            used: vec![false; items.len()],
        }
    }

    /// All values of a repeatable `--name value` option.
    fn values(&mut self, name: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.items.len() {
            if !self.used[i] && self.items[i] == name {
                if let Some(v) = self.items.get(i + 1) {
                    self.used[i] = true;
                    self.used[i + 1] = true;
                    out.push(v.clone());
                    i += 2;
                    continue;
                }
            }
            i += 1;
        }
        out
    }

    fn value(&mut self, name: &str) -> Option<String> {
        self.values(name).into_iter().next()
    }

    fn flag(&mut self, name: &str) -> bool {
        for (i, item) in self.items.iter().enumerate() {
            if !self.used[i] && item == name {
                self.used[i] = true;
                return true;
            }
        }
        false
    }

    /// An optional-value flag in the single-token `--name[=V]` form
    /// (used by `--progress[=N]`, whose value must not be mistaken for
    /// a positional). `None` = absent, `Some(None)` = bare flag,
    /// `Some(Some(v))` = `--name=v`.
    fn flag_opt_value(&mut self, name: &str) -> Option<Option<String>> {
        for (i, item) in self.items.iter().enumerate() {
            if self.used[i] {
                continue;
            }
            if item == name {
                self.used[i] = true;
                return Some(None);
            }
            if let Some(v) = item.strip_prefix(name).and_then(|r| r.strip_prefix('=')) {
                self.used[i] = true;
                return Some(Some(v.to_string()));
            }
        }
        None
    }

    /// Next unused positional argument.
    fn positional(&mut self) -> Option<String> {
        for (i, item) in self.items.iter().enumerate() {
            if !self.used[i] && !item.starts_with("--") {
                self.used[i] = true;
                return Some(item.clone());
            }
        }
        None
    }

    fn finish(self) -> Result<(), CliError> {
        for (i, item) in self.items.iter().enumerate() {
            if !self.used[i] {
                return Err(err(format!("unexpected argument `{item}`")));
            }
        }
        Ok(())
    }
}

/// Parse an optional `--name N` integer-like option, with a proper
/// usage error (instead of a panic or silent default) on garbage.
fn parse_opt<T: std::str::FromStr>(
    args: &mut Args<'_>,
    name: &str,
    cmd: &str,
) -> Result<Option<T>, CliError> {
    args.value(name)
        .map(|v| {
            v.parse()
                .map_err(|_| err(format!("{cmd}: {name} must be a non-negative integer")))
        })
        .transpose()
}

/// Parse and validate the shared `--max-states N` / `--jobs N`
/// exploration options, returning `(max_states, jobs)` where present.
/// `--max-states` must be positive; `--jobs 0` means "use all available
/// cores".
fn parse_limit_flags(
    args: &mut Args<'_>,
    cmd: &str,
) -> Result<(Option<usize>, Option<usize>), CliError> {
    let max = parse_opt::<usize>(args, "--max-states", cmd)?;
    if max == Some(0) {
        return Err(err(format!("{cmd}: --max-states must be positive")));
    }
    let jobs = parse_opt::<usize>(args, "--jobs", cmd)?;
    Ok((max, jobs))
}

/// Parse a byte-size value like `65536`, `64KiB`, `512MB`, or `2GiB`
/// (binary multipliers throughout; `unlimited` disables the budget).
/// One shared implementation with the `--stats` output formatter, so
/// everything `format_bytes` prints parses back here.
fn parse_byte_size(value: &str) -> Option<usize> {
    obs::bytes::parse_bytes(value).and_then(|n| usize::try_from(n).ok())
}

/// Parse the shared paging options `--mem-budget BYTES` /
/// `--spill-dir DIR`, returning `(mem_budget, spill_dir)` where
/// present. The budget must be positive (use `unlimited`, or omit the
/// flag, to disable paging).
fn parse_pager_flags(
    args: &mut Args<'_>,
    cmd: &str,
) -> Result<(Option<usize>, Option<std::path::PathBuf>), CliError> {
    let budget = args
        .value("--mem-budget")
        .map(|v| {
            parse_byte_size(&v).filter(|&b| b > 0).ok_or_else(|| {
                err(format!(
                    "{cmd}: --mem-budget must be a positive byte size (e.g. 64KiB, 512MB, unlimited)"
                ))
            })
        })
        .transpose()?;
    let dir = args.value("--spill-dir").map(std::path::PathBuf::from);
    Ok((budget, dir))
}

/// Warn when `--spill-dir` is set but the budget stays unlimited —
/// nothing would ever spill, which is almost certainly not what the
/// user meant. (Not folded into [`parse_pager_flags`]: `cover` emits
/// its own, more accurate "ignored entirely" warning.)
fn warn_inert_spill_dir(cmd: &str, budget: Option<usize>, dir: &Option<std::path::PathBuf>) {
    if dir.is_some() && budget.is_none_or(|b| b == usize::MAX) {
        eprintln!(
            "{cmd}: warning: --spill-dir has no effect without a finite --mem-budget \
             (the default budget is unlimited, so nothing ever spills)"
        );
    }
}

/// [`parse_limit_flags`] + [`parse_pager_flags`] applied to
/// [`pnut_reach::ReachOptions`].
fn parse_reach_options(
    args: &mut Args<'_>,
    cmd: &str,
    defaults: pnut_reach::ReachOptions,
) -> Result<pnut_reach::ReachOptions, CliError> {
    let (max, jobs) = parse_limit_flags(args, cmd)?;
    let (budget, spill_dir) = parse_pager_flags(args, cmd)?;
    warn_inert_spill_dir(cmd, budget, &spill_dir);
    let mut options = defaults;
    if let Some(max) = max {
        options.max_states = max;
    }
    if let Some(jobs) = jobs {
        options.jobs = jobs;
    }
    if let Some(budget) = budget {
        options.mem_budget = budget;
    }
    if spill_dir.is_some() {
        options.spill_dir = spill_dir;
    }
    Ok(options)
}

/// The shared observability options `--stats` / `--metrics-json PATH` /
/// `--progress[=N]`: if any is present the process-global
/// [`pnut_obs`] recorder is installed for the duration of the command.
/// All telemetry goes to stderr or the metrics file — stdout stays
/// byte-identical with and without these flags.
struct ObsSession {
    tool: String,
    stats: bool,
    metrics_json: Option<std::path::PathBuf>,
    active: bool,
}

impl ObsSession {
    /// Parse the observability flags and install the recorder when any
    /// is given. `--progress` without a value heartbeats at every tick.
    fn from_args(args: &mut Args<'_>, cmd: &str) -> Result<Self, CliError> {
        let stats = args.flag("--stats");
        let metrics_json = args.value("--metrics-json").map(std::path::PathBuf::from);
        let progress =
            args.flag_opt_value("--progress")
                .map(|v| match v {
                    None => Ok(1u64),
                    Some(n) => n.parse::<u64>().ok().filter(|&n| n > 0).ok_or_else(|| {
                        err(format!("{cmd}: --progress=N needs a positive integer"))
                    }),
                })
                .transpose()?;
        let active = stats || metrics_json.is_some() || progress.is_some();
        if active {
            obs::install();
            obs::set_progress_every(progress.unwrap_or(0));
        }
        Ok(ObsSession {
            tool: cmd.to_string(),
            stats,
            metrics_json,
            active,
        })
    }

    /// Stop recording and emit the session's outputs: the human summary
    /// to stderr (`--stats`) and the NDJSON file (`--metrics-json`).
    fn finish(&mut self) -> Result<(), CliError> {
        if !self.active {
            return Ok(());
        }
        self.active = false;
        obs::set_progress_every(0);
        obs::uninstall();
        let tool = &self.tool;
        let snap = obs::snapshot();
        if self.stats {
            let mut buf = Vec::new();
            snap.render_human(&mut buf)
                .map_err(|e| err(format!("{tool}: --stats: {e}")))?;
            eprint!("{}", String::from_utf8_lossy(&buf));
        }
        if let Some(path) = self.metrics_json.take() {
            let file = fs::File::create(&path)
                .map_err(|e| err(format!("{tool}: cannot write `{}`: {e}", path.display())))?;
            let mut w = std::io::BufWriter::new(file);
            snap.write_ndjson(&mut w, tool)
                .map_err(|e| err(format!("{tool}: --metrics-json: {e}")))?;
        }
        Ok(())
    }
}

impl Drop for ObsSession {
    // Error paths skip the explicit `finish` call; emit the session's
    // outputs best-effort anyway — a command that failed mid-analysis
    // must still leave a valid `--metrics-json` snapshot (that's where
    // `pager.fault_failures` lives, exactly the counter an operator
    // wants after a spill failure) — and in any case disable the
    // recorder so a failed command can't leave telemetry running for
    // the next `run()` call.
    fn drop(&mut self) {
        if self.active {
            let _ = self.finish();
        }
    }
}

fn load_net(path: &str) -> Result<Net, CliError> {
    let text = fs::read_to_string(path).map_err(|e| err(format!("cannot read `{path}`: {e}")))?;
    pnut_lang::parse(&text).map_err(|e| err(format!("{path}: {e}")))
}

/// Shared model-load plumbing (`check`, `lint`, `reach`): read, parse,
/// and build a model inside the `parse` span, with uniform
/// [`CliError`] reporting. Call after [`ObsSession::from_args`] so the
/// span lands in the session.
fn load_model(path: &str) -> Result<Net, CliError> {
    let _parse = obs::span("parse");
    load_net(path)
}

fn load_trace(path: &str) -> Result<RecordedTrace, CliError> {
    let file = fs::File::open(path).map_err(|e| err(format!("cannot open `{path}`: {e}")))?;
    RecordedTrace::read_json(std::io::BufReader::new(file)).map_err(|e| err(format!("{path}: {e}")))
}

fn save_trace(trace: &RecordedTrace, path: Option<&str>, out: &mut String) -> Result<(), CliError> {
    match path {
        Some(p) => {
            let file = fs::File::create(p).map_err(|e| err(format!("cannot write `{p}`: {e}")))?;
            trace
                .write_json(std::io::BufWriter::new(file))
                .map_err(|e| err(format!("serialize: {e}")))?;
            let _ = writeln!(out, "wrote {} deltas to {p}", trace.deltas().len());
        }
        None => {
            let mut buf = Vec::new();
            trace
                .write_json(&mut buf)
                .map_err(|e| err(format!("serialize: {e}")))?;
            out.push_str(&String::from_utf8_lossy(&buf));
            out.push('\n');
        }
    }
    Ok(())
}

/// Run one command. `argv` excludes the program name. Output text is
/// appended to `out`; the returned code follows the grep convention
/// (`0` ok, `2` property false).
///
/// # Errors
///
/// Returns [`CliError`] for usage errors, unreadable files, malformed
/// models/traces/queries, and tool failures.
pub fn run(argv: &[String], out: &mut String) -> Result<i32, CliError> {
    let Some(command) = argv.first() else {
        out.push_str(USAGE);
        return Ok(1);
    };
    let rest = &argv[1..];
    match command.as_str() {
        "help" | "--help" | "-h" => {
            out.push_str(USAGE);
            Ok(0)
        }
        "check" => cmd_check(rest, out),
        "lint" => cmd_lint(rest, out),
        "print" => cmd_print(rest, out),
        "dot" => cmd_dot(rest, out),
        "sim" => cmd_sim(rest, out),
        "stat" => cmd_stat(rest, out),
        "filter" => cmd_filter(rest, out),
        "query" => cmd_query(rest, out),
        "timeline" => cmd_timeline(rest, out),
        "anim" => cmd_anim(rest, out),
        "reach" => cmd_reach(rest, out),
        "cover" => cmd_cover(rest, out),
        "cycle" => cmd_cycle(rest, out),
        "markov" => cmd_markov(rest, out),
        "heatmap" => cmd_heatmap(rest, out),
        "measure" => cmd_measure(rest, out),
        other => Err(err(format!("unknown command `{other}`; try `pnut help`"))),
    }
}

const USAGE: &str = "\
pnut — Petri-Net Utility Tools (Razouk 1987/88 reproduction)

usage: pnut <command> [args]

  check <model.pn>                     structural report + P/T-invariants
  lint <model.pn>... [--json] [observability]  static analysis: invariant
                     bounds, dead transitions, expression lint
                     (docs/STATIC_ANALYSIS.md; exit 2 on error findings)
  print <model.pn>                     parse and pretty-print
  dot <model.pn>                       Graphviz rendering of the net
  sim <model.pn> [--until N] [--seed S] [-o trace.json] [observability]
  stat <trace.json>                    statistics report (Figure 5)
  filter <trace.json> [--place P]... [--trans T]... [--vars] [-o out.json]
  query <trace.json> <query>           forall/exists/inev over trace states
  timeline <trace.json> [--from A] [--to B] [--probe NAME]... [--fn L=EXPR]...
  anim <trace.json> [--max-frames N]
  reach <model.pn> [--timed] [--ctl FORMULA] [--max-states N] [--jobs N]
                   [--mem-budget BYTES] [--spill-dir DIR]
                   [--check-invariants] [observability]
  cover <model.pn> [--max-states N] [--jobs N]   Karp–Miller boundedness
  cycle <model.pn>                     analytic cycle time (marked graphs)
  markov <model.pn> [--max-states N] [--jobs N]  analytic steady state
                    [--mem-budget BYTES] [--spill-dir DIR] [observability]
  heatmap <trace.json>                 activity heatmap (bottleneck feedback)
  measure <trace.json> [--pulses PLACE] [--intervals TRANS] [--latency FROM,TO]

--timed builds the timed reachability graph: states carry in-flight
firings and enabling clocks. Both delay kinds may be constants or
deterministic expressions — firing delays resolve against the
post-action environment (the paper's table-driven idiom), enabling
delays against the environment at arm time; only irand-based delays
are rejected (determinism). markov analyzes the same timed class.
--max-states raises/lowers the state-space cap (default 100000; 20000
for markov). --jobs N explores the frontier with N worker threads
(0 = all cores, default 1); results are identical at any job count.
--mem-budget caps the resident state AND edge arenas under one shared
budget (e.g. 64KiB, 512MB; default unlimited): cold level segments
spill to a temp file in --spill-dir (default: system temp) and reload
on demand, so state spaces can exceed RAM; results are identical at
any budget. The budget is honored end to end: --ctl model checking,
the deadlock/bound report, and markov's chain extraction all sweep
the graph segment-at-a-time, evicting between segments, instead of
faulting the whole store back into memory. (markov's *extracted*
dense chain — one entry per edge — still lives outside the budget;
its size is capped by --max-states, not --mem-budget.)
cover ignores --jobs (with a warning): the Karp–Miller tree
accelerates against ancestor chains, which is inherently sequential.
cover likewise ignores --mem-budget/--spill-dir: the tree stays
memory-resident (both are documented unsupported, not planned).

reach --check-invariants re-sweeps the finished graph segment-at-a-time
and asserts every quiescent state satisfies every semi-positive
P-invariant token sum — a static-vs-dynamic cross-check that doubles
as a semantic integrity check on pager spill reloads (see
docs/STATIC_ANALYSIS.md). A violation is reported as an error (exit 1):
it means an engine bug or corrupted spill data, not a model property.

All expression evaluation (predicates, actions, delay expressions) in
sim, reach, and markov runs on register bytecode compiled once per
net at load time — semantics are bit-identical to the language
reference interpreter, including error cases and randomness draws.

observability (sim, reach, cover, markov — see docs/OBSERVABILITY.md):
  --stats            phase timings + nonzero metrics summary on stderr
  --metrics-json F   full metric snapshot as NDJSON written to file F
  --progress[=N]     deterministic heartbeat lines on stderr every N
                     ticks (levels/events/iterations; default 1)
Telemetry goes to stderr or the metrics file only: stdout is
byte-identical with and without these flags, and recorded metrics
never feed back into exploration.

exit codes: 0 ok · 1 error · 2 checked property is false

error taxonomy — every failure names which of these it is:
  your model   parse errors, unknown names, non-constant delays,
               capacity/state-cap overflows: fix the .pn file or the
               formula (exit 1; property-is-false is exit 2, not an
               error).
  your flags   bad or conflicting command-line arguments, unwritable
               output paths (exit 1).
  your disk    spill I/O failures under --mem-budget: a cold segment
               could not be written or reloaded (message names the
               segment and spill file). The process never aborts —
               the one analysis that hit the fault returns this error,
               stdout stays empty, and --metrics-json still writes a
               valid snapshot (see pager.fault_failures). Retry with
               a healthy --spill-dir or a larger --mem-budget.
";

fn cmd_check(argv: &[String], out: &mut String) -> Result<i32, CliError> {
    let mut args = Args::new(argv);
    let path = args
        .positional()
        .ok_or_else(|| err("check: need a model file"))?;
    args.finish()?;
    let net = load_model(&path)?;
    let report = pnut_core::analysis::structural_report(&net);
    let _ = writeln!(
        out,
        "net `{}`: {} places, {} transitions",
        net.name(),
        net.place_count(),
        net.transition_count()
    );
    let name_list = |ids: &[pnut_core::PlaceId]| -> String {
        ids.iter()
            .map(|&p| net.place(p).name().to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };
    let tname_list = |ids: &[pnut_core::TransitionId]| -> String {
        ids.iter()
            .map(|&t| net.transition(t).name().to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut clean = true;
    if !report.isolated_places.is_empty() {
        clean = false;
        let _ = writeln!(
            out,
            "isolated places: {}",
            name_list(&report.isolated_places)
        );
    }
    if !report.source_only_places.is_empty() {
        clean = false;
        let _ = writeln!(
            out,
            "drain-only places (no producer): {}",
            name_list(&report.source_only_places)
        );
    }
    if !report.sink_only_places.is_empty() {
        clean = false;
        let _ = writeln!(
            out,
            "accumulate-only places (no consumer): {}",
            name_list(&report.sink_only_places)
        );
    }
    if !report.sourceless_transitions.is_empty() {
        clean = false;
        let _ = writeln!(
            out,
            "input-free transitions: {}",
            tname_list(&report.sourceless_transitions)
        );
    }
    if !report.structurally_dead_transitions.is_empty() {
        clean = false;
        let _ = writeln!(
            out,
            "structurally dead transitions: {}",
            tname_list(&report.structurally_dead_transitions)
        );
    }
    if clean {
        let _ = writeln!(out, "structure: clean");
    }

    let pinv = pnut_core::invariant::p_invariants(&net);
    let _ = writeln!(out, "P-invariants ({}):", pinv.len());
    for inv in &pinv {
        let terms: Vec<String> = inv
            .weights
            .iter()
            .enumerate()
            .filter(|(_, &w)| w != 0)
            .map(|(i, &w)| {
                let n = net.place(pnut_core::PlaceId::new(i)).name();
                if w == 1 {
                    n.to_string()
                } else {
                    format!("{w}·{n}")
                }
            })
            .collect();
        let _ = writeln!(
            out,
            "  {} = {}",
            terms.join(" + "),
            inv.token_sum(&net.initial_marking())
        );
    }
    let tinv = pnut_core::invariant::t_invariants(&net);
    let _ = writeln!(out, "T-invariants ({})", tinv.len());
    Ok(if clean { 0 } else { 2 })
}

fn cmd_lint(argv: &[String], out: &mut String) -> Result<i32, CliError> {
    let mut args = Args::new(argv);
    let json = args.flag("--json");
    let mut session = ObsSession::from_args(&mut args, "lint")?;
    let mut paths = Vec::new();
    while let Some(p) = args.positional() {
        paths.push(p);
    }
    if paths.is_empty() {
        return Err(err("lint: need at least one model file"));
    }
    args.finish()?;

    let mut errors = 0usize;
    if json {
        out.push_str(pnut_analysis::json_meta_line());
        out.push('\n');
    }
    for (i, path) in paths.iter().enumerate() {
        let net = load_model(path)?;
        // `lint` opens its own `analysis.lint` span.
        let report = pnut_analysis::lint(&net);
        errors += report.errors();
        if json {
            report.render_json(path, out);
        } else {
            if i > 0 {
                out.push('\n');
            }
            out.push_str(&report.render_text(path));
        }
    }
    session.finish()?;
    Ok(if errors > 0 { 2 } else { 0 })
}

fn cmd_print(argv: &[String], out: &mut String) -> Result<i32, CliError> {
    let mut args = Args::new(argv);
    let path = args
        .positional()
        .ok_or_else(|| err("print: need a model file"))?;
    args.finish()?;
    let net = load_net(&path)?;
    out.push_str(&pnut_lang::print(&net));
    Ok(0)
}

fn cmd_dot(argv: &[String], out: &mut String) -> Result<i32, CliError> {
    let mut args = Args::new(argv);
    let path = args
        .positional()
        .ok_or_else(|| err("dot: need a model file"))?;
    args.finish()?;
    let net = load_net(&path)?;
    out.push_str(&pnut_lang::to_dot(&net));
    Ok(0)
}

fn cmd_sim(argv: &[String], out: &mut String) -> Result<i32, CliError> {
    let mut args = Args::new(argv);
    let path = args
        .positional()
        .ok_or_else(|| err("sim: need a model file"))?;
    let until: u64 = args
        .value("--until")
        .map(|v| {
            v.parse()
                .map_err(|_| err("sim: --until must be an integer"))
        })
        .transpose()?
        .unwrap_or(10_000);
    let seed: u64 = args
        .value("--seed")
        .map(|v| v.parse().map_err(|_| err("sim: --seed must be an integer")))
        .transpose()?
        .unwrap_or(1);
    let output = args.value("-o");
    let mut session = ObsSession::from_args(&mut args, "sim")?;
    args.finish()?;

    let net = {
        let _parse = obs::span("parse");
        load_net(&path)?
    };
    let trace = pnut_sim::simulate(&net, seed, Time::from_ticks(until))
        .map_err(|e| err(format!("simulation failed: {e}")))?;
    save_trace(&trace, output.as_deref(), out)?;
    session.finish()?;
    Ok(0)
}

fn cmd_stat(argv: &[String], out: &mut String) -> Result<i32, CliError> {
    let mut args = Args::new(argv);
    let path = args
        .positional()
        .ok_or_else(|| err("stat: need a trace file"))?;
    args.finish()?;
    let trace = load_trace(&path)?;
    let _ = write!(out, "{}", pnut_stat::analyze(&trace));
    Ok(0)
}

fn cmd_filter(argv: &[String], out: &mut String) -> Result<i32, CliError> {
    let mut args = Args::new(argv);
    let path = args
        .positional()
        .ok_or_else(|| err("filter: need a trace file"))?;
    let mut spec = pnut_trace::FilterSpec::new()
        .keep_places(args.values("--place"))
        .keep_transitions(args.values("--trans"));
    if args.flag("--vars") {
        spec = spec.keep_variables();
    }
    let output = args.value("-o");
    args.finish()?;

    let trace = load_trace(&path)?;
    let mut filter = pnut_trace::Filter::new(spec, pnut_trace::Recorder::new());
    trace.replay(&mut filter);
    let filtered = filter.into_inner().into_trace().ok_or_else(|| {
        err(format!(
            "filter: `{path}` replayed incompletely (truncated trace file?)"
        ))
    })?;
    save_trace(&filtered, output.as_deref(), out)?;
    Ok(0)
}

fn cmd_query(argv: &[String], out: &mut String) -> Result<i32, CliError> {
    let mut args = Args::new(argv);
    let path = args
        .positional()
        .ok_or_else(|| err("query: need a trace file"))?;
    let text = args
        .positional()
        .ok_or_else(|| err("query: need a query string"))?;
    args.finish()?;

    let trace = load_trace(&path)?;
    let query = pnut_tracer::query::Query::parse(&text).map_err(|e| err(format!("query: {e}")))?;
    let outcome = query
        .check(&trace)
        .map_err(|e| err(format!("query: {e}")))?;
    match (outcome.holds, outcome.witness) {
        (true, Some(w)) => {
            let _ = writeln!(out, "HOLDS (witness state #{w})");
        }
        (true, None) => {
            let _ = writeln!(out, "HOLDS");
        }
        (false, Some(w)) => {
            let _ = writeln!(out, "FAILS (counterexample state #{w})");
        }
        (false, None) => {
            let _ = writeln!(out, "FAILS");
        }
    }
    Ok(if outcome.holds { 0 } else { 2 })
}

fn cmd_timeline(argv: &[String], out: &mut String) -> Result<i32, CliError> {
    let mut args = Args::new(argv);
    let path = args
        .positional()
        .ok_or_else(|| err("timeline: need a trace file"))?;
    let from: u64 = args
        .value("--from")
        .map(|v| {
            v.parse()
                .map_err(|_| err("timeline: --from must be an integer"))
        })
        .transpose()?
        .unwrap_or(0);
    let to: u64 = args
        .value("--to")
        .map(|v| {
            v.parse()
                .map_err(|_| err("timeline: --to must be an integer"))
        })
        .transpose()?
        .unwrap_or(from + 100);
    let mut signals: Vec<pnut_tracer::Signal> = args
        .values("--probe")
        .into_iter()
        .map(pnut_tracer::Signal::place)
        .collect();
    for spec in args.values("--fn") {
        let (label, expr) = spec
            .split_once('=')
            .ok_or_else(|| err("timeline: --fn needs LABEL=EXPR"))?;
        signals.push(
            pnut_tracer::Signal::function(label, expr)
                .map_err(|e| err(format!("timeline: bad --fn expression: {e}")))?,
        );
    }
    args.finish()?;
    if signals.is_empty() {
        return Err(err("timeline: need at least one --probe or --fn"));
    }

    let trace = load_trace(&path)?;
    let tl = pnut_tracer::Timeline::sample(
        &trace,
        &signals,
        Time::from_ticks(from),
        Time::from_ticks(to),
    )
    .map_err(|e| err(format!("timeline: {e}")))?;
    let _ = write!(out, "{tl}");
    Ok(0)
}

fn cmd_anim(argv: &[String], out: &mut String) -> Result<i32, CliError> {
    let mut args = Args::new(argv);
    let path = args
        .positional()
        .ok_or_else(|| err("anim: need a trace file"))?;
    let max_frames: usize = args
        .value("--max-frames")
        .map(|v| {
            v.parse()
                .map_err(|_| err("anim: --max-frames must be an integer"))
        })
        .transpose()?
        .unwrap_or(usize::MAX);
    args.finish()?;

    let trace = load_trace(&path)?;
    let mut anim = pnut_anim::Animator::new(&trace);
    let _ = write!(out, "{}", anim.initial_frame());
    let mut shown = 0;
    while shown < max_frames {
        match anim.step() {
            Some(f) => {
                let _ = write!(out, "{f}");
                shown += 1;
            }
            None => break,
        }
    }
    Ok(0)
}

fn cmd_reach(argv: &[String], out: &mut String) -> Result<i32, CliError> {
    let mut args = Args::new(argv);
    let path = args
        .positional()
        .ok_or_else(|| err("reach: need a model file"))?;
    let timed = args.flag("--timed");
    let ctl = args.value("--ctl");
    let check_invariants = args.flag("--check-invariants");
    let options = parse_reach_options(&mut args, "reach", pnut_reach::ReachOptions::default())?;
    let mut session = ObsSession::from_args(&mut args, "reach")?;
    args.finish()?;

    let net = load_model(&path)?;
    let mut graph = if timed {
        pnut_reach::graph::build_timed(&net, &options)
    } else {
        pnut_reach::graph::build_untimed(&net, &options)
    }
    .map_err(|e| err(format!("reach: {e}")))?;

    let deadlocks = graph.deadlocks().map_err(|e| err(format!("reach: {e}")))?;
    let _ = writeln!(
        out,
        "{} states, {} edges, {} deadlock(s)",
        graph.state_count(),
        graph.edge_count(),
        deadlocks.len()
    );
    let _ = writeln!(
        out,
        "interned store: {} distinct environment(s), ~{} KiB",
        graph.store().env_count(),
        graph.approx_bytes() / 1024,
    );
    if graph.spilled_bytes() > 0 {
        let _ = writeln!(
            out,
            "paged store: ~{} KiB resident (peak ~{} KiB), ~{} KiB spilled to disk",
            graph.resident_bytes() / 1024,
            graph.peak_resident_bytes() / 1024,
            graph.spilled_bytes() / 1024,
        );
    }
    let bounds = graph
        .place_bounds()
        .map_err(|e| err(format!("reach: {e}")))?;
    for (pid, p) in net.places() {
        let _ = writeln!(out, "  bound({}) = {}", p.name(), bounds[pid.index()]);
    }

    if check_invariants {
        let check = pnut_analysis::check_invariants(&net, &mut graph)
            .map_err(|e| err(format!("reach: --check-invariants: {e}")))?;
        if check.invariants == 0 {
            let _ = writeln!(
                out,
                "P-invariant check: no semi-positive P-invariants (vacuously ok)"
            );
        } else {
            let skipped = if check.states_skipped > 0 {
                format!(" ({} mid-firing state(s) skipped)", check.states_skipped)
            } else {
                String::new()
            };
            let _ = writeln!(
                out,
                "P-invariant check: {} state(s) x {} invariant(s) hold{skipped}",
                check.states_checked, check.invariants
            );
        }
    }

    let mut code = 0;
    if let Some(formula_text) = ctl {
        let formula =
            pnut_reach::ctl::Formula::parse(&formula_text).map_err(|e| err(format!("ctl: {e}")))?;
        let outcome = pnut_reach::ctl::check(&mut graph, &net, &formula)
            .map_err(|e| err(format!("ctl: {e}")))?;
        let _ = writeln!(
            out,
            "CTL `{formula_text}`: {} ({} of {} states satisfy)",
            if outcome.holds_initially {
                "HOLDS"
            } else {
                "FAILS"
            },
            outcome.count(),
            graph.state_count()
        );
        if !outcome.holds_initially {
            code = 2;
        }
    }
    session.finish()?;
    Ok(code)
}

fn cmd_cover(argv: &[String], out: &mut String) -> Result<i32, CliError> {
    let mut args = Args::new(argv);
    let path = args
        .positional()
        .ok_or_else(|| err("cover: need a model file"))?;
    let mut options = pnut_reach::coverability::CoverOptions::default();
    let (max, jobs) = parse_limit_flags(&mut args, "cover")?;
    let (budget, spill_dir) = parse_pager_flags(&mut args, "cover")?;
    if let Some(max) = max {
        options.max_nodes = max;
    }
    if let Some(jobs) = jobs {
        options.jobs = jobs;
        if jobs != 1 {
            eprintln!(
                "cover: warning: --jobs is ignored — the Karp–Miller tree accelerates \
                 against ancestor chains (sequential); building single-threaded"
            );
        }
    }
    if budget.is_some() || spill_dir.is_some() {
        eprintln!(
            "cover: warning: --mem-budget/--spill-dir are ignored — the Karp–Miller \
             tree is memory-resident (only reach/markov page their state arenas)"
        );
    }
    let mut session = ObsSession::from_args(&mut args, "cover")?;
    args.finish()?;
    let net = {
        let _parse = obs::span("parse");
        load_net(&path)?
    };
    let tree = pnut_reach::coverability::coverability_tree(&net, &options)
        .map_err(|e| err(format!("cover: {e}")))?;
    let _ = writeln!(
        out,
        "coverability tree: {} nodes; net is {}",
        tree.node_count(),
        if tree.is_unbounded() {
            "UNBOUNDED"
        } else {
            "bounded"
        }
    );
    for (pid, p) in net.places() {
        match tree.place_bound(pid) {
            Some(b) => {
                let _ = writeln!(out, "  bound({}) = {b}", p.name());
            }
            None => {
                let _ = writeln!(out, "  bound({}) = ω", p.name());
            }
        }
    }
    session.finish()?;
    Ok(if tree.is_unbounded() { 2 } else { 0 })
}

fn cmd_cycle(argv: &[String], out: &mut String) -> Result<i32, CliError> {
    let mut args = Args::new(argv);
    let path = args
        .positional()
        .ok_or_else(|| err("cycle: need a model file"))?;
    args.finish()?;
    let net = load_net(&path)?;
    let analysis = pnut_analytic::analyze(&net).map_err(|e| err(format!("cycle: {e}")))?;
    let _ = writeln!(out, "cycle time: {} ticks/firing", analysis.cycle_time);
    let _ = writeln!(out, "throughput: {:.6} firings/tick", analysis.throughput());
    let names: Vec<&str> = analysis
        .critical_cycle
        .iter()
        .map(|&t| net.transition(t).name())
        .collect();
    let _ = writeln!(out, "critical cycle: {}", names.join(" -> "));
    let _ = writeln!(out, "circuits examined: {}", analysis.circuits_examined);
    Ok(0)
}

fn cmd_heatmap(argv: &[String], out: &mut String) -> Result<i32, CliError> {
    let mut args = Args::new(argv);
    let path = args
        .positional()
        .ok_or_else(|| err("heatmap: need a trace file"))?;
    args.finish()?;
    let trace = load_trace(&path)?;
    let _ = write!(out, "{}", pnut_anim::Heatmap::from_trace(&trace));
    Ok(0)
}

fn cmd_measure(argv: &[String], out: &mut String) -> Result<i32, CliError> {
    use pnut_tracer::measure;
    let mut args = Args::new(argv);
    let path = args
        .positional()
        .ok_or_else(|| err("measure: need a trace file"))?;
    let pulses = args.values("--pulses");
    let intervals = args.values("--intervals");
    let latencies = args.values("--latency");
    args.finish()?;
    if pulses.is_empty() && intervals.is_empty() && latencies.is_empty() {
        return Err(err(
            "measure: need at least one of --pulses / --intervals / --latency",
        ));
    }
    let trace = load_trace(&path)?;
    for place in pulses {
        match measure::place_pulses(&trace, &place) {
            Some(stats) => {
                let _ = writeln!(out, "pulses({place}): {stats}");
            }
            None => return Err(err(format!("measure: unknown place `{place}`"))),
        }
    }
    for trans in intervals {
        match measure::inter_start_intervals(&trace, &trans) {
            Some(iv) if iv.is_empty() => {
                let _ = writeln!(out, "intervals({trans}): fewer than two firings");
            }
            Some(iv) => {
                let mean = iv.iter().sum::<u64>() as f64 / iv.len() as f64;
                let _ = writeln!(
                    out,
                    "intervals({trans}): {} samples, mean {mean:.2} ticks",
                    iv.len()
                );
                let _ = write!(
                    out,
                    "{}",
                    measure::Histogram::new(&iv, (mean / 4.0).max(1.0) as u64)
                );
            }
            None => return Err(err(format!("measure: unknown transition `{trans}`"))),
        }
    }
    for pair in latencies {
        let (from, to) = pair
            .split_once(',')
            .ok_or_else(|| err("measure: --latency needs FROM,TO"))?;
        match measure::latencies(&trace, from, to) {
            Some(lat) if lat.is_empty() => {
                let _ = writeln!(out, "latency({from} -> {to}): no matched pairs");
            }
            Some(lat) => {
                let mean = lat.iter().sum::<u64>() as f64 / lat.len() as f64;
                let _ = writeln!(
                    out,
                    "latency({from} -> {to}): {} pairs, mean {mean:.2} ticks",
                    lat.len()
                );
            }
            None => return Err(err("measure: unknown transition in --latency".to_string())),
        }
    }
    Ok(0)
}

fn cmd_markov(argv: &[String], out: &mut String) -> Result<i32, CliError> {
    let mut args = Args::new(argv);
    let path = args
        .positional()
        .ok_or_else(|| err("markov: need a model file"))?;
    let mut options = pnut_analytic::markov::MarkovOptions::default();
    let (max, jobs) = parse_limit_flags(&mut args, "markov")?;
    let (budget, spill_dir) = parse_pager_flags(&mut args, "markov")?;
    warn_inert_spill_dir("markov", budget, &spill_dir);
    if let Some(max) = max {
        options.max_states = max;
    }
    if let Some(jobs) = jobs {
        options.jobs = jobs;
    }
    if let Some(budget) = budget {
        options.mem_budget = budget;
    }
    if spill_dir.is_some() {
        options.spill_dir = spill_dir;
    }
    let mut session = ObsSession::from_args(&mut args, "markov")?;
    args.finish()?;
    let net = {
        let _parse = obs::span("parse");
        load_net(&path)?
    };
    let ss = pnut_analytic::markov::steady_state(&net, &options)
        .map_err(|e| err(format!("markov: {e}")))?;
    let _ = writeln!(out, "ANALYTIC STEADY STATE (semi-Markov, exact semantics)");
    let _ = writeln!(out, "mean sojourn per jump: {:.4} ticks", ss.mean_sojourn);
    let _ = writeln!(out, "place average tokens:");
    for (pid, p) in net.places() {
        let _ = writeln!(out, "  {:<28} {:.6}", p.name(), ss.avg_tokens(pid));
    }
    let _ = writeln!(out, "transition throughput (firings/tick):");
    for (tid, t) in net.transitions() {
        let _ = writeln!(out, "  {:<28} {:.6}", t.name(), ss.throughput(tid));
    }
    session.finish()?;
    Ok(0)
}

// `TraceSink` is used through `Filter`'s replay path; re-assert the
// import is intentional for readers.
const _: fn() = || {
    fn assert_sink<S: TraceSink>() {}
    assert_sink::<pnut_trace::Recorder>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn run_args(args: &[&str]) -> (i32, String) {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = String::new();
        let code = run(&argv, &mut out).unwrap_or_else(|e| panic!("{e}\n--- output:\n{out}"));
        (code, out)
    }

    fn write_model(dir: &std::path::Path) -> String {
        let model = dir.join("bus.pn");
        fs::write(
            &model,
            "net bus\nplace Bus_free = 1\nplace Bus_busy = 0\n\
             trans seize\n  in Bus_free\n  out Bus_busy\n  enabling 1\nend\n\
             trans release\n  in Bus_busy\n  out Bus_free\n  enabling 2\nend\n",
        )
        .unwrap();
        model.to_string_lossy().into_owned()
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("pnut-cli-test-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn help_and_unknown_command() {
        let (code, out) = run_args(&["help"]);
        assert_eq!(code, 0);
        assert!(out.contains("usage"));
        let mut s = String::new();
        assert!(run(&["bogus".to_string()], &mut s).is_err());
        assert_eq!(run(&[], &mut s).unwrap(), 1);
    }

    #[test]
    fn check_reports_invariants() {
        let dir = tmpdir("check");
        let model = write_model(&dir);
        let (code, out) = run_args(&["check", &model]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("structure: clean"));
        assert!(out.contains("Bus_free + Bus_busy = 1"));
    }

    #[test]
    fn sim_stat_query_pipeline() {
        let dir = tmpdir("pipeline");
        let model = write_model(&dir);
        let trace_path = dir.join("t.json").to_string_lossy().into_owned();
        let (code, _) = run_args(&[
            "sim",
            &model,
            "--until",
            "100",
            "--seed",
            "3",
            "-o",
            &trace_path,
        ]);
        assert_eq!(code, 0);

        let (code, out) = run_args(&["stat", &trace_path]);
        assert_eq!(code, 0);
        assert!(out.contains("PLACE STATISTICS"));
        assert!(out.contains("Bus_busy"));

        let (code, out) = run_args(&[
            "query",
            &trace_path,
            "forall s in S [ Bus_busy(s) + Bus_free(s) = 1 ]",
        ]);
        assert_eq!(code, 0);
        assert!(out.contains("HOLDS"));

        let (code, out) = run_args(&["query", &trace_path, "exists s in S [ Bus_free(s) = 2 ]"]);
        assert_eq!(code, 2, "false property exits 2");
        assert!(out.contains("FAILS"));
    }

    #[test]
    fn filter_and_anim_and_timeline() {
        let dir = tmpdir("tools");
        let model = write_model(&dir);
        let trace_path = dir.join("t.json").to_string_lossy().into_owned();
        run_args(&["sim", &model, "--until", "50", "-o", &trace_path]);

        let small = dir.join("small.json").to_string_lossy().into_owned();
        let (code, _) = run_args(&["filter", &trace_path, "--place", "Bus_busy", "-o", &small]);
        assert_eq!(code, 0);
        let full = load_trace(&trace_path).unwrap();
        let filtered = load_trace(&small).unwrap();
        assert!(filtered.deltas().len() < full.deltas().len());

        let (code, out) = run_args(&["anim", &trace_path, "--max-frames", "3"]);
        assert_eq!(code, 0);
        assert!(out.contains("frame 1"));
        assert!(!out.contains("frame 4"));

        let (code, out) = run_args(&[
            "timeline",
            &trace_path,
            "--from",
            "0",
            "--to",
            "20",
            "--probe",
            "Bus_busy",
            "--fn",
            "sum=Bus_busy + Bus_free",
        ]);
        assert_eq!(code, 0);
        assert!(out.contains("Bus_busy"));
        assert!(out.contains("sum"));
    }

    #[test]
    fn reach_with_ctl_and_cover_and_cycle() {
        let dir = tmpdir("verify");
        let model = write_model(&dir);

        let (code, out) = run_args(&["reach", &model, "--ctl", "AG (Bus_free + Bus_busy = 1)"]);
        assert_eq!(code, 0);
        assert!(out.contains("HOLDS"));

        let (code, out) = run_args(&["reach", &model, "--ctl", "AG (Bus_busy = 0)"]);
        assert_eq!(code, 2);
        assert!(out.contains("FAILS"));

        let (code, out) = run_args(&["cover", &model]);
        assert_eq!(code, 0);
        assert!(out.contains("bounded"));

        // cycle needs firing times; write a marked-graph model.
        let ring = dir.join("ring.pn");
        fs::write(
            &ring,
            "net ring\nplace a = 1\nplace b = 0\n\
             trans t0\n  in a\n  out b\n  firing 3\nend\n\
             trans t1\n  in b\n  out a\n  firing 2\nend\n",
        )
        .unwrap();
        let (code, out) = run_args(&["cycle", &ring.to_string_lossy()]);
        assert_eq!(code, 0);
        assert!(out.contains("cycle time: 5"));
        assert!(out.contains("t0"));
    }

    #[test]
    fn markov_subcommand_reports_steady_state() {
        let dir = tmpdir("markov");
        let ring = dir.join("ring.pn");
        fs::write(
            &ring,
            "net ring\nplace a = 1\nplace b = 0\n\
             trans t0\n  in a\n  out b\n  firing 3\nend\n\
             trans t1\n  in b\n  out a\n  firing 1\nend\n",
        )
        .unwrap();
        let (code, out) = run_args(&["markov", &ring.to_string_lossy()]);
        assert_eq!(code, 0);
        assert!(out.contains("0.250000"), "throughput 1/4: {out}");
    }

    #[test]
    fn heatmap_and_measure_subcommands() {
        let dir = tmpdir("hm");
        let model = write_model(&dir);
        let trace_path = dir.join("t.json").to_string_lossy().into_owned();
        run_args(&["sim", &model, "--until", "200", "-o", &trace_path]);

        let (code, out) = run_args(&["heatmap", &trace_path]);
        assert_eq!(code, 0);
        assert!(out.contains("ACTIVITY HEATMAP"));
        assert!(out.contains("Bus_busy"));

        let (code, out) = run_args(&[
            "measure",
            &trace_path,
            "--pulses",
            "Bus_busy",
            "--intervals",
            "seize",
            "--latency",
            "seize,release",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("pulses(Bus_busy)"));
        assert!(out.contains("intervals(seize)"));
        assert!(out.contains("latency(seize -> release)"));

        let mut s = String::new();
        assert!(run(&["measure".to_string(), trace_path], &mut s).is_err());
    }

    #[test]
    fn dot_subcommand_renders_graphviz() {
        let dir = tmpdir("dot");
        let model = write_model(&dir);
        let (code, out) = run_args(&["dot", &model]);
        assert_eq!(code, 0);
        assert!(out.starts_with("digraph"));
        assert!(out.contains("Bus_free"));
    }

    #[test]
    fn print_canonicalizes_roundtrip() {
        let dir = tmpdir("print");
        let model = write_model(&dir);
        let (code, printed) = run_args(&["print", &model]);
        assert_eq!(code, 0);
        let reparsed = pnut_lang::parse(&printed).unwrap();
        assert_eq!(reparsed.name(), "bus");
    }

    #[test]
    fn reach_honors_max_states_and_jobs() {
        let dir = tmpdir("limits");
        let model = write_model(&dir);

        // The bus model has 2 states; capping below that must surface
        // the reach error (previously impossible: the cap was hard-coded).
        let mut out = String::new();
        let e = run(
            &["reach", &model, "--max-states", "1"]
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>(),
            &mut out,
        )
        .unwrap_err();
        assert!(e.to_string().contains("exceeds 1 state"), "{e}");

        // A parallel build returns the same report as the default.
        let (code, seq_out) = run_args(&["reach", &model]);
        assert_eq!(code, 0);
        let (code, par_out) = run_args(&["reach", &model, "--jobs", "4"]);
        assert_eq!(code, 0);
        assert_eq!(seq_out, par_out, "jobs must not change any output");

        // Raising the cap explicitly also works.
        let (code, out) = run_args(&["reach", &model, "--max-states", "500000"]);
        assert_eq!(code, 0);
        assert!(out.contains("2 states"));
    }

    #[test]
    fn cover_and_markov_honor_max_states_and_jobs() {
        let dir = tmpdir("limits2");
        let model = write_model(&dir);
        let (code, out) = run_args(&["cover", &model, "--max-states", "10", "--jobs", "2"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("bounded"));

        let ring = dir.join("ring.pn");
        fs::write(
            &ring,
            "net ring\nplace a = 1\nplace b = 0\n\
             trans t0\n  in a\n  out b\n  firing 3\nend\n\
             trans t1\n  in b\n  out a\n  firing 1\nend\n",
        )
        .unwrap();
        let ring = ring.to_string_lossy().into_owned();
        let (code, seq_out) = run_args(&["markov", &ring]);
        let (code2, par_out) = run_args(&["markov", &ring, "--jobs", "4", "--max-states", "100"]);
        assert_eq!((code, code2), (0, 0));
        assert_eq!(seq_out, par_out);

        let mut s = String::new();
        let e = run(
            &[
                "markov".to_string(),
                ring,
                "--max-states".to_string(),
                "1".to_string(),
            ],
            &mut s,
        )
        .unwrap_err();
        assert!(e.to_string().contains("exceeds 1 state"), "{e}");
    }

    #[test]
    fn timed_reach_and_markov_cover_enabling_time_models() {
        // The checked-in bus model uses enabling times on both
        // transitions — the flagship `reach --timed` path used to
        // reject it outright (`EnablingTimesUnsupported`).
        let dir = tmpdir("timed");
        let model = write_model(&dir);
        let (code, out) = run_args(&[
            "reach",
            &model,
            "--timed",
            "--ctl",
            "AG (Bus_free + Bus_busy = 1)",
        ]);
        assert_eq!(code, 0, "{out}");
        // (free, seize armed 1) -A-> (seize expired) -Fire-> (busy,
        // release armed 2) -A-> (release expired) -Fire-> start.
        assert!(out.contains("4 states"), "{out}");
        assert!(out.contains("HOLDS"), "{out}");
        // Timed builds stay bit-identical across jobs and budgets.
        let (c1, seq) = run_args(&["reach", &model, "--timed"]);
        let (c2, par) = run_args(&[
            "reach",
            &model,
            "--timed",
            "--jobs",
            "4",
            "--mem-budget",
            "64KiB",
        ]);
        assert_eq!((c1, c2), (0, 0));
        assert_eq!(seq, par, "jobs/budget must not change the timed report");
        // markov analyzes the same class: one seize per 3-tick cycle.
        let (code, out) = run_args(&["markov", &model]);
        assert_eq!(code, 0, "{out}");
        assert!(
            out.contains("0.333333"),
            "seize fires once per 3 ticks: {out}"
        );
    }

    // The obs recorder is process-global; tests that install it (any
    // test passing --stats/--metrics-json/--progress) serialize here.
    static OBS_TESTS: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn obs_serial<'a>() -> std::sync::MutexGuard<'a, ()> {
        OBS_TESTS.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn stats_flags_leave_stdout_byte_identical() {
        let _g = obs_serial();
        let dir = tmpdir("obsflags");
        let model = write_model(&dir);
        let (code, plain) = run_args(&["reach", &model, "--timed"]);
        assert_eq!(code, 0);
        let metrics = dir.join("m.ndjson").to_string_lossy().into_owned();
        let (code, observed) = run_args(&[
            "reach",
            &model,
            "--timed",
            "--stats",
            "--metrics-json",
            &metrics,
            "--progress=2",
        ]);
        assert_eq!(code, 0);
        assert_eq!(plain, observed, "observability must not touch stdout");

        let text = fs::read_to_string(&metrics).unwrap();
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            r#"{"type":"meta","version":1,"tool":"reach"}"#
        );
        assert!(
            text.contains(r#""name":"store.misses","value":4"#),
            "4 timed states interned: {text}"
        );
        assert!(text.contains(r#""type":"span","path":"build""#), "{text}");
        assert!(text.contains(r#""path":"parse""#), "{text}");
    }

    #[test]
    fn stats_flags_cover_all_tools() {
        let _g = obs_serial();
        let dir = tmpdir("obstools");
        let model = write_model(&dir);
        for (tool, extra) in [("cover", None), ("markov", None), ("sim", Some("--until"))] {
            let metrics = dir
                .join(format!("{tool}.ndjson"))
                .to_string_lossy()
                .into_owned();
            let mut argv = vec![tool, &model, "--stats", "--metrics-json", &metrics];
            if let Some(flag) = extra {
                argv.push(flag);
                argv.push("50");
            }
            let (code, _) = run_args(&argv);
            assert_eq!(code, 0, "{tool}");
            let text = fs::read_to_string(&metrics).unwrap();
            assert!(
                text.starts_with(&format!(r#"{{"type":"meta","version":1,"tool":"{tool}"}}"#)),
                "{tool}: {text}"
            );
        }
    }

    #[test]
    fn sim_with_stats_counts_events() {
        let _g = obs_serial();
        let dir = tmpdir("obssim");
        let model = write_model(&dir);
        let metrics = dir.join("sim.ndjson").to_string_lossy().into_owned();
        let (code, _) = run_args(&["sim", &model, "--until", "30", "--metrics-json", &metrics]);
        assert_eq!(code, 0);
        let text = fs::read_to_string(&metrics).unwrap();
        let events = text
            .lines()
            .find(|l| l.contains(r#""name":"sim.events""#))
            .unwrap();
        assert!(
            !events.contains(r#""value":0"#),
            "the bus model fires in 30 ticks: {events}"
        );
    }

    #[test]
    fn bad_progress_values_are_usage_errors() {
        let _g = obs_serial();
        let dir = tmpdir("obsbad");
        let model = write_model(&dir);
        for bad in ["--progress=abc", "--progress=0", "--progress=-1"] {
            let argv: Vec<String> = ["reach", &model, bad]
                .iter()
                .map(|s| s.to_string())
                .collect();
            let mut out = String::new();
            let e = run(&argv, &mut out).unwrap_err();
            assert!(e.to_string().contains("--progress"), "{bad}: {e}");
        }
    }

    #[test]
    fn byte_sizes_parse_with_binary_suffixes() {
        assert_eq!(parse_byte_size("65536"), Some(65536));
        assert_eq!(parse_byte_size("64KiB"), Some(64 * 1024));
        assert_eq!(parse_byte_size("64kb"), Some(64 * 1024));
        assert_eq!(parse_byte_size("2M"), Some(2 << 20));
        assert_eq!(parse_byte_size("1GiB"), Some(1 << 30));
        assert_eq!(parse_byte_size("512B"), Some(512));
        assert_eq!(parse_byte_size("unlimited"), Some(usize::MAX));
        assert_eq!(parse_byte_size("64 KiB"), Some(64 * 1024));
        assert_eq!(parse_byte_size("lots"), None);
        assert_eq!(parse_byte_size("1.5M"), None);
        assert_eq!(parse_byte_size(""), None);
    }

    #[test]
    fn reach_mem_budget_pages_without_changing_output() {
        let dir = tmpdir("budget");
        let model = write_model(&dir);
        // The bus model fits any budget; the flag must parse and the
        // report must match the unpaged run exactly (the paging line
        // only appears when something actually spilled).
        let (code, default_out) = run_args(&["reach", &model]);
        assert_eq!(code, 0);
        let spill = dir.join("spill").to_string_lossy().into_owned();
        fs::create_dir_all(dir.join("spill")).unwrap();
        let (code, paged_out) = run_args(&[
            "reach",
            &model,
            "--mem-budget",
            "64KiB",
            "--spill-dir",
            &spill,
        ]);
        assert_eq!(code, 0);
        assert_eq!(paged_out, default_out, "budget must not change results");

        // Garbage budgets are usage errors.
        let mut s = String::new();
        let e = run(
            &["reach", &model, "--mem-budget", "lots"]
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>(),
            &mut s,
        )
        .unwrap_err();
        assert!(e.to_string().contains("--mem-budget"), "{e}");

        // markov accepts the same flags.
        let ring = dir.join("ring.pn");
        fs::write(
            &ring,
            "net ring\nplace a = 1\nplace b = 0\n\
             trans t0\n  in a\n  out b\n  firing 3\nend\n\
             trans t1\n  in b\n  out a\n  firing 1\nend\n",
        )
        .unwrap();
        let ring = ring.to_string_lossy().into_owned();
        let (code, plain) = run_args(&["markov", &ring]);
        let (code2, paged) = run_args(&["markov", &ring, "--mem-budget", "1MiB"]);
        assert_eq!((code, code2), (0, 0));
        assert_eq!(plain, paged);
    }

    #[test]
    fn cover_warns_about_ignored_flags_but_still_runs() {
        // The warnings go to stderr; the report itself must be
        // unaffected by the ignored flags.
        let dir = tmpdir("coverwarn");
        let model = write_model(&dir);
        let (code, plain) = run_args(&["cover", &model]);
        assert_eq!(code, 0);
        let (code, with_flags) =
            run_args(&["cover", &model, "--jobs", "4", "--mem-budget", "64KiB"]);
        assert_eq!(code, 0);
        assert_eq!(plain, with_flags);
    }

    #[test]
    fn bad_limit_flags_are_usage_errors_not_panics() {
        let dir = tmpdir("badflags");
        let model = write_model(&dir);
        for argv in [
            vec!["reach", &model, "--max-states", "abc"],
            vec!["reach", &model, "--jobs", "-3"],
            vec!["reach", &model, "--max-states", "0"],
            vec!["cover", &model, "--max-states", "many"],
            vec!["markov", &model, "--jobs", "2.5"],
        ] {
            let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
            let mut out = String::new();
            let e = run(&argv, &mut out).unwrap_err();
            assert!(
                e.to_string().contains("--max-states") || e.to_string().contains("--jobs"),
                "unhelpful error: {e}"
            );
        }
    }

    #[test]
    fn filter_reports_truncated_traces_instead_of_panicking() {
        let dir = tmpdir("trunc");
        let model = write_model(&dir);
        let trace_path = dir.join("t.json").to_string_lossy().into_owned();
        run_args(&["sim", &model, "--until", "50", "-o", &trace_path]);
        // Chop the file mid-JSON: the load fails with a diagnostic (and
        // the replay-completeness path behind it is a CliError now, not
        // an expect).
        let full = fs::read_to_string(&trace_path).unwrap();
        let cut = dir.join("cut.json");
        fs::write(&cut, &full[..full.len() / 2]).unwrap();
        let mut out = String::new();
        let e = run(
            &["filter".to_string(), cut.to_string_lossy().into_owned()],
            &mut out,
        )
        .unwrap_err();
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn usage_errors_are_reported() {
        let mut out = String::new();
        assert!(run(&["stat".to_string()], &mut out).is_err());
        assert!(run(&["sim".to_string(), "nonexistent.pn".to_string()], &mut out).is_err());
        assert!(run(
            &[
                "sim".to_string(),
                "x.pn".to_string(),
                "--until".to_string(),
                "abc".to_string()
            ],
            &mut out
        )
        .is_err());
    }

    /// The acceptance fixture: one provably dead transition (`dead_t`
    /// starves on `z`, bound 0 by the invariant `z = 0`), one uncovered
    /// place (`mint` forges tokens into `u`), one out-of-range constant
    /// table write (`tab[5]` on a 3-entry table) — and nothing else.
    fn write_bad_model(dir: &std::path::Path) -> String {
        let model = dir.join("bad.pn");
        fs::write(
            &model,
            "net bad\ntable tab = 1 2 3\n\
             place a = 1\nplace b = 0\nplace z = 0\nplace u = 1\n\
             trans go\n  in a\n  out b\nend\n\
             trans back\n  in b\n  out a\n  act tab[5] = tab[0] + 1;\nend\n\
             trans mint\n  in a\n  out a u\nend\n\
             trans burn\n  in u*2\n  out u\nend\n\
             trans dead_t\n  in z a\n  out z a\nend\n",
        )
        .unwrap();
        model.to_string_lossy().into_owned()
    }

    #[test]
    fn lint_clean_model_exits_zero() {
        let dir = tmpdir("lintok");
        let model = write_model(&dir);
        let (code, out) = run_args(&["lint", &model]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("model `bus`"), "{out}");
        assert!(out.contains("bound(Bus_free) = 1"), "{out}");
        assert!(out.contains("summary: 0 error(s)"), "{out}");
    }

    #[test]
    fn lint_bad_model_yields_exactly_three_findings() {
        let dir = tmpdir("lintbad");
        let model = write_bad_model(&dir);

        let (code, out) = run_args(&["lint", &model]);
        assert_eq!(code, 2, "error findings exit 2: {out}");
        assert!(out.contains("error[dead-transition] dead_t"), "{out}");
        assert!(out.contains("error[const-table-index] tab[5]"), "{out}");
        assert!(out.contains("warn[unbounded-place] u"), "{out}");
        assert!(out.contains("summary: 2 error(s), 1 warning(s)"), "{out}");
        let findings = out
            .lines()
            .filter(|l| {
                let l = l.trim_start();
                l.starts_with("error[") || l.starts_with("warn[") || l.starts_with("info[")
            })
            .count();
        assert_eq!(findings, 3, "exactly three findings: {out}");

        let (code, json) = run_args(&["lint", &model, "--json"]);
        assert_eq!(code, 2, "{json}");
        let mut lines = json.lines();
        assert_eq!(
            lines.next().unwrap(),
            r#"{"type":"meta","version":1,"tool":"lint"}"#
        );
        let findings = json
            .lines()
            .filter(|l| l.starts_with(r#"{"type":"finding""#))
            .count();
        assert_eq!(findings, 3, "{json}");
        assert!(json.contains(r#""code":"dead-transition""#), "{json}");
        assert!(json.contains(r#""code":"const-table-index""#), "{json}");
        assert!(json.contains(r#""code":"unbounded-place""#), "{json}");
        assert!(
            json.contains(r#""errors":2,"warnings":1,"infos":0"#),
            "{json}"
        );
    }

    #[test]
    fn lint_takes_several_files_and_requires_one() {
        let dir = tmpdir("lintmulti");
        let ok = write_model(&dir);
        let bad = write_bad_model(&dir);
        // Worst finding across all files decides the exit code.
        let (code, out) = run_args(&["lint", &ok, &bad]);
        assert_eq!(code, 2);
        assert!(
            out.contains("model `bus`") && out.contains("model `bad`"),
            "{out}"
        );

        let mut s = String::new();
        let e = run(&["lint".to_string()], &mut s).unwrap_err();
        assert!(e.to_string().contains("model file"), "{e}");
    }

    #[test]
    fn reach_check_invariants_flag_reports_and_stays_identical() {
        let dir = tmpdir("reachinv");
        let model = write_model(&dir);
        let (code, plain) = run_args(&["reach", &model]);
        assert_eq!(code, 0);
        let (code, checked) = run_args(&["reach", &model, "--check-invariants"]);
        assert_eq!(code, 0, "{checked}");
        assert!(
            checked.contains("P-invariant check: 2 state(s) x 1 invariant(s) hold"),
            "{checked}"
        );
        // The flag only appends its verdict line; the report proper is
        // untouched.
        let stripped: String = checked
            .lines()
            .filter(|l| !l.contains("P-invariant check"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(stripped, plain);
    }
}
