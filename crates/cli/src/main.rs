#![forbid(unsafe_code)]

//! The `pnut` binary: thin wrapper over [`pnut_cli::run`].

use std::process::ExitCode;

fn main() -> ExitCode {
    // Test hook: arm the pager's spill-read fault injection before the
    // command runs, so integration tests can drive a reload failure
    // end to end through the real binary (see tests/cli_spill_errors.rs).
    if let Ok(n) = std::env::var("PNUT_TEST_FAIL_SPILL_READ") {
        if let Ok(n) = n.parse::<u64>() {
            pnut_reach::pager::fail::fail_nth_spill_read(n);
        }
    }
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut out = String::new();
    match pnut_cli::run(&argv, &mut out) {
        Ok(code) => {
            print!("{out}");
            ExitCode::from(u8::try_from(code).unwrap_or(1))
        }
        // No partial report: a failed command contributes nothing to
        // stdout, so downstream parsers never see a truncated table.
        Err(e) => {
            eprintln!("pnut: error: {e}");
            ExitCode::from(1)
        }
    }
}
