#![forbid(unsafe_code)]

//! The `pnut` binary: thin wrapper over [`pnut_cli::run`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut out = String::new();
    match pnut_cli::run(&argv, &mut out) {
        Ok(code) => {
            print!("{out}");
            ExitCode::from(u8::try_from(code).unwrap_or(1))
        }
        Err(e) => {
            print!("{out}");
            eprintln!("pnut: {e}");
            ExitCode::from(1)
        }
    }
}
