#![forbid(unsafe_code)]

//! Construction cost of the reachability engine: the interned
//! `StateStore` + CSR build in `pnut_reach` versus the frozen seed
//! construction ([`pnut_bench::legacy_reach`]) on the paper's state
//! spaces, plus a peak-memory comparison of the two layouts.
//!
//! Set `PNUT_BENCH_JSON=BENCH_reach.json` to append one JSON line per
//! measurement (timings from the harness, `reach/mem/...` and
//! `reach/speedup/...` lines from the summary pass).

use criterion::{criterion_group, Criterion};
use pnut_bench::{legacy_reach, workloads};
use pnut_core::expr::compile::{CompiledNet, EnvSlots, Scratch};
use pnut_core::{Delay, Net};
use pnut_reach::ctl;
use pnut_reach::graph::{build_timed, build_untimed, ReachOptions, ReachabilityGraph};
use std::io::Write as _;
use std::time::Instant;

const OPTIONS: ReachOptions = ReachOptions {
    max_states: 100_000,
    jobs: 1,
    mem_budget: usize::MAX,
    spill_dir: None,
};

/// [`OPTIONS`] with a resident-arena byte budget (cold level segments
/// spill to a temp file past it — see `pnut_reach::pager`).
fn with_budget(mem_budget: usize) -> ReachOptions {
    ReachOptions {
        mem_budget,
        ..OPTIONS
    }
}

fn untimed_workloads() -> Vec<(&'static str, Net)> {
    vec![
        ("three_stage", workloads::three_stage_net()),
        ("interpreted", workloads::interpreted_net()),
    ]
}

fn bench_untimed(c: &mut Criterion) {
    for (name, net) in untimed_workloads() {
        let mut g = c.benchmark_group(format!("reach/untimed/{name}"));
        g.bench_function("interned", |b| {
            b.iter(|| build_untimed(&net, &OPTIONS).expect("bounded"))
        });
        g.bench_function("baseline", |b| {
            b.iter(|| legacy_reach::build_untimed(&net, &OPTIONS).expect("bounded"))
        });
        g.finish();
    }
}

fn bench_timed(c: &mut Criterion) {
    let net = workloads::timed_fragment(6);
    let mut g = c.benchmark_group("reach/timed/fragment");
    g.bench_function("interned", |b| {
        b.iter(|| build_timed(&net, &OPTIONS).expect("bounded"))
    });
    g.bench_function("baseline", |b| {
        b.iter(|| legacy_reach::build_timed(&net, &OPTIONS).expect("bounded"))
    });
    g.finish();
    // The full paper pipelines became timed-checkable with the
    // enabling-clock state extension. The frozen seed rejects them
    // (no `baseline` series); their trend is gated through the
    // timed-vs-untimed ratios exported by `summary()`.
    for (name, net) in untimed_workloads() {
        let mut g = c.benchmark_group(format!("reach/timed/{name}"));
        g.bench_function("interned", |b| {
            b.iter(|| build_timed(&net, &OPTIONS).expect("bounded"))
        });
        g.finish();
    }
}

/// Worker counts measured by the parallel series: sequential, the
/// fixed jobs = 4 point, and every available core (deduplicated, so on
/// a 4-core runner this is `[1, 4]`).
fn job_series() -> Vec<usize> {
    let max = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut series = vec![1, 4, max];
    series.sort_unstable();
    series.dedup();
    series
}

/// Parallel frontier exploration at each job count, on the paper's
/// interpreted pipeline (narrow frontiers ≤ 64 states: measures the
/// level-machinery overhead) and on the wide toggle lattice (frontiers
/// thousands of states wide: measures actual scaling).
fn bench_parallel(c: &mut Criterion) {
    for (name, net) in [
        ("interpreted", workloads::interpreted_net()),
        ("wide_toggle", workloads::wide_toggle(15)),
    ] {
        let mut g = c.benchmark_group(format!("reach/parallel/{name}"));
        for jobs in job_series() {
            let options = ReachOptions { jobs, ..OPTIONS };
            g.bench_function(format!("j{jobs}"), |b| {
                b.iter(|| build_untimed(&net, &options).expect("bounded"))
            });
        }
        g.finish();
    }
}

/// Budgets for the spill series on the 8192-state toggle lattice:
/// `resident` (unlimited — the pager in place but never evicting) and
/// two budgets that force progressively harder eviction churn.
fn spill_series() -> Vec<(&'static str, usize)> {
    vec![
        ("resident", usize::MAX),
        ("b1m", 1 << 20),
        ("b64k", 64 << 10),
    ]
}

/// Paged construction under shrinking memory budgets: `resident`
/// measures the pager's bookkeeping overhead alone; the byte-budget
/// points add segment eviction, spill-file writes, and reload faults.
fn bench_spill(c: &mut Criterion) {
    let net = workloads::wide_toggle(13);
    let mut g = c.benchmark_group("reach/spill/wide_toggle");
    for (tag, budget) in spill_series() {
        let options = with_budget(budget);
        g.bench_function(tag, |b| {
            b.iter(|| build_untimed(&net, &options).expect("bounded"))
        });
    }
    g.finish();
}

/// Segment-ordered analysis sweeps under a byte budget: a CTL `AG`
/// invariant check (whose `EU` fixpoint re-sweeps the whole graph
/// until stable) on the 8192-state toggle lattice, at `resident`
/// (pager in place, nothing evicted) and at a 64 KiB budget (every
/// sweep streams all state *and* edge segments through the window).
/// The gated number is the ratio between the two: if the analyses
/// regress to random-access fault storms, the budgeted sweep collapses
/// and the ratio with it.
fn bench_paged_analysis(c: &mut Criterion) {
    let net = workloads::wide_toggle(13);
    let formula = ctl::Formula::parse("AG (u0 + d0 = 1)").expect("parses");
    let mut g = c.benchmark_group("reach/paged_analysis/wide_toggle");
    for (tag, budget) in [("resident", usize::MAX), ("b64k", 64 << 10)] {
        let mut graph = build_untimed(&net, &with_budget(budget)).expect("bounded");
        g.bench_function(tag, |b| {
            b.iter(|| {
                let outcome = ctl::check(&mut graph, &net, &formula).expect("checks");
                assert!(outcome.holds_initially, "lattice invariant must hold");
                outcome.satisfying.len()
            })
        });
    }
    g.finish();
}

/// The per-state expression workload the explorer pays on every visit:
/// evaluate the predicate, apply the action to a fresh successor
/// environment, and resolve any expression delays — here run over every
/// reachable state of a built graph, on the tree interpreter.
fn ast_sweep(net: &Net, g: &ReachabilityGraph) -> u64 {
    let mut acc = 0u64;
    for i in 0..g.state_count() {
        let env = g.state(i).expect("resident bench graph").env;
        for (_, t) in net.transitions() {
            if let Some(p) = t.predicate() {
                acc += u64::from(matches!(
                    p.eval_pure(env).and_then(|v| v.as_bool()),
                    Ok(true)
                ));
            }
            if let Some(a) = t.action() {
                let mut next = env.clone();
                acc += u64::from(a.apply_pure(&mut next).is_ok());
            }
            for d in [t.firing_time(), t.enabling_time()] {
                if let Delay::Expr(e) = d {
                    if let Ok(v) = e.eval_pure(env).and_then(|v| v.as_int()) {
                        acc = acc.wrapping_add(v as u64);
                    }
                }
            }
        }
    }
    acc
}

/// The same workload as [`ast_sweep`], on the bytecode evaluator: slot
/// loads instead of name lookups, a slot-file copy instead of an `Env`
/// clone, flat register programs instead of tree walks.
fn bytecode_sweep(g: &ReachabilityGraph, programs: &CompiledNet) -> u64 {
    let mut acc = 0u64;
    let mut cur = EnvSlots::new();
    let mut next = EnvSlots::new();
    let mut vm = Scratch::new();
    for i in 0..g.state_count() {
        cur.load(&programs.map, g.state(i).expect("resident bench graph").env);
        for ct in &programs.transitions {
            if let Some(p) = &ct.predicate {
                acc += u64::from(matches!(
                    p.eval_pure(&cur, &programs.map, &mut vm)
                        .and_then(|v| v.as_bool()),
                    Ok(true)
                ));
            }
            if let Some(a) = &ct.action {
                next.copy_from(&cur);
                acc += u64::from(a.apply_pure(&mut next, &programs.map, &mut vm).is_ok());
            }
            for p in [&ct.firing, &ct.enabling].into_iter().flatten() {
                if let Ok(v) = p
                    .eval_pure(&cur, &programs.map, &mut vm)
                    .and_then(|v| v.as_int())
                {
                    acc = acc.wrapping_add(v as u64);
                }
            }
        }
    }
    acc
}

/// Compiled expression evaluation vs the tree interpreter, as the
/// explorer's per-state sweep over every state of the built graph. The
/// interpreted pipeline is the expression-heavy model (predicates,
/// actions, table lookups on most transitions) and carries the gated
/// ratio; the three-stage pipeline has *no* expressions, so its series
/// documents the no-op floor — nets without predicates or actions pay
/// nothing for the compilation layer.
fn bench_compiled(c: &mut Criterion) {
    for (name, net) in untimed_workloads() {
        let g = build_untimed(&net, &OPTIONS).expect("bounded");
        let programs = CompiledNet::compile(&net).expect("paper models compile");
        let mut group = c.benchmark_group(format!("reach/compiled/{name}"));
        group.bench_function("ast", |b| b.iter(|| ast_sweep(&net, &g)));
        group.bench_function("bytecode", |b| b.iter(|| bytecode_sweep(&g, &programs)));
        group.finish();
    }
}

/// Wall time of the full static-analysis pass (`pnut_analysis::lint`)
/// on the paper pipelines: invariant bounds, dead-net detection, and
/// the expression lint, end to end. Purely structural — no graph is
/// built — so this is the cost `pnut lint` adds on top of parsing.
fn bench_lint(c: &mut Criterion) {
    let mut g = c.benchmark_group("lint");
    for (name, net) in untimed_workloads() {
        g.bench_function(name, |b| b.iter(|| pnut_analysis::lint(&net)));
    }
    g.finish();
}

criterion_group!(
    reach,
    bench_untimed,
    bench_timed,
    bench_parallel,
    bench_spill,
    bench_paged_analysis,
    bench_compiled,
    bench_lint
);

fn export(name: &str, key: &str, value: f64) {
    let Ok(path) = std::env::var("PNUT_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = writeln!(f, "{{\"name\":\"{name}\",\"{key}\":{value:.1}}}");
    }
}

/// Min-of-N wall clock for one builder, in nanoseconds.
fn min_ns<G>(runs: usize, mut build: impl FnMut() -> G) -> f64 {
    (0..runs)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(build());
            start.elapsed().as_nanos() as f64
        })
        .fold(f64::INFINITY, f64::min)
}

/// Head-to-head speedup and memory summary, printed after the harness
/// runs and exported alongside its JSON lines.
fn summary() {
    println!("\n-- interned vs. seed baseline (min of 10 builds) --");
    let report = |name: &str,
                  interned: &dyn Fn() -> ReachabilityGraph,
                  baseline: &dyn Fn() -> legacy_reach::LegacyGraph| {
        let fast = min_ns(10, interned);
        let slow = min_ns(10, baseline);
        let speedup = slow / fast;
        let g = interned();
        let l = baseline();
        let shrink = l.approx_bytes() as f64 / g.approx_bytes() as f64;
        println!(
            "{name:<24} {:>7} states  speedup {speedup:>5.2}x  memory {:>8} vs {:>8} B ({shrink:.2}x smaller)",
            g.state_count(),
            g.approx_bytes(),
            l.approx_bytes(),
        );
        export(&format!("reach/speedup/{name}"), "ratio", speedup);
        export(
            &format!("reach/mem/{name}/interned"),
            "bytes",
            g.approx_bytes() as f64,
        );
        export(
            &format!("reach/mem/{name}/baseline"),
            "bytes",
            l.approx_bytes() as f64,
        );
    };
    for (name, net) in untimed_workloads() {
        report(
            name,
            &|| build_untimed(&net, &OPTIONS).expect("bounded"),
            &|| legacy_reach::build_untimed(&net, &OPTIONS).expect("bounded"),
        );
    }
    let net = workloads::timed_fragment(6);
    report(
        "timed_fragment",
        &|| build_timed(&net, &OPTIONS).expect("bounded"),
        &|| legacy_reach::build_timed(&net, &OPTIONS).expect("bounded"),
    );

    // Timed pipeline series (enabling clocks; the frozen seed rejects
    // these nets, so there is no legacy baseline). The gated trend
    // number is the per-state cost of the timed build relative to the
    // untimed build of the same net, normalized by their state counts —
    // a regression in the enabling-clock successor path drags the ratio
    // down while staying immune to absolute machine speed.
    println!("\n-- timed pipelines (enabling clocks; min of 10 builds) --");
    for (name, net) in untimed_workloads() {
        let untimed_ns = min_ns(10, || build_untimed(&net, &OPTIONS).expect("bounded"));
        let timed_ns = min_ns(10, || build_timed(&net, &OPTIONS).expect("bounded"));
        let untimed_g = build_untimed(&net, &OPTIONS).expect("bounded");
        let timed_g = build_timed(&net, &OPTIONS).expect("bounded");
        let per_state_untimed = untimed_ns / untimed_g.state_count() as f64;
        let per_state_timed = timed_ns / timed_g.state_count() as f64;
        let ratio = per_state_untimed / per_state_timed;
        println!(
            "timed/{name:<17} {:>7} states  {per_state_timed:>7.0} ns/state \
             ({ratio:.2}x of untimed per-state cost)",
            timed_g.state_count(),
        );
        export(&format!("reach/speedup/timed/{name}"), "ratio", ratio);
    }

    // Compiled-evaluation series (gates the bytecode layer): the same
    // per-state expression sweep on both evaluators. Only the
    // expression-heavy interpreted pipeline is exported/gated — the
    // three-stage sweep is a no-op on both sides (no expressions) and
    // its ratio would gate nothing but loop noise.
    println!("\n-- compiled expression sweep vs AST interpreter (min of 10 sweeps) --");
    for (name, net) in untimed_workloads() {
        let g = build_untimed(&net, &OPTIONS).expect("bounded");
        let programs = CompiledNet::compile(&net).expect("paper models compile");
        let ast = min_ns(10, || ast_sweep(&net, &g));
        let bytecode = min_ns(10, || bytecode_sweep(&g, &programs));
        let ratio = ast / bytecode;
        println!(
            "compiled/{name:<15} {:>7} states  speedup {ratio:>5.2}x over the tree interpreter",
            g.state_count(),
        );
        if name == "interpreted" {
            export("reach/speedup/compiled/interpreted", "ratio", ratio);
        }
    }

    println!("\n-- parallel frontier vs. sequential (min of 5 builds) --");
    for (name, net) in [
        ("interpreted", workloads::interpreted_net()),
        ("wide_toggle", workloads::wide_toggle(15)),
    ] {
        let seq = min_ns(5, || build_untimed(&net, &OPTIONS).expect("bounded"));
        for jobs in job_series().into_iter().filter(|&j| j > 1) {
            let options = ReachOptions { jobs, ..OPTIONS };
            let par = min_ns(5, || build_untimed(&net, &options).expect("bounded"));
            let speedup = seq / par;
            println!("{name:<24} jobs {jobs:>2}  speedup {speedup:>5.2}x vs sequential");
            export(
                &format!("reach/speedup/parallel/{name}/j{jobs}"),
                "ratio",
                speedup,
            );
        }
    }

    // Spill-budget series (gates the pager): `resident` is the paged
    // engine at unlimited budget vs the frozen unpaged seed — this is
    // the ratio that must not sag (CI holds it to ≥ 0.9× of the
    // committed trend; the pager's bookkeeping is the only thing that
    // can move it). The budgeted points are measured against the
    // resident run and price eviction + reload churn itself.
    println!("\n-- paged store: spill-budget series on wide_toggle(13) (min of 5 builds) --");
    let net = workloads::wide_toggle(13);
    let legacy = min_ns(5, || {
        legacy_reach::build_untimed(&net, &OPTIONS).expect("bounded")
    });
    let resident = min_ns(5, || {
        build_untimed(&net, &with_budget(usize::MAX)).expect("bounded")
    });
    let ratio = legacy / resident;
    println!("wide_toggle resident     speedup {ratio:>5.2}x vs unpaged seed");
    export("reach/speedup/spill/wide_toggle/resident", "ratio", ratio);
    for (tag, budget) in spill_series().into_iter().filter(|&(_, b)| b != usize::MAX) {
        let t = min_ns(5, || {
            build_untimed(&net, &with_budget(budget)).expect("bounded")
        });
        let ratio = resident / t;
        println!("wide_toggle {tag:<12} {ratio:>5.2}x of the resident-budget build");
        export(
            &format!("reach/speedup/spill/wide_toggle/{tag}"),
            "ratio",
            ratio,
        );
    }

    // Paged-analysis series (gates the segment-ordered read path): the
    // same CTL sweep on the same graph, budgeted vs resident. The
    // budgeted sweep streams every state + edge segment per fixpoint
    // iteration, so the ratio prices the seal/spill/fault machinery on
    // the *analysis* side; a regression to random-access faulting
    // (evict-everything-refault-everything churn) drags it down and
    // trips the CI `--min-frac-for` bound.
    println!("\n-- paged analyses: CTL AG sweep on wide_toggle(13) (min of 5 checks) --");
    let formula = ctl::Formula::parse("AG (u0 + d0 = 1)").expect("parses");
    let mut resident_graph = build_untimed(&net, &with_budget(usize::MAX)).expect("bounded");
    let resident_ns = min_ns(5, || {
        ctl::check(&mut resident_graph, &net, &formula).expect("checks")
    });
    let mut paged_graph = build_untimed(&net, &with_budget(64 << 10)).expect("bounded");
    let paged_ns = min_ns(5, || {
        ctl::check(&mut paged_graph, &net, &formula).expect("checks")
    });
    let ratio = resident_ns / paged_ns;
    println!("wide_toggle ctl @64KiB   {ratio:>5.2}x of the resident-budget sweep");
    export(
        "reach/speedup/paged_analysis/wide_toggle/b64k",
        "ratio",
        ratio,
    );

    // Invariant-check series (gates `--check-invariants` through the
    // pager): the same P-invariant sweep over all 8192 states, on a
    // fully resident graph vs one squeezed to a 64 KiB budget. The
    // budgeted sweep must stream state segments in order through the
    // pager window; a regression to per-state refaulting collapses the
    // ratio and trips the CI `--min-frac-for` bound.
    println!(
        "\n-- invariant cross-check: P-invariant sweep on wide_toggle(13) (min of 5 sweeps) --"
    );
    let mut resident_graph = build_untimed(&net, &with_budget(usize::MAX)).expect("bounded");
    let resident_ns = min_ns(5, || {
        pnut_analysis::check_invariants(&net, &mut resident_graph).expect("invariants hold")
    });
    let mut paged_graph = build_untimed(&net, &with_budget(64 << 10)).expect("bounded");
    let paged_ns = min_ns(5, || {
        pnut_analysis::check_invariants(&net, &mut paged_graph).expect("invariants hold")
    });
    let ratio = resident_ns / paged_ns;
    println!("wide_toggle check @64KiB {ratio:>5.2}x of the resident-budget sweep");
    export("reach/check_invariants/wide_toggle", "ratio", ratio);

    // Observability-overhead series (gates `pnut_obs`): the same
    // interpreted-pipeline build with the recorder absent vs installed.
    // Every hot-path metric mutation is behind one relaxed load, so the
    // off/on ratio should sit at ~1.0; a counter placed inside an inner
    // loop (or a gate that stops being a single load) drags it down and
    // trips the CI `--min-frac-for` bound of 0.9.
    println!("\n-- observability: interpreted build, recorder off vs on (min of 10 builds) --");
    let obs_net = workloads::interpreted_net();
    let off_ns = min_ns(10, || build_untimed(&obs_net, &OPTIONS).expect("bounded"));
    pnut_obs::install();
    let on_ns = min_ns(10, || build_untimed(&obs_net, &OPTIONS).expect("bounded"));
    pnut_obs::uninstall();
    let ratio = off_ns / on_ns;
    println!("obs_overhead interpreted {ratio:>5.2}x of the recorder-off build (1.0 = free)");
    export("reach/obs_overhead/interpreted", "ratio", ratio);
}

fn main() {
    reach();
    summary();
}
