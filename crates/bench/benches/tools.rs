#![forbid(unsafe_code)]

//! Criterion benches for the analysis tools: statistics collection,
//! trace filtering, query evaluation, timeline sampling, reachability
//! construction, CTL checking, and the textual language.

use criterion::{criterion_group, criterion_main, Criterion};
use pnut_core::Time;
use pnut_pipeline::{three_stage, ThreeStageConfig};
use pnut_reach::{ctl, graph};
use pnut_stat::StatCollector;
use pnut_trace::{Filter, FilterSpec, RecordedTrace};
use pnut_tracer::query::Query;
use pnut_tracer::timeline::{Signal, Timeline};

fn paper_trace(cycles: u64) -> RecordedTrace {
    let net = three_stage::build(&ThreeStageConfig::default()).expect("builds");
    pnut_sim::simulate(&net, 1, Time::from_ticks(cycles)).expect("runs")
}

/// Replaying a 2 000-cycle trace through the stat tool (the Figure 5
/// analysis step in isolation).
fn bench_stat(c: &mut Criterion) {
    let trace = paper_trace(2_000);
    c.bench_function("tools/stat_replay_2k", |b| {
        b.iter(|| {
            let mut collector = StatCollector::new();
            trace.replay(&mut collector);
            collector.into_report().expect("complete")
        });
    });
}

/// The filtering tool on the same trace (keep the Figure 7 signals).
fn bench_filter(c: &mut Criterion) {
    let trace = paper_trace(2_000);
    let spec = FilterSpec::new()
        .keep_places(["Bus_busy", "pre_fetching", "fetching", "storing"])
        .keep_transitions(["Issue"]);
    c.bench_function("tools/filter_replay_2k", |b| {
        b.iter(|| {
            let mut filter = Filter::new(spec.clone(), pnut_trace::CountingSink::new());
            trace.replay(&mut filter);
            filter.into_inner()
        });
    });
}

/// The §4.4 bus-invariant query over a 2 000-cycle trace.
fn bench_query(c: &mut Criterion) {
    let trace = paper_trace(2_000);
    let q = Query::parse("forall s in S [ Bus_busy(s) + Bus_free(s) = 1 ]").expect("parses");
    c.bench_function("tools/query_invariant_2k", |b| {
        b.iter(|| q.check(&trace).expect("evaluates"));
    });
}

/// The Figure 7 timeline sampling (100-cycle window, 11 signals).
fn bench_timeline(c: &mut Criterion) {
    let trace = paper_trace(2_000);
    let signals = vec![
        Signal::place("Bus_busy"),
        Signal::place("pre_fetching"),
        Signal::place("fetching"),
        Signal::place("storing"),
        Signal::transition("exec_type_1"),
        Signal::transition("exec_type_5"),
        Signal::function(
            "all_exec",
            "exec_type_1 + exec_type_2 + exec_type_3 + exec_type_4 + exec_type_5",
        )
        .expect("parses"),
        Signal::place("Empty_I_buffers"),
    ];
    c.bench_function("tools/timeline_100_ticks", |b| {
        b.iter(|| {
            Timeline::sample(
                &trace,
                &signals,
                Time::from_ticks(100),
                Time::from_ticks(200),
            )
            .expect("samples")
        });
    });
}

/// Untimed reachability of the full §2 model.
fn bench_reachability(c: &mut Criterion) {
    let net = three_stage::build(&ThreeStageConfig::default()).expect("builds");
    c.bench_function("tools/reach_untimed_pipeline", |b| {
        b.iter(|| graph::build_untimed(&net, &graph::ReachOptions::default()).expect("bounded"));
    });
}

/// CTL model checking of the bus invariant over that graph.
fn bench_ctl(c: &mut Criterion) {
    let net = three_stage::build(&ThreeStageConfig::default()).expect("builds");
    let mut g = graph::build_untimed(&net, &graph::ReachOptions::default()).expect("bounded");
    let f = ctl::Formula::parse("AG (Bus_free + Bus_busy = 1)").expect("parses");
    c.bench_function("tools/ctl_invariant", |b| {
        b.iter(|| ctl::check(&mut g, &net, &f).expect("checks"));
    });
}

/// Textual-language round-trip of the full model.
fn bench_lang(c: &mut Criterion) {
    let net = three_stage::build(&ThreeStageConfig::default()).expect("builds");
    let text = pnut_lang::print(&net);
    c.bench_function("tools/lang_parse_pipeline", |b| {
        b.iter(|| pnut_lang::parse(&text).expect("parses"));
    });
}

/// Expression evaluation (the §3 interpreted models' hot path).
fn bench_expr(c: &mut Criterion) {
    use pnut_core::expr::{Env, Expr, Value};
    let mut env = Env::new();
    env.define_table("operands", vec![0, 1, 2, 2, 3]);
    env.set_var("ty", Value::Int(3));
    env.set_var("ops_needed", Value::Int(2));
    let e = Expr::parse("ops_needed > 0 && operands[ty] + 1 < 10").expect("parses");
    c.bench_function("tools/expr_eval", |b| {
        b.iter(|| e.eval_pure(&env).expect("evaluates"));
    });
}

criterion_group!(
    tools,
    bench_stat,
    bench_filter,
    bench_query,
    bench_timeline,
    bench_reachability,
    bench_ctl,
    bench_lang,
    bench_expr
);
criterion_main!(tools);
