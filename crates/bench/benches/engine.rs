#![forbid(unsafe_code)]

//! Criterion benches for the simulation engine: the cost envelope of
//! the figure-generating workloads.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pnut_core::{NetBuilder, Time};
use pnut_pipeline::{interpreted, sequential, three_stage, ThreeStageConfig};
use pnut_sim::Simulator;
use pnut_trace::{CountingSink, NullSink};

/// The Figure 5 workload: 1 000 cycles of the §2 model.
fn bench_three_stage(c: &mut Criterion) {
    let net = three_stage::build(&ThreeStageConfig::default()).expect("builds");
    c.bench_function("sim/three_stage_1k_cycles", |b| {
        b.iter_batched(
            || Simulator::new(&net, 1).expect("constructs"),
            |mut sim| {
                let mut sink = NullSink;
                sim.run(Time::from_ticks(1_000), &mut sink).expect("runs")
            },
            BatchSize::SmallInput,
        );
    });
}

/// The Figure 4 workload: the interpreted model, whose predicates and
/// actions exercise the expression evaluator on every firing.
fn bench_interpreted(c: &mut Criterion) {
    let net = interpreted::build(&interpreted::InterpretedConfig::default()).expect("builds");
    c.bench_function("sim/interpreted_1k_cycles", |b| {
        b.iter_batched(
            || Simulator::new(&net, 1).expect("constructs"),
            |mut sim| {
                let mut sink = NullSink;
                sim.run(Time::from_ticks(1_000), &mut sink).expect("runs")
            },
            BatchSize::SmallInput,
        );
    });
}

/// The sequential baseline used by the sweeps.
fn bench_sequential(c: &mut Criterion) {
    let net = sequential::build(&ThreeStageConfig::default()).expect("builds");
    c.bench_function("sim/sequential_1k_cycles", |b| {
        b.iter_batched(
            || Simulator::new(&net, 1).expect("constructs"),
            |mut sim| {
                let mut sink = NullSink;
                sim.run(Time::from_ticks(1_000), &mut sink).expect("runs")
            },
            BatchSize::SmallInput,
        );
    });
}

/// Raw token-pushing rate on a minimal cyclic net (engine ceiling).
fn bench_ring(c: &mut Criterion) {
    let mut b = NetBuilder::new("ring");
    b.place("a", 1);
    b.place("b", 0);
    b.transition("ab").input("a").output("b").firing(1).add();
    b.transition("ba").input("b").output("a").firing(1).add();
    let net = b.build().expect("builds");
    c.bench_function("sim/ring_10k_firings", |b| {
        b.iter_batched(
            || Simulator::new(&net, 1).expect("constructs"),
            |mut sim| {
                let mut sink = CountingSink::new();
                sim.run(Time::from_ticks(10_000), &mut sink).expect("runs")
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    engine,
    bench_three_stage,
    bench_interpreted,
    bench_sequential,
    bench_ring
);
criterion_main!(engine);
