#![forbid(unsafe_code)]

//! Ablation benches for the engine's design choices:
//!
//! * conflict-resolution cost as the competing set grows (the engine
//!   re-scans eligibility after every firing — how does that scale?);
//! * reachability-graph growth as the instruction buffer grows (the
//!   state-interning HashMap under increasing load);
//! * trace-pipeline depth (null sink vs recorder vs tee-of-three) — the
//!   price of the paper's decoupled-tools architecture.

#![allow(clippy::field_reassign_with_default)]

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use pnut_core::{Net, NetBuilder, Time};
use pnut_pipeline::{three_stage, ThreeStageConfig};
use pnut_reach::graph;
use pnut_sim::Simulator;
use pnut_stat::StatCollector;
use pnut_trace::{CountingSink, NullSink, Recorder, Tee};

/// `n` transitions competing for one recycled token.
fn conflict_net(n: usize) -> Net {
    let mut b = NetBuilder::new("conflict");
    b.place("tok", 1);
    for i in 0..n {
        b.transition(format!("t{i}"))
            .input("tok")
            .output("tok")
            .firing(1)
            .frequency(1.0 + i as f64)
            .add();
    }
    b.build().expect("builds")
}

fn bench_conflict_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/conflict_set_size");
    for n in [2usize, 8, 32, 128] {
        let net = conflict_net(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &net, |b, net| {
            b.iter_batched(
                || Simulator::new(net, 1).expect("constructs"),
                |mut sim| {
                    let mut sink = NullSink;
                    sim.run(Time::from_ticks(1_000), &mut sink).expect("runs")
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_reachability_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/reach_vs_ibuf");
    for words in [2u32, 4, 6, 8] {
        let mut config = ThreeStageConfig::default();
        config.ibuf_words = words;
        let net = three_stage::build(&config).expect("builds");
        group.bench_with_input(BenchmarkId::from_parameter(words), &net, |b, net| {
            b.iter(|| graph::build_untimed(net, &graph::ReachOptions::default()).expect("bounded"));
        });
    }
    group.finish();
}

fn bench_sink_stack_depth(c: &mut Criterion) {
    let net = three_stage::build(&ThreeStageConfig::default()).expect("builds");
    let mut group = c.benchmark_group("ablation/sink_stack");
    group.bench_function("null", |b| {
        b.iter_batched(
            || Simulator::new(&net, 1).expect("constructs"),
            |mut sim| {
                let mut sink = NullSink;
                sim.run(Time::from_ticks(1_000), &mut sink).expect("runs")
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("recorder", |b| {
        b.iter_batched(
            || Simulator::new(&net, 1).expect("constructs"),
            |mut sim| {
                let mut sink = Recorder::new();
                sim.run(Time::from_ticks(1_000), &mut sink).expect("runs");
                sink
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("tee3", |b| {
        b.iter_batched(
            || Simulator::new(&net, 1).expect("constructs"),
            |mut sim| {
                let mut sink = Tee::new(
                    StatCollector::new(),
                    Tee::new(Recorder::new(), CountingSink::new()),
                );
                sim.run(Time::from_ticks(1_000), &mut sink).expect("runs");
                sink
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(
    ablation,
    bench_conflict_scaling,
    bench_reachability_scaling,
    bench_sink_stack_depth
);
criterion_main!(ablation);
