#![forbid(unsafe_code)]

//! Figure 5: the performance statistics report.
//!
//! Runs the §2 model for 10 000 cycles and prints the RUN / EVENT /
//! PLACE statistics blocks in the paper's layout, followed by the §4.2
//! processor-level interpretation and a side-by-side comparison with
//! the values printed in the paper's Figure 5.

use pnut_bench::{paper_config, seed_from_args};
use pnut_pipeline::run_experiment;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = seed_from_args();
    let outcome = run_experiment(&paper_config(), seed, 10_000)?;
    println!("{}", outcome.report);
    println!("{}", outcome.metrics);

    println!("PAPER (Figure 5) vs MEASURED (seed {seed})");
    println!("{:<34} {:>10} {:>10}", "quantity", "paper", "measured");
    let m = &outcome.metrics;
    let r = &outcome.report;
    let rows: Vec<(&str, f64, f64)> = vec![
        ("Issue throughput (IPC)", 0.1238, m.instructions_per_cycle),
        ("Bus_busy avg (utilization)", 0.6582, m.bus_utilization),
        ("pre_fetching avg", 0.3107, m.bus_prefetch),
        ("fetching avg", 0.2275, m.bus_operand_fetch),
        ("storing avg", 0.12, m.bus_store),
        ("Full_I_buffers avg", 4.621, m.avg_full_ibuf),
        ("Empty_I_buffers avg", 0.7576, m.avg_empty_ibuf),
        ("Decoder_ready avg", 0.0014, m.decoder_idle),
        ("Execution_unit avg", 0.2739, m.exec_unit_idle),
        ("ready_to_issue avg", 0.5022, m.ready_to_issue),
        ("exec_type_1 avg", 0.0618, m.exec_busy[0]),
        ("exec_type_2 avg", 0.0752, m.exec_busy[1]),
        ("exec_type_3 avg", 0.0631, m.exec_busy[2]),
        ("exec_type_4 avg", 0.059, m.exec_busy[3]),
        ("exec_type_5 avg", 0.29, m.exec_busy[4]),
        (
            "events started",
            11755.0,
            outcome.summary.events_started as f64,
        ),
        (
            "Type_1 starts",
            887.0,
            r.transition("Type_1")
                .map(|t| t.starts as f64)
                .unwrap_or(0.0),
        ),
        (
            "Type_2 starts",
            247.0,
            r.transition("Type_2")
                .map(|t| t.starts as f64)
                .unwrap_or(0.0),
        ),
        (
            "Type_3 starts",
            104.0,
            r.transition("Type_3")
                .map(|t| t.starts as f64)
                .unwrap_or(0.0),
        ),
    ];
    for (what, paper, ours) in rows {
        println!("{what:<34} {paper:>10.4} {ours:>10.4}");
    }
    println!(
        "\nNote: absolute agreement is not expected (different RNG, slightly\n\
         different transition inventory); the shape — who dominates, the\n\
         bus breakdown ordering, buffer occupancy — should match."
    );
    Ok(())
}
