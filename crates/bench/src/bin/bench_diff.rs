#![forbid(unsafe_code)]

//! Bench trend gate: diff the speedup ratios of a fresh
//! `BENCH_reach.json` against the committed baseline and fail on
//! regression (the ROADMAP "bench trend tracking" item).
//!
//! ```text
//! bench_diff <baseline.json> <candidate.json> [--min-frac F]
//!            [--min-frac-for NAME=F]...
//! ```
//!
//! Both files are the JSON-lines format the reach bench appends (see
//! `benches/reach.rs`). Only `"ratio"` entries are compared — raw
//! timings shift with the runner's hardware, but *ratios* between two
//! builders measured back-to-back on the same machine are comparable
//! across runners. A candidate ratio below `baseline × min-frac`
//! (default 0.7, loose enough to absorb CI noise) exits 1.
//! `--min-frac-for` pins a tighter fraction to one specific ratio —
//! used to hold the pager's resident-budget overhead to ≥ 0.9× of the
//! committed trend while the noisier parallel ratios keep the default.
//!
//! Absolute-speedup floors are intentionally not enforced: the
//! parallel ratios in the committed baseline come from whatever machine
//! produced it (possibly single-core, where parallel ≈ 1×), and a
//! many-core runner must not fail for being *faster* in a different
//! proportion. Regression means "worse than the committed trend".

use std::process::ExitCode;

/// Extract `(name, ratio)` from one JSON line, ignoring non-ratio lines.
/// The format is machine-written (`{"name":"...","ratio":N}`), so a
/// tolerant hand parser beats dragging in a JSON dependency.
fn parse_ratio_line(line: &str) -> Option<(String, f64)> {
    let name_start = line.find("\"name\":\"")? + 8;
    let name_end = name_start + line[name_start..].find('"')?;
    let key_start = line.find("\"ratio\":")? + 8;
    let rest = &line[key_start..];
    let num: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
        .collect();
    Some((line[name_start..name_end].to_string(), num.parse().ok()?))
}

fn load_ratios(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    Ok(text.lines().filter_map(parse_ratio_line).collect())
}

/// Parse one `--min-frac-for NAME=F` operand.
fn parse_min_frac_for(spec: &str) -> Option<(String, f64)> {
    let (name, frac) = spec.rsplit_once('=')?;
    if name.is_empty() {
        return None;
    }
    Some((name.to_string(), frac.parse().ok()?))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut min_frac = 0.7f64;
    let mut per_name: Vec<(String, f64)> = Vec::new();
    let mut files = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--min-frac" {
            match args.get(i + 1).and_then(|v| v.parse().ok()) {
                Some(f) => min_frac = f,
                None => {
                    eprintln!("bench_diff: --min-frac needs a number");
                    return ExitCode::FAILURE;
                }
            }
            i += 2;
        } else if args[i] == "--min-frac-for" {
            match args.get(i + 1).and_then(|v| parse_min_frac_for(v)) {
                Some(entry) => per_name.push(entry),
                None => {
                    eprintln!("bench_diff: --min-frac-for needs NAME=FRACTION");
                    return ExitCode::FAILURE;
                }
            }
            i += 2;
        } else {
            files.push(args[i].clone());
            i += 1;
        }
    }
    let [baseline_path, candidate_path] = files.as_slice() else {
        eprintln!("usage: bench_diff <baseline.json> <candidate.json> [--min-frac F]");
        return ExitCode::FAILURE;
    };

    let (baseline, candidate) = match (load_ratios(baseline_path), load_ratios(candidate_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_diff: {e}");
            return ExitCode::FAILURE;
        }
    };
    if baseline.is_empty() {
        eprintln!("bench_diff: no ratio entries in `{baseline_path}`");
        return ExitCode::FAILURE;
    }

    // An override naming no baseline entry is a typo or a renamed bench
    // series — either way the tightened gate would silently fall back
    // to the default fraction, so fail loudly instead.
    for (name, _) in &per_name {
        if !baseline.iter().any(|(n, _)| n == name) {
            eprintln!("bench_diff: --min-frac-for `{name}` matches no baseline ratio");
            return ExitCode::FAILURE;
        }
    }

    let lookup = |name: &str| candidate.iter().find(|(n, _)| n == name).map(|&(_, r)| r);
    let mut regressions = 0;
    println!(
        "{:<44} {:>9} {:>9} {:>7}",
        "ratio", "baseline", "current", ""
    );
    for (name, base) in &baseline {
        let frac = per_name
            .iter()
            .find(|(n, _)| n == name)
            .map_or(min_frac, |&(_, f)| f);
        match lookup(name) {
            None => {
                println!("{name:<44} {base:>9.2} {:>9} MISSING", "-");
                regressions += 1;
            }
            Some(cur) => {
                let ok = cur >= base * frac;
                println!(
                    "{name:<44} {base:>9.2} {cur:>9.2} {}",
                    if ok { "ok" } else { "REGRESSED" }
                );
                if !ok {
                    regressions += 1;
                }
            }
        }
    }
    if regressions > 0 {
        eprintln!("bench_diff: {regressions} ratio(s) regressed below their trend fraction");
        return ExitCode::FAILURE;
    }
    println!("bench_diff: all {} ratio(s) within trend", baseline.len());
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::{parse_min_frac_for, parse_ratio_line};

    #[test]
    fn parses_per_name_fraction_overrides() {
        assert_eq!(
            parse_min_frac_for("reach/speedup/spill/wide_toggle/resident=0.9"),
            Some(("reach/speedup/spill/wide_toggle/resident".to_string(), 0.9))
        );
        assert_eq!(parse_min_frac_for("no-fraction"), None);
        assert_eq!(parse_min_frac_for("=0.9"), None);
        assert_eq!(parse_min_frac_for("name=notanumber"), None);
    }

    #[test]
    fn parses_ratio_lines_and_skips_timings() {
        assert_eq!(
            parse_ratio_line(r#"{"name":"reach/speedup/interpreted","ratio":7.3}"#),
            Some(("reach/speedup/interpreted".to_string(), 7.3))
        );
        assert_eq!(
            parse_ratio_line(r#"{"name":"reach/untimed/x/interned","median_ns":268906.4}"#),
            None
        );
        assert_eq!(parse_ratio_line("not json"), None);
    }
}
