#![forbid(unsafe_code)]

//! NDJSON lint-report validator: check a `pnut lint --json` stream
//! against the schema in `docs/STATIC_ANALYSIS.md` (the CI leg of the
//! `lint-models` step).
//!
//! ```text
//! lint_check <file.ndjson> [--deny SEVERITY]...
//! ```
//!
//! Checks, in order:
//!
//! 1. the first line is the `{"type":"meta","version":1,"tool":"lint"}`
//!    header;
//! 2. every line parses as exactly one schema record type with its
//!    required fields, and severities are drawn from
//!    `error`/`warn`/`info`;
//! 3. per model, the stream is shaped `model`, findings, bounds,
//!    `summary` — with the bound count matching the model's declared
//!    place count;
//! 4. every `summary` line's `errors`/`warnings`/`infos` counts equal
//!    the finding lines actually seen for that model;
//! 5. no finding has a `--deny`'d severity (exit 1 if one does — this
//!    is how CI holds the checked-in models error-clean).
//!
//! The format is machine-written, so a tolerant hand parser beats
//! dragging in a JSON dependency (same stance as `metrics_check`).

use std::process::ExitCode;

/// Extract the string value of `"key":"..."` from one line. Escapes
/// are left as-is: the validator only compares whole values that never
/// contain them (types, severities, codes).
fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let mut end = start;
    let bytes = line.as_bytes();
    while end < line.len() {
        match bytes[end] {
            b'\\' => end += 2,
            b'"' => return Some(&line[start..end]),
            _ => end += 1,
        }
    }
    None
}

/// Extract the integer value of `"key":N` from one line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let num: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    num.parse().ok()
}

/// Findings and bounds seen since the current `model` line.
#[derive(Default)]
struct ModelTally {
    path: String,
    places: u64,
    errors: u64,
    warnings: u64,
    infos: u64,
    bounds: u64,
    summarized: bool,
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("lint_check: {msg}");
    ExitCode::FAILURE
}

#[allow(clippy::too_many_lines)] // one linear pass over the schema
fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file = None;
    let mut deny: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--deny" => {
                let Some(s) = args.get(i + 1) else {
                    return fail("--deny needs a severity (error|warn|info)");
                };
                if !["error", "warn", "info"].contains(&s.as_str()) {
                    return fail(&format!("--deny {s}: not a severity"));
                }
                deny.push(s.clone());
                i += 2;
            }
            other => {
                if file.replace(other.to_string()).is_some() {
                    return fail("exactly one <file.ndjson> expected");
                }
                i += 1;
            }
        }
    }
    let Some(path) = file else {
        return fail("usage: lint_check <file.ndjson> [--deny SEVERITY]...");
    };
    let Ok(text) = std::fs::read_to_string(&path) else {
        return fail(&format!("cannot read {path}"));
    };

    let mut lines = text.lines().enumerate();
    let Some((_, header)) = lines.next() else {
        return fail("empty file: expected the meta header");
    };
    if field_str(header, "type") != Some("meta")
        || field_u64(header, "version") != Some(1)
        || field_str(header, "tool") != Some("lint")
    {
        return fail(&format!("bad meta header: {header}"));
    }

    let mut current: Option<ModelTally> = None;
    let mut models = 0u64;
    let mut denied = 0u64;
    for (n, line) in lines {
        let n = n + 1; // 1-based for diagnostics
        let bad = |what: &str| fail(&format!("line {n}: {what}: {line}"));
        if !line.starts_with('{') || !line.ends_with('}') {
            return bad("not a JSON object");
        }
        let Some(ty) = field_str(line, "type") else {
            return bad("missing \"type\"");
        };
        if ty != "meta" && field_str(line, "path").is_none() {
            return bad("missing \"path\"");
        }
        match ty {
            "model" => {
                if let Some(prev) = &current {
                    if !prev.summarized {
                        return bad(&format!("model `{}` has no summary line", prev.path));
                    }
                }
                let (Some(places), Some(_)) =
                    (field_u64(line, "places"), field_u64(line, "transitions"))
                else {
                    return bad("model line needs \"places\" and \"transitions\"");
                };
                if field_str(line, "net").is_none() {
                    return bad("model line needs \"net\"");
                }
                current = Some(ModelTally {
                    path: field_str(line, "path").unwrap_or_default().to_string(),
                    places,
                    ..ModelTally::default()
                });
                models += 1;
            }
            "finding" => {
                let Some(tally) = current.as_mut() else {
                    return bad("finding before any model line");
                };
                if field_str(line, "code").is_none()
                    || field_str(line, "subject").is_none()
                    || field_str(line, "why").is_none()
                {
                    return bad("finding line needs \"code\", \"subject\", \"why\"");
                }
                let severity = field_str(line, "severity");
                match severity {
                    Some("error") => tally.errors += 1,
                    Some("warn") => tally.warnings += 1,
                    Some("info") => tally.infos += 1,
                    _ => return bad("severity must be error|warn|info"),
                }
                if deny.iter().any(|d| Some(d.as_str()) == severity) {
                    eprintln!("lint_check: denied finding: {line}");
                    denied += 1;
                }
            }
            "bound" => {
                let Some(tally) = current.as_mut() else {
                    return bad("bound before any model line");
                };
                if field_str(line, "place").is_none() {
                    return bad("bound line needs \"place\"");
                }
                let known = field_u64(line, "bound").is_some();
                let unknown = line.contains("\"known\":false");
                if known == unknown {
                    return bad("bound line needs \"bound\":N xor \"known\":false");
                }
                tally.bounds += 1;
            }
            "summary" => {
                let Some(tally) = current.as_mut() else {
                    return bad("summary before any model line");
                };
                let counts = (
                    field_u64(line, "errors"),
                    field_u64(line, "warnings"),
                    field_u64(line, "infos"),
                );
                if counts != (Some(tally.errors), Some(tally.warnings), Some(tally.infos)) {
                    return bad(&format!(
                        "summary disagrees with the {} finding line(s) seen",
                        tally.errors + tally.warnings + tally.infos
                    ));
                }
                if tally.bounds != tally.places {
                    return bad(&format!(
                        "{} bound line(s) for {} declared place(s)",
                        tally.bounds, tally.places
                    ));
                }
                tally.summarized = true;
            }
            other => return bad(&format!("unknown record type \"{other}\"")),
        }
    }
    match &current {
        Some(tally) if !tally.summarized => {
            return fail(&format!("model `{}` has no summary line", tally.path));
        }
        Some(_) => {}
        None => return fail("no model records in the stream"),
    }
    if denied > 0 {
        return fail(&format!(
            "{denied} finding(s) with denied severity ({})",
            deny.join(", ")
        ));
    }
    println!("lint_check: ok ({models} model(s), schema v1)");
    ExitCode::SUCCESS
}
