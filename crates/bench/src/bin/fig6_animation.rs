#![forbid(unsafe_code)]

//! Figure 6: animation of the pipeline model.
//!
//! Renders the first frames of a run of the §2 model, showing token flow
//! over arcs (the P-NUT animator's differentiator, §4.3), then summary
//! counts for the full animation.

use pnut_anim::Animator;
use pnut_bench::{paper_config, seed_from_args};
use pnut_core::Time;
use pnut_pipeline::three_stage;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = seed_from_args();
    let net = three_stage::build(&paper_config())?;
    let trace = pnut_sim::simulate(&net, seed, Time::from_ticks(60))?;

    println!("== Figure 6: animation of the pipeline model (first 25 frames) ==\n");
    let mut anim = Animator::new(&trace);
    print!("{}", anim.initial_frame());
    let mut shown = 0;
    while shown < 25 {
        match anim.step() {
            Some(frame) => {
                print!("{frame}");
                shown += 1;
            }
            None => break,
        }
    }

    // Count the rest.
    let mut remaining = 0;
    while anim.step().is_some() {
        remaining += 1;
    }
    println!(
        "... {remaining} further frames in the 60-cycle trace (single-step or animate all, §4.3)"
    );
    Ok(())
}
