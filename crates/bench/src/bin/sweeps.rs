#![forbid(unsafe_code)]

//! Parameter sweeps backing the paper's introductory claims: memory
//! speed and processor organization "have a strong yet difficult to
//! predict impact" on performance.
//!
//! Five sweeps (20 000 cycles each):
//!   1. memory latency, pipelined vs sequential baseline (speedup);
//!   2. instruction-buffer size;
//!   3. instruction mix (memory-heaviness);
//!   4. branch fraction (interpreted model, buffer flush on branch);
//!   5. cache hit ratio (§3 extension).

use pnut_bench::{paper_config, seed_from_args};
use pnut_core::Time;
use pnut_pipeline::interpreted::{build as build_interpreted, InstructionType, InterpretedConfig};
use pnut_pipeline::{sequential, three_stage, CacheConfig, InstructionMix};

const CYCLES: u64 = 20_000;

fn pipe_ipc(config: &pnut_pipeline::ThreeStageConfig, seed: u64) -> f64 {
    let net = three_stage::build(config).expect("config validated");
    let trace = pnut_sim::simulate(&net, seed, Time::from_ticks(CYCLES)).expect("runs");
    pnut_stat::analyze(&trace)
        .transition("Issue")
        .expect("model has Issue")
        .throughput
}

fn seq_ipc(config: &pnut_pipeline::ThreeStageConfig, seed: u64) -> f64 {
    let net = sequential::build(config).expect("config validated");
    let trace = pnut_sim::simulate(&net, seed, Time::from_ticks(CYCLES)).expect("runs");
    sequential::instructions_per_cycle(&pnut_stat::analyze(&trace)).expect("model has retire")
}

fn bus_util(config: &pnut_pipeline::ThreeStageConfig, seed: u64) -> f64 {
    let net = three_stage::build(config).expect("config validated");
    let trace = pnut_sim::simulate(&net, seed, Time::from_ticks(CYCLES)).expect("runs");
    pnut_stat::analyze(&trace)
        .place("Bus_busy")
        .expect("model has a bus")
        .avg_tokens
}

fn main() {
    let seed = seed_from_args();
    let base = paper_config();

    println!("== Sweep 1: memory latency (cycles per access) ==");
    println!(
        "{:>6} {:>10} {:>10} {:>9} {:>10}",
        "mem", "pipe IPC", "seq IPC", "speedup", "bus util"
    );
    for mem in [1u64, 2, 3, 4, 5, 6, 8, 10, 12, 16] {
        let mut c = base.clone();
        c.mem_access_cycles = mem;
        let p = pipe_ipc(&c, seed);
        let s = seq_ipc(&c, seed);
        println!(
            "{:>6} {:>10.4} {:>10.4} {:>8.2}x {:>10.4}",
            mem,
            p,
            s,
            p / s,
            bus_util(&c, seed)
        );
    }

    println!("\n== Sweep 2: instruction-buffer size (words) ==");
    println!("{:>6} {:>10} {:>10}", "words", "IPC", "bus util");
    for words in [2u32, 4, 6, 8, 10, 12] {
        let mut c = base.clone();
        c.ibuf_words = words;
        println!(
            "{:>6} {:>10.4} {:>10.4}",
            words,
            pipe_ipc(&c, seed),
            bus_util(&c, seed)
        );
    }

    println!("\n== Sweep 3: instruction mix (share of memory-operand instructions) ==");
    println!("{:>16} {:>10} {:>10}", "mix (0/1/2 ops)", "IPC", "bus util");
    for (z, one, two) in [
        (1.0, 0.0, 0.0),
        (0.9, 0.08, 0.02),
        (0.7, 0.2, 0.1),
        (0.5, 0.3, 0.2),
        (0.3, 0.4, 0.3),
    ] {
        let mut c = base.clone();
        c.instruction_mix = InstructionMix {
            zero_operand: z,
            one_operand: one,
            two_operand: two,
        };
        println!(
            "{:>16} {:>10.4} {:>10.4}",
            format!("{z:.1}/{one:.2}/{two:.2}"),
            pipe_ipc(&c, seed),
            bus_util(&c, seed)
        );
    }

    println!("\n== Sweep 4: branch fraction (interpreted model, buffer flush on branch) ==");
    println!(
        "{:>8} {:>10} {:>10} {:>10}",
        "branches", "IPC", "bus util", "flushes"
    );
    for branch_slots in [0usize, 1, 2, 4, 6, 8] {
        // A 10-slot ISA of 1-cycle register ops; `branch_slots` of them
        // are taken branches that flush the prefetch buffer.
        let mut types = vec![InstructionType::simple(0, 1, 1); 10];
        for t in types.iter_mut().take(branch_slots) {
            t.is_branch = true;
        }
        let config = InterpretedConfig {
            instruction_types: types,
            ..InterpretedConfig::default()
        };
        let net = build_interpreted(&config).expect("config valid");
        let trace = pnut_sim::simulate(&net, seed, Time::from_ticks(CYCLES)).expect("runs");
        let report = pnut_stat::analyze(&trace);
        println!(
            "{:>7}0% {:>10.4} {:>10.4} {:>10}",
            branch_slots,
            report.transition("Issue").expect("exists").throughput,
            report.place("Bus_busy").expect("exists").avg_tokens,
            report.transition("flush_done").map(|t| t.ends).unwrap_or(0),
        );
    }

    println!("\n== Sweep 5: cache hit ratio (hit = 1 cycle, miss = 5) ==");
    println!("{:>6} {:>10} {:>10}", "hit", "IPC", "bus util");
    for hit in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99] {
        let mut c = base.clone();
        c.cache = Some(CacheConfig {
            hit_ratio: hit,
            hit_cycles: 1,
        });
        println!(
            "{:>6.2} {:>10.4} {:>10.4}",
            hit,
            pipe_ipc(&c, seed),
            bus_util(&c, seed)
        );
    }
}
