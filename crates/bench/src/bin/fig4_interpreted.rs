#![forbid(unsafe_code)]

//! Figure 4: the interpreted (table-driven) operand-fetch net.
//!
//! Prints the net with the paper's predicates and actions, then runs it
//! to show the loops working: multi-word instructions consume extra
//! buffer words, operand counts drive repeated bus fetches.

use pnut_bench::seed_from_args;
use pnut_core::Time;
use pnut_pipeline::interpreted::{build, InterpretedConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = seed_from_args();
    let config = InterpretedConfig::default();
    let net = build(&config)?;

    println!("== Figure 4: interpreted net for operand fetching ==\n");
    println!("{}", pnut_lang::print(&net));

    println!("The Decode action (paper §3):");
    let decode = net.transition(net.transition_id("Decode").expect("exists"));
    println!("  {}", decode.action().expect("has action"));
    println!("fetch_operand predicate:          {}", {
        let t = net.transition(net.transition_id("fetch_operand").expect("exists"));
        t.predicate().expect("has predicate").to_string()
    });
    println!("operand_fetching_done predicate:  {}", {
        let t = net.transition(net.transition_id("operand_fetching_done").expect("exists"));
        t.predicate().expect("has predicate").to_string()
    });
    println!("end_fetch action:                 {}", {
        let t = net.transition(net.transition_id("end_fetch").expect("exists"));
        t.action().expect("has action").to_string()
    });

    let trace = pnut_sim::simulate(&net, seed, Time::from_ticks(10_000))?;
    let report = pnut_stat::analyze(&trace);
    println!("\n== 10 000-cycle run (seed {seed}) ==\n{report}");

    let decodes = report.transition("Decode").expect("exists").ends;
    let fetches = report.transition("end_fetch").expect("exists").ends;
    let words = report.transition("consume_word").expect("exists").ends;
    println!("instructions decoded: {decodes}");
    println!(
        "extra words consumed: {words} ({:.2}/instruction)",
        words as f64 / decodes as f64
    );
    println!(
        "operand fetches:      {fetches} ({:.2}/instruction)",
        fetches as f64 / decodes as f64
    );
    Ok(())
}
