#![forbid(unsafe_code)]

//! Figure 7: timing analysis using tracertool.
//!
//! Reproduces the paper's logic-analyzer display: `Bus_busy` activity
//! broken down into prefetching / operand fetching / storing, the five
//! execution transitions, a user-defined function summing them, and the
//! empty instruction-buffer count — with `O`/`X` markers and the
//! interval readout. Also runs the §4.4 verification queries.

use pnut_bench::{paper_config, seed_from_args};
use pnut_core::Time;
use pnut_pipeline::three_stage;
use pnut_tracer::query::Query;
use pnut_tracer::timeline::{Marker, Signal, Timeline};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = seed_from_args();
    let net = three_stage::build(&paper_config())?;
    let trace = pnut_sim::simulate(&net, seed, Time::from_ticks(10_000))?;

    println!("== Figure 7: timing analysis using tracertool ==\n");
    let signals = vec![
        Signal::place("Bus_busy"),
        Signal::place("pre_fetching"),
        Signal::place("fetching"),
        Signal::place("storing"),
        Signal::transition("exec_type_1"),
        Signal::transition("exec_type_2"),
        Signal::transition("exec_type_3"),
        Signal::transition("exec_type_4"),
        Signal::transition("exec_type_5"),
        Signal::function(
            "all_exec",
            "exec_type_1 + exec_type_2 + exec_type_3 + exec_type_4 + exec_type_5",
        )?,
        Signal::place("Empty_I_buffers"),
    ];
    let mut tl = Timeline::sample(
        &trace,
        &signals,
        Time::from_ticks(100),
        Time::from_ticks(200),
    )?;
    tl.add_marker(Marker {
        time: Time::from_ticks(110),
        tag: 'O',
    });
    tl.add_marker(Marker {
        time: Time::from_ticks(158),
        tag: 'X',
    });
    print!("{tl}");
    if let Some(d) = tl.interval('O', 'X') {
        println!("O <-> X {d}   (paper's Figure 7 readout: 0 <-> x 48)");
    }

    println!("\n== §4.4 verification queries on this trace ==");
    for (text, note) in [
        (
            "forall s in S [ Bus_busy(s) + Bus_free(s) = 1 ]",
            "model-bug check",
        ),
        (
            "exists s in (S - {#0}) [ Empty_I_buffers(s) = 6 ]",
            "does the buffer ever empty completely again?",
        ),
        (
            "exists s in S [ exec_type_5(s) > 0 ]",
            "did a 50-cycle instruction execute?",
        ),
        (
            "forall s in {s' in S | Bus_busy(s')} [ inev(s, Bus_free(C), true) ]",
            "is the bus always eventually freed?",
        ),
    ] {
        let q = Query::parse(text)?;
        let o = q.check(&trace)?;
        println!(
            "  [{}] {note}\n        {text}",
            if o.holds { "PASS" } else { "FAIL" }
        );
    }
    Ok(())
}
