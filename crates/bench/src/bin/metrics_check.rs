#![forbid(unsafe_code)]

//! NDJSON metrics validator: check a `--metrics-json` snapshot emitted
//! by the CLI against the `pnut_obs` registry (the CI leg of
//! `docs/OBSERVABILITY.md`).
//!
//! ```text
//! metrics_check <file.ndjson> [--tool NAME] [--require-nonzero NAME]...
//! ```
//!
//! Checks, in order:
//!
//! 1. the first line is the `{"type":"meta","version":1,...}` header
//!    (with the expected tool name when `--tool` is given);
//! 2. every line parses as exactly one schema record type with its
//!    required fields;
//! 3. every counter/gauge/hist name is in the registry, and every
//!    registry metric appears exactly once (snapshots are complete —
//!    consumers may diff two files line-by-line);
//! 4. the catalogue invariants hold: `pager.faults ==
//!    pager.fault_failures + pager.reloads`, `store.probes >=
//!    store.hits`, histogram bucket counts sum to `count`;
//! 5. every `--require-nonzero NAME` metric is > 0 (used to pin that
//!    the 64 KiB golden run really paged).
//!
//! The format is machine-written, so a tolerant hand parser beats
//! dragging in a JSON dependency (same stance as `bench_diff`).

use std::process::ExitCode;

use pnut_obs::metrics::{Metric, REGISTRY};

/// Extract the string value of `"key":"..."` from one line.
fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let end = start + line[start..].find('"')?;
    Some(&line[start..end])
}

/// Extract the integer value of `"key":N` from one line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let num: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    num.parse().ok()
}

/// Sum the counts of a `"buckets":[[lo,n],...]` array.
fn bucket_count_sum(line: &str) -> Option<u64> {
    let start = line.find("\"buckets\":[")? + 11;
    let rest = &line[start..];
    if rest.starts_with(']') {
        return Some(0); // zero-count histograms emit "buckets":[]
    }
    // "[1,2],[256,10]]" up to the outer array's close — walk pairs by
    // splitting on "[" and reading the second number of each.
    let body = &rest[..rest.find("]]")? + 1];
    let mut sum = 0u64;
    for pair in body.split('[').filter(|p| !p.trim().is_empty()) {
        let mut nums = pair
            .split(|c: char| !c.is_ascii_digit())
            .filter(|s| !s.is_empty());
        let _lo: u64 = nums.next()?.parse().ok()?;
        let n: u64 = nums.next()?.parse().ok()?;
        sum += n;
    }
    Some(sum)
}

struct Seen {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, u64)>,
    hists: Vec<String>,
    spans: usize,
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("metrics_check: {msg}");
    ExitCode::FAILURE
}

#[allow(clippy::too_many_lines)] // one linear pass over the schema
fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file = None;
    let mut tool = None;
    let mut require_nonzero: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tool" => {
                let Some(t) = args.get(i + 1) else {
                    return fail("--tool needs a name");
                };
                tool = Some(t.clone());
                i += 2;
            }
            "--require-nonzero" => {
                let Some(n) = args.get(i + 1) else {
                    return fail("--require-nonzero needs a metric name");
                };
                require_nonzero.push(n.clone());
                i += 2;
            }
            other => {
                if file.replace(other.to_string()).is_some() {
                    return fail("exactly one <file.ndjson> expected");
                }
                i += 1;
            }
        }
    }
    let Some(path) = file else {
        return fail(
            "usage: metrics_check <file.ndjson> [--tool NAME] [--require-nonzero NAME]...",
        );
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read `{path}`: {e}")),
    };

    let mut lines = text.lines().enumerate();
    let Some((_, meta)) = lines.next() else {
        return fail(&format!("`{path}` is empty"));
    };
    if field_str(meta, "type") != Some("meta") || field_u64(meta, "version") != Some(1) {
        return fail(&format!("line 1 is not a v1 meta header: {meta}"));
    }
    if let Some(expect) = &tool {
        if field_str(meta, "tool") != Some(expect.as_str()) {
            return fail(&format!("meta tool is not `{expect}`: {meta}"));
        }
    }

    let mut seen = Seen {
        counters: Vec::new(),
        gauges: Vec::new(),
        hists: Vec::new(),
        spans: 0,
    };
    let mut last_span_start = 0u64;
    for (idx, line) in lines {
        let lineno = idx + 1;
        let Some(ty) = field_str(line, "type") else {
            return fail(&format!("line {lineno}: no type field: {line}"));
        };
        match ty {
            "counter" | "gauge" => {
                let (Some(name), Some(value)) = (field_str(line, "name"), field_u64(line, "value"))
                else {
                    return fail(&format!("line {lineno}: {ty} needs name+value: {line}"));
                };
                if ty == "counter" {
                    seen.counters.push((name.to_string(), value));
                } else {
                    seen.gauges.push((name.to_string(), value));
                }
            }
            "hist" => {
                let (Some(name), Some(count), Some(_), Some(_)) = (
                    field_str(line, "name"),
                    field_u64(line, "count"),
                    field_u64(line, "sum"),
                    field_u64(line, "max"),
                ) else {
                    return fail(&format!(
                        "line {lineno}: hist needs name+count+sum+max: {line}"
                    ));
                };
                match bucket_count_sum(line) {
                    Some(s) if s == count => {}
                    Some(s) => {
                        return fail(&format!(
                            "line {lineno}: hist `{name}` buckets sum to {s}, count says {count}"
                        ));
                    }
                    None => return fail(&format!("line {lineno}: hist has no buckets: {line}")),
                }
                seen.hists.push(name.to_string());
            }
            "span" => {
                let (Some(_), Some(start), Some(_)) = (
                    field_str(line, "path"),
                    field_u64(line, "start_ns"),
                    field_u64(line, "dur_ns"),
                ) else {
                    return fail(&format!(
                        "line {lineno}: span needs path+start_ns+dur_ns: {line}"
                    ));
                };
                if start < last_span_start {
                    return fail(&format!("line {lineno}: spans not sorted by start_ns"));
                }
                last_span_start = start;
                seen.spans += 1;
            }
            other => return fail(&format!("line {lineno}: unknown type `{other}`")),
        }
    }

    // Completeness + catalogue membership, both ways, exactly once.
    for metric in REGISTRY {
        let (kind, name, found) = match *metric {
            Metric::Counter(n, _) => (
                "counter",
                n,
                seen.counters.iter().filter(|(s, _)| s == n).count(),
            ),
            Metric::Gauge(n, _) => (
                "gauge",
                n,
                seen.gauges.iter().filter(|(s, _)| s == n).count(),
            ),
            Metric::Histogram(n, _) => ("hist", n, seen.hists.iter().filter(|s| *s == n).count()),
        };
        if found != 1 {
            return fail(&format!(
                "{kind} `{name}` appears {found} times (snapshots emit every registry metric once)"
            ));
        }
    }
    let registry_has = |name: &str| {
        REGISTRY.iter().any(|m| match *m {
            Metric::Counter(n, _) | Metric::Gauge(n, _) | Metric::Histogram(n, _) => n == name,
        })
    };
    for (name, _) in seen.counters.iter().chain(&seen.gauges) {
        if !registry_has(name) {
            return fail(&format!("`{name}` is not in the pnut_obs registry"));
        }
    }

    // Catalogue invariants.
    let counter = |name: &str| {
        seen.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    };
    if counter("pager.faults") != counter("pager.fault_failures") + counter("pager.reloads") {
        return fail("pager.faults != pager.fault_failures + pager.reloads");
    }
    if counter("store.probes") < counter("store.hits") {
        return fail("store.probes < store.hits");
    }

    for name in &require_nonzero {
        let value = seen
            .counters
            .iter()
            .chain(&seen.gauges)
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v);
        match value {
            None => return fail(&format!("--require-nonzero `{name}`: no such metric")),
            Some(0) => return fail(&format!("--require-nonzero `{name}` is zero")),
            Some(_) => {}
        }
    }

    println!(
        "metrics_check: `{path}` ok — {} counters, {} gauges, {} hists, {} spans",
        seen.counters.len(),
        seen.gauges.len(),
        seen.hists.len(),
        seen.spans
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::{bucket_count_sum, field_str, field_u64};

    #[test]
    fn extracts_schema_fields() {
        let line = r#"{"type":"counter","name":"pager.faults","value":37}"#;
        assert_eq!(field_str(line, "type"), Some("counter"));
        assert_eq!(field_str(line, "name"), Some("pager.faults"));
        assert_eq!(field_u64(line, "value"), Some(37));
        assert_eq!(field_u64(line, "missing"), None);
    }

    #[test]
    fn sums_hist_buckets() {
        let line =
            r#"{"type":"hist","name":"h","count":12,"sum":99,"max":8,"buckets":[[1,2],[256,10]]}"#;
        assert_eq!(bucket_count_sum(line), Some(12));
        assert_eq!(
            bucket_count_sum(r#"{"buckets":[[0,5]]}"#),
            Some(5),
            "single bucket"
        );
        assert_eq!(
            bucket_count_sum(r#"{"count":0,"buckets":[]}"#),
            Some(0),
            "empty histogram"
        );
    }
}
