#![forbid(unsafe_code)]

//! Regenerate the checked-in `models/*.pn` files from the model
//! builders, so the textual artifacts can never drift from the code
//! (`tests/models.rs` asserts they stay identical).
//!
//! Run from the workspace root: `cargo run -p pnut-bench --bin export_models`

fn main() {
    let three = pnut_pipeline::three_stage::build(&pnut_pipeline::ThreeStageConfig::default())
        .expect("default config is valid");
    std::fs::write("models/three_stage.pn", pnut_lang::print(&three)).expect("writable");
    let interp = pnut_pipeline::interpreted::build(
        &pnut_pipeline::interpreted::InterpretedConfig::default(),
    )
    .expect("default config is valid");
    std::fs::write("models/interpreted.pn", pnut_lang::print(&interp)).expect("writable");
    // The analysis variant (round-robin dispatch, no irand) is the one
    // `reach`/`markov` accept — keep it checked in too so the timed
    // pipeline is reachable straight from the CLI.
    let analysis =
        pnut_pipeline::interpreted::build(&pnut_pipeline::interpreted::InterpretedConfig {
            for_analysis: true,
            ..pnut_pipeline::interpreted::InterpretedConfig::default()
        })
        .expect("analysis config is valid");
    std::fs::write(
        "models/interpreted_analysis.pn",
        pnut_lang::print(&analysis),
    )
    .expect("writable");
    let seq = pnut_pipeline::sequential::build(&pnut_pipeline::ThreeStageConfig::default())
        .expect("default config is valid");
    std::fs::write("models/sequential.pn", pnut_lang::print(&seq)).expect("writable");
    println!(
        "wrote models/three_stage.pn, models/interpreted.pn, \
         models/interpreted_analysis.pn, models/sequential.pn"
    );
}
