//! Regenerate the checked-in `models/*.pn` files from the model
//! builders, so the textual artifacts can never drift from the code
//! (`tests/models.rs` asserts they stay identical).
//!
//! Run from the workspace root: `cargo run -p pnut-bench --bin export_models`

fn main() {
    let three = pnut_pipeline::three_stage::build(&pnut_pipeline::ThreeStageConfig::default())
        .expect("default config is valid");
    std::fs::write("models/three_stage.pn", pnut_lang::print(&three)).expect("writable");
    let interp = pnut_pipeline::interpreted::build(
        &pnut_pipeline::interpreted::InterpretedConfig::default(),
    )
    .expect("default config is valid");
    std::fs::write("models/interpreted.pn", pnut_lang::print(&interp)).expect("writable");
    let seq = pnut_pipeline::sequential::build(&pnut_pipeline::ThreeStageConfig::default())
        .expect("default config is valid");
    std::fs::write("models/sequential.pn", pnut_lang::print(&seq)).expect("writable");
    println!("wrote models/three_stage.pn, models/interpreted.pn, models/sequential.pn");
}
