#![forbid(unsafe_code)]

//! Figures 1–3: the three-stage pipeline's subnets, shown structurally.
//!
//! The paper's figures are screenshots of the graphical editor; the
//! faithful textual equivalent is the net description language, printed
//! per stage, plus the structural checks §4.2 relies on (the bus group
//! is conservative and atomic).

use pnut_core::analysis;
use pnut_pipeline::{three_stage, ThreeStageConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = three_stage::build(&ThreeStageConfig::default())?;

    println!("== Figures 1-3: the three-stage pipeline model ==\n");
    println!(
        "{} places, {} transitions; the paper quotes 'roughly 25 lines' —",
        net.place_count(),
        net.transition_count()
    );
    let text = pnut_lang::print(&net);
    println!("our textual form is {} lines:\n", text.lines().count());
    println!("{text}");

    println!("== Structural checks ==");
    let group = [
        net.place_id("Bus_free").expect("bus places exist"),
        net.place_id("Bus_busy").expect("bus places exist"),
    ];
    let violations = analysis::conservation_violations(&net, &group);
    let nonatomic = analysis::nonatomic_group_movers(&net, &group);
    println!(
        "Bus_free/Bus_busy conservation violations: {} (expect 0)",
        violations.len()
    );
    println!(
        "non-atomic bus movers:                     {} (expect 0)",
        nonatomic.len()
    );
    let report = analysis::structural_report(&net);
    println!("structural anomalies:                      {}", {
        if report.is_clean() {
            "none".to_string()
        } else {
            format!("{report:?}")
        }
    });

    println!("\nStage inventory (Figure -> subnet):");
    for (fig, stage, transitions) in [
        (
            "Figure 1",
            "prefetch",
            vec!["Start_prefetch", "End_prefetch"],
        ),
        (
            "Figure 2",
            "decode/eaddr/operand-fetch",
            vec![
                "Decode",
                "Type_1",
                "Type_2",
                "Type_3",
                "calc_eaddr_1",
                "calc_eaddr_2",
                "start_fetch",
                "end_fetch",
                "finish_2",
                "finish_3",
            ],
        ),
        (
            "Figure 3",
            "execute/store",
            vec![
                "Issue",
                "exec_type_1",
                "exec_type_2",
                "exec_type_3",
                "exec_type_4",
                "exec_type_5",
                "no_store",
                "want_store",
                "start_store",
                "end_store",
            ],
        ),
    ] {
        let present = transitions
            .iter()
            .filter(|t| net.transition_id(t).is_some())
            .count();
        println!(
            "  {fig} ({stage}): {present}/{} transitions present",
            transitions.len()
        );
    }
    Ok(())
}
