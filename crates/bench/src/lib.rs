#![forbid(unsafe_code)]

//! # pnut-bench — figure regeneration and benchmark harness
//!
//! One binary per figure of the paper's evaluation plus the intro
//! sweeps, and Criterion benches tracking the cost of each tool:
//!
//! | binary | regenerates |
//! |---|---|
//! | `fig1_3_structure` | Figures 1–3: the three subnets, structurally |
//! | `fig4_interpreted` | Figure 4: the interpreted operand-fetch net |
//! | `fig5_report` | Figure 5: the 10 000-cycle statistics report |
//! | `fig6_animation` | Figure 6: animation frames of the pipeline |
//! | `fig7_timeline` | Figure 7: the tracertool timing display |
//! | `sweeps` | intro claims: memory / buffer / mix / cache sweeps, pipelined vs sequential |
//!
//! Every binary accepts an optional seed as its first argument
//! (default 1) and prints to stdout; see EXPERIMENTS.md for the
//! paper-vs-measured record.

pub mod legacy_reach;
pub mod workloads;

use pnut_pipeline::ThreeStageConfig;

/// Parse `argv[1]` as the experiment seed (default 1).
pub fn seed_from_args() -> u64 {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// The paper's §2 configuration.
pub fn paper_config() -> ThreeStageConfig {
    ThreeStageConfig::default()
}

#[cfg(test)]
mod tests {
    #[test]
    fn paper_config_is_default() {
        assert_eq!(super::paper_config(), super::ThreeStageConfig::default());
    }
}
