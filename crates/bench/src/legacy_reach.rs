//! The **pre-refactor** reachability construction, kept verbatim as a
//! performance and semantics baseline.
//!
//! This is the seed implementation that `pnut_reach` replaced with the
//! interned [`StateStore`](pnut_reach::StateStore) + CSR layout: every
//! state is stored twice (once in `Vec<StateData>`, once as the owned
//! key of a `HashMap<StateData, usize>`), every visit clones the popped
//! state, every successor allocates fresh `Marking`/`Env` values, and
//! lookups hash whole states with SipHash. Do **not** "fix" or optimize
//! it — `benches/reach.rs` measures the new engine against it, and the
//! golden tests in `tests/reach_golden.rs` assert the new engine is
//! semantically identical to it. Its only deviations from the seed are
//! mechanical: it borrows `EdgeLabel`/`ReachOptions`/`ReachError` from
//! `pnut_reach` so results are directly comparable.

use pnut_core::expr::Env;
use pnut_core::{Marking, Net, TransitionId};
use pnut_reach::graph::{EdgeLabel, ReachError, ReachOptions};
use std::collections::{HashMap, VecDeque};

/// The data of one reachable state (owned, as in the seed).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateData {
    /// Token counts.
    pub marking: Marking,
    /// Variable environment (constant for nets without actions).
    pub env: Env,
    /// In-flight firings as `(transition, remaining ticks)`, sorted —
    /// empty for untimed graphs.
    pub in_flight: Vec<(TransitionId, u64)>,
}

/// A reachability graph in the seed's doubled, pointer-heavy layout.
#[derive(Debug, Clone, PartialEq)]
pub struct LegacyGraph {
    states: Vec<StateData>,
    edges: Vec<Vec<(EdgeLabel, usize)>>,
}

impl LegacyGraph {
    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// The data of state `i`.
    pub fn state(&self, i: usize) -> &StateData {
        &self.states[i]
    }

    /// Outgoing edges of state `i`.
    pub fn successors(&self, i: usize) -> &[(EdgeLabel, usize)] {
        &self.edges[i]
    }

    /// Structural estimate of the layout's heap footprint in bytes:
    /// both copies of every state (arena `Vec` + owned `HashMap` key),
    /// the per-state edge `Vec` headers, and the table's control bytes.
    pub fn approx_bytes(&self) -> usize {
        fn state_bytes(s: &StateData) -> usize {
            std::mem::size_of::<StateData>()
                + s.marking.len() * 4
                + s.env.vars().map(|(n, _)| n.len() + 48).sum::<usize>()
                + s.env
                    .tables()
                    .map(|(n, t)| n.len() + 8 * t.len() + 48)
                    .sum::<usize>()
                + s.in_flight.capacity() * std::mem::size_of::<(TransitionId, u64)>()
        }
        let states: usize = self.states.iter().map(state_bytes).sum();
        // The owned-key index duplicates every state plus ~16 bytes of
        // hash-table entry overhead (usize value + control byte + load
        // factor slack).
        let index = states + self.states.len() * 16;
        let edges: usize = self
            .edges
            .iter()
            .map(|row| {
                std::mem::size_of::<Vec<(EdgeLabel, usize)>>()
                    + row.capacity() * std::mem::size_of::<(EdgeLabel, usize)>()
            })
            .sum();
        states + index + edges
    }
}

fn check_deterministic(net: &Net) -> Result<(), ReachError> {
    if net.uses_random() {
        return Err(ReachError::UsesRandom);
    }
    Ok(())
}

/// The seed's untimed construction: BFS with per-visit clones and an
/// owned-key duplicate index.
pub fn build_untimed(net: &Net, options: &ReachOptions) -> Result<LegacyGraph, ReachError> {
    check_deterministic(net)?;
    let initial = StateData {
        marking: net.initial_marking(),
        env: net.initial_env().clone(),
        in_flight: Vec::new(),
    };
    let mut states = vec![initial.clone()];
    let mut index: HashMap<StateData, usize> = HashMap::from([(initial, 0)]);
    let mut edges: Vec<Vec<(EdgeLabel, usize)>> = vec![Vec::new()];
    let mut queue = VecDeque::from([0usize]);

    while let Some(cur) = queue.pop_front() {
        let state = states[cur].clone();
        for (tid, t) in net.transitions() {
            if !t.marking_enabled(&state.marking) {
                continue;
            }
            if let Some(p) = t.predicate() {
                let ok = p
                    .eval_pure(&state.env)
                    .and_then(|v| v.as_bool())
                    .map_err(|source| ReachError::Eval {
                        transition: t.name().to_string(),
                        source,
                    })?;
                if !ok {
                    continue;
                }
            }
            let mut marking = state.marking.clone();
            for &(p, w) in t.inputs() {
                let ok = marking.try_remove(p, w);
                debug_assert!(ok);
            }
            for &(p, w) in t.outputs() {
                marking.add(p, w);
            }
            let mut env = state.env.clone();
            if let Some(a) = t.action() {
                a.apply_pure(&mut env).map_err(|source| ReachError::Eval {
                    transition: t.name().to_string(),
                    source,
                })?;
            }
            let next = StateData {
                marking,
                env,
                in_flight: Vec::new(),
            };
            let target = match index.get(&next) {
                Some(&i) => i,
                None => {
                    let i = states.len();
                    if i >= options.max_states {
                        return Err(ReachError::StateLimit {
                            limit: options.max_states,
                        });
                    }
                    states.push(next.clone());
                    index.insert(next, i);
                    edges.push(Vec::new());
                    queue.push_back(i);
                    i
                }
            };
            edges[cur].push((EdgeLabel::Fire(tid), target));
        }
    }
    Ok(LegacyGraph { states, edges })
}

/// The seed's timed construction (`[RP84]` semantics), with the same
/// clone-per-successor cost profile as [`build_untimed`].
pub fn build_timed(net: &Net, options: &ReachOptions) -> Result<LegacyGraph, ReachError> {
    check_deterministic(net)?;
    let mut firing_ticks = Vec::with_capacity(net.transition_count());
    for (_, t) in net.transitions() {
        // The seed never modelled enabling clocks at all; the modern
        // build resolves both constant and expression enabling times,
        // so `NonConstantDelay` (the seed's catch-all for delay classes
        // it cannot carry) survives only here.
        if !t.enabling_time().is_zero_constant() {
            return Err(ReachError::NonConstantDelay {
                transition: t.name().to_string(),
            });
        }
        match t.firing_time() {
            pnut_core::Delay::Fixed(ticks) => firing_ticks.push(*ticks),
            pnut_core::Delay::Expr(_) => {
                return Err(ReachError::NonConstantDelay {
                    transition: t.name().to_string(),
                });
            }
        }
    }

    let initial = StateData {
        marking: net.initial_marking(),
        env: net.initial_env().clone(),
        in_flight: Vec::new(),
    };
    let mut states = vec![initial.clone()];
    let mut index: HashMap<StateData, usize> = HashMap::from([(initial, 0)]);
    let mut edges: Vec<Vec<(EdgeLabel, usize)>> = vec![Vec::new()];
    let mut queue = VecDeque::from([0usize]);

    let mut intern = |next: StateData,
                      states: &mut Vec<StateData>,
                      edges: &mut Vec<Vec<(EdgeLabel, usize)>>,
                      queue: &mut VecDeque<usize>|
     -> Result<usize, ReachError> {
        match index.get(&next) {
            Some(&i) => Ok(i),
            None => {
                let i = states.len();
                if i >= options.max_states {
                    return Err(ReachError::StateLimit {
                        limit: options.max_states,
                    });
                }
                states.push(next.clone());
                index.insert(next, i);
                edges.push(Vec::new());
                queue.push_back(i);
                Ok(i)
            }
        }
    };

    while let Some(cur) = queue.pop_front() {
        let state = states[cur].clone();
        let mut can_start = false;
        for (tid, t) in net.transitions() {
            if !t.marking_enabled(&state.marking) {
                continue;
            }
            if let Some(cap) = t.max_concurrent() {
                let inflight = state.in_flight.iter().filter(|&&(x, _)| x == tid).count() as u32;
                if inflight >= cap {
                    continue;
                }
            }
            if let Some(p) = t.predicate() {
                let ok = p
                    .eval_pure(&state.env)
                    .and_then(|v| v.as_bool())
                    .map_err(|source| ReachError::Eval {
                        transition: t.name().to_string(),
                        source,
                    })?;
                if !ok {
                    continue;
                }
            }
            can_start = true;
            let mut marking = state.marking.clone();
            for &(p, w) in t.inputs() {
                let ok = marking.try_remove(p, w);
                debug_assert!(ok);
            }
            let mut env = state.env.clone();
            if let Some(a) = t.action() {
                a.apply_pure(&mut env).map_err(|source| ReachError::Eval {
                    transition: t.name().to_string(),
                    source,
                })?;
            }
            let mut in_flight = state.in_flight.clone();
            let ticks = firing_ticks[tid.index()];
            if ticks == 0 {
                // Atomic: outputs appear immediately.
                for &(p, w) in t.outputs() {
                    marking.add(p, w);
                }
            } else {
                in_flight.push((tid, ticks));
                in_flight.sort();
            }
            let next = StateData {
                marking,
                env,
                in_flight,
            };
            let target = intern(next, &mut states, &mut edges, &mut queue)?;
            edges[cur].push((EdgeLabel::Fire(tid), target));
        }

        // Maximal-progress time advance: only when nothing can start.
        if !can_start && !state.in_flight.is_empty() {
            let dt = state
                .in_flight
                .iter()
                .map(|&(_, r)| r)
                .min()
                .expect("non-empty");
            let mut marking = state.marking.clone();
            let mut in_flight = Vec::new();
            for &(tid, r) in &state.in_flight {
                if r == dt {
                    for &(p, w) in net.transition(tid).outputs() {
                        marking.add(p, w);
                    }
                } else {
                    in_flight.push((tid, r - dt));
                }
            }
            in_flight.sort();
            let next = StateData {
                marking,
                env: state.env.clone(),
                in_flight,
            };
            let target = intern(next, &mut states, &mut edges, &mut queue)?;
            edges[cur].push((EdgeLabel::Advance(dt), target));
        }
    }
    Ok(LegacyGraph { states, edges })
}
