//! Shared reachability workloads used by `benches/reach.rs` and the
//! golden equivalence tests.

use pnut_core::{Net, NetBuilder};
use pnut_pipeline::{interpreted, three_stage, ThreeStageConfig};

/// The §2 three-stage pipeline in the paper's configuration (614
/// untimed states).
pub fn three_stage_net() -> Net {
    three_stage::build(&ThreeStageConfig::default()).expect("paper config builds")
}

/// The §3 interpreted pipeline in its analysis variant — round-robin
/// dispatch, serialized branch resolution (3383 untimed states; the
/// simulation variant uses `irand` and is rejected by reachability).
pub fn interpreted_net() -> Net {
    let config = interpreted::InterpretedConfig {
        for_analysis: true,
        ..interpreted::InterpretedConfig::default()
    };
    interpreted::build(&config).expect("analysis config builds")
}

/// A timed fragment of the §2 pipeline: decode feeding a shared
/// execution unit with fixed firing delays and a concurrency-capped
/// memory stage. Historically the timed workload — the full pipeline
/// models use enabling times, which the timed construction rejected
/// before the enabling-clock state extension; kept as the small,
/// fast-to-build timed benchmark (the full pipelines are covered by the
/// `reach/timed/{three_stage,interpreted}` series). `tokens` scales the
/// instruction stream and with it the interleaving depth.
pub fn timed_fragment(tokens: u32) -> Net {
    let mut b = NetBuilder::new("timed_fragment");
    b.place("ibuf", tokens);
    b.place("decoded", 0);
    b.place("unit_free", 1);
    b.place("executing", 0);
    b.place("done", 0);
    b.transition("decode")
        .input("ibuf")
        .output("decoded")
        .firing(1)
        .add();
    b.transition("issue")
        .input("decoded")
        .input("unit_free")
        .output("executing")
        .add();
    b.transition("execute")
        .input("executing")
        .output("done")
        .output("unit_free")
        .firing(5)
        .max_concurrent(1)
        .add();
    b.transition("store")
        .input("done")
        .output("ibuf")
        .firing(2)
        .add();
    b.build().expect("fragment builds")
}

/// `cells` independent one-shot toggles: cell `i` moves its single token
/// from `u<i>` to `d<i>` once. The untimed state space is the Boolean
/// lattice `2^cells` and BFS level `L` holds `C(cells, L)` states, so —
/// unlike the paper's pipelines, whose frontiers never exceed a few
/// dozen states — the middle levels are thousands of states wide. This
/// is the workload that actually exercises (and can show speedup from)
/// the parallel frontier exploration; the pipelines measure its
/// overhead on narrow frontiers instead.
pub fn wide_toggle(cells: u32) -> Net {
    let mut b = NetBuilder::new("wide_toggle");
    for i in 0..cells {
        b.place(format!("u{i}"), 1);
        b.place(format!("d{i}"), 0);
    }
    for i in 0..cells {
        b.transition(format!("flip{i}"))
            .input(format!("u{i}"))
            .output(format!("d{i}"))
            .add();
    }
    b.build().expect("toggle builds")
}
