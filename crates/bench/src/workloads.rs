//! Shared reachability workloads used by `benches/reach.rs` and the
//! golden equivalence tests.

use pnut_core::{Expr, Net, NetBuilder};
use pnut_pipeline::{interpreted, three_stage, ThreeStageConfig};

/// The §2 three-stage pipeline in the paper's configuration (614
/// untimed states).
pub fn three_stage_net() -> Net {
    three_stage::build(&ThreeStageConfig::default()).expect("paper config builds")
}

/// The §3 interpreted pipeline in its analysis variant — round-robin
/// dispatch, serialized branch resolution (3383 untimed states; the
/// simulation variant uses `irand` and is rejected by reachability).
pub fn interpreted_net() -> Net {
    let config = interpreted::InterpretedConfig {
        for_analysis: true,
        ..interpreted::InterpretedConfig::default()
    };
    interpreted::build(&config).expect("analysis config builds")
}

/// A timed fragment of the §2 pipeline: decode feeding a shared
/// execution unit with fixed firing delays and a concurrency-capped
/// memory stage. Historically the timed workload — the full pipeline
/// models use enabling times, which the timed construction rejected
/// before the enabling-clock state extension; kept as the small,
/// fast-to-build timed benchmark (the full pipelines are covered by the
/// `reach/timed/{three_stage,interpreted}` series). `tokens` scales the
/// instruction stream and with it the interleaving depth.
pub fn timed_fragment(tokens: u32) -> Net {
    let mut b = NetBuilder::new("timed_fragment");
    b.place("ibuf", tokens);
    b.place("decoded", 0);
    b.place("unit_free", 1);
    b.place("executing", 0);
    b.place("done", 0);
    b.transition("decode")
        .input("ibuf")
        .output("decoded")
        .firing(1)
        .add();
    b.transition("issue")
        .input("decoded")
        .input("unit_free")
        .output("executing")
        .add();
    b.transition("execute")
        .input("executing")
        .output("done")
        .output("unit_free")
        .firing(5)
        .max_concurrent(1)
        .add();
    b.transition("store")
        .input("done")
        .output("ibuf")
        .firing(2)
        .add();
    b.build().expect("fragment builds")
}

/// A tiny deterministic PRNG (splitmix64) so [`random_net`] needs no
/// external crate and the same seed always yields the same net.
struct Split64(u64);

impl Split64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish draw in `lo..=hi` (modulo bias is irrelevant here).
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.range(0, 99) < percent
    }
}

/// A seeded, deterministic random net: the library form of the
/// generator behind `tests/props.rs`, extended with a bounded data
/// layer (variables, a table, predicates, actions, and expression
/// delays) so it exercises the whole expression language.
///
/// Guarantees, independent of seed:
///
/// * always well-formed (builds without error);
/// * never uses `irand`, so reachability accepts every net;
/// * all variable/table values evolve under small moduli, so the data
///   component of the state space is finite;
/// * input-free transitions get an enabling delay of at least one tick,
///   so simulation never trips the instant-livelock guard;
/// * delay expressions never evaluate negative.
///
/// The *marking* component can still be unbounded (token-minting
/// loops); callers bound construction with
/// [`ReachOptions::max_states`](pnut_reach::ReachOptions) and skip the
/// overflow, as the property tests do.
pub fn random_net(seed: u64) -> Net {
    let mut r = Split64(seed);
    let mut b = NetBuilder::new(format!("random_{seed}"));
    let nplaces = r.range(1, 4) as usize;
    for i in 0..nplaces {
        b.place(format!("p{i}"), r.range(0, 3) as u32);
    }
    // About half the nets get the data layer; the rest stay plain
    // place/transition nets like the original property generator.
    let with_data = r.chance(50);
    if with_data {
        for v in 0..3 {
            b.var(format!("v{v}"), r.range(0, 3) as i64);
        }
        b.table("tab", (0..4).map(|_| r.range(0, 4) as i64).collect());
    }
    let predicates = ["v0 % 2 == 0", "v0 < 2", "v0 != v1", "tab[v0 % 4] <= 2"];
    let actions = [
        "v0 = (v0 + 1) % 3;",
        "v1 = tab[v0 % 4];",
        "tab[v0 % 4] = (tab[v0 % 4] + 1) % 5;",
        "v2 = min(v0, v1); v0 = max(v1, 1) % 3;",
        "v1 = abs(v0 - v1) % 4;",
    ];
    let delay_exprs = ["1 + 2", "v0 + 1", "tab[v1 % 4] % 4", "min(v0, 2)"];
    let ntrans = r.range(1, 4);
    for i in 0..ntrans {
        let mut tb = b.transition(format!("t{i}"));
        let ninputs = r.range(0, 2);
        for _ in 0..ninputs {
            tb = tb.input_weighted(
                format!("p{}", r.range(0, nplaces as u64 - 1)),
                r.range(1, 2) as u32,
            );
        }
        for _ in 0..r.range(0, 2) {
            tb = tb.output_weighted(
                format!("p{}", r.range(0, nplaces as u64 - 1)),
                r.range(1, 2) as u32,
            );
        }
        if r.chance(30) {
            tb = tb.inhibitor(format!("p{}", r.range(0, nplaces as u64 - 1)));
        }
        if with_data && r.chance(40) {
            tb = tb
                .predicate_str(predicates[r.range(0, predicates.len() as u64 - 1) as usize])
                .expect("generator predicates parse");
        }
        if with_data && r.chance(50) {
            tb = tb
                .action_str(actions[r.range(0, actions.len() as u64 - 1) as usize])
                .expect("generator actions parse");
        }
        // Delays: mostly constants; with the data layer, sometimes an
        // expression (a constant-foldable one — exercising the
        // builder's delay folding — or a genuinely data-dependent one).
        tb = if with_data && r.chance(35) {
            let e = delay_exprs[r.range(0, delay_exprs.len() as u64 - 1) as usize];
            tb.firing_expr(Expr::parse(e).expect("generator delays parse"))
        } else {
            tb.firing(r.range(0, 3))
        };
        let enabling = if ninputs == 0 {
            r.range(1, 3)
        } else {
            r.range(0, 3)
        };
        tb.enabling(enabling)
            .frequency(r.range(1, 16) as f64 / 4.0)
            .add();
    }
    b.build().expect("generated nets are well-formed")
}

/// `cells` independent one-shot toggles: cell `i` moves its single token
/// from `u<i>` to `d<i>` once. The untimed state space is the Boolean
/// lattice `2^cells` and BFS level `L` holds `C(cells, L)` states, so —
/// unlike the paper's pipelines, whose frontiers never exceed a few
/// dozen states — the middle levels are thousands of states wide. This
/// is the workload that actually exercises (and can show speedup from)
/// the parallel frontier exploration; the pipelines measure its
/// overhead on narrow frontiers instead.
pub fn wide_toggle(cells: u32) -> Net {
    let mut b = NetBuilder::new("wide_toggle");
    for i in 0..cells {
        b.place(format!("u{i}"), 1);
        b.place(format!("d{i}"), 0);
    }
    for i in 0..cells {
        b.transition(format!("flip{i}"))
            .input(format!("u{i}"))
            .output(format!("d{i}"))
            .add();
    }
    b.build().expect("toggle builds")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_net_is_deterministic() {
        for seed in 0..20 {
            assert_eq!(random_net(seed), random_net(seed));
        }
    }

    #[test]
    fn random_nets_vary_with_seed() {
        assert!((0..20).any(|s| random_net(s) != random_net(s + 1)));
    }

    #[test]
    fn random_nets_include_data_layers_and_expression_delays() {
        let mut with_pred = 0;
        let mut with_action = 0;
        let mut with_expr_delay = 0;
        for seed in 0..60 {
            let net = random_net(seed);
            for (_, t) in net.transitions() {
                with_pred += usize::from(t.predicate().is_some());
                with_action += usize::from(t.action().is_some());
                with_expr_delay += usize::from(!t.firing_time().is_fixed());
            }
        }
        assert!(with_pred > 0, "some net must carry a predicate");
        assert!(with_action > 0, "some net must carry an action");
        assert!(
            with_expr_delay > 0,
            "some net must keep a non-constant delay expression"
        );
    }
}
