#![forbid(unsafe_code)]

//! # pnut-anim — trace animation
//!
//! Reproduction of the P-NUT animator (paper §4.3, Figure 6): "simulation
//! traces can be processed by an animation tool which allows the user to
//! single-step through the trace or to animate the entire trace."
//!
//! The paper stresses one design point: "a common deficiency of Petri net
//! animations is that the animation consists of tokens disappearing and
//! reappearing from places. The P-NUT animator deliberately animates the
//! *flow of tokens over arcs*." Accordingly every frame here shows the
//! token movements of one atomic step — which arcs tokens travelled, from
//! where to where — followed by the marking after the step.
//!
//! This is "better referred to as a visual discrete event simulation"
//! (§4.3): frames are indexed by step, not wall-clock, and the simulation
//! clock may jump arbitrarily between frames.
//!
//! # Example
//!
//! ```
//! use pnut_core::{NetBuilder, Time};
//! use pnut_anim::Animator;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = NetBuilder::new("n");
//! b.place("a", 1);
//! b.place("b", 0);
//! b.transition("move").input("a").output("b").firing(2).add();
//! let net = b.build()?;
//! let trace = pnut_sim::simulate(&net, 0, Time::from_ticks(5))?;
//!
//! let mut anim = Animator::new(&trace);
//! let first = anim.step().expect("at least one event");
//! assert!(first.to_string().contains("a --(1)--> [move]"));
//! # Ok(())
//! # }
//! ```

mod heatmap;

pub use heatmap::{HeatRow, Heatmap};

use pnut_core::Time;
use pnut_trace::{DeltaKind, RecordedTrace};
use std::fmt;

/// One animation frame: the token movements of one atomic step and the
/// marking afterwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Simulation time of the step.
    pub time: Time,
    /// Frame number (1-based; frame 0 is the initial state, produced by
    /// [`Animator::initial_frame`]).
    pub index: usize,
    /// Human-readable description of the event.
    pub caption: String,
    /// Token movements over arcs, one per line, e.g.
    /// `a --(2)--> [move]` or `[move] --(1)--> b`.
    pub movements: Vec<String>,
    /// `place: tokens` lines for places whose count changed, plus a
    /// compact total.
    pub marking_lines: Vec<String>,
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "── frame {} @ t={} ─ {}",
            self.index, self.time, self.caption
        )?;
        for m in &self.movements {
            writeln!(f, "   {m}")?;
        }
        for m in &self.marking_lines {
            writeln!(f, "   {m}")?;
        }
        Ok(())
    }
}

/// Steps through a recorded trace producing [`Frame`]s.
#[derive(Debug)]
pub struct Animator<'t> {
    trace: &'t RecordedTrace,
    pos: usize,
    index: usize,
    marking: Vec<i64>,
}

impl<'t> Animator<'t> {
    /// Create an animator positioned before the first event.
    pub fn new(trace: &'t RecordedTrace) -> Self {
        Animator {
            trace,
            pos: 0,
            index: 0,
            marking: trace
                .header()
                .initial_marking
                .iter()
                .map(|&t| i64::from(t))
                .collect(),
        }
    }

    /// The frame describing the initial state (frame 0).
    pub fn initial_frame(&self) -> Frame {
        let header = self.trace.header();
        Frame {
            time: header.start_time,
            index: 0,
            caption: format!("initial state of `{}`", header.net_name),
            movements: Vec::new(),
            marking_lines: header
                .place_names
                .iter()
                .zip(&header.initial_marking)
                .filter(|&(_, &t)| t > 0)
                .map(|(n, &t)| format!("{n}: {}", tokens(i64::from(t))))
                .collect(),
        }
    }

    /// Produce the next frame (single-step), or `None` at the end of the
    /// trace.
    pub fn step(&mut self) -> Option<Frame> {
        let deltas = self.trace.deltas();
        if self.pos >= deltas.len() {
            return None;
        }
        let header = self.trace.header();
        let step = deltas[self.pos].step;
        let time = deltas[self.pos].time;
        let mut caption = String::new();
        let mut movements = Vec::new();
        let mut touched = Vec::new();
        let mut current_transition: Option<(String, bool)> = None;

        while self.pos < deltas.len() && deltas[self.pos].step == step {
            let d = &deltas[self.pos];
            match &d.kind {
                DeltaKind::Start { transition, firing } => {
                    let name = header.transition_name(*transition).to_string();
                    caption = format!("{name} starts firing (instance {firing})");
                    current_transition = Some((name, true));
                }
                DeltaKind::Finish { transition, firing } => {
                    let name = header.transition_name(*transition).to_string();
                    if caption.is_empty() {
                        caption = format!("{name} finishes firing (instance {firing})");
                    } else {
                        caption.push_str(" and finishes instantly");
                    }
                    current_transition = Some((name, false));
                }
                DeltaKind::PlaceDelta { place, delta } => {
                    let pname = header.place_name(*place);
                    self.marking[place.index()] += delta;
                    touched.push(place.index());
                    match &current_transition {
                        Some((t, true)) if *delta < 0 => {
                            movements.push(format!("{pname} --({})--> [{t}]", -delta));
                        }
                        Some((t, _)) if *delta > 0 => {
                            movements.push(format!("[{t}] --({delta})--> {pname}"));
                        }
                        _ => {
                            movements.push(format!("{pname} {delta:+}"));
                        }
                    }
                }
                DeltaKind::VarSet { name, value } => {
                    movements.push(format!("{name} := {value}"));
                }
            }
            self.pos += 1;
        }
        self.index += 1;
        touched.sort_unstable();
        touched.dedup();
        let marking_lines = touched
            .into_iter()
            .map(|i| format!("{}: {}", header.place_names[i], tokens(self.marking[i])))
            .collect();
        Some(Frame {
            time,
            index: self.index,
            caption,
            movements,
            marking_lines,
        })
    }

    /// Animate the entire remaining trace into a single string.
    pub fn animate_all(&mut self) -> String {
        let mut out = self.initial_frame().to_string();
        while let Some(frame) = self.step() {
            out.push_str(&frame.to_string());
        }
        out
    }
}

/// Render a token count as filled circles (capped, with a numeric tail).
fn tokens(count: i64) -> String {
    const CAP: i64 = 8;
    if count <= 0 {
        "(empty)".to_string()
    } else if count <= CAP {
        "●".repeat(count as usize)
    } else {
        format!("●×{count}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnut_core::NetBuilder;

    fn mover_trace() -> RecordedTrace {
        let mut b = NetBuilder::new("n");
        b.place("a", 2);
        b.place("b", 0);
        b.transition("move").input("a").output("b").firing(3).add();
        let net = b.build().unwrap();
        pnut_sim::simulate(&net, 0, Time::from_ticks(10)).unwrap()
    }

    #[test]
    fn initial_frame_lists_marked_places() {
        let t = mover_trace();
        let f = Animator::new(&t).initial_frame();
        assert_eq!(f.index, 0);
        assert!(f.marking_lines.iter().any(|l| l == "a: ●●"));
        assert!(
            !f.marking_lines.iter().any(|l| l.starts_with("b:")),
            "empty places are not listed initially"
        );
    }

    #[test]
    fn start_frames_show_flow_into_the_transition() {
        let t = mover_trace();
        let mut anim = Animator::new(&t);
        let f = anim.step().unwrap();
        assert!(f.caption.contains("move starts firing"));
        assert_eq!(f.movements, vec!["a --(1)--> [move]"]);
        assert!(f.marking_lines.contains(&"a: ●".to_string()));
    }

    #[test]
    fn finish_frames_show_flow_out_of_the_transition() {
        let t = mover_trace();
        let mut anim = Animator::new(&t);
        // Both tokens start (unbounded concurrency), then finish.
        let mut captions = Vec::new();
        let mut movements = Vec::new();
        while let Some(f) = anim.step() {
            captions.push(f.caption.clone());
            movements.extend(f.movements);
        }
        assert!(captions.iter().any(|c| c.contains("finishes firing")));
        assert!(movements.iter().any(|m| m == "[move] --(1)--> b"));
    }

    #[test]
    fn animate_all_covers_every_step_and_ends() {
        let t = mover_trace();
        let mut anim = Animator::new(&t);
        let s = anim.animate_all();
        assert!(s.contains("frame 0"));
        assert!(s.contains("frame 1"));
        assert!(anim.step().is_none(), "exhausted after animate_all");
        // 2 starts + 2 finishes.
        assert!(s.contains("frame 4"));
        assert!(!s.contains("frame 5"));
    }

    #[test]
    fn variable_assignments_appear_in_frames() {
        let mut b = NetBuilder::new("v");
        b.place("p", 1);
        b.var("x", 0);
        b.transition("t")
            .input("p")
            .action_str("x = 42;")
            .unwrap()
            .add();
        let net = b.build().unwrap();
        let trace = pnut_sim::simulate(&net, 0, Time::from_ticks(2)).unwrap();
        let mut anim = Animator::new(&trace);
        let f = anim.step().unwrap();
        assert!(f.movements.iter().any(|m| m == "x := 42"));
    }

    #[test]
    fn weighted_movements_show_the_count() {
        let mut b = NetBuilder::new("w");
        b.place("pool", 4);
        b.place("got", 0);
        b.transition("grab")
            .input_weighted("pool", 2)
            .output_weighted("got", 2)
            .firing(1)
            .add();
        let net = b.build().unwrap();
        let trace = pnut_sim::simulate(&net, 0, Time::from_ticks(1)).unwrap();
        let mut anim = Animator::new(&trace);
        let mut all = String::new();
        while let Some(f) = anim.step() {
            all.push_str(&f.to_string());
        }
        assert!(all.contains("pool --(2)--> [grab]"), "{all}");
    }

    #[test]
    fn big_counts_render_compactly() {
        assert_eq!(tokens(0), "(empty)");
        assert_eq!(tokens(3), "●●●");
        assert_eq!(tokens(100), "●×100");
    }
}
