//! Bottleneck feedback.
//!
//! §4.3 closes with the P-NUT group's future-work item: "the use of true
//! animation in giving users feedback about bottlenecks in the system."
//! This module implements the non-interactive core of that idea: an
//! activity *heatmap* computed from a trace — per-place occupancy and
//! per-transition busy fractions rendered as bars — so the hot resources
//! jump out before any detailed timeline work.

use pnut_trace::RecordedTrace;
use std::fmt;

/// One heatmap row.
#[derive(Debug, Clone, PartialEq)]
pub struct HeatRow {
    /// Place or transition name.
    pub name: String,
    /// Activity in `[0, 1]`: time-weighted non-empty fraction for
    /// places, busy (≥1 firing in flight) fraction for transitions.
    pub activity: f64,
}

/// Activity heatmap of one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Heatmap {
    /// Place rows, sorted by descending activity.
    pub places: Vec<HeatRow>,
    /// Transition rows, sorted by descending activity.
    pub transitions: Vec<HeatRow>,
}

impl Heatmap {
    /// Compute the heatmap from a recorded trace.
    pub fn from_trace(trace: &RecordedTrace) -> Self {
        let header = trace.header();
        let places = header.place_names.len();
        let transitions = header.transition_names.len();
        let start = header.start_time.ticks();
        let end = trace.end_time().ticks().max(start);
        let window = (end - start) as f64;

        let mut place_busy = vec![0u64; places];
        let mut trans_busy = vec![0u64; transitions];
        let mut prev_time = start;
        let mut prev_marking: Vec<u32> = header.initial_marking.clone();
        let mut prev_firing = vec![0u32; transitions];
        for state in trace.states().skip(1) {
            let dt = state.time.ticks() - prev_time;
            if dt > 0 {
                for (i, busy) in place_busy.iter_mut().enumerate() {
                    if prev_marking[i] > 0 {
                        *busy += dt;
                    }
                }
                for (i, busy) in trans_busy.iter_mut().enumerate() {
                    if prev_firing[i] > 0 {
                        *busy += dt;
                    }
                }
            }
            prev_time = state.time.ticks();
            prev_marking = state.marking.as_slice().to_vec();
            prev_firing = state.firing_counts.clone();
        }
        // Close the window with the final state.
        let dt = end.saturating_sub(prev_time);
        if dt > 0 {
            for (i, busy) in place_busy.iter_mut().enumerate() {
                if prev_marking[i] > 0 {
                    *busy += dt;
                }
            }
            for (i, busy) in trans_busy.iter_mut().enumerate() {
                if prev_firing[i] > 0 {
                    *busy += dt;
                }
            }
        }

        let frac = |busy: u64| {
            if window > 0.0 {
                busy as f64 / window
            } else {
                0.0
            }
        };
        let mut place_rows: Vec<HeatRow> = header
            .place_names
            .iter()
            .zip(&place_busy)
            .map(|(n, &b)| HeatRow {
                name: n.clone(),
                activity: frac(b),
            })
            .collect();
        let mut trans_rows: Vec<HeatRow> = header
            .transition_names
            .iter()
            .zip(&trans_busy)
            .map(|(n, &b)| HeatRow {
                name: n.clone(),
                activity: frac(b),
            })
            .collect();
        place_rows.sort_by(|a, b| b.activity.total_cmp(&a.activity).then(a.name.cmp(&b.name)));
        trans_rows.sort_by(|a, b| b.activity.total_cmp(&a.activity).then(a.name.cmp(&b.name)));
        Heatmap {
            places: place_rows,
            transitions: trans_rows,
        }
    }

    /// The hottest transition (the likely bottleneck stage), if any.
    pub fn hottest_transition(&self) -> Option<&HeatRow> {
        self.transitions.first()
    }
}

impl fmt::Display for Heatmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const WIDTH: usize = 30;
        let bar = |v: f64| "█".repeat((v * WIDTH as f64).round() as usize);
        writeln!(f, "ACTIVITY HEATMAP (fraction of time non-idle)")?;
        writeln!(f, "places:")?;
        for r in &self.places {
            writeln!(
                f,
                "  {:<28} {:>6.1}% {}",
                r.name,
                r.activity * 100.0,
                bar(r.activity)
            )?;
        }
        writeln!(f, "transitions:")?;
        for r in &self.transitions {
            writeln!(
                f,
                "  {:<28} {:>6.1}% {}",
                r.name,
                r.activity * 100.0,
                bar(r.activity)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnut_core::{NetBuilder, Time};

    #[test]
    fn heatmap_ranks_the_busy_stage_first() {
        // slow (firing 9) vs fast (firing 1) in a ring.
        let mut b = NetBuilder::new("ring");
        b.place("a", 1);
        b.place("bp", 0);
        b.transition("slow").input("a").output("bp").firing(9).add();
        b.transition("fast").input("bp").output("a").firing(1).add();
        let net = b.build().unwrap();
        let trace = pnut_sim::simulate(&net, 0, Time::from_ticks(100)).unwrap();
        let h = Heatmap::from_trace(&trace);
        let hottest = h.hottest_transition().unwrap();
        assert_eq!(hottest.name, "slow");
        assert!(
            hottest.activity > 0.8,
            "slow is busy 90%: {}",
            hottest.activity
        );
        let fast = h.transitions.iter().find(|r| r.name == "fast").unwrap();
        assert!(fast.activity < 0.2);
    }

    #[test]
    fn place_occupancy_measured() {
        let mut b = NetBuilder::new("hold");
        b.place("idle", 1);
        b.place("held", 0);
        b.transition("take")
            .input("idle")
            .output("held")
            .enabling(2)
            .add();
        b.transition("give")
            .input("held")
            .output("idle")
            .enabling(8)
            .add();
        let net = b.build().unwrap();
        let trace = pnut_sim::simulate(&net, 0, Time::from_ticks(100)).unwrap();
        let h = Heatmap::from_trace(&trace);
        let held = h.places.iter().find(|r| r.name == "held").unwrap();
        assert!(
            (held.activity - 0.8).abs() < 0.05,
            "held 8 of 10: {}",
            held.activity
        );
    }

    #[test]
    fn display_has_bars_and_percentages() {
        let mut b = NetBuilder::new("n");
        b.place("p", 1);
        b.transition("t").input("p").output("p").firing(1).add();
        let net = b.build().unwrap();
        let trace = pnut_sim::simulate(&net, 0, Time::from_ticks(10)).unwrap();
        let shown = Heatmap::from_trace(&trace).to_string();
        assert!(shown.contains("ACTIVITY HEATMAP"));
        assert!(shown.contains('%'));
        assert!(shown.contains('█'));
    }

    #[test]
    fn empty_window_yields_zero_activity() {
        let mut b = NetBuilder::new("n");
        b.place("p", 1);
        b.transition("t").input("p").output("p").firing(1).add();
        let net = b.build().unwrap();
        let trace = pnut_sim::simulate(&net, 0, Time::ZERO).unwrap();
        let h = Heatmap::from_trace(&trace);
        assert!(h.places.iter().all(|r| r.activity == 0.0));
    }
}
