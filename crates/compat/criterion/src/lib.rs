#![forbid(unsafe_code)]

//! A std-only stand-in for the [criterion](https://docs.rs/criterion)
//! statistics-driven benchmark harness, exposing the API subset the
//! workspace benches use.
//!
//! The build environment for this repository has no access to a crate
//! registry, so the real criterion cannot be vendored. This shim keeps
//! the bench sources byte-for-byte compatible with upstream criterion
//! (swap the `[patch]`-style path dependency for the registry crate and
//! everything keeps compiling) while providing honest wall-clock
//! measurements: per benchmark it warms up, sizes an iteration batch to
//! a target measurement time, takes several samples, and reports
//! median / mean / min over them.
//!
//! Environment knobs:
//!
//! * `PNUT_BENCH_MEASURE_MS` — per-sample target in milliseconds
//!   (default 120).
//! * `PNUT_BENCH_SAMPLES` — number of samples (default 12).
//! * `PNUT_BENCH_JSON` — when set to a path, appends one JSON line per
//!   benchmark: `{"name": ..., "median_ns": ..., "mean_ns": ..., "min_ns": ...}`.

use std::fmt;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn measure_target() -> Duration {
    let ms = std::env::var("PNUT_BENCH_MEASURE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(120u64);
    Duration::from_millis(ms.max(1))
}

fn sample_count() -> usize {
    std::env::var("PNUT_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12usize)
        .max(3)
}

/// How much setup output to amortize per batch in `iter_batched`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small routine input: big batches.
    SmallInput,
    /// Large routine input: modest batches.
    LargeInput,
    /// Call setup before every routine invocation.
    PerIteration,
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id made of a name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value (the group supplies the name).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Per-benchmark measurement driver handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    /// Collected samples, in ns per iteration.
    samples: Vec<f64>,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            samples: Vec::new(),
        }
    }

    /// Measure a routine. The routine's return value is black-boxed so
    /// the optimizer cannot delete the computation.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up and batch sizing: grow the batch until it takes at
        // least ~1/10 of the per-sample target.
        let target = measure_target();
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let took = start.elapsed();
            if took >= target / 10 || batch >= 1 << 30 {
                break;
            }
            batch = if took.is_zero() {
                batch * 16
            } else {
                let scale = (target.as_nanos() / 10).max(1) / took.as_nanos().max(1);
                (batch * (scale as u64).clamp(2, 16)).max(batch + 1)
            };
        }
        for _ in 0..sample_count() {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let took = start.elapsed();
            self.samples.push(took.as_nanos() as f64 / batch as f64);
        }
    }

    /// Measure a routine whose input is rebuilt by `setup` outside the
    /// timed region.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        for _ in 0..sample_count() {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let took = start.elapsed();
            self.samples.push(took.as_nanos() as f64);
        }
    }
}

#[derive(Debug, Clone)]
struct Summary {
    median_ns: f64,
    mean_ns: f64,
    min_ns: f64,
}

fn summarize(samples: &[f64]) -> Summary {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median_ns = sorted[sorted.len() / 2];
    let mean_ns = sorted.iter().sum::<f64>() / sorted.len() as f64;
    Summary {
        median_ns,
        mean_ns,
        min_ns: sorted[0],
    }
}

fn human(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn report(name: &str, samples: &[f64]) {
    if samples.is_empty() {
        println!("{name:<44} (no samples)");
        return;
    }
    let s = summarize(samples);
    println!(
        "{name:<44} median {:>12}   mean {:>12}   min {:>12}",
        human(s.median_ns),
        human(s.mean_ns),
        human(s.min_ns),
    );
    if let Ok(path) = std::env::var("PNUT_BENCH_JSON") {
        if !path.is_empty() {
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
            {
                let _ = writeln!(
                    f,
                    "{{\"name\":\"{}\",\"median_ns\":{:.1},\"mean_ns\":{:.1},\"min_ns\":{:.1}}}",
                    name.replace('"', "'"),
                    s.median_ns,
                    s.mean_ns,
                    s.min_ns,
                );
            }
        }
    }
}

/// The harness entry point, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        report(name, &b.samples);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }

    /// Upstream-compatible no-op (the shim has no config to finalize).
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b.samples);
        self
    }

    /// Run one parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b.samples);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Declare a group function that runs each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
