//! The interned, zero-copy state store behind reachability graphs.
//!
//! # Why it exists
//!
//! Every analysis in this workspace — CTL checking, steady-state Markov
//! analysis, coverability — funnels through exhaustive state-space
//! exploration, so duplicate detection is *the* hot loop: each successor
//! computation must answer "have I seen this state?" before anything
//! else can happen. The original construction paid for that three ways:
//!
//! 1. every state was stored **twice** (once in `Vec<StateData>`, once
//!    as the owned key of a `HashMap<StateData, usize>`);
//! 2. every visit **cloned** the popped state and every successor was
//!    built from freshly allocated `Vec`s and `BTreeMap`s;
//! 3. lookups hashed whole states — including the `BTreeMap`-backed
//!    variable environment — with DoS-resistant SipHash.
//!
//! # Layout
//!
//! [`StateStore`] keeps each distinct state exactly once, decomposed
//! into flat arenas:
//!
//! ```text
//! markings:  [ s0 p0..pn | s1 p0..pn | ... ]      width = place count
//! env_ids:   [ s0 | s1 | ... ]                    u32 into `envs`
//! inflight:  [ ...(transition, remaining)... ]    CSR via inflight_offsets
//! envs:      [ distinct environments only ]       interned separately
//! ```
//!
//! Duplicate detection is a hand-rolled open-addressing table of
//! `(precomputed FxHash, state index)` pairs — the raw-entry pattern:
//! no owned keys, no re-hashing on probe, equality checked directly
//! against the arena slices. Because environments are interned first,
//! state equality degrades to two slice compares plus one `u32` compare;
//! the expensive `BTreeMap` walk happens at most once per *distinct*
//! environment, not once per visit.
//!
//! # Complexity
//!
//! Interning is amortized O(|marking| + |in-flight|) per successor with
//! no allocation on the hit path (the overwhelmingly common case once
//! the frontier saturates). Memory is one arena copy per distinct state
//! plus 12 bytes of table entry — roughly half of what the doubled
//! owned-key layout used, before counting its per-state heap headers.

use pnut_core::expr::Env;
use pnut_core::{Marking, PlaceId, TransitionId};
use std::fmt;
use std::hash::{Hash, Hasher};

// ---------------------------------------------------------------------------
// FxHash
// ---------------------------------------------------------------------------

/// Multiplier from the Firefox/rustc Fx hash (a Fibonacci-style odd
/// constant); quality is plenty for interning and it is far cheaper
/// than SipHash on short keys.
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

#[inline]
fn fx_mix(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED)
}

/// The FxHash algorithm behind a [`std::hash::Hasher`] face, so derived
/// `Hash` impls (e.g. [`Env`]'s) can feed it.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.hash = fx_mix(
                self.hash,
                u64::from_le_bytes(c.try_into().expect("8 bytes")),
            );
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.hash = fx_mix(self.hash, u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.hash = fx_mix(self.hash, u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.hash = fx_mix(self.hash, u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.hash = fx_mix(self.hash, v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.hash = fx_mix(self.hash, v as u64);
    }
}

/// FxHash of anything `Hash` (used for environment interning).
pub fn fx_hash_of<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

// ---------------------------------------------------------------------------
// Raw intern table
// ---------------------------------------------------------------------------

const EMPTY: u32 = u32::MAX;

/// Open-addressing table of `(hash, index)` pairs with linear probing.
///
/// The table owns no keys: callers keep the real data in an arena and
/// supply an equality predicate at probe time, exactly like hashbrown's
/// raw-entry API but without the dependency.
#[derive(Debug, Clone)]
struct InternTable {
    /// Power-of-two bucket array; `idx == EMPTY` marks a free slot.
    entries: Vec<(u64, u32)>,
    len: usize,
}

impl InternTable {
    fn with_capacity(capacity: usize) -> Self {
        let buckets = (capacity * 8 / 7 + 1).next_power_of_two().max(16);
        InternTable {
            entries: vec![(0, EMPTY); buckets],
            len: 0,
        }
    }

    #[inline]
    fn start(&self, hash: u64) -> usize {
        // Fold the high bits in: Fx concentrates entropy there.
        (hash ^ (hash >> 32)) as usize & (self.entries.len() - 1)
    }

    /// Find the index previously inserted under `hash` for which `eq`
    /// holds.
    #[inline]
    fn find(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        let mask = self.entries.len() - 1;
        let mut i = self.start(hash);
        loop {
            let (h, idx) = self.entries[i];
            if idx == EMPTY {
                return None;
            }
            if h == hash && eq(idx) {
                return Some(idx);
            }
            i = (i + 1) & mask;
        }
    }

    /// Insert `idx` under `hash`. The caller guarantees it is absent.
    fn insert(&mut self, hash: u64, idx: u32) {
        if (self.len + 1) * 8 > self.entries.len() * 7 {
            self.grow();
        }
        let mask = self.entries.len() - 1;
        let mut i = self.start(hash);
        while self.entries[i].1 != EMPTY {
            i = (i + 1) & mask;
        }
        self.entries[i] = (hash, idx);
        self.len += 1;
    }

    fn grow(&mut self) {
        let doubled = self.entries.len() * 2;
        let old = std::mem::replace(&mut self.entries, vec![(0, EMPTY); doubled]);
        let mask = self.entries.len() - 1;
        for (h, idx) in old {
            if idx != EMPTY {
                let mut i = (h ^ (h >> 32)) as usize & mask;
                while self.entries[i].1 != EMPTY {
                    i = (i + 1) & mask;
                }
                self.entries[i] = (h, idx);
            }
        }
    }

    fn bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<(u64, u32)>()
    }
}

// ---------------------------------------------------------------------------
// Views
// ---------------------------------------------------------------------------

/// A borrowed view of one state's marking (token counts in place order).
///
/// Mirrors the read API of [`pnut_core::Marking`] without owning the
/// counts — they live in the store's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarkingView<'a>(&'a [u32]);

impl<'a> MarkingView<'a> {
    /// Wrap a raw slice of token counts.
    pub fn new(counts: &'a [u32]) -> Self {
        MarkingView(counts)
    }

    /// Tokens on `place`.
    ///
    /// # Panics
    ///
    /// Panics if `place` is out of range.
    pub fn tokens(&self, place: PlaceId) -> u32 {
        self.0[place.index()]
    }

    /// Number of places covered.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the marking covers zero places.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether `place` holds at least `tokens` tokens.
    pub fn covers(&self, place: PlaceId, tokens: u32) -> bool {
        self.0[place.index()] >= tokens
    }

    /// Total tokens across all places.
    pub fn total_tokens(&self) -> u64 {
        self.0.iter().map(|&t| u64::from(t)).sum()
    }

    /// Iterate `(place, tokens)` pairs in place order.
    pub fn iter(&self) -> impl Iterator<Item = (PlaceId, u32)> + 'a {
        self.0
            .iter()
            .enumerate()
            .map(|(i, &t)| (PlaceId::new(i), t))
    }

    /// The raw token counts in place order.
    pub fn as_slice(&self) -> &'a [u32] {
        self.0
    }

    /// Materialize an owned [`Marking`] (allocates; prefer the view).
    pub fn to_marking(&self) -> Marking {
        Marking::from_counts(self.0.to_vec())
    }
}

impl fmt::Display for MarkingView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, t) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "]")
    }
}

/// A borrowed view of one interned state: marking, environment, and
/// in-flight firings, all pointing into the store's arenas.
#[derive(Debug, Clone, Copy)]
pub struct StateRef<'a> {
    /// Token counts.
    pub marking: MarkingView<'a>,
    /// Variable environment (interned; shared between states).
    pub env: &'a Env,
    /// In-flight firings as `(transition, remaining ticks)`, sorted —
    /// empty for untimed graphs.
    pub in_flight: &'a [(TransitionId, u64)],
}

// ---------------------------------------------------------------------------
// StateStore
// ---------------------------------------------------------------------------

/// Arena-backed interner for reachability states. See the [module
/// docs](self) for the layout.
#[derive(Debug, Clone)]
pub struct StateStore {
    places: usize,
    markings: Vec<u32>,
    env_ids: Vec<u32>,
    inflight_offsets: Vec<u32>,
    inflight: Vec<(TransitionId, u64)>,
    envs: Vec<Env>,
    state_table: InternTable,
    env_table: InternTable,
}

impl StateStore {
    /// An empty store for markings over `places` places.
    pub fn new(places: usize) -> Self {
        StateStore {
            places,
            markings: Vec::new(),
            env_ids: Vec::new(),
            inflight_offsets: vec![0],
            inflight: Vec::new(),
            envs: Vec::new(),
            state_table: InternTable::with_capacity(64),
            env_table: InternTable::with_capacity(4),
        }
    }

    /// Number of distinct states interned.
    pub fn len(&self) -> usize {
        self.env_ids.len()
    }

    /// Whether no state has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.env_ids.is_empty()
    }

    /// Number of distinct variable environments interned.
    pub fn env_count(&self) -> usize {
        self.envs.len()
    }

    /// The marking arena slice of state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn marking_slice(&self, i: usize) -> &[u32] {
        &self.markings[i * self.places..(i + 1) * self.places]
    }

    /// The in-flight slice of state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn in_flight_slice(&self, i: usize) -> &[(TransitionId, u64)] {
        &self.inflight[self.inflight_offsets[i] as usize..self.inflight_offsets[i + 1] as usize]
    }

    /// The environment id of state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn env_id(&self, i: usize) -> u32 {
        self.env_ids[i]
    }

    /// The interned environment `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn env(&self, id: u32) -> &Env {
        &self.envs[id as usize]
    }

    /// A full view of state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn state(&self, i: usize) -> StateRef<'_> {
        StateRef {
            marking: MarkingView(self.marking_slice(i)),
            env: self.env(self.env_ids[i]),
            in_flight: self.in_flight_slice(i),
        }
    }

    /// Hash contribution of one `(place, count)` marking entry.
    ///
    /// The marking part of a state hash is the wrapping **sum** of these
    /// over all places, so a successor's hash can be maintained
    /// incrementally: subtract the old entry and add the new one for
    /// each place a firing touches, instead of rehashing the whole
    /// marking (see the explorer in [`crate::graph`]). Summing demands
    /// full avalanche *per element* — a cheap single-multiply mix leaves
    /// small token counts in the low bits, and sums of such values
    /// collide catastrophically — so this uses the murmur3 finalizer.
    #[inline]
    pub(crate) fn marking_elem_hash(place: usize, count: u32) -> u64 {
        let mut x = (place as u64) << 32 | u64::from(count);
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        x ^= x >> 33;
        x
    }

    /// The marking-part hash of a full marking (sum of element hashes).
    #[inline]
    pub(crate) fn marking_hash(marking: &[u32]) -> u64 {
        marking.iter().enumerate().fold(0u64, |h, (i, &c)| {
            h.wrapping_add(Self::marking_elem_hash(i, c))
        })
    }

    #[inline]
    fn hash_state(marking_hash: u64, env_id: u32, in_flight: &[(TransitionId, u64)]) -> u64 {
        let mut h = fx_mix(marking_hash, u64::from(env_id));
        h = fx_mix(h, in_flight.len() as u64);
        for &(t, r) in in_flight {
            h = fx_mix(h, t.index() as u64);
            h = fx_mix(h, r);
        }
        h
    }

    /// Intern a state given by its parts; returns `(index, newly_added)`.
    ///
    /// On a hit nothing is copied or allocated; on a miss the parts are
    /// appended to the arenas.
    ///
    /// # Panics
    ///
    /// Panics if `marking` does not cover exactly the store's place
    /// count, or on more than `u32::MAX` states.
    pub fn intern(
        &mut self,
        marking: &[u32],
        env_id: u32,
        in_flight: &[(TransitionId, u64)],
    ) -> (usize, bool) {
        self.intern_hashed(marking, Self::marking_hash(marking), env_id, in_flight)
    }

    /// [`Self::intern`] with the marking-part hash already known (the
    /// explorer maintains it incrementally across successor firings).
    pub(crate) fn intern_hashed(
        &mut self,
        marking: &[u32],
        marking_hash: u64,
        env_id: u32,
        in_flight: &[(TransitionId, u64)],
    ) -> (usize, bool) {
        assert_eq!(marking.len(), self.places, "marking width mismatch");
        debug_assert_eq!(
            marking_hash,
            Self::marking_hash(marking),
            "stale incremental hash"
        );
        let hash = Self::hash_state(marking_hash, env_id, in_flight);
        let found = self.state_table.find(hash, |idx| {
            let i = idx as usize;
            self.env_ids[i] == env_id
                && self.marking_slice(i) == marking
                && self.in_flight_slice(i) == in_flight
        });
        if let Some(idx) = found {
            return (idx as usize, false);
        }
        let idx = u32::try_from(self.env_ids.len()).expect("more than u32::MAX states");
        self.markings.extend_from_slice(marking);
        self.env_ids.push(env_id);
        self.inflight.extend_from_slice(in_flight);
        self.inflight_offsets
            .push(u32::try_from(self.inflight.len()).expect("in-flight arena overflow"));
        self.state_table.insert(hash, idx);
        (idx as usize, true)
    }

    /// Intern an environment; clones it only the first time it is seen.
    pub fn intern_env(&mut self, env: &Env) -> u32 {
        let hash = fx_hash_of(env);
        if let Some(id) = self
            .env_table
            .find(hash, |idx| &self.envs[idx as usize] == env)
        {
            return id;
        }
        let id = u32::try_from(self.envs.len()).expect("more than u32::MAX environments");
        self.envs.push(env.clone());
        self.env_table.insert(hash, id);
        id
    }

    /// Approximate heap footprint of the store in bytes (arenas and
    /// tables; environments counted structurally).
    pub fn approx_bytes(&self) -> usize {
        let env_guess: usize = self
            .envs
            .iter()
            .map(|e| {
                std::mem::size_of::<Env>()
                    + e.vars().map(|(n, _)| n.len() + 48).sum::<usize>()
                    + e.tables()
                        .map(|(n, t)| n.len() + 8 * t.len() + 48)
                        .sum::<usize>()
            })
            .sum();
        self.markings.capacity() * 4
            + self.env_ids.capacity() * 4
            + self.inflight_offsets.capacity() * 4
            + self.inflight.capacity() * std::mem::size_of::<(TransitionId, u64)>()
            + self.state_table.bytes()
            + self.env_table.bytes()
            + env_guess
    }
}

/// Semantic equality: same states in the same order with the same
/// environments (table layout is ignored).
impl PartialEq for StateStore {
    fn eq(&self, other: &Self) -> bool {
        self.places == other.places
            && self.markings == other.markings
            && self.env_ids == other.env_ids
            && self.inflight_offsets == other.inflight_offsets
            && self.inflight == other.inflight
            && self.envs == other.envs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnut_core::expr::Value;

    #[test]
    fn intern_is_idempotent_and_zero_copy_on_hit() {
        let mut s = StateStore::new(3);
        let e = s.intern_env(&Env::new());
        let (a, new_a) = s.intern(&[1, 0, 2], e, &[]);
        let (b, new_b) = s.intern(&[1, 0, 2], e, &[]);
        let (c, new_c) = s.intern(&[1, 0, 3], e, &[]);
        assert_eq!((a, new_a), (0, true));
        assert_eq!((b, new_b), (0, false));
        assert_eq!((c, new_c), (1, true));
        assert_eq!(s.len(), 2);
        assert_eq!(s.marking_slice(1), &[1, 0, 3]);
    }

    #[test]
    fn in_flight_distinguishes_states() {
        let mut s = StateStore::new(1);
        let e = s.intern_env(&Env::new());
        let t0 = TransitionId::new(0);
        let (a, _) = s.intern(&[0], e, &[(t0, 3)]);
        let (b, _) = s.intern(&[0], e, &[(t0, 2)]);
        let (c, _) = s.intern(&[0], e, &[]);
        assert_eq!(s.len(), 3);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(s.state(a).in_flight, &[(t0, 3)]);
        assert!(s.state(c).in_flight.is_empty());
    }

    #[test]
    fn environments_are_shared() {
        let mut s = StateStore::new(1);
        let mut env = Env::new();
        env.set_var("x", Value::Int(1));
        let e1 = s.intern_env(&env);
        let e2 = s.intern_env(&env.clone());
        assert_eq!(e1, e2);
        assert_eq!(s.env_count(), 1);
        env.set_var("x", Value::Int(2));
        assert_ne!(s.intern_env(&env), e1);
        assert_eq!(s.env_count(), 2);
    }

    #[test]
    fn table_survives_growth() {
        let mut s = StateStore::new(2);
        let e = s.intern_env(&Env::new());
        for i in 0..10_000u32 {
            let (idx, new) = s.intern(&[i, i / 3], e, &[]);
            assert_eq!(idx, i as usize);
            assert!(new);
        }
        // Everything is still findable after many growths.
        for i in 0..10_000u32 {
            let (idx, new) = s.intern(&[i, i / 3], e, &[]);
            assert_eq!(idx, i as usize);
            assert!(!new, "state {i} was re-interned");
        }
        assert_eq!(s.len(), 10_000);
    }

    #[test]
    fn views_mirror_marking_api() {
        let mut s = StateStore::new(3);
        let e = s.intern_env(&Env::new());
        s.intern(&[1, 0, 6], e, &[]);
        let v = s.state(0).marking;
        assert_eq!(v.tokens(PlaceId::new(2)), 6);
        assert!(v.covers(PlaceId::new(0), 1));
        assert!(!v.covers(PlaceId::new(1), 1));
        assert_eq!(v.total_tokens(), 7);
        assert_eq!(v.len(), 3);
        assert_eq!(v.to_string(), "[1 0 6]");
        assert_eq!(v.to_marking(), Marking::from_counts(vec![1, 0, 6]));
        assert_eq!(
            v.iter().map(|(p, t)| (p.index(), t)).collect::<Vec<_>>(),
            vec![(0, 1), (1, 0), (2, 6)]
        );
    }

    #[test]
    fn fx_hasher_differentiates_tails() {
        // Regression guard for the partial-word path.
        assert_ne!(fx_hash_of(&[1u8, 2]), fx_hash_of(&[1u8, 2, 0]));
        assert_ne!(fx_hash_of("ab"), fx_hash_of("ba"));
        assert_eq!(fx_hash_of(&42u64), fx_hash_of(&42u64));
    }

    #[test]
    fn memory_estimate_is_monotonic() {
        let mut s = StateStore::new(4);
        let e = s.intern_env(&Env::new());
        let before = s.approx_bytes();
        for i in 0..1000u32 {
            s.intern(&[i, 0, 0, 0], e, &[]);
        }
        assert!(s.approx_bytes() > before);
    }
}
