//! The interned, zero-copy state store behind reachability graphs.
//!
//! # Why it exists
//!
//! Every analysis in this workspace — CTL checking, steady-state Markov
//! analysis, coverability — funnels through exhaustive state-space
//! exploration, so duplicate detection is *the* hot loop: each successor
//! computation must answer "have I seen this state?" before anything
//! else can happen. The original construction paid for that three ways:
//!
//! 1. every state was stored **twice** (once in `Vec<StateData>`, once
//!    as the owned key of a `HashMap<StateData, usize>`);
//! 2. every visit **cloned** the popped state and every successor was
//!    built from freshly allocated `Vec`s and `BTreeMap`s;
//! 3. lookups hashed whole states — including the `BTreeMap`-backed
//!    variable environment — with DoS-resistant SipHash.
//!
//! # Layout
//!
//! [`StateStore`] keeps each distinct state exactly once, decomposed
//! into flat arenas:
//!
//! ```text
//! markings:  [ s0 p0..pn | s1 p0..pn | ... ]      width = place count
//! env_ids:   [ s0 | s1 | ... ]                    u32 into `envs`
//! inflight:  [ ...(transition, remaining)... ]    CSR via inflight_offsets
//! enabling:  [ ...(transition, countdown)... ]    CSR via enabling_offsets
//! envs:      [ distinct environments only ]       interned separately
//! ```
//!
//! The `enabling` arena carries the timed state's enabling clocks: for
//! each transition that is ready (marking-enabled, predicate true,
//! concurrency cap not reached) and has a non-zero constant enabling
//! delay, the remaining ticks before its start-firing event becomes
//! eligible. Untimed graphs — and timed graphs of nets without enabling
//! times — leave it empty, so they pay nothing for it.
//!
//! Duplicate detection is a hand-rolled open-addressing table of
//! `(precomputed FxHash, state index)` pairs — the raw-entry pattern:
//! no owned keys, no re-hashing on probe, equality checked directly
//! against the arena slices. Because environments are interned first,
//! state equality degrades to two slice compares plus one `u32` compare;
//! the expensive `BTreeMap` walk happens at most once per *distinct*
//! environment, not once per visit.
//!
//! # Complexity
//!
//! Interning is amortized O(|marking| + |in-flight|) per successor with
//! no allocation on the hit path (the overwhelmingly common case once
//! the frontier saturates). Memory is one arena copy per distinct state
//! plus 12 bytes of table entry — roughly half of what the doubled
//! owned-key layout used, before counting its per-state heap headers.
//!
//! # Parallel levels: sharding and the barrier splice
//!
//! The parallel builder in [`crate::graph`] explores breadth-first one
//! *level* at a time: the committed store above is frozen (shared
//! read-only — probes are plain `&self` loads, no atomics) while a
//! scoped worker pool scans disjoint chunks of the frontier. Successors
//! that miss the committed table land in a ring of [`PendingShard`]s —
//! the same open-addressing scheme, lock-striped, with a shard picked by
//! the **top bits** of the precomputed FxHash (the low bits index
//! buckets *within* a table, so top-bit sharding keeps both selections
//! independent). Each shard owns its own marking/in-flight/environment
//! segment; the inserting worker copies the state in under the shard
//! lock so other workers can probe it for duplicates immediately.
//!
//! Wall-clock insertion order under contention is racy, so dense state
//! numbering is deferred to the **level barrier**: every reference to a
//! pending state carries the discovery key `(source index, edge seq)`
//! of the edge that produced it, shards min-reduce that key per entry,
//! and [`StateStore::splice_level`] commits the level's novel states in
//! ascending key order — exactly the order the sequential build first
//! interns them. Environments created by transition actions get the
//! identical treatment (pending env sub-tables, min-key, committed at
//! the barrier before the states that reference them). The result is a
//! graph **bit-identical** to the sequential build at any worker count.
//!
//! # Paging: how the arenas scale past RAM
//!
//! The arenas above are not one flat allocation anymore: they are
//! partitioned into fixed-state-count **level segments** managed by
//! [`crate::pager`], each either resident in memory or spilled to a
//! temp file under a configurable byte budget
//! ([`crate::graph::ReachOptions::mem_budget`]). Three layers cooperate:
//!
//! 1. **intern table** — resident; holds only `(64-bit hash, index)`,
//!    so probes touch a segment (and possibly disk) only on a *true*
//!    hash hit;
//! 2. **segments** — the marking/env-id/in-flight rows of
//!    `seg_states` consecutive states; the tail receives appends, full
//!    segments seal immutable and become evictable;
//! 3. **spill file** — write-once images of sealed segments.
//!
//! Read accessors fault evicted segments back in transparently — even
//! under `&self`, which is what keeps the frozen-store parallel probes
//! of the level builder working (see [`crate::pager`] for the
//! load-only-under-`&self` safety argument). Eviction happens at `&mut`
//! points (every append and every level barrier), so the resident set
//! tracks the budget with at most one faulted segment of slack in the
//! sequential build. Environments are deduplicated and stay resident.
//!
//! The paged store is **bit-identical** to the unbounded in-memory
//! build at any budget: paging changes where rows live, never what they
//! contain or how states are numbered (asserted by the golden tests at
//! budgets small enough to force eviction).

use crate::graph::ReachError;
use crate::pager::{PagedStates, PagerConfig, PagerShared, SegmentData};
use pnut_core::expr::Env;
use pnut_core::{Marking, PlaceId, TransitionId};
use pnut_obs as obs;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// FxHash
// ---------------------------------------------------------------------------

/// Multiplier from the Firefox/rustc Fx hash (a Fibonacci-style odd
/// constant); quality is plenty for interning and it is far cheaper
/// than SipHash on short keys.
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

#[inline]
fn fx_mix(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED)
}

/// The FxHash algorithm behind a [`std::hash::Hasher`] face, so derived
/// `Hash` impls (e.g. [`Env`]'s) can feed it.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.hash = fx_mix(
                self.hash,
                u64::from_le_bytes(c.try_into().expect("8 bytes")),
            );
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.hash = fx_mix(self.hash, u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.hash = fx_mix(self.hash, u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.hash = fx_mix(self.hash, u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.hash = fx_mix(self.hash, v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.hash = fx_mix(self.hash, v as u64);
    }
}

/// FxHash of anything `Hash` (used for environment interning).
pub fn fx_hash_of<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

// ---------------------------------------------------------------------------
// Raw intern table
// ---------------------------------------------------------------------------

const EMPTY: u32 = u32::MAX;

/// Open-addressing table of `(hash, index)` pairs with linear probing.
///
/// The table owns no keys: callers keep the real data in an arena and
/// supply an equality predicate at probe time, exactly like hashbrown's
/// raw-entry API but without the dependency.
#[derive(Debug, Clone)]
struct InternTable {
    /// Power-of-two bucket array; `idx == EMPTY` marks a free slot.
    entries: Vec<(u64, u32)>,
    len: usize,
}

impl InternTable {
    fn with_capacity(capacity: usize) -> Self {
        let buckets = (capacity * 8 / 7 + 1).next_power_of_two().max(16);
        InternTable {
            entries: vec![(0, EMPTY); buckets],
            len: 0,
        }
    }

    #[inline]
    fn start(&self, hash: u64) -> usize {
        // Fold the high bits in: Fx concentrates entropy there.
        (hash ^ (hash >> 32)) as usize & (self.entries.len() - 1)
    }

    /// Find the index previously inserted under `hash` for which `eq`
    /// holds.
    #[inline]
    fn find(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        let mask = self.entries.len() - 1;
        let mut i = self.start(hash);
        loop {
            let (h, idx) = self.entries[i];
            if idx == EMPTY {
                return None;
            }
            if h == hash && eq(idx) {
                return Some(idx);
            }
            i = (i + 1) & mask;
        }
    }

    /// Insert `idx` under `hash`. The caller guarantees it is absent.
    fn insert(&mut self, hash: u64, idx: u32) {
        if (self.len + 1) * 8 > self.entries.len() * 7 {
            self.grow();
        }
        let mask = self.entries.len() - 1;
        let mut i = self.start(hash);
        while self.entries[i].1 != EMPTY {
            i = (i + 1) & mask;
        }
        self.entries[i] = (hash, idx);
        self.len += 1;
    }

    fn grow(&mut self) {
        let doubled = self.entries.len() * 2;
        let old = std::mem::replace(&mut self.entries, vec![(0, EMPTY); doubled]);
        let mask = self.entries.len() - 1;
        for (h, idx) in old {
            if idx != EMPTY {
                let mut i = (h ^ (h >> 32)) as usize & mask;
                while self.entries[i].1 != EMPTY {
                    i = (i + 1) & mask;
                }
                self.entries[i] = (h, idx);
            }
        }
    }

    fn bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<(u64, u32)>()
    }
}

// ---------------------------------------------------------------------------
// Views
// ---------------------------------------------------------------------------

/// A borrowed view of one state's marking (token counts in place order).
///
/// Mirrors the read API of [`pnut_core::Marking`] without owning the
/// counts — they live in the store's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarkingView<'a>(&'a [u32]);

impl<'a> MarkingView<'a> {
    /// Wrap a raw slice of token counts.
    pub fn new(counts: &'a [u32]) -> Self {
        MarkingView(counts)
    }

    /// Tokens on `place`.
    ///
    /// # Panics
    ///
    /// Panics if `place` is out of range.
    pub fn tokens(&self, place: PlaceId) -> u32 {
        self.0[place.index()]
    }

    /// Number of places covered.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the marking covers zero places.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether `place` holds at least `tokens` tokens.
    pub fn covers(&self, place: PlaceId, tokens: u32) -> bool {
        self.0[place.index()] >= tokens
    }

    /// Total tokens across all places.
    pub fn total_tokens(&self) -> u64 {
        self.0.iter().map(|&t| u64::from(t)).sum()
    }

    /// Iterate `(place, tokens)` pairs in place order.
    pub fn iter(&self) -> impl Iterator<Item = (PlaceId, u32)> + 'a {
        self.0
            .iter()
            .enumerate()
            .map(|(i, &t)| (PlaceId::new(i), t))
    }

    /// The raw token counts in place order.
    pub fn as_slice(&self) -> &'a [u32] {
        self.0
    }

    /// Materialize an owned [`Marking`] (allocates; prefer the view).
    pub fn to_marking(&self) -> Marking {
        Marking::from_counts(self.0.to_vec())
    }
}

impl fmt::Display for MarkingView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, t) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "]")
    }
}

/// A borrowed view of one interned state: marking, environment, and
/// in-flight firings, all pointing into the store's arenas.
#[derive(Debug, Clone, Copy)]
pub struct StateRef<'a> {
    /// Token counts.
    pub marking: MarkingView<'a>,
    /// Variable environment (interned; shared between states).
    pub env: &'a Env,
    /// In-flight firings as `(transition, remaining ticks)`, sorted —
    /// empty for untimed graphs.
    pub in_flight: &'a [(TransitionId, u64)],
    /// Enabling clocks as `(transition, remaining ticks until the
    /// start-firing event may happen)`, sorted by transition id — one
    /// entry per ready transition with a non-zero enabling delay, empty
    /// for untimed graphs and for nets without enabling times.
    pub enabling: &'a [(TransitionId, u64)],
}

// ---------------------------------------------------------------------------
// StateStore
// ---------------------------------------------------------------------------

/// Arena-backed interner for reachability states. See the [module
/// docs](self) for the layout and [`crate::pager`] for how the arenas
/// page to disk under a byte budget.
#[derive(Debug)]
pub struct StateStore {
    /// The paged marking/env-id/in-flight arenas.
    states: PagedStates,
    envs: Vec<Env>,
    state_table: InternTable,
    env_table: InternTable,
}

impl StateStore {
    /// An empty store for markings over `places` places, fully
    /// memory-resident (unlimited budget).
    pub fn new(places: usize) -> Self {
        Self::with_config(places, &PagerConfig::default())
    }

    /// An empty store whose arenas page to disk per `config`.
    pub fn with_config(places: usize, config: &PagerConfig) -> Self {
        StateStore {
            states: PagedStates::new(places, config),
            envs: Vec::new(),
            state_table: InternTable::with_capacity(64),
            env_table: InternTable::with_capacity(4),
        }
    }

    /// Number of distinct states interned.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether no state has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.states.len() == 0
    }

    /// Number of places each marking covers.
    pub fn places(&self) -> usize {
        self.states.places()
    }

    /// Number of distinct variable environments interned.
    pub fn env_count(&self) -> usize {
        self.envs.len()
    }

    /// The marking arena row of state `i`, faulting its segment in
    /// from the spill file if evicted.
    ///
    /// # Errors
    ///
    /// [`ReachError::Spill`] if the reload fails.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn try_marking_slice(&self, i: usize) -> Result<&[u32], ReachError> {
        self.states.marking(i)
    }

    /// The in-flight slice of state `i` (faulting like
    /// [`Self::try_marking_slice`]).
    ///
    /// # Errors
    ///
    /// [`ReachError::Spill`] if the reload fails.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn try_in_flight_slice(&self, i: usize) -> Result<&[(TransitionId, u64)], ReachError> {
        self.states.in_flight(i)
    }

    /// The enabling-clock slice of state `i` (faulting like
    /// [`Self::try_marking_slice`]).
    ///
    /// # Errors
    ///
    /// [`ReachError::Spill`] if the reload fails.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn try_enabling_slice(&self, i: usize) -> Result<&[(TransitionId, u64)], ReachError> {
        self.states.enabling(i)
    }

    /// The environment id of state `i` (faulting like
    /// [`Self::try_marking_slice`]).
    ///
    /// # Errors
    ///
    /// [`ReachError::Spill`] if the reload fails.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn try_env_id(&self, i: usize) -> Result<u32, ReachError> {
        self.states.env_id(i)
    }

    /// The interned environment `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn env(&self, id: u32) -> &Env {
        &self.envs[id as usize]
    }

    /// A full view of state `i`, faulting its segment in if evicted.
    ///
    /// # Errors
    ///
    /// [`ReachError::Spill`] if the reload fails.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn state(&self, i: usize) -> Result<StateRef<'_>, ReachError> {
        Ok(StateRef {
            marking: MarkingView(self.try_marking_slice(i)?),
            env: self.env(self.try_env_id(i)?),
            in_flight: self.try_in_flight_slice(i)?,
            enabling: self.try_enabling_slice(i)?,
        })
    }

    /// Evict cold *state* segments until the resident arenas fit the
    /// budget again (a no-op while under budget). The build calls this
    /// at every `&mut` point; long read-only scans (which fault
    /// segments in without being able to evict) can call it between
    /// passes. A [`crate::graph::ReachabilityGraph`] pairs this with
    /// its edge arena's maintenance — use
    /// [`crate::graph::ReachabilityGraph::maintain`] there.
    ///
    /// # Errors
    ///
    /// [`ReachError::Spill`] if writing an evicted segment fails.
    pub fn maintain(&mut self) -> Result<(), ReachError> {
        self.states.maintain()
    }

    /// Resident paged-arena bytes right now. This reads the shared
    /// pager ledger, so once a graph's edge arena is attached to the
    /// same budget (see [`crate::pager`]) the number covers *all*
    /// arenas charged against it — which is exactly what the budget
    /// envelope is about. The always-resident intern tables and
    /// environments are excluded.
    pub fn resident_arena_bytes(&self) -> usize {
        self.states.resident_bytes()
    }

    /// High-water mark of [`Self::resident_arena_bytes`].
    pub fn peak_resident_arena_bytes(&self) -> usize {
        self.states.peak_resident_bytes()
    }

    /// Restart the [`Self::peak_resident_arena_bytes`] tracking from
    /// the current resident level — the phase probe the paged-analysis
    /// test harness uses to measure an analysis sweep's envelope
    /// independently of the build that preceded it.
    pub fn reset_peak_resident_bytes(&mut self) {
        self.states.shared().reset_peak();
    }

    /// Bytes of *state* segments spilled to disk so far (0 while
    /// everything fits; the graph's edge arena spills separately).
    pub fn spilled_bytes(&self) -> usize {
        self.states.spilled_bytes()
    }

    /// Arena bytes of the largest sealed state segment — the
    /// granularity of the budget envelope (`resident ≤ budget + one
    /// segment` at the sequential build's `&mut` points).
    pub fn max_segment_bytes(&self) -> usize {
        self.states.max_segment_bytes()
    }

    /// Rows per segment — the paging grain the graph's edge arena must
    /// mirror so one guard pins matching state and edge rows.
    pub(crate) fn seg_states(&self) -> usize {
        self.states.seg_states()
    }

    /// The shared pager ledger, for attaching the edge arena to the
    /// same budget.
    pub(crate) fn pager_shared(&self) -> Arc<PagerShared> {
        self.states.shared()
    }

    /// Number of state segments holding at least one state.
    pub(crate) fn segment_count(&self) -> usize {
        self.states.segment_count()
    }

    /// The global state range of segment `seg`.
    pub(crate) fn segment_range(&self, seg: usize) -> std::ops::Range<usize> {
        self.states.segment_range(seg)
    }

    /// The resident data of state segment `seg`, faulting as needed.
    pub(crate) fn state_segment(&self, seg: usize) -> Result<&SegmentData, ReachError> {
        self.states.segment(seg)
    }

    /// Hash contribution of one `(place, count)` marking entry.
    ///
    /// The marking part of a state hash is the wrapping **sum** of these
    /// over all places, so a successor's hash can be maintained
    /// incrementally: subtract the old entry and add the new one for
    /// each place a firing touches, instead of rehashing the whole
    /// marking (see the explorer in [`crate::graph`]). Summing demands
    /// full avalanche *per element* — a cheap single-multiply mix leaves
    /// small token counts in the low bits, and sums of such values
    /// collide catastrophically — so this uses the murmur3 finalizer.
    #[inline]
    pub(crate) fn marking_elem_hash(place: usize, count: u32) -> u64 {
        let mut x = (place as u64) << 32 | u64::from(count);
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        x ^= x >> 33;
        x
    }

    /// The marking-part hash of a full marking (sum of element hashes).
    #[inline]
    pub(crate) fn marking_hash(marking: &[u32]) -> u64 {
        marking.iter().enumerate().fold(0u64, |h, (i, &c)| {
            h.wrapping_add(Self::marking_elem_hash(i, c))
        })
    }

    #[inline]
    fn hash_state(
        marking_hash: u64,
        env_id: u32,
        in_flight: &[(TransitionId, u64)],
        enabling: &[(TransitionId, u64)],
    ) -> u64 {
        let mut h = fx_mix(marking_hash, u64::from(env_id));
        h = fx_mix(h, in_flight.len() as u64);
        for &(t, r) in in_flight {
            h = fx_mix(h, t.index() as u64);
            h = fx_mix(h, r);
        }
        h = fx_mix(h, enabling.len() as u64);
        for &(t, r) in enabling {
            h = fx_mix(h, t.index() as u64);
            h = fx_mix(h, r);
        }
        h
    }

    /// Intern a state given by its parts; returns `(index, newly_added)`.
    ///
    /// On a hit nothing is copied or allocated; on a miss the parts are
    /// appended to the arenas.
    ///
    /// # Errors
    ///
    /// [`ReachError::CapacityExceeded`] when a state index or the
    /// in-flight arena would overflow `u32` (the seed construction
    /// aborted here).
    ///
    /// # Panics
    ///
    /// Panics if `marking` does not cover exactly the store's place
    /// count.
    pub fn intern(
        &mut self,
        marking: &[u32],
        env_id: u32,
        in_flight: &[(TransitionId, u64)],
        enabling: &[(TransitionId, u64)],
    ) -> Result<(usize, bool), ReachError> {
        self.intern_bounded(
            marking,
            Self::marking_hash(marking),
            env_id,
            in_flight,
            enabling,
            usize::MAX,
        )
    }

    /// [`Self::intern`] with the marking-part hash already known (the
    /// explorer maintains it incrementally across successor firings) and
    /// a state-count cap: a **new** state is only admitted while the
    /// store holds fewer than `max_states` states, and the limit check
    /// happens *before* anything is appended, so the error path leaves
    /// the store exactly as it was (the seed construction interned
    /// first and checked after, leaving `max_states + 1` states behind).
    /// The same holds under paging: the only fallible step after the
    /// append is budget eviction, which never loses appended data.
    pub(crate) fn intern_bounded(
        &mut self,
        marking: &[u32],
        marking_hash: u64,
        env_id: u32,
        in_flight: &[(TransitionId, u64)],
        enabling: &[(TransitionId, u64)],
        max_states: usize,
    ) -> Result<(usize, bool), ReachError> {
        assert_eq!(marking.len(), self.places(), "marking width mismatch");
        debug_assert_eq!(
            marking_hash,
            Self::marking_hash(marking),
            "stale incremental hash"
        );
        let hash = Self::hash_state(marking_hash, env_id, in_flight, enabling);
        if let Some(idx) = self.probe_state(hash, marking, env_id, in_flight, enabling)? {
            // The probe may have faulted an old segment in; this is a
            // `&mut` point, so evict back under budget right away.
            self.states.maintain()?;
            return Ok((idx as usize, false));
        }
        if self.states.len() >= max_states {
            return Err(ReachError::StateLimit { limit: max_states });
        }
        let idx = u32::try_from(self.states.len()).map_err(|_| ReachError::CapacityExceeded {
            resource: "state index (more than u32::MAX states)",
        })?;
        self.states.append(marking, env_id, in_flight, enabling)?;
        self.state_table.insert(hash, idx);
        obs::metrics::STORE_MISSES.inc();
        Ok((idx as usize, true))
    }

    /// Walk the probe chain for `hash`, comparing content against the
    /// paged arenas on true hash hits only. Hand-rolled (rather than
    /// [`InternTable::find`] with a closure) because the compare may
    /// fault a segment in, which is fallible.
    fn probe_state(
        &self,
        hash: u64,
        marking: &[u32],
        env_id: u32,
        in_flight: &[(TransitionId, u64)],
        enabling: &[(TransitionId, u64)],
    ) -> Result<Option<u32>, ReachError> {
        obs::metrics::STORE_PROBES.inc();
        let mask = self.state_table.entries.len() - 1;
        let mut i = self.state_table.start(hash);
        loop {
            let (h, idx) = self.state_table.entries[i];
            if idx == EMPTY {
                return Ok(None);
            }
            if h == hash {
                // One segment fetch (and at most one fault) covers the
                // whole content compare.
                let (seg, local) = self.states.row(idx as usize)?;
                if seg.env_id(local) == env_id
                    && seg.marking(local, self.places()) == marking
                    && seg.in_flight(local) == in_flight
                    && seg.enabling(local) == enabling
                {
                    obs::metrics::STORE_HITS.inc();
                    return Ok(Some(idx));
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// Look up an interned state without interning it (read-only; safe
    /// to call concurrently from the parallel builder's workers while
    /// the store is frozen between level barriers — including the
    /// segment faults a probe may trigger, see [`crate::pager`]).
    ///
    /// # Errors
    ///
    /// [`ReachError::Spill`] if a probed segment fails to reload.
    pub(crate) fn find_state_hashed(
        &self,
        marking: &[u32],
        marking_hash: u64,
        env_id: u32,
        in_flight: &[(TransitionId, u64)],
        enabling: &[(TransitionId, u64)],
    ) -> Result<Option<u32>, ReachError> {
        let hash = Self::hash_state(marking_hash, env_id, in_flight, enabling);
        self.probe_state(hash, marking, env_id, in_flight, enabling)
    }

    /// Intern an environment; clones it only the first time it is seen.
    ///
    /// # Errors
    ///
    /// [`ReachError::CapacityExceeded`] on more than `u32::MAX` distinct
    /// environments.
    pub fn intern_env(&mut self, env: &Env) -> Result<u32, ReachError> {
        let hash = fx_hash_of(env);
        if let Some(id) = self
            .env_table
            .find(hash, |idx| &self.envs[idx as usize] == env)
        {
            return Ok(id);
        }
        let id = u32::try_from(self.envs.len()).map_err(|_| ReachError::CapacityExceeded {
            resource: "environment index (more than u32::MAX environments)",
        })?;
        self.envs.push(env.clone());
        self.env_table.insert(hash, id);
        Ok(id)
    }

    /// Look up an interned environment by content without interning it
    /// (read-only companion of [`Self::intern_env`], with the content
    /// hash precomputed).
    pub(crate) fn find_env_hashed(&self, env: &Env, hash: u64) -> Option<u32> {
        self.env_table
            .find(hash, |idx| &self.envs[idx as usize] == env)
    }

    /// Approximate heap footprint of the store in bytes (resident
    /// arenas and tables; environments counted structurally; spilled
    /// segments excluded — see [`Self::spilled_bytes`]).
    pub fn approx_bytes(&self) -> usize {
        let env_guess: usize = self
            .envs
            .iter()
            .map(|e| {
                std::mem::size_of::<Env>()
                    + e.vars().map(|(n, _)| n.len() + 48).sum::<usize>()
                    + e.tables()
                        .map(|(n, t)| n.len() + 8 * t.len() + 48)
                        .sum::<usize>()
            })
            .sum();
        self.states.resident_bytes() + self.state_table.bytes() + self.env_table.bytes() + env_guess
    }
}

// ---------------------------------------------------------------------------
// Parallel level shards
// ---------------------------------------------------------------------------

/// How a successor refers to its environment during a parallel level:
/// either an id in the committed store, or a packed pending id in one of
/// the level's shards (actions can mint environments the committed store
/// has never seen).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EnvRef {
    /// An environment already interned in the committed store.
    Committed(u32),
    /// A packed `(shard, local)` id into the level's pending shards.
    Pending(u32),
}

/// Bits of a packed pending id reserved for the shard-local index; the
/// remaining high bits carry the shard number.
const PENDING_LOCAL_BITS: u32 = 26;
const PENDING_LOCAL_MASK: u32 = (1 << PENDING_LOCAL_BITS) - 1;

/// Pack a `(shard, local)` pending id; errors if the shard segment is
/// (absurdly) full.
fn pack_pending(shard: u32, local: usize) -> Result<u32, ReachError> {
    if local >= (1usize << PENDING_LOCAL_BITS) {
        return Err(ReachError::CapacityExceeded {
            resource: "level shard segment (2^26 entries per shard)",
        });
    }
    Ok((shard << PENDING_LOCAL_BITS) | local as u32)
}

/// The shard half of a packed pending id.
pub(crate) fn pending_shard(id: u32) -> usize {
    (id >> PENDING_LOCAL_BITS) as usize
}

/// The local-index half of a packed pending id.
pub(crate) fn pending_local(id: u32) -> usize {
    (id & PENDING_LOCAL_MASK) as usize
}

/// Which of `shards` (a power of two) a hash belongs to. Uses the
/// **top** bits: bucket probing inside a table uses the folded low half,
/// so shard selection stays independent of probe position.
pub(crate) fn shard_index(hash: u64, shards: usize) -> usize {
    debug_assert!(shards.is_power_of_two());
    let bits = shards.trailing_zeros();
    if bits == 0 {
        0
    } else {
        (hash >> (64 - bits)) as usize
    }
}

/// The pending-table hash of a state whose environment may itself be
/// pending: the committed-table hash keys on the final env id, which a
/// pending env does not have yet, so this variant mixes the env
/// *reference* (tagged) instead. Only ever compared within one level's
/// pending tables; the committed hash is recomputed at the barrier.
pub(crate) fn pending_state_hash(
    marking_hash: u64,
    env_ref: EnvRef,
    in_flight: &[(TransitionId, u64)],
    enabling: &[(TransitionId, u64)],
) -> u64 {
    let (tag, id) = match env_ref {
        EnvRef::Committed(e) => (0u64, e),
        EnvRef::Pending(p) => (1u64, p),
    };
    let mut h = fx_mix(marking_hash, tag);
    h = fx_mix(h, u64::from(id));
    h = fx_mix(h, in_flight.len() as u64);
    for &(t, r) in in_flight {
        h = fx_mix(h, t.index() as u64);
        h = fx_mix(h, r);
    }
    h = fx_mix(h, enabling.len() as u64);
    for &(t, r) in enabling {
        h = fx_mix(h, t.index() as u64);
        h = fx_mix(h, r);
    }
    h
}

/// One lock stripe of the level-pending intern table: states (and
/// environments) discovered during the current parallel level that are
/// not in the committed store yet. Owns its own arena segments so any
/// worker can probe entries other workers inserted; spliced into the
/// committed store, in deterministic discovery-key order, at the level
/// barrier (see the module docs).
#[derive(Debug)]
pub(crate) struct PendingShard {
    shard: u32,
    places: usize,
    state_table: InternTable,
    /// Min discovery key `(source << 32) | edge_seq` per pending state.
    state_keys: Vec<u64>,
    markings: Vec<u32>,
    marking_hashes: Vec<u64>,
    env_refs: Vec<EnvRef>,
    inflight_offsets: Vec<u32>,
    inflight: Vec<(TransitionId, u64)>,
    enabling_offsets: Vec<u32>,
    enabling: Vec<(TransitionId, u64)>,
    env_table: InternTable,
    /// Min discovery key per pending environment.
    env_keys: Vec<u64>,
    envs: Vec<Env>,
}

impl PendingShard {
    /// An empty shard numbered `shard` for markings over `places`.
    pub(crate) fn new(shard: usize, places: usize) -> Self {
        PendingShard {
            shard: shard as u32,
            places,
            state_table: InternTable::with_capacity(16),
            state_keys: Vec::new(),
            markings: Vec::new(),
            marking_hashes: Vec::new(),
            env_refs: Vec::new(),
            inflight_offsets: vec![0],
            inflight: Vec::new(),
            enabling_offsets: vec![0],
            enabling: Vec::new(),
            env_table: InternTable::with_capacity(4),
            env_keys: Vec::new(),
            envs: Vec::new(),
        }
    }

    fn state_count(&self) -> usize {
        self.env_refs.len()
    }

    fn marking_slice(&self, i: usize) -> &[u32] {
        &self.markings[i * self.places..(i + 1) * self.places]
    }

    fn inflight_slice(&self, i: usize) -> &[(TransitionId, u64)] {
        &self.inflight[self.inflight_offsets[i] as usize..self.inflight_offsets[i + 1] as usize]
    }

    fn enabling_slice(&self, i: usize) -> &[(TransitionId, u64)] {
        &self.enabling[self.enabling_offsets[i] as usize..self.enabling_offsets[i + 1] as usize]
    }

    /// Reset for the next level, keeping arena capacity.
    fn clear(&mut self) {
        self.state_table = InternTable::with_capacity(self.state_keys.len().max(16));
        self.state_keys.clear();
        self.markings.clear();
        self.marking_hashes.clear();
        self.env_refs.clear();
        self.inflight_offsets.clear();
        self.inflight_offsets.push(0);
        self.inflight.clear();
        self.enabling_offsets.clear();
        self.enabling_offsets.push(0);
        self.enabling.clear();
        self.env_table = InternTable::with_capacity(self.env_keys.len().max(4));
        self.env_keys.clear();
        self.envs.clear();
    }

    /// Intern a pending environment under its content hash, min-reducing
    /// the discovery key on a hit. Returns the packed pending id.
    pub(crate) fn intern_env(&mut self, env: &Env, hash: u64, key: u64) -> Result<u32, ReachError> {
        if let Some(local) = self.env_table.find(hash, |i| &self.envs[i as usize] == env) {
            let k = &mut self.env_keys[local as usize];
            *k = (*k).min(key);
            return pack_pending(self.shard, local as usize);
        }
        let local = self.envs.len();
        let id = pack_pending(self.shard, local)?;
        self.envs.push(env.clone());
        self.env_keys.push(key);
        self.env_table.insert(hash, local as u32);
        Ok(id)
    }

    /// Intern a pending state under its [`pending_state_hash`],
    /// min-reducing the discovery key on a hit. The inserting caller
    /// copies the state into this shard's segments (under the shard
    /// lock), so concurrent probes from other workers see it.
    #[allow(clippy::too_many_arguments)] // mirrors the committed intern signature
    pub(crate) fn intern_state(
        &mut self,
        marking: &[u32],
        marking_hash: u64,
        hash: u64,
        env_ref: EnvRef,
        in_flight: &[(TransitionId, u64)],
        enabling: &[(TransitionId, u64)],
        key: u64,
    ) -> Result<u32, ReachError> {
        debug_assert_eq!(marking.len(), self.places, "marking width mismatch");
        let found = self.state_table.find(hash, |i| {
            let i = i as usize;
            self.env_refs[i] == env_ref
                && self.marking_slice(i) == marking
                && self.inflight_slice(i) == in_flight
                && self.enabling_slice(i) == enabling
        });
        if let Some(local) = found {
            let k = &mut self.state_keys[local as usize];
            *k = (*k).min(key);
            return pack_pending(self.shard, local as usize);
        }
        let local = self.state_count();
        let id = pack_pending(self.shard, local)?;
        let end = u32::try_from(self.inflight.len() + in_flight.len()).map_err(|_| {
            ReachError::CapacityExceeded {
                resource: "level in-flight segment (u32 offsets)",
            }
        })?;
        let enabling_end = u32::try_from(self.enabling.len() + enabling.len()).map_err(|_| {
            ReachError::CapacityExceeded {
                resource: "level enabling segment (u32 offsets)",
            }
        })?;
        self.markings.extend_from_slice(marking);
        self.marking_hashes.push(marking_hash);
        self.env_refs.push(env_ref);
        self.inflight.extend_from_slice(in_flight);
        self.inflight_offsets.push(end);
        self.enabling.extend_from_slice(enabling);
        self.enabling_offsets.push(enabling_end);
        self.state_keys.push(key);
        self.state_table.insert(hash, local as u32);
        Ok(id)
    }
}

/// All novel states of a level as sorted `(discovery key, packed id)`
/// pairs — ascending key order **is** the order the sequential build
/// would first intern them.
pub(crate) fn collect_novel_states(shards: &[&mut PendingShard]) -> Vec<(u64, u32)> {
    let mut novel: Vec<(u64, u32)> = shards
        .iter()
        .flat_map(|sh| {
            sh.state_keys
                .iter()
                .enumerate()
                .map(|(local, &key)| (key, (sh.shard << PENDING_LOCAL_BITS) | local as u32))
        })
        .collect();
    novel.sort_unstable();
    novel
}

impl StateStore {
    /// Commit one parallel level: intern the pending environments, then
    /// the pending states (`novel`, already sorted by discovery key —
    /// see [`collect_novel_states`]), into the committed arenas in
    /// sequential-build order, and reset the shards for the next level.
    ///
    /// Returns the per-shard map from local pending index to final dense
    /// state index, for edge-target rewriting.
    pub(crate) fn splice_level(
        &mut self,
        shards: &mut [&mut PendingShard],
        novel: &[(u64, u32)],
    ) -> Result<Vec<Vec<u32>>, ReachError> {
        for sh in shards.iter() {
            if sh.state_count() > 0 {
                obs::metrics::STORE_SPLICE_STATES.record(sh.state_count() as u64);
            }
        }
        let mut env_order: Vec<(u64, u32)> = shards
            .iter()
            .flat_map(|sh| {
                sh.env_keys
                    .iter()
                    .enumerate()
                    .map(|(local, &key)| (key, (sh.shard << PENDING_LOCAL_BITS) | local as u32))
            })
            .collect();
        env_order.sort_unstable();
        let mut env_map: Vec<Vec<u32>> = shards.iter().map(|sh| vec![0; sh.envs.len()]).collect();
        for &(_, packed) in &env_order {
            let (s, l) = (pending_shard(packed), pending_local(packed));
            let env = std::mem::take(&mut shards[s].envs[l]);
            env_map[s][l] = self.intern_env(&env)?;
        }
        let mut state_map: Vec<Vec<u32>> =
            shards.iter().map(|sh| vec![0; sh.state_count()]).collect();
        for &(_, packed) in novel {
            let (s, l) = (pending_shard(packed), pending_local(packed));
            let sh = &*shards[s];
            let env_id = match sh.env_refs[l] {
                EnvRef::Committed(e) => e,
                EnvRef::Pending(p) => env_map[pending_shard(p)][pending_local(p)],
            };
            let (idx, new) = self.intern_bounded(
                sh.marking_slice(l),
                sh.marking_hashes[l],
                env_id,
                sh.inflight_slice(l),
                sh.enabling_slice(l),
                usize::MAX,
            )?;
            debug_assert!(new, "pending state was already committed");
            state_map[s][l] = idx as u32;
        }
        for sh in shards {
            sh.clear();
        }
        Ok(state_map)
    }
}

/// Semantic equality: same states in the same order with the same
/// environments (table layout, paging grain, and residency are all
/// ignored — a spilled store equals its resident twin).
impl PartialEq for StateStore {
    fn eq(&self, other: &Self) -> bool {
        self.envs == other.envs && self.states == other.states
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnut_core::expr::Value;

    #[test]
    fn intern_is_idempotent_and_zero_copy_on_hit() {
        let mut s = StateStore::new(3);
        let e = s.intern_env(&Env::new()).unwrap();
        let (a, new_a) = s.intern(&[1, 0, 2], e, &[], &[]).unwrap();
        let (b, new_b) = s.intern(&[1, 0, 2], e, &[], &[]).unwrap();
        let (c, new_c) = s.intern(&[1, 0, 3], e, &[], &[]).unwrap();
        assert_eq!((a, new_a), (0, true));
        assert_eq!((b, new_b), (0, false));
        assert_eq!((c, new_c), (1, true));
        assert_eq!(s.len(), 2);
        assert_eq!(s.try_marking_slice(1).unwrap(), &[1, 0, 3]);
    }

    #[test]
    fn in_flight_distinguishes_states() {
        let mut s = StateStore::new(1);
        let e = s.intern_env(&Env::new()).unwrap();
        let t0 = TransitionId::new(0);
        let (a, _) = s.intern(&[0], e, &[(t0, 3)], &[]).unwrap();
        let (b, _) = s.intern(&[0], e, &[(t0, 2)], &[]).unwrap();
        let (c, _) = s.intern(&[0], e, &[], &[]).unwrap();
        assert_eq!(s.len(), 3);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(s.state(a).unwrap().in_flight, &[(t0, 3)]);
        assert!(s.state(c).unwrap().in_flight.is_empty());
    }

    #[test]
    fn environments_are_shared() {
        let mut s = StateStore::new(1);
        let mut env = Env::new();
        env.set_var("x", Value::Int(1));
        let e1 = s.intern_env(&env).unwrap();
        let e2 = s.intern_env(&env.clone()).unwrap();
        assert_eq!(e1, e2);
        assert_eq!(s.env_count(), 1);
        env.set_var("x", Value::Int(2));
        assert_ne!(s.intern_env(&env).unwrap(), e1);
        assert_eq!(s.env_count(), 2);
    }

    #[test]
    fn table_survives_growth() {
        let mut s = StateStore::new(2);
        let e = s.intern_env(&Env::new()).unwrap();
        for i in 0..10_000u32 {
            let (idx, new) = s.intern(&[i, i / 3], e, &[], &[]).unwrap();
            assert_eq!(idx, i as usize);
            assert!(new);
        }
        // Everything is still findable after many growths.
        for i in 0..10_000u32 {
            let (idx, new) = s.intern(&[i, i / 3], e, &[], &[]).unwrap();
            assert_eq!(idx, i as usize);
            assert!(!new, "state {i} was re-interned");
        }
        assert_eq!(s.len(), 10_000);
    }

    #[test]
    fn views_mirror_marking_api() {
        let mut s = StateStore::new(3);
        let e = s.intern_env(&Env::new()).unwrap();
        s.intern(&[1, 0, 6], e, &[], &[]).unwrap();
        let v = s.state(0).unwrap().marking;
        assert_eq!(v.tokens(PlaceId::new(2)), 6);
        assert!(v.covers(PlaceId::new(0), 1));
        assert!(!v.covers(PlaceId::new(1), 1));
        assert_eq!(v.total_tokens(), 7);
        assert_eq!(v.len(), 3);
        assert_eq!(v.to_string(), "[1 0 6]");
        assert_eq!(v.to_marking(), Marking::from_counts(vec![1, 0, 6]));
        assert_eq!(
            v.iter().map(|(p, t)| (p.index(), t)).collect::<Vec<_>>(),
            vec![(0, 1), (1, 0), (2, 6)]
        );
    }

    #[test]
    fn fx_hasher_differentiates_tails() {
        // Regression guard for the partial-word path.
        assert_ne!(fx_hash_of(&[1u8, 2]), fx_hash_of(&[1u8, 2, 0]));
        assert_ne!(fx_hash_of("ab"), fx_hash_of("ba"));
        assert_eq!(fx_hash_of(&42u64), fx_hash_of(&42u64));
    }

    #[test]
    fn memory_estimate_is_monotonic() {
        let mut s = StateStore::new(4);
        let e = s.intern_env(&Env::new()).unwrap();
        let before = s.approx_bytes();
        for i in 0..1000u32 {
            s.intern(&[i, 0, 0, 0], e, &[], &[]).unwrap();
        }
        assert!(s.approx_bytes() > before);
    }

    #[test]
    fn bounded_intern_checks_before_appending() {
        // Regression guard for the limit/overflow satellite: hitting the
        // state cap must leave the store untouched (the seed interned
        // first and checked after, leaving max + 1 states behind).
        let mut s = StateStore::new(1);
        let e = s.intern_env(&Env::new()).unwrap();
        let (a, _) = s
            .intern_bounded(&[0], StateStore::marking_hash(&[0]), e, &[], &[], 1)
            .unwrap();
        assert_eq!(a, 0);
        // A duplicate is still a hit at the cap.
        let (b, new) = s
            .intern_bounded(&[0], StateStore::marking_hash(&[0]), e, &[], &[], 1)
            .unwrap();
        assert_eq!((b, new), (0, false));
        let err = s
            .intern_bounded(&[7], StateStore::marking_hash(&[7]), e, &[], &[], 1)
            .unwrap_err();
        assert_eq!(err, ReachError::StateLimit { limit: 1 });
        assert_eq!(s.len(), 1, "failed intern must not grow the store");
        assert!(s
            .find_state_hashed(&[7], StateStore::marking_hash(&[7]), e, &[], &[])
            .unwrap()
            .is_none());
    }

    #[test]
    fn paged_store_evicts_reloads_and_reinterns_identically() {
        // Store-level pager round-trip: a budget far below the data
        // forces sealed segments to spill; every row must read back
        // byte-for-byte, probes against evicted segments must still
        // hit, and a re-intern of an evicted state must be a hit (not a
        // duplicate append).
        use pnut_core::expr::Value;
        let config = PagerConfig {
            mem_budget: 8 * 1024,
            spill_dir: None,
        };
        let mut s = StateStore::with_config(4, &config);
        let mut envs = Vec::new();
        for v in 0..4 {
            let mut env = Env::new();
            env.set_var("x", Value::Int(v));
            envs.push(s.intern_env(&env).unwrap());
        }
        let t0 = TransitionId::new(0);
        let n = 3000u32;
        for i in 0..n {
            let inflight: &[(TransitionId, u64)] = if i % 2 == 0 {
                &[(t0, u64::from(i) + 1)]
            } else {
                &[]
            };
            let enabling: &[(TransitionId, u64)] = if i % 3 == 0 {
                &[(t0, u64::from(i) % 11)]
            } else {
                &[]
            };
            let (idx, new) = s
                .intern(
                    &[i, i / 2, 7, i % 3],
                    envs[(i % 4) as usize],
                    inflight,
                    enabling,
                )
                .unwrap();
            assert_eq!((idx, new), (i as usize, true));
        }
        assert!(s.spilled_bytes() > 0, "budget must have forced spilling");
        assert!(s.resident_arena_bytes() <= 8 * 1024 + s.max_segment_bytes());
        // Re-verify every state byte-for-byte (faulting segments back
        // in), then re-intern: all hits, nothing appended.
        for i in 0..n {
            assert_eq!(
                s.try_marking_slice(i as usize).unwrap(),
                &[i, i / 2, 7, i % 3]
            );
            assert_eq!(s.try_env_id(i as usize).unwrap(), envs[(i % 4) as usize]);
            let inflight: &[(TransitionId, u64)] = if i % 2 == 0 {
                &[(t0, u64::from(i) + 1)]
            } else {
                &[]
            };
            let enabling: &[(TransitionId, u64)] = if i % 3 == 0 {
                &[(t0, u64::from(i) % 11)]
            } else {
                &[]
            };
            assert_eq!(s.try_in_flight_slice(i as usize).unwrap(), inflight);
            assert_eq!(s.try_enabling_slice(i as usize).unwrap(), enabling);
        }
        s.maintain().unwrap();
        for i in 0..n {
            let inflight: &[(TransitionId, u64)] = if i % 2 == 0 {
                &[(t0, u64::from(i) + 1)]
            } else {
                &[]
            };
            let enabling: &[(TransitionId, u64)] = if i % 3 == 0 {
                &[(t0, u64::from(i) % 11)]
            } else {
                &[]
            };
            let (idx, new) = s
                .intern(
                    &[i, i / 2, 7, i % 3],
                    envs[(i % 4) as usize],
                    inflight,
                    enabling,
                )
                .unwrap();
            assert_eq!((idx, new), (i as usize, false), "state {i} re-interned");
        }
        assert_eq!(s.len(), n as usize);
        // A paged store equals a fully resident build of the same data.
        let mut resident = StateStore::new(4);
        for v in 0..4 {
            let mut env = Env::new();
            env.set_var("x", Value::Int(v));
            resident.intern_env(&env).unwrap();
        }
        for i in 0..n {
            let inflight: &[(TransitionId, u64)] = if i % 2 == 0 {
                &[(t0, u64::from(i) + 1)]
            } else {
                &[]
            };
            let enabling: &[(TransitionId, u64)] = if i % 3 == 0 {
                &[(t0, u64::from(i) % 11)]
            } else {
                &[]
            };
            resident
                .intern(
                    &[i, i / 2, 7, i % 3],
                    envs[(i % 4) as usize],
                    inflight,
                    enabling,
                )
                .unwrap();
        }
        assert_eq!(s, resident);
    }

    #[test]
    fn shard_index_uses_top_bits() {
        assert_eq!(shard_index(u64::MAX, 1), 0);
        assert_eq!(shard_index(0, 16), 0);
        assert_eq!(shard_index(u64::MAX, 16), 15);
        assert_eq!(shard_index(1u64 << 63, 2), 1);
    }

    #[test]
    fn splice_orders_novel_states_by_discovery_key() {
        // Two shards, states inserted in "wrong" wall-clock order with
        // min-reduced keys; the splice must commit them in key order and
        // resolve pending environments first.
        let mut store = StateStore::new(1);
        let e0 = store.intern_env(&Env::new()).unwrap();
        store.intern(&[0], e0, &[], &[]).unwrap(); // committed state 0
        let mut sh0 = PendingShard::new(0, 1);
        let mut sh1 = PendingShard::new(1, 1);

        let mut env = Env::new();
        env.set_var("x", Value::Int(9));
        let eh = fx_hash_of(&env);
        let pe = sh1.intern_env(&env, eh, 7).unwrap();
        // The same env re-discovered earlier in sequential order.
        let pe2 = sh1.intern_env(&env, eh, 3).unwrap();
        assert_eq!(pe, pe2);

        let mh = |m: &[u32]| StateStore::marking_hash(m);
        // Discovered at key 5 in shard 0 with the pending env.
        let er = EnvRef::Pending(pe);
        let p_late = sh0
            .intern_state(
                &[2],
                mh(&[2]),
                pending_state_hash(mh(&[2]), er, &[], &[]),
                er,
                &[],
                &[],
                5,
            )
            .unwrap();
        // Discovered at key 2 in shard 1 with the committed env.
        let er0 = EnvRef::Committed(e0);
        let p_early = sh1
            .intern_state(
                &[1],
                mh(&[1]),
                pending_state_hash(mh(&[1]), er0, &[], &[]),
                er0,
                &[],
                &[],
                2,
            )
            .unwrap();
        // A duplicate reference with a *smaller* key min-reduces.
        let p_again = sh0
            .intern_state(
                &[2],
                mh(&[2]),
                pending_state_hash(mh(&[2]), er, &[], &[]),
                er,
                &[],
                &[],
                4,
            )
            .unwrap();
        assert_eq!(p_late, p_again);

        let mut shards = [&mut sh0, &mut sh1];
        let novel = collect_novel_states(&shards);
        assert_eq!(novel.len(), 2);
        assert!(novel[0].0 < novel[1].0, "sorted by discovery key");
        let map = store.splice_level(&mut shards, &novel).unwrap();
        // Key 2 (marking [1]) commits before key 4 (marking [2]).
        assert_eq!(store.len(), 3);
        assert_eq!(store.try_marking_slice(1).unwrap(), &[1]);
        assert_eq!(store.try_marking_slice(2).unwrap(), &[2]);
        assert_eq!(map[pending_shard(p_early)][pending_local(p_early)], 1);
        assert_eq!(map[pending_shard(p_late)][pending_local(p_late)], 2);
        // The pending env was committed and the state references it.
        assert_eq!(store.env_count(), 2);
        assert_eq!(store.state(2).unwrap().env.var("x"), Some(Value::Int(9)));
        // Shards are reset for the next level.
        assert!(collect_novel_states(&shards).is_empty());
    }
}

/// The parallel level-barrier protocol under the interleaving checker:
/// workers race to intern into lock-striped pending shards, and the
/// barrier splice must produce the same committed order on **every**
/// schedule — the bit-identical-at-any-job-count guarantee, proved
/// exhaustively at model scale instead of sampled by real threads.
#[cfg(all(test, feature = "race-model"))]
mod race_tests {
    use super::*;
    use crate::race::{self, Options};
    use crate::sync::Mutex;

    fn intern_pending(shards: &[Mutex<PendingShard>], env: u32, marking: &[u32], key: u64) {
        let marking_hash = StateStore::marking_hash(marking);
        let env_ref = EnvRef::Committed(env);
        let hash = pending_state_hash(marking_hash, env_ref, &[], &[]);
        let shard = shard_index(hash, shards.len());
        let mut sh = shards[shard].lock().expect("pending shard lock");
        sh.intern_state(marking, marking_hash, hash, env_ref, &[], &[], key)
            .expect("pending intern");
    }

    #[test]
    fn level_splice_is_deterministic_under_every_schedule() {
        race::check(&Options::default(), || {
            let mut store = StateStore::new(2);
            let env = store.intern_env(&Env::new()).expect("env");
            let (root, _) = store.intern(&[1, 0], env, &[], &[]).expect("root");
            assert_eq!(root, 0);
            let shards: Vec<Mutex<PendingShard>> = (0..2)
                .map(|s| Mutex::new(PendingShard::new(s, 2)))
                .collect();
            race::scope(|s| {
                s.spawn(|| {
                    intern_pending(&shards, env, &[9, 0], 10);
                    intern_pending(&shards, env, &[8, 0], 11);
                });
                s.spawn(|| {
                    // Duplicates worker 0's [8, 0] with a *smaller*
                    // discovery key: the min-reduction must win no
                    // matter which worker inserted first.
                    intern_pending(&shards, env, &[8, 0], 5);
                    intern_pending(&shards, env, &[7, 0], 12);
                });
            });
            let mut shards = shards;
            let mut refs: Vec<&mut PendingShard> = shards
                .iter_mut()
                .map(|m| m.get_mut().expect("shard lock"))
                .collect();
            let novel = collect_novel_states(&refs);
            assert_eq!(novel.len(), 3, "three distinct pending states");
            store
                .splice_level(&mut refs, &novel)
                .expect("barrier splice");
            // Discovery-key order, regardless of interleaving: the
            // store is bit-identical to the sequential build's.
            assert_eq!(store.len(), 4);
            assert_eq!(
                store.try_marking_slice(1).unwrap(),
                &[8, 0],
                "key 5 splices first"
            );
            assert_eq!(
                store.try_marking_slice(2).unwrap(),
                &[9, 0],
                "key 10 second"
            );
            assert_eq!(store.try_marking_slice(3).unwrap(), &[7, 0], "key 12 last");
        })
        .expect("level splice has no defects");
    }
}
