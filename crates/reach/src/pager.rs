//! Disk-backed paging for the state-store arenas.
//!
//! # Why it exists
//!
//! BFS-complete model checking needs the whole state space *somewhere*,
//! and an in-memory [`crate::store::StateStore`] caps the reachable
//! state count at RAM. The observation that lifts the ceiling: once the
//! frontier has moved past a BFS level, the states of that level are
//! *cold* — the explorer only touches them again on the rare true hash
//! hit (a duplicate successor that closes a long cycle back into an old
//! level). Cold data can live on disk.
//!
//! # The three layers
//!
//! ```text
//! intern table   (hash, state index)   always resident, probes first
//!      │ true hash hit → content compare needs the arena row
//!      ▼
//! level segments [seg 0 | seg 1 | … | tail]   fixed state count each
//!      │ resident  → slice straight out of the segment
//!      │ spilled   → fault: read back from the spill file
//!      ▼
//! spill file     write-once images of sealed segments (temp file)
//! ```
//!
//! * **Intern table** — stays in memory. It stores only the 64-bit
//!   hash and the state index, so a committed-state probe touches disk
//!   only when the full hash matches and the owning segment has been
//!   evicted.
//! * **Segments** — the arenas (`markings`, `env_ids`, the in-flight
//!   CSR, and the enabling-clock CSR of timed states) are partitioned
//!   into segments of a fixed number of states
//!   ([`PagedStates::seg_states`], sized from the byte budget). The
//!   *tail* segment receives appends and is always resident; a full
//!   segment is **sealed** and becomes immutable — exactly the unit
//!   [`crate::store::StateStore::splice_level`] commits level by level.
//! * **Spill file** — a sealed segment evicted for the first time is
//!   serialized to an anonymous temp file ([`SpillFile`]); because
//!   sealed segments never change, the image is written once and later
//!   evictions just drop the memory. Variable environments are *not*
//!   paged: they are deduplicated and tiny relative to the state count.
//!
//! # Segment states and when they move
//!
//! ```text
//!            append fills tail                     maintain(): over budget,
//!   tail ────────────────────────▶ resident ─────────────────────────────▶ spilled
//!  (dirty,                        (sealed,    first eviction writes the   (on disk,
//!   never                          clean       image; later ones free      slot holds
//!   evicted)                       after 1st    memory only                 its file span)
//!                                  spill)          ▲                          │
//!                                                  └──────── fault ──────────┘
//!                                                     segment() reloads on a
//!                                                     read of an evicted row
//! ```
//!
//! # Concurrency and why faulting under `&self` is sound
//!
//! The parallel builder freezes the committed store during a level and
//! probes it from many workers through `&self`. A probe that lands in a
//! spilled segment must *fault it back in* without `&mut`:
//!
//! * each segment slot holds an [`AtomicPtr`] to its heap data; a fault
//!   takes the pager's fault lock, re-checks, reads the image, and
//!   installs the pointer with `Release` (readers load with `Acquire`);
//! * faults only ever **install** — memory is *freed* exclusively by
//!   eviction, which requires `&mut self`, so no `&`-borrowed slice can
//!   be dangling while any shared borrow is alive. That is the entire
//!   safety argument for the `unsafe` derefs below.
//!
//! The cost of that bargain: the resident set can only shrink at `&mut`
//! points ([`PagedStates::maintain`] — called after every append and at
//! every level barrier), so within one parallel level the resident set
//! may transiently exceed the budget by the segments the level faults
//! in. Sequentially the envelope is tight: at most one faulted segment
//! above budget at any instant (asserted by the golden tests).
//!
//! All spill-file I/O reports [`ReachError::Spill`]; the only panicking
//! paths are the infallible *view* accessors of [`crate::store`], which
//! analyses use after a successful build (documented there).

use crate::graph::ReachError;
use pnut_core::TransitionId;
use std::fmt;
use std::fs::File;
#[cfg(not(unix))]
use std::io::Read as _;
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// A spill-file I/O failure: which operation failed and the underlying
/// [`io::Error`]. Wrapped in [`ReachError::Spill`]; the `Arc` keeps
/// `ReachError` cheaply clonable (the parallel barrier clones the
/// earliest worker error).
#[derive(Debug, Clone)]
pub struct SpillError {
    /// The file operation that failed (`"create"`, `"write"`, `"read"`).
    pub op: &'static str,
    /// The underlying I/O error.
    pub source: Arc<io::Error>,
}

/// Wrap an [`io::Error`] from spill operation `op` as a [`ReachError`].
fn spill_err(op: &'static str, source: io::Error) -> ReachError {
    ReachError::Spill(SpillError {
        op,
        source: Arc::new(source),
    })
}

/// Same failed operation and error kind (messages can carry addresses
/// and differ between equivalent failures).
impl PartialEq for SpillError {
    fn eq(&self, other: &Self) -> bool {
        self.op == other.op && self.source.kind() == other.source.kind()
    }
}

impl fmt::Display for SpillError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spill file {} failed: {}", self.op, self.source)
    }
}

impl std::error::Error for SpillError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(self.source.as_ref())
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// How much of the state arenas may stay resident, and where evicted
/// segments go.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PagerConfig {
    /// Resident-arena byte budget; `usize::MAX` (the default) keeps
    /// everything in memory and never creates a spill file. The intern
    /// table and the deduplicated environments are *not* counted — they
    /// stay resident regardless.
    pub mem_budget: usize,
    /// Directory for the spill file; `None` uses [`std::env::temp_dir`].
    /// The file is created lazily on the first eviction and unlinked
    /// immediately (the handle keeps it alive), so nothing survives the
    /// process even on a crash.
    pub spill_dir: Option<PathBuf>,
}

impl Default for PagerConfig {
    fn default() -> Self {
        PagerConfig {
            mem_budget: usize::MAX,
            spill_dir: None,
        }
    }
}

// ---------------------------------------------------------------------------
// SpillFile
// ---------------------------------------------------------------------------

/// A segment's image in the spill file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DiskSpan {
    offset: u64,
    len: u64,
}

/// An anonymous append-only temp file holding evicted segment images.
///
/// Writes happen only under `&mut` (eviction); reads happen under
/// `&self` (faults, possibly from several workers at once) and use
/// positioned reads so they never disturb the append cursor.
#[derive(Debug)]
pub(crate) struct SpillFile {
    file: File,
    /// Append cursor == bytes spilled so far.
    len: u64,
    /// Serializes the seek+read fallback on platforms without `pread`.
    #[cfg_attr(unix, allow(dead_code))]
    read_lock: Mutex<()>,
}

impl SpillFile {
    /// Create the spill file in `dir` and immediately unlink it, so the
    /// open handle is its only tether.
    fn create(dir: Option<&Path>) -> io::Result<SpillFile> {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = dir
            .map(Path::to_path_buf)
            .unwrap_or_else(std::env::temp_dir);
        let name = format!(
            "pnut-spill-{}-{}.bin",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        );
        let path = dir.join(name);
        let file = File::options()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)?;
        // Unlink eagerly: the fd keeps the data reachable, and nothing
        // is left behind if the process dies mid-build. If the
        // filesystem refuses (non-POSIX semantics), the file simply
        // lingers until process exit.
        let _ = std::fs::remove_file(&path);
        Ok(SpillFile {
            file,
            len: 0,
            read_lock: Mutex::new(()),
        })
    }

    /// Append one serialized segment image, returning where it landed.
    fn append(&mut self, image: &[u8]) -> io::Result<DiskSpan> {
        self.file.seek(SeekFrom::Start(self.len))?;
        self.file.write_all(image)?;
        let span = DiskSpan {
            offset: self.len,
            len: image.len() as u64,
        };
        self.len += span.len;
        Ok(span)
    }

    /// Read one segment image back (positioned; safe under `&self`).
    fn read(&self, span: DiskSpan) -> io::Result<Vec<u8>> {
        let mut buf = vec![0u8; span.len as usize];
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(&mut buf, span.offset)?;
        }
        #[cfg(not(unix))]
        {
            let _guard = self.read_lock.lock().expect("spill read lock");
            (&self.file).seek(SeekFrom::Start(span.offset))?;
            (&self.file).read_exact(&mut buf)?;
        }
        Ok(buf)
    }
}

// ---------------------------------------------------------------------------
// Segment data
// ---------------------------------------------------------------------------

/// Spill-image format version. Bumped whenever the serialized segment
/// layout changes; a reload checks it first so an image written by a
/// different layout is rejected as corrupt instead of misread.
/// Version 2 added the enabling-clock arena (offsets + entries).
const IMAGE_VERSION: u32 = 2;

/// One segment's slice of every paged arena: `seg_states` consecutive
/// states (fewer in the tail).
#[derive(Debug, Default, PartialEq)]
pub(crate) struct SegmentData {
    /// Dense marking matrix, `count × places`.
    markings: Vec<u32>,
    /// Environment id per state.
    env_ids: Vec<u32>,
    /// Segment-local CSR offsets into `inflight`; `len == count + 1`.
    inflight_offsets: Vec<u32>,
    /// In-flight firings of all states in the segment.
    inflight: Vec<(TransitionId, u64)>,
    /// Segment-local CSR offsets into `enabling`, **lazily
    /// materialized**: while every state in the segment has an empty
    /// enabling multiset (always true for untimed graphs, and for timed
    /// graphs of nets without enabling times) this stays `[0]` and the
    /// segment pays zero bytes for the arena; the first non-empty
    /// multiset backfills zero offsets for the earlier states and the
    /// array is `len == count + 1` from then on.
    enabling_offsets: Vec<u32>,
    /// Enabling clocks of all states in the segment: `(transition,
    /// remaining ticks until the start-firing event may happen)`.
    enabling: Vec<(TransitionId, u64)>,
}

impl SegmentData {
    fn empty() -> Self {
        SegmentData {
            inflight_offsets: vec![0],
            enabling_offsets: vec![0],
            ..SegmentData::default()
        }
    }

    /// Whether the enabling arena is still in its lazy all-empty form.
    fn enabling_is_lazy(&self) -> bool {
        self.enabling_offsets.len() == 1
    }

    /// Record one state's enabling multiset; `count_before` is the
    /// number of states already in the segment, for the zero backfill
    /// on first materialization.
    fn push_enabling(&mut self, count_before: usize, enabling: &[(TransitionId, u64)]) {
        if enabling.is_empty() && self.enabling_is_lazy() {
            return; // still all-empty: stay lazy, pay nothing
        }
        if self.enabling_is_lazy() {
            self.enabling_offsets.resize(count_before + 1, 0);
        }
        self.enabling.extend_from_slice(enabling);
        self.enabling_offsets.push(self.enabling.len() as u32);
    }

    fn count(&self) -> usize {
        self.env_ids.len()
    }

    /// Arena bytes of the segment (by content, not capacity). A lazy
    /// enabling arena counts its single sentinel offset only, so
    /// untimed segments cost exactly what they did before the arena
    /// existed.
    fn bytes(&self) -> usize {
        self.markings.len() * 4
            + self.env_ids.len() * 4
            + self.inflight_offsets.len() * 4
            + self.enabling_offsets.len() * 4
            + (self.inflight.len() + self.enabling.len())
                * std::mem::size_of::<(TransitionId, u64)>()
    }

    pub(crate) fn marking(&self, local: usize, places: usize) -> &[u32] {
        &self.markings[local * places..(local + 1) * places]
    }

    pub(crate) fn env_id(&self, local: usize) -> u32 {
        self.env_ids[local]
    }

    pub(crate) fn in_flight(&self, local: usize) -> &[(TransitionId, u64)] {
        &self.inflight
            [self.inflight_offsets[local] as usize..self.inflight_offsets[local + 1] as usize]
    }

    pub(crate) fn enabling(&self, local: usize) -> &[(TransitionId, u64)] {
        if self.enabling_is_lazy() {
            return &[];
        }
        &self.enabling
            [self.enabling_offsets[local] as usize..self.enabling_offsets[local + 1] as usize]
    }

    /// Serialize to the spill image format (all little-endian):
    /// `version:u32, count:u32, inflight_len:u32, enabling_len:u32,
    /// enabling_offsets_len:u32, markings, env_ids, inflight_offsets,
    /// enabling_offsets, inflight as (id:u64, remaining:u64)*, enabling
    /// likewise`. The enabling offsets keep their lazy form on disk
    /// (`len == 1` for an all-empty segment), so untimed images cost
    /// the same bytes they did before the arena existed.
    fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20 + self.bytes());
        out.extend_from_slice(&IMAGE_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.count() as u32).to_le_bytes());
        out.extend_from_slice(&(self.inflight.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.enabling.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.enabling_offsets.len() as u32).to_le_bytes());
        for &w in &self.markings {
            out.extend_from_slice(&w.to_le_bytes());
        }
        for &e in &self.env_ids {
            out.extend_from_slice(&e.to_le_bytes());
        }
        for &o in self.inflight_offsets.iter().chain(&self.enabling_offsets) {
            out.extend_from_slice(&o.to_le_bytes());
        }
        for &(t, r) in self.inflight.iter().chain(&self.enabling) {
            out.extend_from_slice(&(t.index() as u64).to_le_bytes());
            out.extend_from_slice(&r.to_le_bytes());
        }
        out
    }

    fn deserialize(image: &[u8], places: usize) -> io::Result<SegmentData> {
        let corrupt = || io::Error::new(io::ErrorKind::InvalidData, "corrupt spill image");
        let mut pos = 0usize;
        let mut take = |n: usize| -> io::Result<&[u8]> {
            let end = pos.checked_add(n).ok_or_else(corrupt)?;
            let s = image.get(pos..end).ok_or_else(corrupt)?;
            pos = end;
            Ok(s)
        };
        let read_u32 = |s: &[u8]| u32::from_le_bytes(s.try_into().expect("4-byte chunk"));
        let read_u64 = |s: &[u8]| u64::from_le_bytes(s.try_into().expect("8-byte chunk"));
        let version = read_u32(take(4)?);
        if version != IMAGE_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("spill image version {version} (expected {IMAGE_VERSION})"),
            ));
        }
        let count = read_u32(take(4)?) as usize;
        let inflight_len = read_u32(take(4)?) as usize;
        let enabling_len = read_u32(take(4)?) as usize;
        let eoff_len = read_u32(take(4)?) as usize;
        // Validate the header against the image length *before* any
        // allocation: a bit-flipped count must surface as the designed
        // InvalidData error, not abort on a gigantic Vec::with_capacity.
        // The enabling offsets are either the lazy sentinel or fully
        // materialized; anything else is corrupt.
        if eoff_len != 1 && eoff_len != count + 1 {
            return Err(corrupt());
        }
        if eoff_len == 1 && enabling_len != 0 {
            return Err(corrupt());
        }
        let implied = 20u64
            + count as u64 * places as u64 * 4
            + count as u64 * 4
            + (count as u64 + 1) * 4
            + eoff_len as u64 * 4
            + (inflight_len as u64 + enabling_len as u64) * 16;
        if implied != image.len() as u64 {
            return Err(corrupt());
        }
        // Bulk-parse each array from one validated slice (the header
        // check above guarantees the lengths): chunked iteration keeps
        // the fault path — reloads happen once per refault, not once
        // per build — at memcpy-like speed instead of a bounds-checked
        // closure call per element.
        let mut data = SegmentData {
            markings: Vec::with_capacity(count * places),
            env_ids: Vec::with_capacity(count),
            inflight_offsets: Vec::with_capacity(count + 1),
            inflight: Vec::with_capacity(inflight_len),
            enabling_offsets: Vec::with_capacity(eoff_len),
            enabling: Vec::with_capacity(enabling_len),
        };
        data.markings
            .extend(take(count * places * 4)?.chunks_exact(4).map(read_u32));
        data.env_ids
            .extend(take(count * 4)?.chunks_exact(4).map(read_u32));
        data.inflight_offsets
            .extend(take((count + 1) * 4)?.chunks_exact(4).map(read_u32));
        data.enabling_offsets
            .extend(take(eoff_len * 4)?.chunks_exact(4).map(read_u32));
        data.inflight
            .extend(take(inflight_len * 16)?.chunks_exact(16).map(|c| {
                (
                    TransitionId::new(read_u64(&c[..8]) as usize),
                    read_u64(&c[8..]),
                )
            }));
        data.enabling
            .extend(take(enabling_len * 16)?.chunks_exact(16).map(|c| {
                (
                    TransitionId::new(read_u64(&c[..8]) as usize),
                    read_u64(&c[8..]),
                )
            }));
        if pos != image.len()
            || data.inflight_offsets.last() != Some(&(inflight_len as u32))
            || data.enabling_offsets.last() != Some(&(enabling_len as u32))
        {
            return Err(corrupt());
        }
        Ok(data)
    }
}

/// One segment slot: the (possibly absent) resident data plus the
/// bookkeeping that survives eviction.
#[derive(Debug)]
struct Segment {
    /// Resident data, or null when spilled. Faults install with
    /// `Release`; readers load with `Acquire`; only `&mut` eviction
    /// ever frees the pointee (see the module docs for the safety
    /// argument).
    data: AtomicPtr<SegmentData>,
    /// Arena bytes (final once sealed; grows while this is the tail).
    bytes: usize,
    /// Where the sealed image lives on disk (written once, on the
    /// first eviction).
    disk: Option<DiskSpan>,
    /// Pager clock value of the most recent access, for LRU eviction.
    last_touch: AtomicU64,
}

impl Segment {
    fn new_resident() -> Self {
        Segment {
            data: AtomicPtr::new(Box::into_raw(Box::new(SegmentData::empty()))),
            bytes: SegmentData::empty().bytes(),
            disk: None,
            last_touch: AtomicU64::new(0),
        }
    }
}

impl Drop for Segment {
    fn drop(&mut self) {
        let p = *self.data.get_mut();
        if !p.is_null() {
            // Safety: we hold `&mut`, so no borrow of the data exists.
            drop(unsafe { Box::from_raw(p) });
        }
    }
}

// ---------------------------------------------------------------------------
// PagedStates
// ---------------------------------------------------------------------------

/// Hard ceilings on the states-per-segment choice. The upper bound
/// keeps a faulted segment's transfer small; the lower bound keeps the
/// slot bookkeeping negligible next to the data.
const MAX_SEG_STATES: usize = 4096;
const MIN_SEG_STATES: usize = 64;

/// States per segment for `places`-wide markings under `budget` bytes:
/// the largest power of two that fits roughly a quarter of the budget,
/// clamped to `[64, 4096]`. (Power of two ⇒ index → segment is a
/// shift, and the choice never affects results — only paging grain.)
fn seg_states_for(places: usize, budget: usize) -> usize {
    if budget == usize::MAX {
        return MAX_SEG_STATES;
    }
    // Marking row + env id + in-flight offset entry. The enabling
    // arena is excluded: its offsets are lazy (zero bytes for nets
    // without enabling times) and its entry count is model-dependent —
    // the budget envelope tolerates the approximation either way.
    let per_state = places * 4 + 8;
    let target = (budget / 4) / per_state.max(1);
    let rounded = match target.checked_next_power_of_two() {
        Some(p) if p == target => p,
        Some(p) => p / 2,
        None => MAX_SEG_STATES,
    };
    rounded.clamp(MIN_SEG_STATES, MAX_SEG_STATES)
}

/// The paged state arenas: a growing sequence of fixed-state-count
/// segments, the last of which (the *tail*) receives appends, behind a
/// byte budget enforced by LRU eviction to a [`SpillFile`].
///
/// See the [module docs](self) for the architecture. Used exclusively
/// by [`crate::store::StateStore`], which layers the intern tables and
/// the environment arena on top.
#[derive(Debug)]
pub(crate) struct PagedStates {
    places: usize,
    seg_states: usize,
    seg_shift: u32,
    len: usize,
    segments: Vec<Segment>,
    budget: usize,
    spill_dir: Option<PathBuf>,
    spill: Option<SpillFile>,
    /// Serializes concurrent `&self` faults (double-checked inside).
    fault_lock: Mutex<()>,
    /// LRU clock; advanced by [`Self::maintain`].
    clock: AtomicU64,
    /// Resident arena bytes (tail included).
    resident: AtomicUsize,
    /// High-water mark of `resident`.
    peak: AtomicUsize,
    /// Largest sealed segment seen, for budget-envelope assertions.
    max_seg_bytes: usize,
}

impl PagedStates {
    pub(crate) fn new(places: usize, config: &PagerConfig) -> Self {
        let seg_states = seg_states_for(places, config.mem_budget);
        let tail = Segment::new_resident();
        let resident = tail.bytes;
        PagedStates {
            places,
            seg_states,
            seg_shift: seg_states.trailing_zeros(),
            len: 0,
            segments: vec![tail],
            budget: config.mem_budget,
            spill_dir: config.spill_dir.clone(),
            spill: None,
            fault_lock: Mutex::new(()),
            clock: AtomicU64::new(1),
            resident: AtomicUsize::new(resident),
            peak: AtomicUsize::new(resident),
            max_seg_bytes: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn places(&self) -> usize {
        self.places
    }

    /// States per segment (the paging grain).
    #[cfg(test)]
    pub(crate) fn seg_states(&self) -> usize {
        self.seg_states
    }

    /// Resident arena bytes right now.
    pub(crate) fn resident_bytes(&self) -> usize {
        self.resident.load(Ordering::Relaxed)
    }

    /// High-water mark of resident arena bytes over the store's life.
    pub(crate) fn peak_resident_bytes(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Bytes written to the spill file so far (0 until first eviction).
    pub(crate) fn spilled_bytes(&self) -> usize {
        self.spill.as_ref().map_or(0, |s| s.len as usize)
    }

    /// The largest sealed segment's arena bytes (0 before any seal) —
    /// the "+ one segment" term of the documented budget envelope.
    pub(crate) fn max_segment_bytes(&self) -> usize {
        self.max_seg_bytes
    }

    #[inline]
    fn seg_of(&self, i: usize) -> (usize, usize) {
        (i >> self.seg_shift, i & (self.seg_states - 1))
    }

    /// The resident data of segment `seg`, faulting it in from the
    /// spill file if needed. Loads never evict (that needs `&mut`, see
    /// the module docs), so the returned borrow stays valid for the
    /// whole `&self` borrow of the store.
    fn segment(&self, seg: usize) -> Result<&SegmentData, ReachError> {
        let slot = &self.segments[seg];
        slot.last_touch
            .store(self.clock.load(Ordering::Relaxed), Ordering::Relaxed);
        let p = slot.data.load(Ordering::Acquire);
        if !p.is_null() {
            // Safety: non-null data is freed only under `&mut self`.
            return Ok(unsafe { &*p });
        }
        self.fault(seg)
    }

    /// Slow path of [`Self::segment`]: reload an evicted segment.
    #[cold]
    fn fault(&self, seg: usize) -> Result<&SegmentData, ReachError> {
        let _guard = self.fault_lock.lock().expect("pager fault lock");
        let slot = &self.segments[seg];
        let p = slot.data.load(Ordering::Acquire);
        if !p.is_null() {
            // Another worker faulted it in while we waited.
            return Ok(unsafe { &*p });
        }
        let span = slot.disk.expect("spilled segment has a disk image");
        let spill = self.spill.as_ref().expect("spilled segment has a file");
        let image = spill.read(span).map_err(|e| spill_err("read", e))?;
        let data =
            SegmentData::deserialize(&image, self.places).map_err(|e| spill_err("read", e))?;
        let raw = Box::into_raw(Box::new(data));
        slot.data.store(raw, Ordering::Release);
        let now = self.resident.fetch_add(slot.bytes, Ordering::Relaxed) + slot.bytes;
        self.peak.fetch_max(now, Ordering::Relaxed);
        // Safety: installed under the fault lock; freed only under `&mut`.
        Ok(unsafe { &*raw })
    }

    /// The marking row of state `i`.
    pub(crate) fn marking(&self, i: usize) -> Result<&[u32], ReachError> {
        debug_assert!(i < self.len, "state {i} out of range");
        let (seg, local) = self.seg_of(i);
        Ok(self.segment(seg)?.marking(local, self.places))
    }

    /// The environment id of state `i`.
    pub(crate) fn env_id(&self, i: usize) -> Result<u32, ReachError> {
        debug_assert!(i < self.len, "state {i} out of range");
        let (seg, local) = self.seg_of(i);
        Ok(self.segment(seg)?.env_ids[local])
    }

    /// The in-flight multiset of state `i`.
    pub(crate) fn in_flight(&self, i: usize) -> Result<&[(TransitionId, u64)], ReachError> {
        debug_assert!(i < self.len, "state {i} out of range");
        let (seg, local) = self.seg_of(i);
        Ok(self.segment(seg)?.in_flight(local))
    }

    /// The enabling-clock multiset of state `i`.
    pub(crate) fn enabling(&self, i: usize) -> Result<&[(TransitionId, u64)], ReachError> {
        debug_assert!(i < self.len, "state {i} out of range");
        let (seg, local) = self.seg_of(i);
        Ok(self.segment(seg)?.enabling(local))
    }

    /// The owning segment of state `i` plus its local index — one
    /// fault/LRU touch for a whole-row compare instead of one per
    /// field (the intern probe's hot path).
    pub(crate) fn row(&self, i: usize) -> Result<(&SegmentData, usize), ReachError> {
        debug_assert!(i < self.len, "state {i} out of range");
        let (seg, local) = self.seg_of(i);
        Ok((self.segment(seg)?, local))
    }

    /// Exclusive access to the tail segment's data (always resident).
    fn tail_mut(&mut self) -> &mut SegmentData {
        let slot = self.segments.last_mut().expect("tail segment exists");
        let p = *slot.data.get_mut();
        debug_assert!(!p.is_null(), "tail segment is always resident");
        // Safety: `&mut self` — no shared borrow of any segment exists.
        unsafe { &mut *p }
    }

    /// Append one state to the tail, sealing it first if full, then
    /// evict back under budget. The append itself cannot fail — only
    /// eviction I/O can — and by then the state is fully recorded, so
    /// an error leaves the store consistent (just over budget).
    pub(crate) fn append(
        &mut self,
        marking: &[u32],
        env_id: u32,
        in_flight: &[(TransitionId, u64)],
        enabling: &[(TransitionId, u64)],
    ) -> Result<(), ReachError> {
        debug_assert_eq!(marking.len(), self.places, "marking width mismatch");
        if self.tail_mut().count() == self.seg_states {
            self.seal_tail();
        }
        let tail = self.tail_mut();
        let before = tail.bytes();
        tail.markings.extend_from_slice(marking);
        tail.env_ids.push(env_id);
        tail.inflight.extend_from_slice(in_flight);
        let end = tail.inflight.len() as u32;
        tail.inflight_offsets.push(end);
        let count_before = tail.env_ids.len() - 1;
        tail.push_enabling(count_before, enabling);
        // Delta accounting (rather than an arithmetic formula): a lazy →
        // materialized transition of the enabling offsets backfills the
        // whole segment's offsets in one append.
        let added = tail.bytes() - before;
        self.segments.last_mut().expect("tail").bytes += added;
        self.len += 1;
        let now = self.resident.get_mut();
        *now += added;
        let peak = self.peak.get_mut();
        *peak = (*peak).max(*now);
        self.maintain()
    }

    /// Seal the full tail and open a fresh one.
    fn seal_tail(&mut self) {
        let sealed_bytes = self.segments.last().expect("tail").bytes;
        self.max_seg_bytes = self.max_seg_bytes.max(sealed_bytes);
        self.segments.push(Segment::new_resident());
        let added = self.segments.last().expect("tail").bytes;
        let now = self.resident.get_mut();
        *now += added;
        let peak = self.peak.get_mut();
        *peak = (*peak).max(*now);
    }

    /// Advance the LRU clock and evict least-recently-touched sealed
    /// segments until the resident arenas fit the budget (the tail is
    /// never evicted). Call sites are the `&mut` points of the build:
    /// after each append and at each parallel level barrier.
    pub(crate) fn maintain(&mut self) -> Result<(), ReachError> {
        *self.clock.get_mut() += 1;
        while *self.resident.get_mut() > self.budget {
            let Some(victim) = self.coldest_resident_sealed() else {
                break; // nothing evictable (tail alone can exceed tiny budgets)
            };
            self.evict(victim)?;
        }
        Ok(())
    }

    /// The sealed resident segment with the oldest touch, if any.
    fn coldest_resident_sealed(&mut self) -> Option<usize> {
        let tail = self.segments.len() - 1;
        self.segments[..tail]
            .iter_mut()
            .enumerate()
            .filter_map(|(i, s)| {
                if s.data.get_mut().is_null() {
                    None
                } else {
                    Some((i, *s.last_touch.get_mut()))
                }
            })
            .min_by_key(|&(_, touch)| touch)
            .map(|(i, _)| i)
    }

    /// Evict one sealed segment: write its image on first eviction
    /// (sealed data is immutable, so one write suffices forever), then
    /// free the memory.
    fn evict(&mut self, seg: usize) -> Result<(), ReachError> {
        debug_assert!(seg + 1 < self.segments.len(), "tail is never evicted");
        let p = *self.segments[seg].data.get_mut();
        debug_assert!(!p.is_null(), "evicting a spilled segment");
        if self.segments[seg].disk.is_none() {
            if self.spill.is_none() {
                self.spill = Some(
                    SpillFile::create(self.spill_dir.as_deref())
                        .map_err(|e| spill_err("create", e))?,
                );
            }
            // Safety: `&mut self`; the borrow ends before the data is freed.
            let image = unsafe { &*p }.serialize();
            let span = self
                .spill
                .as_mut()
                .expect("just created")
                .append(&image)
                .map_err(|e| spill_err("write", e))?;
            self.segments[seg].disk = Some(span);
        }
        let slot = &mut self.segments[seg];
        *slot.data.get_mut() = std::ptr::null_mut();
        *self.resident.get_mut() -= slot.bytes;
        // Safety: pointer detached above; `&mut self` excludes borrows.
        drop(unsafe { Box::from_raw(p) });
        Ok(())
    }

    /// Whether segment `seg` is currently resident (test/diagnostic).
    #[cfg(test)]
    fn is_resident(&self, seg: usize) -> bool {
        !self.segments[seg].data.load(Ordering::Acquire).is_null()
    }

    /// Number of segments (including the tail).
    #[cfg(test)]
    fn segment_count(&self) -> usize {
        self.segments.len()
    }
}

/// Semantic equality over the logical state sequence, independent of
/// paging state (faults segments back in as needed; panics only if the
/// spill file itself fails mid-compare, which the test-only usage
/// accepts).
impl PartialEq for PagedStates {
    fn eq(&self, other: &Self) -> bool {
        if self.places != other.places || self.len != other.len {
            return false;
        }
        (0..self.len).all(|i| {
            let row = |s: &Self| -> Result<_, ReachError> {
                Ok((
                    s.marking(i)?.to_vec(),
                    s.env_id(i)?,
                    s.in_flight(i)?.to_vec(),
                    s.enabling(i)?.to_vec(),
                ))
            };
            match (row(self), row(other)) {
                (Ok(a), Ok(b)) => a == b,
                _ => panic!("spill reload failed while comparing stores"),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(budget: usize) -> PagerConfig {
        PagerConfig {
            mem_budget: budget,
            spill_dir: None,
        }
    }

    /// Append `n` synthetic states over `places` places with
    /// deterministic contents (marking row = i, i+1, …; env = i % 7;
    /// one in-flight entry for every third state, one enabling-clock
    /// entry for every fourth — so segments exercise both the lazy and
    /// the materialized enabling-offset forms).
    fn fill(ps: &mut PagedStates, n: usize) {
        let places = ps.places();
        for i in 0..n {
            let marking: Vec<u32> = (0..places).map(|p| (i + p) as u32).collect();
            let inflight = if i.is_multiple_of(3) {
                vec![(TransitionId::new(i % 5), (i as u64) + 1)]
            } else {
                Vec::new()
            };
            let enabling = if i.is_multiple_of(4) {
                vec![(TransitionId::new(i % 3), (i as u64) % 9)]
            } else {
                Vec::new()
            };
            ps.append(&marking, (i % 7) as u32, &inflight, &enabling)
                .unwrap();
        }
    }

    fn expect_row(ps: &PagedStates, i: usize) {
        let places = ps.places();
        let marking: Vec<u32> = (0..places).map(|p| (i + p) as u32).collect();
        assert_eq!(ps.marking(i).unwrap(), &marking[..], "marking of state {i}");
        assert_eq!(ps.env_id(i).unwrap(), (i % 7) as u32, "env of state {i}");
        let inflight = if i.is_multiple_of(3) {
            vec![(TransitionId::new(i % 5), (i as u64) + 1)]
        } else {
            Vec::new()
        };
        assert_eq!(
            ps.in_flight(i).unwrap(),
            &inflight[..],
            "in-flight of state {i}"
        );
        let enabling = if i.is_multiple_of(4) {
            vec![(TransitionId::new(i % 3), (i as u64) % 9)]
        } else {
            Vec::new()
        };
        assert_eq!(
            ps.enabling(i).unwrap(),
            &enabling[..],
            "enabling clocks of state {i}"
        );
    }

    #[test]
    fn segment_image_roundtrips_byte_for_byte() {
        let mut data = SegmentData::empty();
        for i in 0..5u32 {
            data.markings.extend_from_slice(&[i, i * 2, i * 3]);
            data.env_ids.push(i % 2);
            if i % 2 == 0 {
                data.inflight
                    .push((TransitionId::new(i as usize), 40 + u64::from(i)));
            }
            data.inflight_offsets.push(data.inflight.len() as u32);
            let enabling: &[(TransitionId, u64)] = if i % 3 == 0 {
                &[(TransitionId::new(i as usize + 1), u64::from(i))]
            } else {
                &[]
            };
            data.push_enabling(i as usize, enabling);
        }
        assert!(!data.enabling_is_lazy(), "test data materializes the arena");
        let image = data.serialize();
        let back = SegmentData::deserialize(&image, 3).unwrap();
        assert_eq!(back, data);
        // Truncated or padded images are rejected, not misread.
        assert!(SegmentData::deserialize(&image[..image.len() - 1], 3).is_err());
        let mut padded = image.clone();
        padded.push(0);
        assert!(SegmentData::deserialize(&padded, 3).is_err());
        // A bit-flipped count field must fail fast on the header check,
        // not attempt a multi-gigabyte allocation.
        let mut huge = image.clone();
        huge[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(SegmentData::deserialize(&huge, 3).is_err());
    }

    #[test]
    fn lazy_enabling_segments_cost_and_spill_nothing_extra() {
        // An all-empty enabling arena (every untimed graph) keeps its
        // lazy form through a serialize/deserialize round trip and
        // contributes only the 4-byte sentinel to the segment size.
        let mut data = SegmentData::empty();
        for i in 0..4u32 {
            data.markings.extend_from_slice(&[i, i + 1]);
            data.env_ids.push(0);
            data.inflight_offsets.push(0);
            data.push_enabling(i as usize, &[]);
        }
        assert!(data.enabling_is_lazy());
        assert_eq!(data.enabling_offsets, vec![0]);
        for i in 0..4 {
            assert!(data.enabling(i).is_empty());
        }
        let image = data.serialize();
        let back = SegmentData::deserialize(&image, 2).unwrap();
        assert!(back.enabling_is_lazy());
        assert_eq!(back, data);
        // Mid-segment materialization backfills earlier states.
        data.markings.extend_from_slice(&[9, 9]);
        data.env_ids.push(0);
        data.inflight_offsets.push(0);
        data.push_enabling(4, &[(TransitionId::new(7), 3)]);
        assert_eq!(data.enabling_offsets.len(), 6, "backfilled to count + 1");
        for i in 0..4 {
            assert!(data.enabling(i).is_empty(), "backfilled state {i}");
        }
        assert_eq!(data.enabling(4), &[(TransitionId::new(7), 3)]);
        let back = SegmentData::deserialize(&data.serialize(), 2).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn wrong_image_version_is_rejected() {
        // An image stamped with a different layout version (e.g. one
        // written before the enabling-clock arena existed) must be
        // rejected on the header check, not misinterpreted.
        let mut data = SegmentData::empty();
        data.markings.extend_from_slice(&[1, 2]);
        data.env_ids.push(0);
        data.inflight_offsets.push(0);
        let mut image = data.serialize();
        assert_eq!(SegmentData::deserialize(&image, 2).unwrap(), data);
        image[..4].copy_from_slice(&(IMAGE_VERSION - 1).to_le_bytes());
        let e = SegmentData::deserialize(&image, 2).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        assert!(
            e.to_string().contains("version"),
            "error should name the version mismatch: {e}"
        );
    }

    #[test]
    fn eviction_spills_and_faults_reload_verbatim() {
        // A budget far below the data forces eviction; every row must
        // read back exactly as written, repeatedly.
        let mut ps = PagedStates::new(4, &tiny_config(8 * 1024));
        let n = 20 * ps.seg_states(); // several budgets' worth of sealed segments
        fill(&mut ps, n);
        assert!(ps.spilled_bytes() > 0, "budget must have forced spilling");
        assert!(
            !ps.is_resident(0),
            "oldest segment should be evicted under LRU"
        );
        // Faults reload evicted rows; a second pass re-reads rows that
        // the first pass faulted in (and some still-spilled ones).
        for _ in 0..2 {
            for i in 0..n {
                expect_row(&ps, i);
            }
        }
        // Spilled → resident transitions really happened.
        assert!(ps.is_resident(0), "reads fault segments back in");
    }

    #[test]
    fn sealed_images_are_written_once() {
        let mut ps = PagedStates::new(2, &tiny_config(4 * 1024));
        let n = 6 * ps.seg_states();
        fill(&mut ps, n);
        let spilled_after_build = ps.spilled_bytes();
        assert!(spilled_after_build > 0);
        // Fault everything back in, then squeeze again: re-evictions
        // must reuse the existing images instead of appending new ones.
        for i in 0..ps.len() {
            expect_row(&ps, i);
        }
        ps.maintain().unwrap();
        assert_eq!(
            ps.spilled_bytes(),
            spilled_after_build,
            "sealed segments are write-once"
        );
    }

    #[test]
    fn resident_bytes_respect_the_budget_envelope() {
        let budget = 8 * 1024;
        let mut ps = PagedStates::new(8, &tiny_config(budget));
        let n = 5 * ps.seg_states();
        fill(&mut ps, n);
        assert!(
            ps.resident_bytes() <= budget,
            "maintain() leaves the store under budget"
        );
        // Reads under `&self` may exceed the budget (no eviction without
        // `&mut`), but a maintain() brings it back down.
        for i in 0..ps.len() {
            expect_row(&ps, i);
        }
        ps.maintain().unwrap();
        assert!(ps.resident_bytes() <= budget);
        assert!(ps.peak_resident_bytes() >= ps.resident_bytes());
    }

    #[test]
    fn unlimited_budget_never_touches_disk() {
        let mut ps = PagedStates::new(3, &PagerConfig::default());
        fill(&mut ps, 10_000);
        assert_eq!(ps.spilled_bytes(), 0);
        assert!((0..ps.segment_count()).all(|s| ps.is_resident(s)));
        for i in [0, 4095, 4096, 9999] {
            expect_row(&ps, i);
        }
    }

    #[test]
    fn spill_dir_errors_surface_as_reach_error() {
        let mut missing = std::env::temp_dir();
        missing.push(format!("pnut-no-such-dir-{}", std::process::id()));
        missing.push("nested");
        let config = PagerConfig {
            mem_budget: 2 * 1024,
            spill_dir: Some(missing),
        };
        let mut ps = PagedStates::new(16, &config);
        let mut failed = None;
        for i in 0..50_000 {
            let marking: Vec<u32> = (0..16).map(|p| (i + p) as u32).collect();
            if let Err(e) = ps.append(&marking, 0, &[], &[]) {
                failed = Some(e);
                break;
            }
        }
        match failed {
            Some(ReachError::Spill(e)) => assert_eq!(e.op, "create"),
            other => panic!("expected a spill create error, got {other:?}"),
        }
    }

    #[test]
    fn seg_states_scales_with_budget_and_width() {
        assert_eq!(seg_states_for(10, usize::MAX), MAX_SEG_STATES);
        // 64 KiB budget, 26 places: a quarter-budget segment of 128.
        assert_eq!(seg_states_for(26, 64 * 1024), 128);
        // Degenerate budgets clamp to the minimum grain.
        assert_eq!(seg_states_for(1000, 1), MIN_SEG_STATES);
        assert!(seg_states_for(0, 1024).is_power_of_two());
    }
}
