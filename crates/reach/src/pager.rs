//! Disk-backed paging for the reachability arenas — the system-wide
//! memory model of graph construction *and* analysis.
//!
//! # Why it exists
//!
//! BFS-complete model checking needs the whole state space *somewhere*,
//! and an in-memory [`crate::store::StateStore`] caps the reachable
//! state count at RAM. The observation that lifts the ceiling: once the
//! frontier has moved past a BFS level, the states of that level are
//! *cold* — the explorer only touches them again on the rare true hash
//! hit (a duplicate successor that closes a long cycle back into an old
//! level). Cold data can live on disk. The same holds for analyses:
//! CTL fixpoints, deadlock/bound sweeps, and Markov extraction read the
//! graph in **segment order**, so at any instant only one segment needs
//! to be resident.
//!
//! # The three layers
//!
//! ```text
//! intern table   (hash, state index)   always resident, probes first
//!      │ true hash hit → content compare needs the arena row
//!      ▼
//! level segments [seg 0 | seg 1 | … | tail]   fixed state count each
//!      │ resident  → slice straight out of the segment
//!      │ spilled   → fault: read back from the spill file
//!      ▼
//! spill file     write-once images of sealed segments (temp file)
//! ```
//!
//! Two arena families ride this machinery, sharing one resident-byte
//! budget through a common [`PagerShared`] ledger:
//!
//! * **state segments** ([`SegmentData`]) — the `markings`, `env_ids`,
//!   in-flight CSR, and enabling-clock CSR rows of `seg_states`
//!   consecutive states, appended at intern time;
//! * **edge segments** ([`EdgeSegment`]) — the CSR successor rows of
//!   the same `seg_states` consecutive source states, appended in scan
//!   order (BFS emits edge rows strictly in source order, so the edge
//!   arena is append-only and seals on exactly the same state grain).
//!
//! The *tail* segment of each family receives appends and is always
//! resident; a full segment is **sealed** and becomes immutable. A
//! sealed segment evicted for the first time is serialized to an
//! anonymous temp file ([`SpillFile`]); because sealed segments never
//! change, the image is written once and later evictions just drop the
//! memory. Variable environments are *not* paged: they are
//! deduplicated and tiny relative to the state count.
//!
//! # Segment states and when they move
//!
//! ```text
//!            append fills tail                     maintain(): over budget,
//!   tail ────────────────────────▶ resident ─────────────────────────────▶ spilled
//!  (dirty,                        (sealed,    first eviction writes the   (on disk,
//!   never                          clean       image; later ones free      slot holds
//!   evicted)                       after 1st    memory only                 its file span)
//!                                  spill)          ▲                          │
//!                                                  └──────── fault ──────────┘
//!                                                     segment() reloads on a
//!                                                     read of an evicted row
//! ```
//!
//! # Concurrency and why faulting under `&self` is sound
//!
//! The parallel builder freezes the committed store during a level and
//! probes it from many workers through `&self`. A probe that lands in a
//! spilled segment must *fault it back in* without `&mut`:
//!
//! * each segment slot holds an [`AtomicPtr`] to its heap data; a fault
//!   takes the arena's fault lock, re-checks, reads the image, and
//!   installs the pointer with `Release` (readers load with `Acquire`);
//! * faults only ever **install** — memory is *freed* exclusively by
//!   eviction, which requires `&mut self`, so no `&`-borrowed slice can
//!   be dangling while any shared borrow is alive. That is the entire
//!   safety argument for the `unsafe` derefs below, and it is also what
//!   makes [`crate::graph::SegmentGuard`] sound: a guard is a shared
//!   borrow of the graph, so the borrow checker itself proves no
//!   eviction (`&mut`) can run while a guard pins a segment.
//!
//! The full formal argument — every shared location, every
//! happens-before edge, why each `Ordering` suffices — is written out
//! in `docs/CONCURRENCY.md`. It is machine-checked two ways: the
//! in-tree interleaving checker (`crate::race`, built with
//! `--features race-model`) explores the real fault path exhaustively
//! and kills the seeded protocol mutants ([`crate::sync::mutation`]),
//! and `models/pager_protocol.pn` verifies the same invariants
//! self-hosted with this repo's own reachability + CTL engine.
//!
//! The cost of that bargain: the resident set can only shrink at `&mut`
//! points ([`Paged::maintain`] — called after every append, at every
//! parallel level barrier, and between segments of an analysis sweep),
//! so within one parallel level the resident set may transiently exceed
//! the budget by the segments the level faults in. Sequentially the
//! envelope is tight: at most one faulted segment pair (states + edges)
//! above budget at any instant (asserted by the golden tests and the
//! `tests/paged_analysis.rs` harness).
//!
//! All spill-file I/O reports [`ReachError::Spill`]; the only panicking
//! paths are the infallible *view* accessors of [`crate::store`] and
//! [`crate::graph`], which analyses use after a successful build
//! (documented there).

use crate::graph::{Edge, EdgeLabel, ReachError};
use crate::sync::{mutation, raw, AtomicPtr, AtomicU64, AtomicUsize, Mutex, Ordering};
use pnut_core::TransitionId;
use pnut_obs as obs;
use std::fmt;
use std::fs::File;
#[cfg(not(unix))]
use std::io::Read as _;
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// A spill-file I/O failure: which operation failed, on which arena
/// segment, against which spill file, and the underlying [`io::Error`].
/// Wrapped in [`ReachError::Spill`]; the `Arc`s keep `ReachError`
/// cheaply clonable (the parallel barrier clones the earliest worker
/// error).
#[derive(Debug, Clone)]
pub struct SpillError {
    /// The file operation that failed (`"create"`, `"write"`, `"read"`).
    pub op: &'static str,
    /// The arena segment being paged when the operation failed, if
    /// known (`None` only when the failure predates any segment, e.g.
    /// creating the spill file itself).
    pub segment: Option<usize>,
    /// The path the spill file was created under. The file is unlinked
    /// eagerly at creation (the open handle is its only tether), so
    /// the path names *which* file failed, not a file an operator can
    /// still inspect.
    pub path: Option<Arc<std::path::PathBuf>>,
    /// The underlying I/O error.
    pub source: Arc<io::Error>,
}

/// Wrap an [`io::Error`] from spill operation `op` on `segment` as a
/// [`ReachError`].
fn spill_err(
    op: &'static str,
    segment: usize,
    path: Option<Arc<std::path::PathBuf>>,
    source: io::Error,
) -> ReachError {
    ReachError::Spill(SpillError {
        op,
        segment: Some(segment),
        path,
        source: Arc::new(source),
    })
}

/// Same failed operation and error kind (messages can carry addresses,
/// segment indices, and paths that differ between equivalent failures).
impl PartialEq for SpillError {
    fn eq(&self, other: &Self) -> bool {
        self.op == other.op && self.source.kind() == other.source.kind()
    }
}

impl fmt::Display for SpillError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spill file {} failed", self.op)?;
        match (self.segment, &self.path) {
            (Some(seg), Some(p)) => write!(f, " (segment {seg}, {})", p.display())?,
            (Some(seg), None) => write!(f, " (segment {seg})")?,
            (None, Some(p)) => write!(f, " ({})", p.display())?,
            (None, None) => {}
        }
        write!(f, ": {}", self.source)
    }
}

impl std::error::Error for SpillError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(self.source.as_ref())
    }
}

// ---------------------------------------------------------------------------
// Configuration and shared accounting
// ---------------------------------------------------------------------------

/// How much of the paged arenas may stay resident, and where evicted
/// segments go.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PagerConfig {
    /// Resident-arena byte budget; `usize::MAX` (the default) keeps
    /// everything in memory and never creates a spill file. The intern
    /// table and the deduplicated environments are *not* counted — they
    /// stay resident regardless. The budget is shared by every arena
    /// attached to the same [`PagerShared`] ledger (the state arenas
    /// and, once a graph exists, its CSR edge arena).
    pub mem_budget: usize,
    /// Directory for the spill file; `None` uses [`std::env::temp_dir`].
    /// The file is created lazily on the first eviction and unlinked
    /// immediately (the handle keeps it alive), so nothing survives the
    /// process even on a crash.
    pub spill_dir: Option<PathBuf>,
}

impl Default for PagerConfig {
    fn default() -> Self {
        PagerConfig {
            mem_budget: usize::MAX,
            spill_dir: None,
        }
    }
}

/// The ledger every arena of one reachability computation shares: one
/// budget, one LRU clock, one resident-byte counter, one high-water
/// mark. This is what makes "`--mem-budget 64KiB`" mean *64 KiB total*
/// rather than 64 KiB per arena family.
#[derive(Debug)]
pub(crate) struct PagerShared {
    /// Resident byte budget across all attached arenas.
    budget: usize,
    /// LRU clock; advanced by every [`Paged::maintain`].
    clock: AtomicU64,
    /// Resident arena bytes right now (all attached arenas, tails
    /// included).
    resident: AtomicUsize,
    /// High-water mark of `resident`. Resettable
    /// ([`PagerShared::reset_peak`]) so tests can measure the envelope
    /// of one *phase* (e.g. an analysis sweep after the build).
    peak: AtomicUsize,
}

impl PagerShared {
    fn new(budget: usize) -> Arc<Self> {
        obs::metrics::PAGER_BUDGET_BYTES.set(budget as u64);
        Arc::new(PagerShared {
            budget,
            clock: AtomicU64::new(1),
            resident: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        })
    }

    fn add_resident(&self, bytes: usize) {
        let now = self.resident.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(now, Ordering::Relaxed);
        obs::metrics::PAGER_RESIDENT_BYTES.set(now as u64);
        obs::metrics::PAGER_PEAK_RESIDENT_BYTES.set_max(now as u64);
    }

    fn sub_resident(&self, bytes: usize) {
        let before = self.resident.fetch_sub(bytes, Ordering::Relaxed);
        obs::metrics::PAGER_RESIDENT_BYTES.set(before.saturating_sub(bytes) as u64);
        // The ledger is in bytes of segments this very code accounted
        // for, so a deficit is always a pager bug (e.g. a double
        // eviction of one segment), never workload-dependent. The race
        // model runs with debug assertions on, so every interleaving
        // that could underflow trips this deterministically.
        debug_assert!(
            before >= bytes,
            "resident-byte ledger underflow: {before} - {bytes}"
        );
    }

    pub(crate) fn resident(&self) -> usize {
        self.resident.load(Ordering::Relaxed)
    }

    pub(crate) fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Restart the high-water tracking from the current resident level.
    pub(crate) fn reset_peak(&self) {
        self.peak.store(self.resident(), Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// SpillFile
// ---------------------------------------------------------------------------

/// A segment's image in the spill file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DiskSpan {
    offset: u64,
    len: u64,
}

/// An anonymous append-only temp file holding evicted segment images.
///
/// Writes happen only under `&mut` (eviction); reads happen under
/// `&self` (faults, possibly from several workers at once) and use
/// positioned reads so they never disturb the append cursor.
#[derive(Debug)]
pub(crate) struct SpillFile {
    file: File,
    /// The name the file was created under (already unlinked; kept so
    /// spill errors can say *which* file failed).
    path: Arc<std::path::PathBuf>,
    /// Append cursor == bytes spilled so far.
    len: u64,
    /// Serializes the seek+read fallback on platforms without `pread`.
    #[cfg_attr(unix, allow(dead_code))]
    read_lock: Mutex<()>,
}

impl SpillFile {
    /// Create the spill file in `dir` and immediately unlink it, so the
    /// open handle is its only tether.
    fn create(dir: Option<&Path>) -> io::Result<SpillFile> {
        // Process-global name disambiguator — not part of the pager
        // protocol, so it deliberately stays on the std atomic rather
        // than the `crate::sync` facade (the race model has no business
        // interleaving file-name generation).
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let dir = dir
            .map(Path::to_path_buf)
            .unwrap_or_else(std::env::temp_dir);
        let name = format!(
            "pnut-spill-{}-{}.bin",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        );
        let path = dir.join(name);
        let file = File::options()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)?;
        // Unlink eagerly: the fd keeps the data reachable, and nothing
        // is left behind if the process dies mid-build. If the
        // filesystem refuses (non-POSIX semantics), the file simply
        // lingers until process exit.
        let _ = std::fs::remove_file(&path);
        Ok(SpillFile {
            file,
            path: Arc::new(path),
            len: 0,
            read_lock: Mutex::new(()),
        })
    }

    /// Append one serialized segment image, returning where it landed.
    fn append(&mut self, image: &[u8]) -> io::Result<DiskSpan> {
        fail::check_write()?;
        self.file.seek(SeekFrom::Start(self.len))?;
        self.file.write_all(image)?;
        let span = DiskSpan {
            offset: self.len,
            len: image.len() as u64,
        };
        self.len += span.len;
        Ok(span)
    }

    /// Read one segment image back (positioned; safe under `&self`).
    fn read(&self, span: DiskSpan) -> io::Result<Vec<u8>> {
        fail::check_read()?;
        let mut buf = vec![0u8; span.len as usize];
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(&mut buf, span.offset)?;
        }
        #[cfg(not(unix))]
        {
            // Recover a poisoned guard: the lock serializes a
            // seek+read pair on the shared descriptor and protects no
            // in-memory state, so a reader that panicked mid-pair left
            // nothing torn — the next reader re-seeks from scratch
            // anyway. Propagating the poison would instead cascade one
            // worker's panic into every sibling's fault.
            let _guard = self.read_lock.lock().unwrap_or_else(|e| e.into_inner());
            (&self.file).seek(SeekFrom::Start(span.offset))?;
            (&self.file).read_exact(&mut buf)?;
        }
        fail::maybe_corrupt_state_image(&mut buf);
        fail::maybe_mangle_image(&mut buf);
        Ok(buf)
    }
}

/// Spill-I/O fault injection, for tests that need a reload or a spill
/// write to fail at a precise moment (e.g. mid-sweep during a parallel
/// build). Disabled by default; the hot-path cost is one relaxed load
/// of a static that is zero for the whole life of a production
/// process.
///
/// The counters are process-global, so tests that arm them must not
/// run concurrently with other spill-exercising tests — keep such
/// tests in their own integration-test binary (each binary is its own
/// process) and serialize within it.
pub mod fail {
    use std::io;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// 0 = disabled; N = the N-th call fails (counting down).
    static FAIL_READ_IN: AtomicU64 = AtomicU64::new(0);
    static FAIL_WRITE_IN: AtomicU64 = AtomicU64::new(0);

    fn injected(which: &str) -> io::Error {
        io::Error::other(format!("injected spill {which} failure"))
    }

    /// Countdown `counter`; error exactly when it hits zero.
    fn tick(counter: &AtomicU64, which: &str) -> io::Result<()> {
        if counter.load(Ordering::Relaxed) == 0 {
            return Ok(()); // fast path: injection disarmed
        }
        if counter.fetch_sub(1, Ordering::Relaxed) == 1 {
            return Err(injected(which));
        }
        Ok(())
    }

    pub(super) fn check_read() -> io::Result<()> {
        tick(&FAIL_READ_IN, "read")
    }

    pub(super) fn check_write() -> io::Result<()> {
        tick(&FAIL_WRITE_IN, "write")
    }

    /// 0 = disabled; N = the N-th *state*-image reload (counting down)
    /// comes back with one marking byte flipped.
    static CORRUPT_READ_IN: AtomicU64 = AtomicU64::new(0);

    /// Silently corrupt the `n`-th state-image reload: flip the low bit
    /// of the first marking byte. The damage passes the image format's
    /// structural validation (lengths and offsets are untouched) but
    /// changes a token count, so it is only catchable by a semantic
    /// check such as `--check-invariants`. Edge images and images too
    /// short to hold a marking are left alone and do not consume the
    /// countdown.
    pub(super) fn maybe_corrupt_state_image(buf: &mut [u8]) {
        if CORRUPT_READ_IN.load(Ordering::Relaxed) == 0 {
            return; // fast path: injection disarmed
        }
        // Header: version, kind, count, ... as little-endian u32 words;
        // markings start at byte 24.
        let is_state_image = buf.len() > 24
            && buf[4..8] == super::KIND_STATES.to_le_bytes()
            && buf[8..12] != 0u32.to_le_bytes();
        if !is_state_image {
            return;
        }
        if CORRUPT_READ_IN.fetch_sub(1, Ordering::Relaxed) == 1 {
            buf[24] ^= 1;
        }
    }

    /// 0 = disabled; N = the N-th reload comes back truncated to half
    /// its length (a short read the format's bounds checks must catch).
    static TRUNCATE_READ_IN: AtomicU64 = AtomicU64::new(0);

    /// 0 = disabled; N = the N-th reload comes back with a garbled
    /// version word (the header check must reject it).
    static BAD_HEADER_READ_IN: AtomicU64 = AtomicU64::new(0);

    /// Structurally mangle the image so the *deserialize* stage — not
    /// the read itself — is the one that fails: these drive the
    /// `fault_failures` tick on the validation error paths.
    pub(super) fn maybe_mangle_image(buf: &mut Vec<u8>) {
        if TRUNCATE_READ_IN.load(Ordering::Relaxed) != 0
            && TRUNCATE_READ_IN.fetch_sub(1, Ordering::Relaxed) == 1
        {
            buf.truncate(buf.len() / 2);
        }
        if BAD_HEADER_READ_IN.load(Ordering::Relaxed) != 0
            && BAD_HEADER_READ_IN.fetch_sub(1, Ordering::Relaxed) == 1
            && buf.len() >= 4
        {
            buf[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        }
    }

    /// Arm the hook: the `n`-th spill-image *read* from now (1-based)
    /// fails with an injected [`io::Error`]. Test-only.
    #[doc(hidden)]
    pub fn fail_nth_spill_read(n: u64) {
        FAIL_READ_IN.store(n, Ordering::Relaxed);
    }

    /// Arm the hook: the `n`-th spill-image read from now (1-based)
    /// returns only half the image — a short read. Test-only.
    #[doc(hidden)]
    pub fn truncate_nth_spill_read(n: u64) {
        TRUNCATE_READ_IN.store(n, Ordering::Relaxed);
    }

    /// Arm the hook: the `n`-th spill-image read from now (1-based)
    /// returns an image whose version/kind header is garbage.
    /// Test-only.
    #[doc(hidden)]
    pub fn bad_header_nth_spill_read(n: u64) {
        BAD_HEADER_READ_IN.store(n, Ordering::Relaxed);
    }

    /// Arm the hook: the `n`-th spill-image *write* from now (1-based)
    /// fails with an injected [`io::Error`]. Test-only.
    #[doc(hidden)]
    pub fn fail_nth_spill_write(n: u64) {
        FAIL_WRITE_IN.store(n, Ordering::Relaxed);
    }

    /// Arm the hook: the `n`-th state-image reload from now (1-based)
    /// is silently corrupted — one marking byte flipped, structure left
    /// valid. Used to prove `--check-invariants` catches bad reloads.
    /// Test-only.
    #[doc(hidden)]
    pub fn corrupt_nth_spill_read(n: u64) {
        CORRUPT_READ_IN.store(n, Ordering::Relaxed);
    }

    /// Disarm all hooks.
    #[doc(hidden)]
    pub fn reset_spill_failures() {
        FAIL_READ_IN.store(0, Ordering::Relaxed);
        FAIL_WRITE_IN.store(0, Ordering::Relaxed);
        CORRUPT_READ_IN.store(0, Ordering::Relaxed);
        TRUNCATE_READ_IN.store(0, Ordering::Relaxed);
        BAD_HEADER_READ_IN.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Image format
// ---------------------------------------------------------------------------

/// Spill-image format version. Bumped whenever any serialized segment
/// layout changes; a reload checks it first so an image written by a
/// different layout is rejected as corrupt instead of misread.
/// Version 2 added the enabling-clock arena; **version 3** added the
/// CSR edge arena as a second image kind and the kind word itself, so
/// v2 images (which have no kind word) are rejected by the version
/// check alone.
const IMAGE_VERSION: u32 = 3;

/// Image-kind discriminators, written right after the version word.
const KIND_STATES: u32 = 1;
const KIND_EDGES: u32 = 2;

fn corrupt() -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, "corrupt spill image")
}

/// Validate the `version, kind` prefix of an image; errors *name* the
/// mismatch so a stale or foreign image is diagnosable, not just
/// "corrupt".
fn check_image_header(image: &[u8], kind: u32) -> io::Result<()> {
    let word = |i: usize| -> io::Result<u32> {
        Ok(u32::from_le_bytes(
            image
                .get(i * 4..i * 4 + 4)
                .ok_or_else(corrupt)?
                .try_into()
                .expect("4-byte chunk"),
        ))
    };
    let version = word(0)?;
    if version != IMAGE_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("spill image version {version} (expected {IMAGE_VERSION})"),
        ));
    }
    let got_kind = word(1)?;
    if got_kind != kind {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("spill image kind {got_kind} (expected {kind})"),
        ));
    }
    Ok(())
}

/// The content of one paged segment: how to measure it, serialize it,
/// and read an image back. Implemented by the state-row family
/// ([`SegmentData`]) and the edge-row family ([`EdgeSegment`]); the
/// generic [`Paged`] machinery handles everything else (sealing, LRU,
/// spilling, faulting) identically for both.
pub(crate) trait SegmentContent: fmt::Debug + PartialEq + Sized {
    /// An empty tail segment.
    fn empty() -> Self;
    /// Rows recorded so far.
    fn count(&self) -> usize;
    /// Content bytes (by logical content, not capacity).
    fn bytes(&self) -> usize;
    /// Serialize to the version-3 spill image format.
    fn serialize(&self) -> Vec<u8>;
    /// Parse an image back; `places` is the marking width (ignored by
    /// the edge family).
    fn deserialize(image: &[u8], places: usize) -> io::Result<Self>;
}

// ---------------------------------------------------------------------------
// State segments
// ---------------------------------------------------------------------------

/// One segment's slice of every paged *state* arena: `seg_states`
/// consecutive states (fewer in the tail).
#[derive(Debug, Default, PartialEq)]
pub(crate) struct SegmentData {
    /// Dense marking matrix, `count × places`.
    markings: Vec<u32>,
    /// Environment id per state.
    env_ids: Vec<u32>,
    /// Segment-local CSR offsets into `inflight`; `len == count + 1`.
    inflight_offsets: Vec<u32>,
    /// In-flight firings of all states in the segment.
    inflight: Vec<(TransitionId, u64)>,
    /// Segment-local CSR offsets into `enabling`, **lazily
    /// materialized**: while every state in the segment has an empty
    /// enabling multiset (always true for untimed graphs, and for timed
    /// graphs of nets without enabling times) this stays `[0]` and the
    /// segment pays zero bytes for the arena; the first non-empty
    /// multiset backfills zero offsets for the earlier states and the
    /// array is `len == count + 1` from then on.
    enabling_offsets: Vec<u32>,
    /// Enabling clocks of all states in the segment: `(transition,
    /// remaining ticks until the start-firing event may happen)`.
    enabling: Vec<(TransitionId, u64)>,
}

impl SegmentData {
    /// Whether the enabling arena is still in its lazy all-empty form.
    fn enabling_is_lazy(&self) -> bool {
        self.enabling_offsets.len() == 1
    }

    /// Record one state's enabling multiset; `count_before` is the
    /// number of states already in the segment, for the zero backfill
    /// on first materialization.
    fn push_enabling(&mut self, count_before: usize, enabling: &[(TransitionId, u64)]) {
        if enabling.is_empty() && self.enabling_is_lazy() {
            return; // still all-empty: stay lazy, pay nothing
        }
        if self.enabling_is_lazy() {
            self.enabling_offsets.resize(count_before + 1, 0);
        }
        self.enabling.extend_from_slice(enabling);
        self.enabling_offsets.push(self.enabling.len() as u32);
    }

    pub(crate) fn marking(&self, local: usize, places: usize) -> &[u32] {
        &self.markings[local * places..(local + 1) * places]
    }

    pub(crate) fn env_id(&self, local: usize) -> u32 {
        self.env_ids[local]
    }

    pub(crate) fn in_flight(&self, local: usize) -> &[(TransitionId, u64)] {
        &self.inflight
            [self.inflight_offsets[local] as usize..self.inflight_offsets[local + 1] as usize]
    }

    pub(crate) fn enabling(&self, local: usize) -> &[(TransitionId, u64)] {
        if self.enabling_is_lazy() {
            return &[];
        }
        &self.enabling
            [self.enabling_offsets[local] as usize..self.enabling_offsets[local + 1] as usize]
    }
}

impl SegmentContent for SegmentData {
    fn empty() -> Self {
        SegmentData {
            inflight_offsets: vec![0],
            enabling_offsets: vec![0],
            ..SegmentData::default()
        }
    }

    fn count(&self) -> usize {
        self.env_ids.len()
    }

    /// Arena bytes of the segment (by content, not capacity). A lazy
    /// enabling arena counts its single sentinel offset only, so
    /// untimed segments cost exactly what they did before the arena
    /// existed.
    fn bytes(&self) -> usize {
        self.markings.len() * 4
            + self.env_ids.len() * 4
            + self.inflight_offsets.len() * 4
            + self.enabling_offsets.len() * 4
            + (self.inflight.len() + self.enabling.len())
                * std::mem::size_of::<(TransitionId, u64)>()
    }

    /// Serialize to the spill image format (all little-endian):
    /// `version:u32, kind:u32, count:u32, inflight_len:u32,
    /// enabling_len:u32, enabling_offsets_len:u32, markings, env_ids,
    /// inflight_offsets, enabling_offsets, inflight as (id:u64,
    /// remaining:u64)*, enabling likewise`. The enabling offsets keep
    /// their lazy form on disk (`len == 1` for an all-empty segment),
    /// so untimed images cost the same bytes they did before the arena
    /// existed.
    fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.bytes());
        out.extend_from_slice(&IMAGE_VERSION.to_le_bytes());
        out.extend_from_slice(&KIND_STATES.to_le_bytes());
        out.extend_from_slice(&(self.count() as u32).to_le_bytes());
        out.extend_from_slice(&(self.inflight.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.enabling.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.enabling_offsets.len() as u32).to_le_bytes());
        for &w in &self.markings {
            out.extend_from_slice(&w.to_le_bytes());
        }
        for &e in &self.env_ids {
            out.extend_from_slice(&e.to_le_bytes());
        }
        for &o in self.inflight_offsets.iter().chain(&self.enabling_offsets) {
            out.extend_from_slice(&o.to_le_bytes());
        }
        for &(t, r) in self.inflight.iter().chain(&self.enabling) {
            out.extend_from_slice(&(t.index() as u64).to_le_bytes());
            out.extend_from_slice(&r.to_le_bytes());
        }
        out
    }

    fn deserialize(image: &[u8], places: usize) -> io::Result<SegmentData> {
        check_image_header(image, KIND_STATES)?;
        let mut pos = 8usize; // past version + kind
        let mut take = |n: usize| -> io::Result<&[u8]> {
            let end = pos.checked_add(n).ok_or_else(corrupt)?;
            let s = image.get(pos..end).ok_or_else(corrupt)?;
            pos = end;
            Ok(s)
        };
        let read_u32 = |s: &[u8]| u32::from_le_bytes(s.try_into().expect("4-byte chunk"));
        let read_u64 = |s: &[u8]| u64::from_le_bytes(s.try_into().expect("8-byte chunk"));
        let count = read_u32(take(4)?) as usize;
        let inflight_len = read_u32(take(4)?) as usize;
        let enabling_len = read_u32(take(4)?) as usize;
        let eoff_len = read_u32(take(4)?) as usize;
        // Validate the header against the image length *before* any
        // allocation: a bit-flipped count must surface as the designed
        // InvalidData error, not abort on a gigantic Vec::with_capacity.
        // The enabling offsets are either the lazy sentinel or fully
        // materialized; anything else is corrupt.
        if eoff_len != 1 && eoff_len != count + 1 {
            return Err(corrupt());
        }
        if eoff_len == 1 && enabling_len != 0 {
            return Err(corrupt());
        }
        let implied = 24u64
            + count as u64 * places as u64 * 4
            + count as u64 * 4
            + (count as u64 + 1) * 4
            + eoff_len as u64 * 4
            + (inflight_len as u64 + enabling_len as u64) * 16;
        if implied != image.len() as u64 {
            return Err(corrupt());
        }
        // Bulk-parse each array from one validated slice (the header
        // check above guarantees the lengths): chunked iteration keeps
        // the fault path — reloads happen once per refault, not once
        // per build — at memcpy-like speed instead of a bounds-checked
        // closure call per element.
        let mut data = SegmentData {
            markings: Vec::with_capacity(count * places),
            env_ids: Vec::with_capacity(count),
            inflight_offsets: Vec::with_capacity(count + 1),
            inflight: Vec::with_capacity(inflight_len),
            enabling_offsets: Vec::with_capacity(eoff_len),
            enabling: Vec::with_capacity(enabling_len),
        };
        data.markings
            .extend(take(count * places * 4)?.chunks_exact(4).map(read_u32));
        data.env_ids
            .extend(take(count * 4)?.chunks_exact(4).map(read_u32));
        data.inflight_offsets
            .extend(take((count + 1) * 4)?.chunks_exact(4).map(read_u32));
        data.enabling_offsets
            .extend(take(eoff_len * 4)?.chunks_exact(4).map(read_u32));
        data.inflight
            .extend(take(inflight_len * 16)?.chunks_exact(16).map(|c| {
                (
                    TransitionId::new(read_u64(&c[..8]) as usize),
                    read_u64(&c[8..]),
                )
            }));
        data.enabling
            .extend(take(enabling_len * 16)?.chunks_exact(16).map(|c| {
                (
                    TransitionId::new(read_u64(&c[..8]) as usize),
                    read_u64(&c[8..]),
                )
            }));
        if pos != image.len()
            || data.inflight_offsets.last() != Some(&(inflight_len as u32))
            || data.enabling_offsets.last() != Some(&(enabling_len as u32))
        {
            return Err(corrupt());
        }
        Ok(data)
    }
}

// ---------------------------------------------------------------------------
// Edge segments
// ---------------------------------------------------------------------------

/// One segment of the CSR edge arena: the successor rows of
/// `seg_states` consecutive source states (fewer in the tail) — the
/// same state grain as [`SegmentData`], so one
/// [`crate::graph::SegmentGuard`] pins matching state and edge rows.
#[derive(Debug, Default, PartialEq)]
pub(crate) struct EdgeSegment {
    /// Segment-local CSR row offsets; `len == count + 1`.
    offsets: Vec<u32>,
    /// All edges of the segment's source states, grouped by source.
    edges: Vec<Edge>,
}

impl EdgeSegment {
    /// The successor row of local state `local`.
    pub(crate) fn row(&self, local: usize) -> &[Edge] {
        &self.edges[self.offsets[local] as usize..self.offsets[local + 1] as usize]
    }
}

impl SegmentContent for EdgeSegment {
    fn empty() -> Self {
        EdgeSegment {
            offsets: vec![0],
            edges: Vec::new(),
        }
    }

    fn count(&self) -> usize {
        self.offsets.len() - 1
    }

    fn bytes(&self) -> usize {
        self.offsets.len() * 4 + self.edges.len() * std::mem::size_of::<Edge>()
    }

    /// Serialize to the spill image format (little-endian):
    /// `version:u32, kind:u32, count:u32, edge_len:u32, offsets,
    /// edges as (tag:u32, payload:u64, target:u32)*` where tag 0 is
    /// `Fire(payload)` and tag 1 is `Advance(payload)`.
    fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.offsets.len() * 4 + self.edges.len() * 16);
        out.extend_from_slice(&IMAGE_VERSION.to_le_bytes());
        out.extend_from_slice(&KIND_EDGES.to_le_bytes());
        out.extend_from_slice(&(self.count() as u32).to_le_bytes());
        out.extend_from_slice(&(self.edges.len() as u32).to_le_bytes());
        for &o in &self.offsets {
            out.extend_from_slice(&o.to_le_bytes());
        }
        for &(label, target) in &self.edges {
            let (tag, payload) = match label {
                EdgeLabel::Fire(t) => (0u32, t.index() as u64),
                EdgeLabel::Advance(dt) => (1u32, dt),
            };
            out.extend_from_slice(&tag.to_le_bytes());
            out.extend_from_slice(&payload.to_le_bytes());
            out.extend_from_slice(&target.to_le_bytes());
        }
        out
    }

    fn deserialize(image: &[u8], _places: usize) -> io::Result<EdgeSegment> {
        check_image_header(image, KIND_EDGES)?;
        let mut pos = 8usize;
        let mut take = |n: usize| -> io::Result<&[u8]> {
            let end = pos.checked_add(n).ok_or_else(corrupt)?;
            let s = image.get(pos..end).ok_or_else(corrupt)?;
            pos = end;
            Ok(s)
        };
        let read_u32 = |s: &[u8]| u32::from_le_bytes(s.try_into().expect("4-byte chunk"));
        let read_u64 = |s: &[u8]| u64::from_le_bytes(s.try_into().expect("8-byte chunk"));
        let count = read_u32(take(4)?) as usize;
        let edge_len = read_u32(take(4)?) as usize;
        let implied = 16u64 + (count as u64 + 1) * 4 + edge_len as u64 * 16;
        if implied != image.len() as u64 {
            return Err(corrupt());
        }
        let mut seg = EdgeSegment {
            offsets: Vec::with_capacity(count + 1),
            edges: Vec::with_capacity(edge_len),
        };
        seg.offsets
            .extend(take((count + 1) * 4)?.chunks_exact(4).map(read_u32));
        for c in take(edge_len * 16)?.chunks_exact(16) {
            let tag = read_u32(&c[..4]);
            let payload = read_u64(&c[4..12]);
            let target = read_u32(&c[12..]);
            let label = match tag {
                0 => EdgeLabel::Fire(TransitionId::new(payload as usize)),
                1 => EdgeLabel::Advance(payload),
                _ => return Err(corrupt()),
            };
            seg.edges.push((label, target));
        }
        if pos != image.len() || seg.offsets.last() != Some(&(edge_len as u32)) {
            return Err(corrupt());
        }
        Ok(seg)
    }
}

// ---------------------------------------------------------------------------
// Generic paged arena
// ---------------------------------------------------------------------------

/// One segment slot: the (possibly absent) resident data plus the
/// bookkeeping that survives eviction.
#[derive(Debug)]
struct Slot<S> {
    /// Resident data, or null when spilled. Faults install with
    /// `Release`; readers load with `Acquire`; only `&mut` eviction
    /// ever frees the pointee (see the module docs for the safety
    /// argument).
    data: AtomicPtr<S>,
    /// Content bytes (final once sealed; grows while this is the tail).
    bytes: usize,
    /// Where the sealed image lives on disk (written once, on the
    /// first eviction).
    disk: Option<DiskSpan>,
    /// Pager clock value of the most recent access, for LRU eviction.
    last_touch: AtomicU64,
}

impl<S: SegmentContent> Slot<S> {
    fn new_resident() -> Self {
        let empty = S::empty();
        let bytes = empty.bytes();
        Slot {
            data: AtomicPtr::new(raw::alloc(empty)),
            bytes,
            disk: None,
            last_touch: AtomicU64::new(0),
        }
    }
}

impl<S> Drop for Slot<S> {
    fn drop(&mut self) {
        let p = *self.data.get_mut();
        if !p.is_null() {
            // SAFETY: `p` came from `raw::alloc` (installed at
            // construction or by a fault) and is freed only here or in
            // `evict`, which nulls the slot first; we hold `&mut self`,
            // so no borrow of the data exists.
            unsafe { raw::free(p) };
        }
    }
}

/// Hard ceilings on the states-per-segment choice. The upper bound
/// keeps a faulted segment's transfer small; the lower bound keeps the
/// slot bookkeeping negligible next to the data.
const MAX_SEG_STATES: usize = 4096;
const MIN_SEG_STATES: usize = 64;

/// States per segment for `places`-wide markings under `budget` bytes:
/// the largest power of two that fits roughly a quarter of the budget,
/// clamped to `[64, 4096]`. (Power of two ⇒ index → segment is a
/// shift, and the choice never affects results — only paging grain.)
fn seg_states_for(places: usize, budget: usize) -> usize {
    if budget == usize::MAX {
        return MAX_SEG_STATES;
    }
    // Marking row + env id + in-flight offset entry. The enabling and
    // edge arenas are excluded: the former's offsets are lazy (zero
    // bytes for nets without enabling times) and both entry counts are
    // model-dependent — the budget envelope tolerates the approximation
    // either way.
    let per_state = places * 4 + 8;
    let target = (budget / 4) / per_state.max(1);
    let rounded = match target.checked_next_power_of_two() {
        Some(p) if p == target => p,
        Some(p) => p / 2,
        None => MAX_SEG_STATES,
    };
    rounded.clamp(MIN_SEG_STATES, MAX_SEG_STATES)
}

/// A paged arena: a growing sequence of fixed-row-count segments, the
/// last of which (the *tail*) receives appends, behind the shared byte
/// budget enforced by LRU eviction to a [`SpillFile`].
///
/// See the [module docs](self) for the architecture. Instantiated as
/// [`PagedStates`] (used by [`crate::store::StateStore`]) and wrapped
/// by [`PagedEdges`] (used by [`crate::graph::ReachabilityGraph`]).
#[derive(Debug)]
pub(crate) struct Paged<S> {
    places: usize,
    seg_states: usize,
    seg_shift: u32,
    len: usize,
    segments: Vec<Slot<S>>,
    spill_dir: Option<PathBuf>,
    spill: Option<SpillFile>,
    /// Serializes concurrent `&self` faults (double-checked inside).
    fault_lock: Mutex<()>,
    /// The cross-arena budget/clock/resident ledger.
    shared: Arc<PagerShared>,
    /// Largest sealed segment seen, for budget-envelope assertions.
    max_seg_bytes: usize,
}

/// The paged state arenas (markings, env ids, in-flight and enabling
/// CSR), on the state grain chosen from the budget.
pub(crate) type PagedStates = Paged<SegmentData>;

impl<S: SegmentContent> Paged<S> {
    fn with_shared(
        places: usize,
        seg_states: usize,
        shared: Arc<PagerShared>,
        spill_dir: Option<PathBuf>,
    ) -> Self {
        debug_assert!(seg_states.is_power_of_two());
        let tail = Slot::new_resident();
        shared.add_resident(tail.bytes);
        Paged {
            places,
            seg_states,
            seg_shift: seg_states.trailing_zeros(),
            len: 0,
            segments: vec![tail],
            spill_dir,
            spill: None,
            fault_lock: Mutex::new(()),
            shared,
            max_seg_bytes: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn places(&self) -> usize {
        self.places
    }

    /// Rows per segment (the paging grain).
    pub(crate) fn seg_states(&self) -> usize {
        self.seg_states
    }

    /// The shared budget/clock/resident ledger, for attaching sibling
    /// arenas (the graph's edge arena) to the same budget.
    pub(crate) fn shared(&self) -> Arc<PagerShared> {
        Arc::clone(&self.shared)
    }

    /// Resident arena bytes right now — across *every* arena attached
    /// to this ledger, not just this one.
    pub(crate) fn resident_bytes(&self) -> usize {
        self.shared.resident()
    }

    /// High-water mark of [`Self::resident_bytes`].
    pub(crate) fn peak_resident_bytes(&self) -> usize {
        self.shared.peak()
    }

    /// Bytes written to this arena's spill file so far (0 until first
    /// eviction).
    pub(crate) fn spilled_bytes(&self) -> usize {
        self.spill.as_ref().map_or(0, |s| s.len as usize)
    }

    /// The largest sealed segment's content bytes (0 before any seal) —
    /// the "+ one segment" term of the documented budget envelope.
    pub(crate) fn max_segment_bytes(&self) -> usize {
        self.max_seg_bytes
    }

    /// Number of segments holding at least one row.
    pub(crate) fn segment_count(&self) -> usize {
        if self.len == 0 {
            0
        } else {
            self.segments.len()
        }
    }

    /// The global row range of segment `seg`.
    pub(crate) fn segment_range(&self, seg: usize) -> std::ops::Range<usize> {
        let start = seg << self.seg_shift;
        start..(start + self.seg_states).min(self.len)
    }

    #[inline]
    fn seg_of(&self, i: usize) -> (usize, usize) {
        (i >> self.seg_shift, i & (self.seg_states - 1))
    }

    /// The resident data of segment `seg`, faulting it in from the
    /// spill file if needed. Loads never evict (that needs `&mut`, see
    /// the module docs), so the returned borrow stays valid for the
    /// whole `&self` borrow of the arena.
    pub(crate) fn segment(&self, seg: usize) -> Result<&S, ReachError> {
        let slot = &self.segments[seg];
        slot.last_touch
            .store(self.shared.clock.load(Ordering::Relaxed), Ordering::Relaxed);
        let p = slot.data.load(Ordering::Acquire);
        if !p.is_null() {
            // SAFETY: a non-null pointer read with `Acquire` was
            // installed by `Slot::new_resident` or by a fault's
            // `Release` store, so the pointee is fully initialized; it
            // is freed only under `&mut self` (`evict`/`Drop`), which
            // cannot run while this `&self` borrow is alive.
            return Ok(unsafe { raw::deref(p) });
        }
        self.fault(seg)
    }

    /// Slow path of [`Self::segment`]: reload an evicted segment.
    #[cold]
    fn fault(&self, seg: usize) -> Result<&S, ReachError> {
        // Recover a poisoned guard instead of propagating the poison:
        // the real protocol invariant is the `AtomicPtr` install below
        // (a fully-built segment published with `Release`, freed only
        // at `&mut` eviction points — see docs/CONCURRENCY.md), not
        // any state the lock itself protects. A holder that panicked
        // left the slot either still null (this fault simply redoes
        // the work) or fully installed (the re-check below observes
        // it); there is no partially-mutated middle state. Treating
        // poison as fatal would instead cascade one worker's panic
        // into a second panic in every sibling's fault.
        let _guard = self.fault_lock.lock().unwrap_or_else(|e| e.into_inner());
        let slot = &self.segments[seg];
        let p = slot.data.load(Ordering::Acquire);
        if !p.is_null() && !mutation::active(mutation::DROP_FAULT_RECHECK) {
            // Another worker faulted it in while we waited.
            // SAFETY: as in `segment` — non-null implies initialized,
            // and frees need `&mut self`.
            return Ok(unsafe { raw::deref(p) });
        }
        let span = slot.disk.expect("spilled segment has a disk image");
        let spill = self.spill.as_ref().expect("spilled segment has a file");
        // Every attempted reload counts as a fault; it then lands in
        // either `fault_failures` or `reloads`, never both, so
        // `faults == fault_failures + reloads` is an invariant the
        // fault-injection tests pin.
        obs::metrics::PAGER_FAULTS.inc();
        let image = spill.read(span).map_err(|e| {
            obs::metrics::PAGER_FAULT_FAILURES.inc();
            spill_err("read", seg, Some(Arc::clone(&spill.path)), e)
        })?;
        obs::metrics::PAGER_SPILL_READ_BYTES.add(image.len() as u64);
        let data = S::deserialize(&image, self.places).map_err(|e| {
            obs::metrics::PAGER_FAULT_FAILURES.inc();
            spill_err("read", seg, Some(Arc::clone(&spill.path)), e)
        })?;
        obs::metrics::PAGER_RELOADS.inc();
        let fresh = raw::alloc(data);
        let install = if mutation::active(mutation::RELAXED_INSTALL) {
            Ordering::Relaxed
        } else {
            // Release pairs with the Acquire loads above: a reader that
            // sees `fresh` also sees the fully deserialized pointee.
            Ordering::Release
        };
        slot.data.store(fresh, install);
        self.shared.add_resident(slot.bytes);
        if mutation::active(mutation::FREE_IN_FAULT) {
            self.free_in_fault_mutant(seg);
        }
        // SAFETY: `fresh` was allocated above and installed under the
        // fault lock; it is freed only under `&mut self`.
        Ok(unsafe { raw::deref(fresh) })
    }

    /// The seeded [`mutation::FREE_IN_FAULT`] protocol bug: evict (free)
    /// some other already-imaged cold segment right here in the fault
    /// path, under `&self` — the memory another thread may be borrowing
    /// right now. Statically dead in production builds
    /// (`mutation::active` is a constant `false` there); the race-model
    /// mutation battery asserts the checker reports the resulting
    /// use-after-free with a replayable schedule.
    fn free_in_fault_mutant(&self, faulted: usize) {
        let tail = self.segments.len() - 1;
        for (i, slot) in self.segments[..tail].iter().enumerate() {
            if i == faulted || slot.disk.is_none() {
                continue;
            }
            let p = slot.data.swap(raw::null(), Ordering::AcqRel);
            if !p.is_null() {
                self.shared.sub_resident(slot.bytes);
                // SAFETY: intentionally unsound — this is the seeded
                // bug under test. A concurrent reader may hold a borrow
                // of the pointee; the race model's generation-tagged
                // allocation registry detects exactly that. Unreachable
                // in production builds.
                unsafe { raw::free(p) };
                return;
            }
        }
    }

    /// Exclusive access to the tail segment's data (always resident).
    fn tail_mut(&mut self) -> &mut S {
        let slot = self.segments.last_mut().expect("tail segment exists");
        let p = *slot.data.get_mut();
        debug_assert!(!p.is_null(), "tail segment is always resident");
        // SAFETY: the tail is never evicted, so `p` is live; `&mut
        // self` guarantees no shared borrow of any segment exists.
        unsafe { raw::deref_mut(p) }
    }

    /// Seal the full tail (if it is full) and open a fresh one. Called
    /// before every append so a segment seals exactly at the grain.
    fn seal_tail_if_full(&mut self) {
        if self.tail_mut().count() < self.seg_states {
            return;
        }
        let sealed_bytes = self.segments.last().expect("tail").bytes;
        self.max_seg_bytes = self.max_seg_bytes.max(sealed_bytes);
        let fresh = Slot::new_resident();
        self.shared.add_resident(fresh.bytes);
        self.segments.push(fresh);
    }

    /// Record that the tail grew by `added` content bytes.
    fn note_tail_growth(&mut self, added: usize) {
        self.segments.last_mut().expect("tail").bytes += added;
        self.shared.add_resident(added);
    }

    /// Advance the LRU clock and evict least-recently-touched sealed
    /// segments of *this arena* until the shared resident total fits
    /// the budget (the tail is never evicted; segments of sibling
    /// arenas are their own `maintain`'s job). Call sites are the
    /// `&mut` points: after every append, at every parallel level
    /// barrier, and between segments of an analysis sweep.
    pub(crate) fn maintain(&mut self) -> Result<(), ReachError> {
        self.shared.clock.fetch_add(1, Ordering::Relaxed);
        while self.shared.resident() > self.shared.budget {
            let Some(victim) = self.coldest_resident_sealed() else {
                break; // nothing evictable here (tail alone, or sibling arenas hold the rest)
            };
            self.evict(victim)?;
        }
        Ok(())
    }

    /// The sealed resident segment with the oldest touch, if any.
    fn coldest_resident_sealed(&mut self) -> Option<usize> {
        let tail = self.segments.len() - 1;
        self.segments[..tail]
            .iter_mut()
            .enumerate()
            .filter_map(|(i, s)| {
                if s.data.get_mut().is_null() {
                    None
                } else {
                    Some((i, *s.last_touch.get_mut()))
                }
            })
            .min_by_key(|&(_, touch)| touch)
            .map(|(i, _)| i)
    }

    /// Evict one sealed segment: write its image on first eviction
    /// (sealed data is immutable, so one write suffices forever), then
    /// free the memory.
    fn evict(&mut self, seg: usize) -> Result<(), ReachError> {
        debug_assert!(seg + 1 < self.segments.len(), "tail is never evicted");
        let p = *self.segments[seg].data.get_mut();
        debug_assert!(!p.is_null(), "evicting a spilled segment");
        if self.segments[seg].disk.is_none() {
            if self.spill.is_none() {
                self.spill = Some(
                    SpillFile::create(self.spill_dir.as_deref())
                        .map_err(|e| spill_err("create", seg, None, e))?,
                );
            }
            // SAFETY: `p` is the live segment pointer read above;
            // `&mut self` excludes all other borrows, and this shared
            // borrow ends before the data is freed below.
            let image = unsafe { raw::deref(p) }.serialize();
            let spill = self.spill.as_mut().expect("just created");
            let path = Arc::clone(&spill.path);
            let span = spill
                .append(&image)
                .map_err(|e| spill_err("write", seg, Some(path), e))?;
            obs::metrics::PAGER_SPILL_WRITE_BYTES.add(image.len() as u64);
            self.segments[seg].disk = Some(span);
        }
        obs::metrics::PAGER_EVICTIONS.inc();
        let slot = &mut self.segments[seg];
        *slot.data.get_mut() = raw::null();
        self.shared.sub_resident(slot.bytes);
        // SAFETY: the pointer was detached from the slot above, so no
        // future reader can observe it; `&mut self` excludes live
        // borrows. This is the *only* place (besides `Drop`) that frees
        // segment memory — the soundness linchpin of `&self` faulting.
        unsafe { raw::free(p) };
        Ok(())
    }

    /// Whether segment `seg` is currently resident (test/diagnostic).
    #[cfg(test)]
    fn is_resident(&self, seg: usize) -> bool {
        !self.segments[seg].data.load(Ordering::Acquire).is_null()
    }
}

// ---------------------------------------------------------------------------
// State-arena operations
// ---------------------------------------------------------------------------

impl PagedStates {
    pub(crate) fn new(places: usize, config: &PagerConfig) -> Self {
        let seg_states = seg_states_for(places, config.mem_budget);
        Paged::with_shared(
            places,
            seg_states,
            PagerShared::new(config.mem_budget),
            config.spill_dir.clone(),
        )
    }

    /// Append one state to the tail, sealing it first if full, then
    /// evict back under budget. The append itself cannot fail — only
    /// eviction I/O can — and by then the state is fully recorded, so
    /// an error leaves the store consistent (just over budget).
    pub(crate) fn append(
        &mut self,
        marking: &[u32],
        env_id: u32,
        in_flight: &[(TransitionId, u64)],
        enabling: &[(TransitionId, u64)],
    ) -> Result<(), ReachError> {
        debug_assert_eq!(marking.len(), self.places, "marking width mismatch");
        self.seal_tail_if_full();
        let tail = self.tail_mut();
        let before = tail.bytes();
        tail.markings.extend_from_slice(marking);
        tail.env_ids.push(env_id);
        tail.inflight.extend_from_slice(in_flight);
        let end = tail.inflight.len() as u32;
        tail.inflight_offsets.push(end);
        let count_before = tail.env_ids.len() - 1;
        tail.push_enabling(count_before, enabling);
        // Delta accounting (rather than an arithmetic formula): a lazy →
        // materialized transition of the enabling offsets backfills the
        // whole segment's offsets in one append.
        let added = tail.bytes() - before;
        self.note_tail_growth(added);
        self.len += 1;
        self.maintain()
    }

    /// The marking row of state `i`.
    pub(crate) fn marking(&self, i: usize) -> Result<&[u32], ReachError> {
        debug_assert!(i < self.len, "state {i} out of range");
        let (seg, local) = self.seg_of(i);
        Ok(self.segment(seg)?.marking(local, self.places))
    }

    /// The environment id of state `i`.
    pub(crate) fn env_id(&self, i: usize) -> Result<u32, ReachError> {
        debug_assert!(i < self.len, "state {i} out of range");
        let (seg, local) = self.seg_of(i);
        Ok(self.segment(seg)?.env_ids[local])
    }

    /// The in-flight multiset of state `i`.
    pub(crate) fn in_flight(&self, i: usize) -> Result<&[(TransitionId, u64)], ReachError> {
        debug_assert!(i < self.len, "state {i} out of range");
        let (seg, local) = self.seg_of(i);
        Ok(self.segment(seg)?.in_flight(local))
    }

    /// The enabling-clock multiset of state `i`.
    pub(crate) fn enabling(&self, i: usize) -> Result<&[(TransitionId, u64)], ReachError> {
        debug_assert!(i < self.len, "state {i} out of range");
        let (seg, local) = self.seg_of(i);
        Ok(self.segment(seg)?.enabling(local))
    }

    /// The owning segment of state `i` plus its local index — one
    /// fault/LRU touch for a whole-row compare instead of one per
    /// field (the intern probe's hot path).
    pub(crate) fn row(&self, i: usize) -> Result<(&SegmentData, usize), ReachError> {
        debug_assert!(i < self.len, "state {i} out of range");
        let (seg, local) = self.seg_of(i);
        Ok((self.segment(seg)?, local))
    }
}

/// Semantic equality over the logical state sequence, independent of
/// paging state (faults segments back in as needed; panics only if the
/// spill file itself fails mid-compare, which the test-only usage
/// accepts).
impl PartialEq for PagedStates {
    fn eq(&self, other: &Self) -> bool {
        if self.places != other.places || self.len != other.len {
            return false;
        }
        (0..self.len).all(|i| {
            let row = |s: &Self| -> Result<_, ReachError> {
                Ok((
                    s.marking(i)?.to_vec(),
                    s.env_id(i)?,
                    s.in_flight(i)?.to_vec(),
                    s.enabling(i)?.to_vec(),
                ))
            };
            match (row(self), row(other)) {
                (Ok(a), Ok(b)) => a == b,
                _ => panic!("spill reload failed while comparing stores"),
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Edge-arena operations
// ---------------------------------------------------------------------------

/// The paged CSR edge arena of a [`crate::graph::ReachabilityGraph`]:
/// successor rows appended strictly in source-state order, on the same
/// segment grain as the state arenas, against the same shared budget.
#[derive(Debug)]
pub(crate) struct PagedEdges {
    arena: Paged<EdgeSegment>,
    /// Total edges across all rows (the resident segments alone cannot
    /// answer this without faulting everything back in).
    total_edges: usize,
}

impl PagedEdges {
    /// An empty edge arena on `seg_states` rows per segment, attached
    /// to an existing ledger (normally the state store's — see
    /// [`PagedStates::shared`]).
    pub(crate) fn new(
        seg_states: usize,
        shared: Arc<PagerShared>,
        spill_dir: Option<PathBuf>,
    ) -> Self {
        PagedEdges {
            arena: Paged::with_shared(0, seg_states, shared, spill_dir),
            total_edges: 0,
        }
    }

    /// Rows (source states) recorded so far.
    pub(crate) fn row_count(&self) -> usize {
        self.arena.len()
    }

    /// Total edges across all rows.
    pub(crate) fn edge_count(&self) -> usize {
        self.total_edges
    }

    pub(crate) fn spilled_bytes(&self) -> usize {
        self.arena.spilled_bytes()
    }

    pub(crate) fn max_segment_bytes(&self) -> usize {
        self.arena.max_segment_bytes()
    }

    /// The resident data of edge segment `seg`, faulting as needed.
    pub(crate) fn segment(&self, seg: usize) -> Result<&EdgeSegment, ReachError> {
        self.arena.segment(seg)
    }

    /// Append the complete successor row of the next source state (rows
    /// must arrive in state order — BFS emits them that way), then
    /// evict back under budget.
    ///
    /// # Errors
    ///
    /// [`ReachError::CapacityExceeded`] if a segment's edge offsets
    /// would overflow `u32` (unreachable at the current grain ceiling);
    /// [`ReachError::Spill`] from eviction I/O — by which point the row
    /// is fully recorded, so the arena stays consistent.
    pub(crate) fn push_row(&mut self, row: &[Edge]) -> Result<(), ReachError> {
        self.arena.seal_tail_if_full();
        let tail = self.arena.tail_mut();
        let before = tail.bytes();
        let end = u32::try_from(tail.edges.len() + row.len()).map_err(|_| {
            ReachError::CapacityExceeded {
                resource: "edge segment (u32 offsets)",
            }
        })?;
        tail.edges.extend_from_slice(row);
        tail.offsets.push(end);
        let added = tail.bytes() - before;
        self.arena.note_tail_growth(added);
        self.arena.len += 1;
        self.total_edges += row.len();
        self.maintain()
    }

    /// The successor row of state `i`, faulting its segment as needed.
    pub(crate) fn row(&self, i: usize) -> Result<&[Edge], ReachError> {
        debug_assert!(i < self.arena.len, "row {i} out of range");
        let (seg, local) = self.arena.seg_of(i);
        Ok(self.arena.segment(seg)?.row(local))
    }

    /// Evict cold edge segments until the shared resident total fits
    /// the budget (see [`Paged::maintain`]).
    pub(crate) fn maintain(&mut self) -> Result<(), ReachError> {
        self.arena.maintain()
    }
}

/// Semantic equality over the logical row sequence, independent of
/// paging state (see [`PagedStates`]'s impl for the panic caveat).
impl PartialEq for PagedEdges {
    fn eq(&self, other: &Self) -> bool {
        if self.arena.len != other.arena.len || self.total_edges != other.total_edges {
            return false;
        }
        (0..self.arena.len).all(|i| match (self.row(i), other.row(i)) {
            (Ok(a), Ok(b)) => a == b,
            _ => panic!("spill reload failed while comparing edge arenas"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(budget: usize) -> PagerConfig {
        PagerConfig {
            mem_budget: budget,
            spill_dir: None,
        }
    }

    /// Append `n` synthetic states over `places` places with
    /// deterministic contents (marking row = i, i+1, …; env = i % 7;
    /// one in-flight entry for every third state, one enabling-clock
    /// entry for every fourth — so segments exercise both the lazy and
    /// the materialized enabling-offset forms).
    fn fill(ps: &mut PagedStates, n: usize) {
        let places = ps.places();
        for i in 0..n {
            let marking: Vec<u32> = (0..places).map(|p| (i + p) as u32).collect();
            let inflight = if i.is_multiple_of(3) {
                vec![(TransitionId::new(i % 5), (i as u64) + 1)]
            } else {
                Vec::new()
            };
            let enabling = if i.is_multiple_of(4) {
                vec![(TransitionId::new(i % 3), (i as u64) % 9)]
            } else {
                Vec::new()
            };
            ps.append(&marking, (i % 7) as u32, &inflight, &enabling)
                .unwrap();
        }
    }

    fn expect_row(ps: &PagedStates, i: usize) {
        let places = ps.places();
        let marking: Vec<u32> = (0..places).map(|p| (i + p) as u32).collect();
        assert_eq!(ps.marking(i).unwrap(), &marking[..], "marking of state {i}");
        assert_eq!(ps.env_id(i).unwrap(), (i % 7) as u32, "env of state {i}");
        let inflight = if i.is_multiple_of(3) {
            vec![(TransitionId::new(i % 5), (i as u64) + 1)]
        } else {
            Vec::new()
        };
        assert_eq!(
            ps.in_flight(i).unwrap(),
            &inflight[..],
            "in-flight of state {i}"
        );
        let enabling = if i.is_multiple_of(4) {
            vec![(TransitionId::new(i % 3), (i as u64) % 9)]
        } else {
            Vec::new()
        };
        assert_eq!(
            ps.enabling(i).unwrap(),
            &enabling[..],
            "enabling clocks of state {i}"
        );
    }

    /// The deterministic edge row of synthetic state `i`: `i % 4`
    /// edges mixing fire and advance labels.
    fn edge_row(i: usize) -> Vec<Edge> {
        (0..i % 4)
            .map(|k| {
                let label = if k % 2 == 0 {
                    EdgeLabel::Fire(TransitionId::new((i + k) % 6))
                } else {
                    EdgeLabel::Advance((i as u64) % 11 + 1)
                };
                (label, ((i + k) % 1000) as u32)
            })
            .collect()
    }

    #[test]
    fn segment_image_roundtrips_byte_for_byte() {
        let mut data = SegmentData::empty();
        for i in 0..5u32 {
            data.markings.extend_from_slice(&[i, i * 2, i * 3]);
            data.env_ids.push(i % 2);
            if i % 2 == 0 {
                data.inflight
                    .push((TransitionId::new(i as usize), 40 + u64::from(i)));
            }
            data.inflight_offsets.push(data.inflight.len() as u32);
            let enabling: &[(TransitionId, u64)] = if i % 3 == 0 {
                &[(TransitionId::new(i as usize + 1), u64::from(i))]
            } else {
                &[]
            };
            data.push_enabling(i as usize, enabling);
        }
        assert!(!data.enabling_is_lazy(), "test data materializes the arena");
        let image = data.serialize();
        let back = SegmentData::deserialize(&image, 3).unwrap();
        assert_eq!(back, data);
        // Truncated or padded images are rejected, not misread.
        assert!(SegmentData::deserialize(&image[..image.len() - 1], 3).is_err());
        let mut padded = image.clone();
        padded.push(0);
        assert!(SegmentData::deserialize(&padded, 3).is_err());
        // A bit-flipped count field must fail fast on the header check,
        // not attempt a multi-gigabyte allocation.
        let mut huge = image.clone();
        huge[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(SegmentData::deserialize(&huge, 3).is_err());
    }

    #[test]
    fn edge_image_roundtrips_byte_for_byte() {
        let mut seg = EdgeSegment::empty();
        for i in 0..7usize {
            let row = edge_row(i);
            seg.edges.extend_from_slice(&row);
            seg.offsets.push(seg.edges.len() as u32);
        }
        let image = seg.serialize();
        let back = EdgeSegment::deserialize(&image, 0).unwrap();
        assert_eq!(back, seg);
        for i in 0..7 {
            assert_eq!(back.row(i), &edge_row(i)[..], "row {i}");
        }
        // Truncation, padding, and bad label tags are rejected.
        assert!(EdgeSegment::deserialize(&image[..image.len() - 1], 0).is_err());
        let mut padded = image.clone();
        padded.push(0);
        assert!(EdgeSegment::deserialize(&padded, 0).is_err());
        let mut bad_tag = image.clone();
        let tag_pos = 16 + 8 * 4; // header + offsets → first edge's tag
        bad_tag[tag_pos..tag_pos + 4].copy_from_slice(&7u32.to_le_bytes());
        assert!(EdgeSegment::deserialize(&bad_tag, 0).is_err());
    }

    #[test]
    fn lazy_enabling_segments_cost_and_spill_nothing_extra() {
        // An all-empty enabling arena (every untimed graph) keeps its
        // lazy form through a serialize/deserialize round trip and
        // contributes only the 4-byte sentinel to the segment size.
        let mut data = SegmentData::empty();
        for i in 0..4u32 {
            data.markings.extend_from_slice(&[i, i + 1]);
            data.env_ids.push(0);
            data.inflight_offsets.push(0);
            data.push_enabling(i as usize, &[]);
        }
        assert!(data.enabling_is_lazy());
        assert_eq!(data.enabling_offsets, vec![0]);
        for i in 0..4 {
            assert!(data.enabling(i).is_empty());
        }
        let image = data.serialize();
        let back = SegmentData::deserialize(&image, 2).unwrap();
        assert!(back.enabling_is_lazy());
        assert_eq!(back, data);
        // Mid-segment materialization backfills earlier states.
        data.markings.extend_from_slice(&[9, 9]);
        data.env_ids.push(0);
        data.inflight_offsets.push(0);
        data.push_enabling(4, &[(TransitionId::new(7), 3)]);
        assert_eq!(data.enabling_offsets.len(), 6, "backfilled to count + 1");
        for i in 0..4 {
            assert!(data.enabling(i).is_empty(), "backfilled state {i}");
        }
        assert_eq!(data.enabling(4), &[(TransitionId::new(7), 3)]);
        let back = SegmentData::deserialize(&data.serialize(), 2).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn wrong_image_version_is_rejected() {
        // An image stamped with a previous layout version (e.g. the v2
        // images written before the edge arena existed) must be
        // rejected on the header check — with an error *naming* the
        // version — not misinterpreted.
        let mut data = SegmentData::empty();
        data.markings.extend_from_slice(&[1, 2]);
        data.env_ids.push(0);
        data.inflight_offsets.push(0);
        let mut image = data.serialize();
        assert_eq!(SegmentData::deserialize(&image, 2).unwrap(), data);
        for old in [IMAGE_VERSION - 1, IMAGE_VERSION - 2] {
            image[..4].copy_from_slice(&old.to_le_bytes());
            let e = SegmentData::deserialize(&image, 2).unwrap_err();
            assert_eq!(e.kind(), io::ErrorKind::InvalidData);
            assert!(
                e.to_string().contains(&format!("version {old}")),
                "error should name the rejected version: {e}"
            );
        }
    }

    #[test]
    fn wrong_image_kind_is_rejected() {
        // A state image fed to the edge parser (or vice versa) is a
        // bookkeeping bug; the kind word catches it with a named error
        // instead of a length mismatch.
        let mut seg = EdgeSegment::empty();
        seg.edges.push((EdgeLabel::Advance(3), 0));
        seg.offsets.push(1);
        let image = seg.serialize();
        let e = SegmentData::deserialize(&image, 2).unwrap_err();
        assert!(e.to_string().contains("kind"), "names the kind: {e}");
        let mut data = SegmentData::empty();
        data.markings.extend_from_slice(&[1, 2]);
        data.env_ids.push(0);
        data.inflight_offsets.push(0);
        let e = EdgeSegment::deserialize(&data.serialize(), 0).unwrap_err();
        assert!(e.to_string().contains("kind"), "names the kind: {e}");
    }

    #[test]
    fn eviction_spills_and_faults_reload_verbatim() {
        // A budget far below the data forces eviction; every row must
        // read back exactly as written, repeatedly.
        let mut ps = PagedStates::new(4, &tiny_config(8 * 1024));
        let n = 20 * ps.seg_states(); // several budgets' worth of sealed segments
        fill(&mut ps, n);
        assert!(ps.spilled_bytes() > 0, "budget must have forced spilling");
        assert!(
            !ps.is_resident(0),
            "oldest segment should be evicted under LRU"
        );
        // Faults reload evicted rows; a second pass re-reads rows that
        // the first pass faulted in (and some still-spilled ones).
        for _ in 0..2 {
            for i in 0..n {
                expect_row(&ps, i);
            }
        }
        // Spilled → resident transitions really happened.
        assert!(ps.is_resident(0), "reads fault segments back in");
    }

    #[test]
    fn edge_arena_shares_the_budget_and_reloads_verbatim() {
        // States and edges attached to one ledger: a tiny shared budget
        // forces both families to spill, and every edge row reloads
        // byte-for-byte.
        let mut ps = PagedStates::new(4, &tiny_config(8 * 1024));
        let mut pe = PagedEdges::new(ps.seg_states(), ps.shared(), None);
        let n = 12 * ps.seg_states();
        for i in 0..n {
            let marking: Vec<u32> = (0..4).map(|p| (i + p) as u32).collect();
            ps.append(&marking, 0, &[], &[]).unwrap();
            pe.push_row(&edge_row(i)).unwrap();
        }
        assert_eq!(pe.row_count(), n);
        assert_eq!(pe.edge_count(), (0..n).map(|i| i % 4).sum::<usize>());
        assert!(
            ps.spilled_bytes() > 0 && pe.spilled_bytes() > 0,
            "both families must spill under the shared budget \
             (states {} B, edges {} B)",
            ps.spilled_bytes(),
            pe.spilled_bytes()
        );
        for i in 0..n {
            assert_eq!(pe.row(i).unwrap(), &edge_row(i)[..], "edge row {i}");
        }
        // The shared resident counter really is shared: maintaining
        // both brings the combined arenas back under budget.
        pe.maintain().unwrap();
        ps.maintain().unwrap();
        assert!(ps.resident_bytes() <= 8 * 1024 + ps.max_segment_bytes());
        assert_eq!(ps.resident_bytes(), pe.arena.shared.resident());
    }

    #[test]
    fn sealed_images_are_written_once() {
        let mut ps = PagedStates::new(2, &tiny_config(4 * 1024));
        let n = 6 * ps.seg_states();
        fill(&mut ps, n);
        let spilled_after_build = ps.spilled_bytes();
        assert!(spilled_after_build > 0);
        // Fault everything back in, then squeeze again: re-evictions
        // must reuse the existing images instead of appending new ones.
        for i in 0..ps.len() {
            expect_row(&ps, i);
        }
        ps.maintain().unwrap();
        assert_eq!(
            ps.spilled_bytes(),
            spilled_after_build,
            "sealed segments are write-once"
        );
    }

    #[test]
    fn resident_bytes_respect_the_budget_envelope() {
        let budget = 8 * 1024;
        let mut ps = PagedStates::new(8, &tiny_config(budget));
        let n = 5 * ps.seg_states();
        fill(&mut ps, n);
        assert!(
            ps.resident_bytes() <= budget,
            "maintain() leaves the store under budget"
        );
        // Reads under `&self` may exceed the budget (no eviction without
        // `&mut`), but a maintain() brings it back down.
        for i in 0..ps.len() {
            expect_row(&ps, i);
        }
        ps.maintain().unwrap();
        assert!(ps.resident_bytes() <= budget);
        assert!(ps.peak_resident_bytes() >= ps.resident_bytes());
        // The peak probe is resettable, for phase-scoped envelopes.
        ps.shared().reset_peak();
        assert_eq!(ps.peak_resident_bytes(), ps.resident_bytes());
    }

    #[test]
    fn unlimited_budget_never_touches_disk() {
        let mut ps = PagedStates::new(3, &PagerConfig::default());
        fill(&mut ps, 10_000);
        assert_eq!(ps.spilled_bytes(), 0);
        assert!((0..ps.segments.len()).all(|s| ps.is_resident(s)));
        for i in [0, 4095, 4096, 9999] {
            expect_row(&ps, i);
        }
    }

    #[test]
    fn spill_dir_errors_surface_as_reach_error() {
        let mut missing = std::env::temp_dir();
        missing.push(format!("pnut-no-such-dir-{}", std::process::id()));
        missing.push("nested");
        let config = PagerConfig {
            mem_budget: 2 * 1024,
            spill_dir: Some(missing),
        };
        let mut ps = PagedStates::new(16, &config);
        let mut failed = None;
        for i in 0..50_000 {
            let marking: Vec<u32> = (0..16).map(|p| (i + p) as u32).collect();
            if let Err(e) = ps.append(&marking, 0, &[], &[]) {
                failed = Some(e);
                break;
            }
        }
        match failed {
            Some(ReachError::Spill(e)) => assert_eq!(e.op, "create"),
            other => panic!("expected a spill create error, got {other:?}"),
        }
    }

    #[test]
    fn segment_ranges_tile_the_rows() {
        let mut ps = PagedStates::new(2, &tiny_config(4 * 1024));
        let n = 3 * ps.seg_states() + ps.seg_states() / 2;
        fill(&mut ps, n);
        let mut covered = 0;
        for seg in 0..ps.segment_count() {
            let r = ps.segment_range(seg);
            assert_eq!(r.start, covered, "ranges are contiguous");
            assert!(!r.is_empty(), "no empty segments");
            covered = r.end;
        }
        assert_eq!(covered, n, "ranges cover every row");
    }

    #[test]
    fn seg_states_scales_with_budget_and_width() {
        assert_eq!(seg_states_for(10, usize::MAX), MAX_SEG_STATES);
        // 64 KiB budget, 26 places: a quarter-budget segment of 128.
        assert_eq!(seg_states_for(26, 64 * 1024), 128);
        // Degenerate budgets clamp to the minimum grain.
        assert_eq!(seg_states_for(1000, 1), MIN_SEG_STATES);
        assert!(seg_states_for(0, 1024).is_power_of_two());
    }
}

/// Ledger invariants under the interleaving checker: every schedule
/// (within the preemption bound) of concurrent accounting keeps the
/// resident counter non-negative and the peak an envelope, and a peak
/// reset racing an account stays benign. See `tests/race_model.rs` for
/// the full-protocol scenarios; these pin the [`PagerShared`] ledger in
/// isolation.
#[cfg(all(test, feature = "race-model"))]
mod race_tests {
    use super::PagerShared;
    use crate::race::{self, Options};

    #[test]
    fn ledger_balances_and_peak_envelopes_under_contention() {
        race::check(&Options::default(), || {
            let shared = PagerShared::new(1 << 20);
            race::scope(|s| {
                s.spawn(|| {
                    shared.add_resident(100);
                    // `sub` carries the underflow debug-assert: any
                    // interleaving that could drive the ledger negative
                    // fails the execution.
                    shared.sub_resident(100);
                });
                s.spawn(|| {
                    shared.add_resident(50);
                    let p1 = shared.peak();
                    let p2 = shared.peak();
                    assert!(p2 >= p1, "peak regressed {p1} -> {p2} without a reset");
                    shared.sub_resident(50);
                });
            });
            assert_eq!(
                shared.resident(),
                0,
                "ledger must balance after both return"
            );
            let peak = shared.peak();
            assert!(
                (50..=150).contains(&peak),
                "peak {peak} outside the feasible envelope"
            );
        })
        .expect("ledger accounting has no defects");
    }

    #[test]
    fn peak_reset_racing_an_account_is_benign() {
        race::check(&Options::default(), || {
            let shared = PagerShared::new(1 << 20);
            shared.add_resident(30);
            race::scope(|s| {
                s.spawn(|| {
                    shared.add_resident(10);
                    shared.sub_resident(10);
                });
                s.spawn(|| {
                    // An owner-side phase boundary: restart the
                    // high-water mark while a fault is accounting.
                    shared.reset_peak();
                });
            });
            assert_eq!(shared.resident(), 30);
            // Whatever the interleaving, the mark never exceeds the
            // true high water and ends at least at the resident level
            // observed by some serialization point.
            assert!(
                shared.peak() <= 40,
                "peak {} above high water",
                shared.peak()
            );
        })
        .expect("peak reset racing an account has no defects");
    }
}
