//! Coverability analysis (Karp–Miller tree).
//!
//! The reachability constructions in [`crate::graph`] abort on unbounded
//! nets with [`crate::graph::ReachError::StateLimit`]. The Karp–Miller
//! tree decides boundedness exactly: repeated token gain along a path is
//! *accelerated* to the symbolic count ω, so the tree is always finite
//! and a place is unbounded iff some node marks it ω.
//!
//! Restrictions: acceleration relies on the monotonicity of the plain
//! firing rule, which inhibitor arcs and predicates break (coverability
//! with inhibitors is undecidable in general), and actions make the
//! state infinite-dimensional — such nets are rejected with a precise
//! error rather than analyzed unsoundly.

use crate::graph::ReachError;
use pnut_core::{Marking, Net, TransitionId};
use std::fmt;

/// A token count that may be the symbolic "arbitrarily many".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Count {
    /// A concrete token count.
    Finite(u32),
    /// Arbitrarily many tokens (ω).
    Omega,
}

impl Count {
    fn covers(self, w: u32) -> bool {
        match self {
            Count::Finite(v) => v >= w,
            Count::Omega => true,
        }
    }

    fn minus(self, w: u32) -> Count {
        match self {
            Count::Finite(v) => Count::Finite(v - w),
            Count::Omega => Count::Omega,
        }
    }

    fn plus(self, w: u32) -> Count {
        match self {
            Count::Finite(v) => Count::Finite(v.saturating_add(w)),
            Count::Omega => Count::Omega,
        }
    }
}

impl fmt::Display for Count {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Count::Finite(v) => write!(f, "{v}"),
            Count::Omega => write!(f, "ω"),
        }
    }
}

/// A marking extended with ω components.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OmegaMarking(Vec<Count>);

impl OmegaMarking {
    fn from_marking(m: &Marking) -> Self {
        OmegaMarking(m.as_slice().iter().map(|&t| Count::Finite(t)).collect())
    }

    /// The count of one place.
    ///
    /// # Panics
    ///
    /// Panics if the place is out of range.
    pub fn count(&self, place: pnut_core::PlaceId) -> Count {
        self.0[place.index()]
    }

    /// Componentwise `self >= other`.
    pub fn covers(&self, other: &OmegaMarking) -> bool {
        self.0.iter().zip(&other.0).all(|(a, b)| match (a, b) {
            (Count::Omega, _) => true,
            (Count::Finite(_), Count::Omega) => false,
            (Count::Finite(x), Count::Finite(y)) => x >= y,
        })
    }

    /// Whether any component is ω.
    pub fn has_omega(&self) -> bool {
        self.0.iter().any(|c| matches!(c, Count::Omega))
    }
}

impl fmt::Display for OmegaMarking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

/// A node of the coverability tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverNode {
    /// The (possibly ω) marking.
    pub marking: OmegaMarking,
    /// Parent node index (`None` for the root).
    pub parent: Option<usize>,
    /// Children as `(transition fired, node index)`.
    pub children: Vec<(TransitionId, usize)>,
}

/// The Karp–Miller coverability tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverabilityTree {
    nodes: Vec<CoverNode>,
}

impl CoverabilityTree {
    /// All nodes (index 0 is the root / initial marking).
    pub fn nodes(&self) -> &[CoverNode] {
        &self.nodes
    }

    /// Whether the net is unbounded (some node carries an ω).
    pub fn is_unbounded(&self) -> bool {
        self.nodes.iter().any(|n| n.marking.has_omega())
    }

    /// The bound of `place`: `None` if unbounded, otherwise the maximum
    /// count over all nodes.
    pub fn place_bound(&self, place: pnut_core::PlaceId) -> Option<u32> {
        let mut max = 0;
        for n in &self.nodes {
            match n.marking.count(place) {
                Count::Omega => return None,
                Count::Finite(v) => max = max.max(v),
            }
        }
        Some(max)
    }

    /// Whether some reachable (ω-)marking covers `target` componentwise
    /// — the classical coverability question ("can this many tokens ever
    /// be present simultaneously?").
    pub fn covers(&self, target: &Marking) -> bool {
        let t = OmegaMarking::from_marking(target);
        self.nodes.iter().any(|n| n.marking.covers(&t))
    }
}

/// Construction limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverOptions {
    /// Abort beyond this many tree nodes (the tree is finite in theory,
    /// but can be enormous).
    pub max_nodes: usize,
}

impl Default for CoverOptions {
    fn default() -> Self {
        CoverOptions { max_nodes: 100_000 }
    }
}

/// Build the Karp–Miller coverability tree of `net`.
///
/// # Errors
///
/// [`ReachError::UsesRandom`] / [`ReachError::Eval`]-free by
/// construction; instead rejects inhibitor arcs, predicates and actions
/// via [`ReachError::NotPlain`], and very large trees via
/// [`ReachError::StateLimit`].
///
/// # Example
///
/// ```
/// use pnut_core::NetBuilder;
/// use pnut_reach::coverability::{coverability_tree, CoverOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetBuilder::new("producer");
/// b.place("items", 0);
/// b.place("turn", 1);
/// b.transition("produce").input("turn").output("turn").output("items").add();
/// let net = b.build()?;
/// let tree = coverability_tree(&net, &CoverOptions::default())?;
/// assert!(tree.is_unbounded());
/// assert_eq!(tree.place_bound(net.place_id("items").unwrap()), None);
/// assert_eq!(tree.place_bound(net.place_id("turn").unwrap()), Some(1));
/// # Ok(())
/// # }
/// ```
pub fn coverability_tree(
    net: &Net,
    options: &CoverOptions,
) -> Result<CoverabilityTree, ReachError> {
    for (_, t) in net.transitions() {
        if !t.inhibitors().is_empty() || t.predicate().is_some() || t.action().is_some() {
            return Err(ReachError::NotPlain {
                transition: t.name().to_string(),
            });
        }
    }

    let root = CoverNode {
        marking: OmegaMarking::from_marking(&net.initial_marking()),
        parent: None,
        children: Vec::new(),
    };
    let mut nodes = vec![root];
    let mut work = vec![0usize];

    while let Some(cur) = work.pop() {
        let marking = nodes[cur].marking.clone();
        // A node whose marking repeats an ancestor's is a leaf.
        let mut ancestor = nodes[cur].parent;
        let mut repeats = false;
        while let Some(a) = ancestor {
            if nodes[a].marking == marking {
                repeats = true;
                break;
            }
            ancestor = nodes[a].parent;
        }
        if repeats {
            continue;
        }

        for (tid, t) in net.transitions() {
            let enabled = t.inputs().iter().all(|&(p, w)| marking.0[p.index()].covers(w));
            if !enabled {
                continue;
            }
            let mut next = marking.clone();
            for &(p, w) in t.inputs() {
                next.0[p.index()] = next.0[p.index()].minus(w);
            }
            for &(p, w) in t.outputs() {
                next.0[p.index()] = next.0[p.index()].plus(w);
            }
            // Accelerate: if an ancestor is strictly covered, set ω on
            // the strictly-increased places.
            let mut a = Some(cur);
            while let Some(idx) = a {
                let anc = &nodes[idx].marking;
                if next.covers(anc) && next != *anc {
                    for i in 0..next.0.len() {
                        if let (Count::Finite(x), Count::Finite(y)) = (next.0[i], anc.0[i]) {
                            if x > y {
                                next.0[i] = Count::Omega;
                            }
                        }
                    }
                }
                a = nodes[idx].parent;
            }

            let child = nodes.len();
            if child >= options.max_nodes {
                return Err(ReachError::StateLimit {
                    limit: options.max_nodes,
                });
            }
            nodes.push(CoverNode {
                marking: next,
                parent: Some(cur),
                children: Vec::new(),
            });
            nodes[cur].children.push((tid, child));
            work.push(child);
        }
    }
    Ok(CoverabilityTree { nodes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnut_core::NetBuilder;

    #[test]
    fn bounded_ring_has_no_omega() {
        let mut b = NetBuilder::new("ring");
        b.place("a", 2);
        b.place("bp", 0);
        b.transition("ab").input("a").output("bp").add();
        b.transition("ba").input("bp").output("a").add();
        let net = b.build().unwrap();
        let tree = coverability_tree(&net, &CoverOptions::default()).unwrap();
        assert!(!tree.is_unbounded());
        assert_eq!(tree.place_bound(net.place_id("a").unwrap()), Some(2));
        assert_eq!(tree.place_bound(net.place_id("bp").unwrap()), Some(2));
        assert!(tree.covers(&Marking::from_counts(vec![1, 1])));
        assert!(!tree.covers(&Marking::from_counts(vec![3, 0])));
    }

    #[test]
    fn producer_is_unbounded_and_detected_finitely() {
        let mut b = NetBuilder::new("producer");
        b.place("items", 0);
        b.place("turn", 1);
        b.transition("produce")
            .input("turn")
            .output("turn")
            .output("items")
            .add();
        b.transition("consume").input("items").add();
        let net = b.build().unwrap();
        let tree = coverability_tree(&net, &CoverOptions::default()).unwrap();
        assert!(tree.is_unbounded());
        assert_eq!(tree.place_bound(net.place_id("items").unwrap()), None);
        // ω covers any finite demand.
        assert!(tree.covers(&Marking::from_counts(vec![1000, 1])));
        assert!(tree.nodes().len() < 100, "acceleration keeps it small");
    }

    #[test]
    fn weighted_gain_accelerates() {
        // Each cycle nets +1 token on p (consumes 1, produces 2).
        let mut b = NetBuilder::new("gain");
        b.place("p", 1);
        b.transition("t").input("p").output_weighted("p", 2).add();
        let net = b.build().unwrap();
        let tree = coverability_tree(&net, &CoverOptions::default()).unwrap();
        assert!(tree.is_unbounded());
    }

    #[test]
    fn rejects_non_plain_nets() {
        let mut b = NetBuilder::new("inh");
        b.place("p", 1);
        b.place("q", 0);
        b.transition("t").input("p").inhibitor("q").add();
        let net = b.build().unwrap();
        assert!(matches!(
            coverability_tree(&net, &CoverOptions::default()),
            Err(ReachError::NotPlain { .. })
        ));

        let mut b = NetBuilder::new("pred");
        b.place("p", 1);
        b.var("x", 0);
        b.transition("t")
            .input("p")
            .predicate_str("x == 0")
            .unwrap()
            .add();
        let net = b.build().unwrap();
        assert!(matches!(
            coverability_tree(&net, &CoverOptions::default()),
            Err(ReachError::NotPlain { .. })
        ));
    }

    #[test]
    fn omega_display() {
        assert_eq!(Count::Omega.to_string(), "ω");
        assert_eq!(Count::Finite(3).to_string(), "3");
        let m = OmegaMarking(vec![Count::Finite(1), Count::Omega]);
        assert_eq!(m.to_string(), "[1 ω]");
    }

    #[test]
    fn deadlocked_root_yields_single_node() {
        let mut b = NetBuilder::new("dead");
        b.place("p", 0);
        b.transition("t").input("p").add();
        let net = b.build().unwrap();
        let tree = coverability_tree(&net, &CoverOptions::default()).unwrap();
        assert_eq!(tree.nodes().len(), 1);
        assert!(!tree.is_unbounded());
    }
}
