//! Coverability analysis (Karp–Miller tree).
//!
//! The reachability constructions in [`crate::graph`] abort on unbounded
//! nets with [`crate::graph::ReachError::StateLimit`]. The Karp–Miller
//! tree decides boundedness exactly: repeated token gain along a path is
//! *accelerated* to the symbolic count ω, so the tree is always finite
//! and a place is unbounded iff some node marks it ω.
//!
//! Like the reachability graph, the tree is stored flat: all node
//! markings live in one dense `Count` arena (node `i` owns the row
//! `i * places..(i + 1) * places`), parents are a `u32` column, and each
//! node's child edges are a contiguous span of one shared edge array —
//! no per-node heap allocations, and ancestor walks touch only two flat
//! arrays.
//!
//! Restrictions: acceleration relies on the monotonicity of the plain
//! firing rule, which inhibitor arcs and predicates break (coverability
//! with inhibitors is undecidable in general), and actions make the
//! state infinite-dimensional — such nets are rejected with a precise
//! error rather than analyzed unsoundly. The tree is also neither
//! parallelized nor paged to disk (see [`CoverOptions::jobs`] for why
//! both are documented unsupported rather than pending).

use crate::graph::ReachError;
use pnut_core::{Marking, Net, TransitionId};
use pnut_obs as obs;
use std::fmt;

/// A token count that may be the symbolic "arbitrarily many".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Count {
    /// A concrete token count.
    Finite(u32),
    /// Arbitrarily many tokens (ω).
    Omega,
}

impl Count {
    fn covers(self, w: u32) -> bool {
        match self {
            Count::Finite(v) => v >= w,
            Count::Omega => true,
        }
    }

    fn minus(self, w: u32) -> Count {
        match self {
            Count::Finite(v) => Count::Finite(v - w),
            Count::Omega => Count::Omega,
        }
    }

    fn plus(self, w: u32) -> Count {
        match self {
            Count::Finite(v) => Count::Finite(v.saturating_add(w)),
            Count::Omega => Count::Omega,
        }
    }
}

impl fmt::Display for Count {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Count::Finite(v) => write!(f, "{v}"),
            Count::Omega => write!(f, "ω"),
        }
    }
}

/// A borrowed view of one node's (possibly ω) marking — a row of the
/// tree's count arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OmegaMarking<'a>(&'a [Count]);

impl OmegaMarking<'_> {
    /// The count of one place.
    ///
    /// # Panics
    ///
    /// Panics if the place is out of range.
    pub fn count(&self, place: pnut_core::PlaceId) -> Count {
        self.0[place.index()]
    }

    /// The raw counts in place order.
    pub fn as_slice(&self) -> &[Count] {
        self.0
    }

    /// Componentwise `self >= other`.
    pub fn covers(&self, other: OmegaMarking<'_>) -> bool {
        covers(self.0, other.0)
    }

    /// Whether any component is ω.
    pub fn has_omega(&self) -> bool {
        self.0.iter().any(|c| matches!(c, Count::Omega))
    }
}

fn covers(a: &[Count], b: &[Count]) -> bool {
    a.iter().zip(b).all(|(x, y)| match (x, y) {
        (Count::Omega, _) => true,
        (Count::Finite(_), Count::Omega) => false,
        (Count::Finite(x), Count::Finite(y)) => x >= y,
    })
}

impl fmt::Display for OmegaMarking<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

const NO_PARENT: u32 = u32::MAX;

/// The Karp–Miller coverability tree in arena form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverabilityTree {
    places: usize,
    /// Dense node-marking matrix; row `i` is node `i`.
    counts: Vec<Count>,
    /// Parent of each node (`NO_PARENT` for the root).
    parents: Vec<u32>,
    /// Child edges of all nodes, grouped per parent.
    child_edges: Vec<(TransitionId, u32)>,
    /// Span of `child_edges` owned by each node.
    child_spans: Vec<(u32, u32)>,
}

impl CoverabilityTree {
    /// Number of tree nodes (node 0 is the root / initial marking).
    pub fn node_count(&self) -> usize {
        self.parents.len()
    }

    /// The marking of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn marking(&self, i: usize) -> OmegaMarking<'_> {
        OmegaMarking(&self.counts[i * self.places..(i + 1) * self.places])
    }

    /// The parent of node `i` (`None` for the root).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn parent(&self, i: usize) -> Option<usize> {
        match self.parents[i] {
            NO_PARENT => None,
            p => Some(p as usize),
        }
    }

    /// The children of node `i` as `(transition fired, node)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn children(&self, i: usize) -> &[(TransitionId, u32)] {
        let (start, len) = self.child_spans[i];
        &self.child_edges[start as usize..(start + len) as usize]
    }

    /// Whether the net is unbounded (some node carries an ω).
    pub fn is_unbounded(&self) -> bool {
        self.counts.iter().any(|c| matches!(c, Count::Omega))
    }

    /// The bound of `place`: `None` if unbounded, otherwise the maximum
    /// count over all nodes.
    pub fn place_bound(&self, place: pnut_core::PlaceId) -> Option<u32> {
        let mut max = 0;
        for row in self.counts.chunks_exact(self.places.max(1)) {
            match row[place.index()] {
                Count::Omega => return None,
                Count::Finite(v) => max = max.max(v),
            }
        }
        Some(max)
    }

    /// Whether some reachable (ω-)marking covers `target` componentwise
    /// — the classical coverability question ("can this many tokens ever
    /// be present simultaneously?").
    pub fn covers(&self, target: &Marking) -> bool {
        let t: Vec<Count> = target
            .as_slice()
            .iter()
            .map(|&v| Count::Finite(v))
            .collect();
        (0..self.node_count()).any(|i| covers(self.marking(i).0, &t))
    }
}

/// Construction limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverOptions {
    /// Abort beyond this many tree nodes (the tree is finite in theory,
    /// but can be enormous).
    pub max_nodes: usize,
    /// Accepted for interface symmetry with
    /// [`crate::graph::ReachOptions::jobs`] and **unsupported**: the
    /// Karp–Miller construction accelerates against each node's
    /// *ancestor chain*, a sequential dependency the level-barrier
    /// scheme of [`crate::store`] does not cover, so there is no
    /// parallel tree construction and none is planned. The CLI warns
    /// when it is set to anything but 1 rather than pretending to
    /// parallelize. The tree is likewise not paged to disk: unlike the
    /// reachability graph — whose state *and* CSR edge arenas both
    /// honor [`crate::graph::ReachOptions::mem_budget`] through
    /// [`crate::pager`], for construction and analyses alike — the
    /// whole coverability tree stays memory-resident, because the
    /// acceleration step walks arbitrary ancestor chains and has no
    /// segment-ordered access pattern to exploit.
    pub jobs: usize,
}

impl Default for CoverOptions {
    fn default() -> Self {
        CoverOptions {
            max_nodes: 100_000,
            jobs: 1,
        }
    }
}

/// Build the Karp–Miller coverability tree of `net`.
///
/// # Errors
///
/// [`ReachError::UsesRandom`] / [`ReachError::Eval`]-free by
/// construction; instead rejects inhibitor arcs, predicates and actions
/// via [`ReachError::NotPlain`], and very large trees via
/// [`ReachError::StateLimit`].
///
/// # Example
///
/// ```
/// use pnut_core::NetBuilder;
/// use pnut_reach::coverability::{coverability_tree, CoverOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetBuilder::new("producer");
/// b.place("items", 0);
/// b.place("turn", 1);
/// b.transition("produce").input("turn").output("turn").output("items").add();
/// let net = b.build()?;
/// let tree = coverability_tree(&net, &CoverOptions::default())?;
/// assert!(tree.is_unbounded());
/// assert_eq!(tree.place_bound(net.place_id("items").unwrap()), None);
/// assert_eq!(tree.place_bound(net.place_id("turn").unwrap()), Some(1));
/// # Ok(())
/// # }
/// ```
pub fn coverability_tree(
    net: &Net,
    options: &CoverOptions,
) -> Result<CoverabilityTree, ReachError> {
    let _span = obs::span("cover.build");
    for (_, t) in net.transitions() {
        if !t.inhibitors().is_empty() || t.predicate().is_some() || t.action().is_some() {
            return Err(ReachError::NotPlain {
                transition: t.name().to_string(),
            });
        }
    }

    let places = net.place_count();
    let mut tree = CoverabilityTree {
        places,
        counts: net
            .initial_marking()
            .as_slice()
            .iter()
            .map(|&t| Count::Finite(t))
            .collect(),
        parents: vec![NO_PARENT],
        child_edges: Vec::new(),
        child_spans: vec![(0, 0)],
    };
    let mut work = vec![0u32];
    // Scratch rows, reused across iterations.
    let mut marking: Vec<Count> = Vec::with_capacity(places);
    let mut next: Vec<Count> = Vec::with_capacity(places);

    while let Some(cur) = work.pop() {
        let cur = cur as usize;
        marking.clear();
        marking.extend_from_slice(tree.marking(cur).0);
        // A node whose marking repeats an ancestor's is a leaf.
        let mut ancestor = tree.parent(cur);
        let mut repeats = false;
        while let Some(a) = ancestor {
            if tree.marking(a).0 == &marking[..] {
                repeats = true;
                break;
            }
            ancestor = tree.parent(a);
        }
        if repeats {
            continue;
        }
        obs::metrics::COVER_NODES.inc();
        obs::heartbeat(obs::metrics::COVER_NODES.get(), || {
            format!(
                "cover: {} nodes expanded, {} in tree",
                obs::metrics::COVER_NODES.get(),
                tree.parents.len()
            )
        });

        let span_start = tree.child_edges.len() as u32;
        for (tid, t) in net.transitions() {
            let enabled = t
                .inputs()
                .iter()
                .all(|&(p, w)| marking[p.index()].covers(w));
            if !enabled {
                continue;
            }
            next.clear();
            next.extend_from_slice(&marking);
            for &(p, w) in t.inputs() {
                next[p.index()] = next[p.index()].minus(w);
            }
            for &(p, w) in t.outputs() {
                next[p.index()] = next[p.index()].plus(w);
            }
            // Accelerate: if an ancestor is strictly covered, set ω on
            // the strictly-increased places.
            let mut a = Some(cur);
            while let Some(idx) = a {
                let anc = tree.marking(idx).0;
                if covers(&next, anc) && next != anc {
                    for i in 0..places {
                        if let (Count::Finite(x), Count::Finite(y)) = (next[i], anc[i]) {
                            if x > y {
                                next[i] = Count::Omega;
                            }
                        }
                    }
                }
                a = tree.parent(idx);
            }

            let child = tree.parents.len();
            if child >= options.max_nodes {
                return Err(ReachError::StateLimit {
                    limit: options.max_nodes,
                });
            }
            tree.counts.extend_from_slice(&next);
            tree.parents.push(cur as u32);
            tree.child_spans.push((0, 0));
            tree.child_edges.push((tid, child as u32));
            work.push(child as u32);
        }
        tree.child_spans[cur] = (span_start, tree.child_edges.len() as u32 - span_start);
    }
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnut_core::NetBuilder;

    #[test]
    fn bounded_ring_has_no_omega() {
        let mut b = NetBuilder::new("ring");
        b.place("a", 2);
        b.place("bp", 0);
        b.transition("ab").input("a").output("bp").add();
        b.transition("ba").input("bp").output("a").add();
        let net = b.build().unwrap();
        let tree = coverability_tree(&net, &CoverOptions::default()).unwrap();
        assert!(!tree.is_unbounded());
        assert_eq!(tree.place_bound(net.place_id("a").unwrap()), Some(2));
        assert_eq!(tree.place_bound(net.place_id("bp").unwrap()), Some(2));
        assert!(tree.covers(&Marking::from_counts(vec![1, 1])));
        assert!(!tree.covers(&Marking::from_counts(vec![3, 0])));
    }

    #[test]
    fn producer_is_unbounded_and_detected_finitely() {
        let mut b = NetBuilder::new("producer");
        b.place("items", 0);
        b.place("turn", 1);
        b.transition("produce")
            .input("turn")
            .output("turn")
            .output("items")
            .add();
        b.transition("consume").input("items").add();
        let net = b.build().unwrap();
        let tree = coverability_tree(&net, &CoverOptions::default()).unwrap();
        assert!(tree.is_unbounded());
        assert_eq!(tree.place_bound(net.place_id("items").unwrap()), None);
        // ω covers any finite demand.
        assert!(tree.covers(&Marking::from_counts(vec![1000, 1])));
        assert!(tree.node_count() < 100, "acceleration keeps it small");
    }

    #[test]
    fn weighted_gain_accelerates() {
        // Each cycle nets +1 token on p (consumes 1, produces 2).
        let mut b = NetBuilder::new("gain");
        b.place("p", 1);
        b.transition("t").input("p").output_weighted("p", 2).add();
        let net = b.build().unwrap();
        let tree = coverability_tree(&net, &CoverOptions::default()).unwrap();
        assert!(tree.is_unbounded());
    }

    #[test]
    fn rejects_non_plain_nets() {
        let mut b = NetBuilder::new("inh");
        b.place("p", 1);
        b.place("q", 0);
        b.transition("t").input("p").inhibitor("q").add();
        let net = b.build().unwrap();
        assert!(matches!(
            coverability_tree(&net, &CoverOptions::default()),
            Err(ReachError::NotPlain { .. })
        ));

        let mut b = NetBuilder::new("pred");
        b.place("p", 1);
        b.var("x", 0);
        b.transition("t")
            .input("p")
            .predicate_str("x == 0")
            .unwrap()
            .add();
        let net = b.build().unwrap();
        assert!(matches!(
            coverability_tree(&net, &CoverOptions::default()),
            Err(ReachError::NotPlain { .. })
        ));
    }

    #[test]
    fn omega_display() {
        assert_eq!(Count::Omega.to_string(), "ω");
        assert_eq!(Count::Finite(3).to_string(), "3");
        let m = OmegaMarking(&[Count::Finite(1), Count::Omega]);
        assert_eq!(m.to_string(), "[1 ω]");
    }

    #[test]
    fn deadlocked_root_yields_single_node() {
        let mut b = NetBuilder::new("dead");
        b.place("p", 0);
        b.transition("t").input("p").add();
        let net = b.build().unwrap();
        let tree = coverability_tree(&net, &CoverOptions::default()).unwrap();
        assert_eq!(tree.node_count(), 1);
        assert!(!tree.is_unbounded());
        assert_eq!(tree.parent(0), None);
        assert!(tree.children(0).is_empty());
    }

    #[test]
    fn tree_structure_is_consistent() {
        let mut b = NetBuilder::new("ring");
        b.place("a", 1);
        b.place("bp", 0);
        b.transition("ab").input("a").output("bp").add();
        b.transition("ba").input("bp").output("a").add();
        let net = b.build().unwrap();
        let tree = coverability_tree(&net, &CoverOptions::default()).unwrap();
        for i in 0..tree.node_count() {
            for &(_, child) in tree.children(i) {
                assert_eq!(tree.parent(child as usize), Some(i));
            }
        }
    }
}
