//! # pnut-reach — reachability analysis and temporal-logic verification
//!
//! The P-NUT system "includes tools for constructing and analyzing
//! complete reachability graphs (timed `[RP84]` and untimed `[MR87]`)"
//! (paper §4). This crate provides both constructions plus the
//! branching-time temporal-logic analyzer of `[MR87]` that the paper's
//! tracertool borrows its specification language from:
//!
//! * [`graph::build_untimed`] — classical occurrence-semantics
//!   reachability: states are (marking, variable-environment) pairs,
//!   firings are atomic. Detects deadlocks and per-place bounds.
//! * [`graph::build_timed`] — timed reachability per `[RP84]`: states
//!   additionally carry the multiset of in-flight firings with their
//!   remaining times; edges are either transition starts or time
//!   advances. All conflict alternatives are explored (reachability is
//!   about *possibility*, so firing frequencies are ignored).
//! * [`ctl`] — CTL-style branching-time temporal logic over either
//!   graph: `AG`, `EF`, `AF`, `EG`, `EX`, `AX`, `E[.U.]`, `A[.U.]` over
//!   atomic propositions comparing place token counts.
//! * [`coverability`] — the Karp–Miller tree for exact boundedness.
//!
//! # Representation
//!
//! State-space construction is bounded by duplicate-detection
//! throughput, so the data layout is built around it (see [`store`] for
//! the full story):
//!
//! * **Interned states.** A [`StateStore`] keeps each distinct state
//!   exactly once in flat arenas (markings as a dense `u32` matrix,
//!   in-flight multisets in CSR form, environments deduplicated
//!   separately). Duplicate detection is a raw open-addressing table of
//!   `(FxHash, index)` pairs probing straight into the arenas — no
//!   owned keys, no second copy of any state, no per-visit allocation.
//! * **CSR edges.** [`ReachabilityGraph`] stores all edges in flat
//!   `(label, target)` rows emitted directly by the breadth-first
//!   exploration, partitioned into the same fixed-state-count segments
//!   as the state arenas. Analyses that sweep edges repeatedly (CTL
//!   fixpoints, Markov-chain extraction) walk contiguous segment
//!   arrays instead of chasing one heap `Vec` per state.
//! * **Views, not copies.** [`ReachabilityGraph::state`] returns a
//!   borrowed [`StateRef`] into the arenas; nothing is materialized.
//!   Every post-build accessor that may touch the pager is fallible
//!   (`Result<_, ReachError>`): a spill reload that fails degrades the
//!   one analysis that hit it, never the process.
//! * **Parallel frontiers.** With [`ReachOptions::jobs`] > 1 (or 0 for
//!   all cores), each BFS level is split across a scoped worker pool:
//!   the committed store is probed lock-free, new states land in
//!   lock-striped pending shards keyed by the top bits of their hash,
//!   and a level barrier splices them into dense discovery order (see
//!   [`store`] for the design). Wide frontiers scale across cores;
//!   narrow ones are explored inline without spawning.
//! * **Disk-backed paging.** With [`ReachOptions::mem_budget`] set,
//!   cold level segments of the state *and edge* arenas spill to a
//!   temp file behind an LRU cache and fault back in on demand (see
//!   [`pager`]), so the state-count ceiling is disk, not RAM — the hot
//!   frontier stays resident and the graph is still bit-identical at
//!   any budget. Analyses honor the same budget: CTL fixpoints,
//!   deadlock/bound sweeps, and Markov extraction read the graph
//!   segment-at-a-time through [`graph::SegmentGuard`]s, evicting
//!   between segments, so *verification* runs past RAM too.
//!
//! Construction is O(edges × marking width) time with exactly one arena
//! copy per distinct state; two builds of the same net yield
//! bit-identical graphs (exploration order is deterministic), **at any
//! worker count** — `jobs` is purely a throughput knob.
//!
//! # Example
//!
//! ```
//! use pnut_core::NetBuilder;
//! use pnut_reach::{ctl, graph};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = NetBuilder::new("mutex");
//! b.place("free", 1);
//! b.place("a_cs", 0);
//! b.place("b_cs", 0);
//! b.transition("a_enter").input("free").output("a_cs").add();
//! b.transition("a_exit").input("a_cs").output("free").add();
//! b.transition("b_enter").input("free").output("b_cs").add();
//! b.transition("b_exit").input("b_cs").output("free").add();
//! let net = b.build()?;
//!
//! let mut g = graph::build_untimed(&net, &graph::ReachOptions::default())?;
//! let mutual_exclusion = ctl::Formula::parse("AG (a_cs + b_cs <= 1)")?;
//! assert!(ctl::check(&mut g, &net, &mutual_exclusion)?.holds_initially);
//! # Ok(())
//! # }
//! ```

// The pager/store module docs deliberately narrate internal machinery
// (segments, shards, spill files) with doc links so the story stays
// anchored to the code; those items are private on purpose.
#![allow(rustdoc::private_intra_doc_links)]

pub mod coverability;
pub mod ctl;
pub mod graph;
pub mod pager;
#[cfg(feature = "race-model")]
pub mod race;
pub mod store;
pub mod sync;

pub use coverability::{CoverOptions, CoverabilityTree};
pub use ctl::{CheckOutcome, CtlError, Formula};
pub use graph::{Edge, EdgeLabel, ReachError, ReachOptions, ReachabilityGraph, SegmentGuard};
pub use pager::{PagerConfig, SpillError};
pub use store::{FxHasher, MarkingView, StateRef, StateStore};
