//! # pnut-reach — reachability analysis and temporal-logic verification
//!
//! The P-NUT system "includes tools for constructing and analyzing
//! complete reachability graphs (timed `[RP84]` and untimed `[MR87]`)"
//! (paper §4). This crate provides both constructions plus the
//! branching-time temporal-logic analyzer of `[MR87]` that the paper's
//! tracertool borrows its specification language from:
//!
//! * [`graph::build_untimed`] — classical occurrence-semantics
//!   reachability: states are (marking, variable-environment) pairs,
//!   firings are atomic. Detects deadlocks and per-place bounds.
//! * [`graph::build_timed`] — timed reachability per `[RP84]`: states
//!   additionally carry the multiset of in-flight firings with their
//!   remaining times; edges are either transition starts or time
//!   advances. All conflict alternatives are explored (reachability is
//!   about *possibility*, so firing frequencies are ignored).
//! * [`ctl`] — CTL-style branching-time temporal logic over either
//!   graph: `AG`, `EF`, `AF`, `EG`, `EX`, `AX`, `E[.U.]`, `A[.U.]` over
//!   atomic propositions comparing place token counts.
//!
//! # Example
//!
//! ```
//! use pnut_core::NetBuilder;
//! use pnut_reach::{ctl, graph};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = NetBuilder::new("mutex");
//! b.place("free", 1);
//! b.place("a_cs", 0);
//! b.place("b_cs", 0);
//! b.transition("a_enter").input("free").output("a_cs").add();
//! b.transition("a_exit").input("a_cs").output("free").add();
//! b.transition("b_enter").input("free").output("b_cs").add();
//! b.transition("b_exit").input("b_cs").output("free").add();
//! let net = b.build()?;
//!
//! let g = graph::build_untimed(&net, &graph::ReachOptions::default())?;
//! let mutual_exclusion = ctl::Formula::parse("AG (a_cs + b_cs <= 1)")?;
//! assert!(ctl::check(&g, &net, &mutual_exclusion)?.holds_initially);
//! # Ok(())
//! # }
//! ```

pub mod coverability;
pub mod ctl;
pub mod graph;

pub use coverability::{CoverOptions, CoverabilityTree};
pub use ctl::{CheckOutcome, CtlError, Formula};
pub use graph::{ReachError, ReachOptions, ReachabilityGraph, StateData};
