//! Reachability graph construction over the interned state store.
//!
//! States live in a [`StateStore`] (each distinct state exactly once, in
//! flat arenas — see [`crate::store`]); edges are kept in compressed
//! sparse row (CSR) form, partitioned into the same fixed-state-count
//! **segments** as the state arenas and paged through the same
//! machinery ([`crate::pager`]): breadth-first exploration discovers
//! and finishes states in index order, so the CSR rows are emitted
//! append-only in source order — exactly the access pattern the
//! seal/spill/fault path wants — and two builds of the same net produce
//! bit-identical graphs.
//!
//! # Reading a graph that is bigger than RAM
//!
//! Random access ([`ReachabilityGraph::state`],
//! [`ReachabilityGraph::successors`]) faults evicted segments back in
//! under `&self` but can never evict, so a full sweep through them
//! silently grows the resident set to the whole store. Analyses that
//! sweep — CTL fixpoints, [`ReachabilityGraph::deadlocks`],
//! [`ReachabilityGraph::place_bounds`], Markov extraction — instead
//! walk the graph **segment-at-a-time**: pin one segment with a
//! [`SegmentGuard`], scan its rows, drop the guard, and call
//! [`ReachabilityGraph::maintain`] (an `&mut` point, so eviction is
//! legal) before the next segment. That holds the resident envelope to
//! `budget + one pinned guard (state segment + edge segment) + one
//! segment of slack` for the *analysis* phase too, not just the build —
//! asserted by `tests/paged_analysis.rs`.

use crate::pager::{EdgeSegment, PagedEdges, PagerConfig, SegmentData, SpillError};
use crate::store::{self, EnvRef, MarkingView, PendingShard, StateRef, StateStore};
use crate::sync::Mutex;
use pnut_core::expr::compile as bc;
use pnut_core::{Net, Time, Transition, TransitionId};
use pnut_obs as obs;
use std::cell::OnceCell;
use std::fmt;
use std::ops::Range;

/// Limits for graph construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReachOptions {
    /// Stop with [`ReachError::StateLimit`] beyond this many states.
    pub max_states: usize,
    /// Worker threads for frontier exploration: `1` builds sequentially,
    /// `0` uses [`std::thread::available_parallelism`], anything else is
    /// an explicit thread count. Every job count produces a bit-identical
    /// graph (see [`crate::store`] for how the level barrier guarantees
    /// it), so this is purely a throughput knob.
    pub jobs: usize,
    /// Resident byte budget for the state arenas; cold level segments
    /// beyond it spill to a temp file and are reloaded on demand (see
    /// [`crate::pager`]). `usize::MAX` (the default) keeps everything
    /// in memory. Like `jobs`, this never changes the result — the
    /// graph is bit-identical at any budget.
    pub mem_budget: usize,
    /// Directory for the spill file; `None` uses the system temp dir.
    pub spill_dir: Option<std::path::PathBuf>,
}

impl ReachOptions {
    /// The actual worker count: resolves `jobs == 0` to the machine's
    /// available parallelism (falling back to 1 when unknown).
    pub fn effective_jobs(&self) -> usize {
        if self.jobs == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.jobs
        }
    }

    /// The pager half of the options.
    fn pager_config(&self) -> PagerConfig {
        PagerConfig {
            mem_budget: self.mem_budget,
            spill_dir: self.spill_dir.clone(),
        }
    }
}

impl Default for ReachOptions {
    fn default() -> Self {
        ReachOptions {
            max_states: 100_000,
            jobs: 1,
            mem_budget: usize::MAX,
            spill_dir: None,
        }
    }
}

/// Construction errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ReachError {
    /// The state space exceeded [`ReachOptions::max_states`] — the net
    /// may be unbounded.
    StateLimit {
        /// The limit that was hit.
        limit: usize,
    },
    /// The net uses `irand`; reachability must be deterministic.
    UsesRandom,
    /// A predicate or action failed to evaluate.
    Eval {
        /// The transition involved.
        transition: String,
        /// The underlying failure.
        source: pnut_core::EvalError,
    },
    /// A transition expression failed to lower to bytecode (names the
    /// transition and the offending expression). Expressions from the
    /// surface language never hit this; it bounds pathological
    /// programmatically-built nets.
    Compile(pnut_core::CompileError),
    /// Timed construction requires constant (non-expression) delays.
    /// Only the frozen seed construction (`pnut_bench::legacy_reach`)
    /// raises this today: [`build_timed`] resolves deterministic
    /// expression firing *and enabling* times per state (against the
    /// environment at arm time, exactly like the simulator).
    NonConstantDelay {
        /// The transition with an expression-valued delay.
        transition: String,
    },
    /// Coverability analysis requires a *plain* net: no inhibitor arcs,
    /// predicates, or actions (they break the monotonicity that the
    /// Karp–Miller acceleration relies on).
    NotPlain {
        /// The offending transition.
        transition: String,
    },
    /// Firing a transition produced an inconsistent marking: a token
    /// count overflowed `u32`, or an input place underflowed despite the
    /// enablement check (unreachable unless an internal invariant is
    /// broken — `NetBuilder` merges duplicate arcs, and enablement
    /// covers the merged weight). The seed construction only
    /// `debug_assert!`-ed this; it is a hard error so release builds can
    /// never continue from a corrupted marking.
    MarkingCorrupt {
        /// The transition being fired.
        transition: String,
        /// What exactly went wrong.
        detail: &'static str,
    },
    /// A store arena or index space overflowed its representation (more
    /// than `u32::MAX` states, environments, edges, or in-flight
    /// entries). The seed construction `expect`-panicked here; it is a
    /// hard error so release builds fail cleanly on astronomically large
    /// state spaces instead of aborting.
    CapacityExceeded {
        /// Which arena or index space overflowed.
        resource: &'static str,
    },
    /// Spill-file I/O failed while paging a cold level segment out or
    /// back in (see [`crate::pager`]): disk full, an unwritable
    /// `spill_dir`, or the temp file disappearing mid-build.
    Spill(SpillError),
}

impl fmt::Display for ReachError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReachError::StateLimit { limit } => {
                write!(f, "state space exceeds {limit} states (unbounded net?)")
            }
            ReachError::UsesRandom => write!(f, "net uses irand; reachability requires determinism"),
            ReachError::Eval { transition, source } => {
                write!(f, "evaluation failed in `{transition}`: {source}")
            }
            ReachError::Compile(e) => write!(f, "{e}"),
            ReachError::NonConstantDelay { transition } => write!(
                f,
                "timed reachability requires constant delays (`{transition}`)"
            ),
            ReachError::NotPlain { transition } => write!(
                f,
                "coverability requires a plain net without inhibitors/predicates/actions (`{transition}`)"
            ),
            ReachError::MarkingCorrupt { transition, detail } => write!(
                f,
                "firing `{transition}` corrupted the marking: {detail}"
            ),
            ReachError::CapacityExceeded { resource } => {
                write!(f, "reachability store capacity exceeded: {resource}")
            }
            ReachError::Spill(e) => write!(f, "state-store paging failed: {e}"),
        }
    }
}

impl std::error::Error for ReachError {}

/// An edge label: a transition start, or the passage of time to the
/// next completion (timed graphs only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeLabel {
    /// Transition `t` started (and, untimed, completed) firing.
    Fire(TransitionId),
    /// Time advanced by the given number of ticks.
    Advance(u64),
}

/// One outgoing edge: the label and the target state index.
pub type Edge = (EdgeLabel, u32);

/// A reachability graph: interned states, CSR-packed labeled edges
/// (paged on the same segment grain as the states, against the same
/// byte budget), and the initial state (index 0).
#[derive(Debug)]
pub struct ReachabilityGraph {
    store: StateStore,
    /// The paged CSR edge arena: the successor row of state `i` lives
    /// in edge segment `i / seg_states`.
    edges: PagedEdges,
}

/// Two graphs are equal iff they hold the same states in the same
/// order with the same edges — paging grain, residency, and spill
/// layout are ignored (comparing faults spilled segments back in).
impl PartialEq for ReachabilityGraph {
    fn eq(&self, other: &Self) -> bool {
        self.store == other.store && self.edges == other.edges
    }
}

impl ReachabilityGraph {
    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.store.len()
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.edge_count()
    }

    /// The interned state store (markings, environments, in-flight
    /// multisets).
    pub fn store(&self) -> &StateStore {
        &self.store
    }

    /// A view of state `i`, faulting its segment in if evicted.
    ///
    /// # Errors
    ///
    /// [`ReachError::Spill`] if the state segment fails to reload.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn state(&self, i: usize) -> Result<StateRef<'_>, ReachError> {
        self.store.state(i)
    }

    /// Outgoing edges of state `i` as `(label, target)` pairs, faulting
    /// the edge segment in if evicted.
    ///
    /// # Errors
    ///
    /// [`ReachError::Spill`] if the edge segment fails to reload.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn successors(&self, i: usize) -> Result<&[Edge], ReachError> {
        self.edges.row(i)
    }

    // -- segment-order read path ------------------------------------------

    /// Number of segments the graph is partitioned into (states and
    /// edges share the grain, so this counts both).
    pub fn segment_count(&self) -> usize {
        self.store.segment_count()
    }

    /// The global state range covered by segment `seg`.
    pub fn segment_range(&self, seg: usize) -> Range<usize> {
        self.store.segment_range(seg)
    }

    /// Pin segment `seg` for scanning: the returned [`SegmentGuard`]
    /// gives row access to the segment's states and successor lists
    /// without re-touching the pager's LRU per row, and — because it is
    /// a shared borrow of the graph — *provably* blocks eviction for
    /// its lifetime (eviction needs `&mut`; see [`crate::pager`] for
    /// the aliasing argument). Pinning is lazy and free of I/O: the
    /// state and edge segments fault in on the first row access of each
    /// family, so a sweep that only reads edges never loads the
    /// markings.
    ///
    /// The intended loop is: pin, scan the rows, drop the guard, call
    /// [`Self::maintain`], move to the next segment — which is what
    /// [`Self::for_each_state_in_segments`] packages.
    pub fn pin_segment(&self, seg: usize) -> SegmentGuard<'_> {
        SegmentGuard {
            graph: self,
            seg,
            range: self.segment_range(seg),
            states: OnceCell::new(),
            edges: OnceCell::new(),
        }
    }

    /// Eager form of [`Self::pin_segment`]: faults both the state and
    /// the edge segment in up front, so a sweep that wants its I/O
    /// failure before touching any row gets it here instead of from
    /// the first row accessor.
    ///
    /// # Errors
    ///
    /// [`ReachError::Spill`] if either family's segment fails to
    /// reload.
    pub fn try_pin_segment(&self, seg: usize) -> Result<SegmentGuard<'_>, ReachError> {
        let guard = self.pin_segment(seg);
        guard.state_rows()?;
        guard.edge_rows()?;
        Ok(guard)
    }

    /// Evict cold segments (edges first — analysis sweeps re-read them
    /// in order anyway — then states) until the shared resident total
    /// fits the budget again. A no-op while under budget; the legal
    /// eviction point between two pinned segments of an analysis sweep.
    ///
    /// # Errors
    ///
    /// [`ReachError::Spill`] if writing an evicted segment fails.
    pub fn maintain(&mut self) -> Result<(), ReachError> {
        self.edges.maintain()?;
        self.store.maintain()
    }

    /// Scan every state in segment order — pin a segment, visit its
    /// states (`f(index, state, successors)`), unpin, evict back under
    /// budget, repeat — so a full sweep stays inside the analysis
    /// budget envelope instead of faulting the whole store resident.
    ///
    /// # Errors
    ///
    /// [`ReachError::Spill`] if a segment reload or eviction fails.
    pub fn for_each_state_in_segments<F>(&mut self, mut f: F) -> Result<(), ReachError>
    where
        F: FnMut(usize, StateRef<'_>, &[Edge]),
    {
        for seg in 0..self.segment_count() {
            {
                let guard = self.pin_segment(seg);
                for i in guard.range() {
                    f(i, guard.state(i)?, guard.successors(i)?);
                }
            }
            self.maintain()?;
        }
        Ok(())
    }

    // -- analyses (all segment-ordered, so they honor the byte budget) ----

    /// Indices of deadlock states (no outgoing edges). Scans the edge
    /// segments in order, evicting between segments, so the resident
    /// envelope holds even on graphs larger than the budget.
    ///
    /// # Errors
    ///
    /// [`ReachError::Spill`] if a segment reload or eviction fails;
    /// the graph stays usable and a retry re-faults from scratch.
    pub fn deadlocks(&mut self) -> Result<Vec<usize>, ReachError> {
        let mut out = Vec::new();
        for seg in 0..self.segment_count() {
            {
                let guard = self.pin_segment(seg);
                for i in guard.range() {
                    if guard.successors(i)?.is_empty() {
                        out.push(i);
                    }
                }
            }
            self.maintain()?;
        }
        Ok(out)
    }

    /// The bound of each place: the maximum token count over all
    /// reachable states (a net is k-bounded iff every entry ≤ k).
    /// Segment-ordered like [`Self::deadlocks`].
    ///
    /// # Errors
    ///
    /// As [`Self::deadlocks`].
    pub fn place_bounds(&mut self) -> Result<Vec<u32>, ReachError> {
        let places = self.store.places();
        let mut bounds = vec![0u32; places];
        for seg in 0..self.segment_count() {
            {
                let guard = self.pin_segment(seg);
                for i in guard.range() {
                    for (b, &t) in bounds.iter_mut().zip(guard.marking(i)?) {
                        *b = (*b).max(t);
                    }
                }
            }
            self.maintain()?;
        }
        Ok(bounds)
    }

    /// Whether `transition` fires on some edge (L1-liveness witness).
    /// Segment-ordered like [`Self::deadlocks`]; returns at the first
    /// witness.
    ///
    /// # Errors
    ///
    /// As [`Self::deadlocks`].
    pub fn ever_fires(&mut self, transition: TransitionId) -> Result<bool, ReachError> {
        for seg in 0..self.segment_count() {
            let found = {
                let guard = self.pin_segment(seg);
                let mut found = false;
                for i in guard.range() {
                    if guard
                        .successors(i)?
                        .iter()
                        .any(|&(l, _)| l == EdgeLabel::Fire(transition))
                    {
                        found = true;
                        break;
                    }
                }
                found
            };
            // Evict even on the witness path, so a following sweep
            // starts from an under-budget resident set and the
            // envelope never stacks two pinned guards.
            self.maintain()?;
            if found {
                return Ok(true);
            }
        }
        Ok(false)
    }

    // -- budget diagnostics -----------------------------------------------

    /// Resident paged-arena bytes right now (states and edges — one
    /// shared ledger).
    pub fn resident_bytes(&self) -> usize {
        self.store.resident_arena_bytes()
    }

    /// High-water mark of [`Self::resident_bytes`].
    pub fn peak_resident_bytes(&self) -> usize {
        self.store.peak_resident_arena_bytes()
    }

    /// Restart [`Self::peak_resident_bytes`] tracking from the current
    /// resident level. The budget-envelope test harness calls this
    /// after the build so the recorded peak measures the *analysis*
    /// phase alone.
    pub fn reset_peak_resident_bytes(&mut self) {
        self.store.reset_peak_resident_bytes();
    }

    /// Total bytes spilled to disk (state + edge images).
    pub fn spilled_bytes(&self) -> usize {
        self.store.spilled_bytes() + self.edges.spilled_bytes()
    }

    /// Content bytes of the largest sealed state segment.
    pub fn max_state_segment_bytes(&self) -> usize {
        self.store.max_segment_bytes()
    }

    /// Content bytes of the largest sealed edge segment.
    pub fn max_edge_segment_bytes(&self) -> usize {
        self.edges.max_segment_bytes()
    }

    /// Approximate heap footprint of the graph in bytes: the shared
    /// resident-arena ledger (state *and* edge segments) plus the
    /// always-resident intern tables and environments.
    pub fn approx_bytes(&self) -> usize {
        // `StateStore::approx_bytes` already reads the shared ledger,
        // which covers the edge arena too.
        self.store.approx_bytes()
    }
}

/// A pinned segment of a [`ReachabilityGraph`]: row access to
/// `seg_states` consecutive states and their successor lists.
///
/// # What pinning means, and why it is sound
///
/// The guard holds `&ReachabilityGraph`. Eviction — the only operation
/// that frees segment memory — requires `&mut ReachabilityGraph`
/// ([`ReachabilityGraph::maintain`]), so while any guard is alive the
/// borrow checker statically rules out eviction: every `&[u32]` /
/// `&[Edge]` the guard hands out stays valid for the guard's lifetime
/// with no reference counting at run time. Faulting a segment *in*
/// under `&self` only ever installs memory (see [`crate::pager`]),
/// which is why lazy pinning is safe too.
///
/// The flip side: eviction can only run once the guard is dropped, so a
/// sweep holding one guard at a time keeps the resident envelope at
/// `budget + one state segment + one edge segment` (+ one segment of
/// transient slack while the next pin faults before `maintain` evicts).
///
/// # Errors and panics
///
/// Row accessors return [`ReachError::Spill`] if a spilled segment
/// fails to reload (disk error, short read, bad image header), and
/// panic only on indices outside [`Self::range`] — a caller bug, not
/// an environment failure. [`ReachabilityGraph::try_pin_segment`]
/// front-loads both families' faults for sweeps that want the I/O
/// error before touching any row.
pub struct SegmentGuard<'g> {
    graph: &'g ReachabilityGraph,
    seg: usize,
    range: Range<usize>,
    /// Lazily faulted state rows (markings, env ids, in-flight,
    /// enabling clocks).
    states: OnceCell<&'g SegmentData>,
    /// Lazily faulted successor rows.
    edges: OnceCell<&'g EdgeSegment>,
}

impl<'g> SegmentGuard<'g> {
    /// The global state indices this guard covers.
    pub fn range(&self) -> Range<usize> {
        self.range.clone()
    }

    fn local(&self, i: usize) -> usize {
        assert!(
            self.range.contains(&i),
            "state {i} outside pinned segment {:?}",
            self.range
        );
        i - self.range.start
    }

    fn state_rows(&self) -> Result<&'g SegmentData, ReachError> {
        if let Some(s) = self.states.get() {
            return Ok(s);
        }
        let s = self.graph.store.state_segment(self.seg)?;
        let _ = self.states.set(s);
        Ok(s)
    }

    fn edge_rows(&self) -> Result<&'g EdgeSegment, ReachError> {
        if let Some(s) = self.edges.get() {
            return Ok(s);
        }
        let s = self.graph.edges.segment(self.seg)?;
        let _ = self.edges.set(s);
        Ok(s)
    }

    /// The marking row of state `i` (global index).
    ///
    /// # Errors
    ///
    /// [`ReachError::Spill`] if the state segment fails to reload.
    pub fn marking(&self, i: usize) -> Result<&'g [u32], ReachError> {
        let local = self.local(i);
        Ok(self.state_rows()?.marking(local, self.graph.store.places()))
    }

    /// A full view of state `i` (global index).
    ///
    /// # Errors
    ///
    /// [`ReachError::Spill`] if the state segment fails to reload.
    pub fn state(&self, i: usize) -> Result<StateRef<'g>, ReachError> {
        let local = self.local(i);
        let rows = self.state_rows()?;
        Ok(StateRef {
            marking: MarkingView::new(rows.marking(local, self.graph.store.places())),
            env: self.graph.store.env(rows.env_id(local)),
            in_flight: rows.in_flight(local),
            enabling: rows.enabling(local),
        })
    }

    /// The successor row of state `i` (global index).
    ///
    /// # Errors
    ///
    /// [`ReachError::Spill`] if the edge segment fails to reload.
    pub fn successors(&self, i: usize) -> Result<&'g [Edge], ReachError> {
        let local = self.local(i);
        Ok(self.edge_rows()?.row(local))
    }
}

fn check_deterministic(net: &Net) -> Result<(), ReachError> {
    if net.uses_random() {
        return Err(ReachError::UsesRandom);
    }
    Ok(())
}

fn eval_err(t: &Transition, source: pnut_core::EvalError) -> ReachError {
    ReachError::Eval {
        transition: t.name().to_string(),
        source,
    }
}

/// One transition lowered to flat index/delta form for the hot loop:
/// raw place indices instead of `PlaceId`s, duplicate arcs merged, and
/// the token movement of a firing as a single signed-delta pass.
struct Compiled {
    id: TransitionId,
    /// `(place, tokens)` enablement lower bounds; duplicate input arcs
    /// are merged by summing, so multi-arc requirements are exact.
    needs: Vec<(u32, u32)>,
    /// `(place, threshold)` inhibitor bounds (duplicates merged to the
    /// tightest threshold); enabled iff tokens < threshold.
    inhib: Vec<(u32, u32)>,
    /// Net token movement of an atomic firing — inputs negative,
    /// outputs positive, zero-sum self-loops dropped.
    fire_delta: Vec<(u32, i64)>,
    /// Token movement of a timed firing *start* (inputs only; outputs
    /// are delivered at end-of-firing).
    start_delta: Vec<(u32, i64)>,
    /// Maximum concurrent firings (timed nets).
    cap: Option<u32>,
    has_predicate: bool,
    has_action: bool,
}

fn compile(net: &Net) -> Vec<Compiled> {
    use std::collections::BTreeMap;
    net.transitions()
        .map(|(id, t)| {
            let mut needs: BTreeMap<u32, u64> = BTreeMap::new();
            let mut inhib: BTreeMap<u32, u32> = BTreeMap::new();
            let mut fire: BTreeMap<u32, i64> = BTreeMap::new();
            let mut start: BTreeMap<u32, i64> = BTreeMap::new();
            for &(p, w) in t.inputs() {
                let p = p.index() as u32;
                *needs.entry(p).or_default() += u64::from(w);
                *fire.entry(p).or_default() -= i64::from(w);
                *start.entry(p).or_default() -= i64::from(w);
            }
            for &(p, th) in t.inhibitors() {
                let e = inhib.entry(p.index() as u32).or_insert(th);
                *e = (*e).min(th);
            }
            for &(p, w) in t.outputs() {
                *fire.entry(p.index() as u32).or_default() += i64::from(w);
            }
            Compiled {
                id,
                needs: needs
                    .into_iter()
                    // A summed requirement above u32::MAX is unsatisfiable
                    // in practice; saturating keeps the type small.
                    .map(|(p, w)| (p, u32::try_from(w).unwrap_or(u32::MAX)))
                    .collect(),
                inhib: inhib.into_iter().collect(),
                fire_delta: fire.into_iter().filter(|&(_, d)| d != 0).collect(),
                start_delta: start.into_iter().collect(),
                cap: t.max_concurrent(),
                has_predicate: t.predicate().is_some(),
                has_action: t.action().is_some(),
            }
        })
        .collect()
}

/// Apply merged token deltas to a scratch marking, keeping its
/// commutative hash (see [`StateStore::marking_elem_hash`]) in sync.
/// Returns the corruption detail on underflow/overflow.
#[inline]
fn apply_delta(
    marking: &mut [u32],
    hash: &mut u64,
    delta: &[(u32, i64)],
) -> Result<(), &'static str> {
    for &(p, d) in delta {
        let p = p as usize;
        let old = marking[p];
        let new = i64::from(old) + d;
        let Ok(new) = u32::try_from(new) else {
            return Err(if new < 0 {
                "input place underflow (arc weights exceed tokens)"
            } else {
                "token count overflowed u32"
            });
        };
        marking[p] = new;
        *hash = hash
            .wrapping_sub(StateStore::marking_elem_hash(p, old))
            .wrapping_add(StateStore::marking_elem_hash(p, new));
    }
    Ok(())
}

/// Per-transition delays of a timed build.
struct TimedTicks {
    /// Firing time per transition (ticks between start and completion):
    /// `Some` for a pre-resolved constant, `None` for a deterministic
    /// expression resolved per state against the successor environment —
    /// after the action, the simulator's order, so the paper's
    /// table-driven delays (§3) see their own updates.
    firing: Vec<Option<u64>>,
    /// Enabling time per transition (ticks of continuous readiness
    /// before the start-firing event becomes eligible): `Some` for a
    /// pre-resolved constant (`Some(0)` = never clocked), `None` for a
    /// deterministic expression resolved per state against the
    /// environment at arm time — the simulator's `refresh_enabling`
    /// order, so table-driven enabling delays follow the state.
    enabling: Vec<Option<u64>>,
}

/// The firing delay of compiled transition `ti`/`id` for the successor
/// under construction: the pre-resolved constant, or the expression
/// evaluated against `env` (the environment *after* the action — "the
/// action runs before the delay is resolved so table-driven models can
/// compute their own firing times", paper §3).
fn firing_delay(
    net: &Net,
    programs: &bc::CompiledNet,
    ticks: &TimedTicks,
    ti: usize,
    id: TransitionId,
    slots: &bc::EnvSlots,
    vm: &mut bc::Scratch,
) -> Result<u64, ReachError> {
    if let Some(t) = ticks.firing[ti] {
        return Ok(t);
    }
    let prog = programs.transitions[ti]
        .firing
        .as_ref()
        .expect("non-constant slot holds an expression delay");
    let t = net.transition(id);
    let v = prog
        .eval_pure(slots, &programs.map, vm)
        .and_then(|v| v.as_int())
        .map_err(|e| eval_err(t, e))?;
    u64::try_from(v).map_err(|_| eval_err(t, pnut_core::EvalError::Overflow))
}

/// The enabling delay of compiled transition `ti`/`id` for a state
/// whose environment is `env`: the pre-resolved constant, or the
/// expression evaluated against the environment *at arm time* — the
/// moment the transition becomes ready in the successor under
/// construction, mirroring the simulator's `refresh_enabling` (which
/// resolves once when the clock arms and keeps the deadline while the
/// transition stays continuously ready).
fn enabling_delay(
    net: &Net,
    programs: &bc::CompiledNet,
    ticks: &TimedTicks,
    ti: usize,
    id: TransitionId,
    slots: &bc::EnvSlots,
    vm: &mut bc::Scratch,
) -> Result<u64, ReachError> {
    if let Some(t) = ticks.enabling[ti] {
        return Ok(t);
    }
    let prog = programs.transitions[ti]
        .enabling
        .as_ref()
        .expect("non-constant slot holds an expression delay");
    let t = net.transition(id);
    let v = prog
        .eval_pure(slots, &programs.map, vm)
        .and_then(|v| v.as_int())
        .map_err(|e| eval_err(t, e))?;
    u64::try_from(v).map_err(|_| eval_err(t, pnut_core::EvalError::Overflow))
}

/// Reusable per-worker scratch buffers: one copy of the state under
/// expansion and one successor under construction, so successor
/// generation is allocation-free on the steady state. The sequential
/// explorer owns one; the parallel builder gives each worker its own.
struct Scratch {
    /// Copy of the current state's marking (stable while the store grows).
    cur_marking: Vec<u32>,
    /// Marking-part hash of `cur_marking`.
    cur_hash: u64,
    /// Copy of the current state's in-flight multiset.
    cur_inflight: Vec<(TransitionId, u64)>,
    /// Copy of the current state's enabling-clock multiset.
    cur_enabling: Vec<(TransitionId, u64)>,
    /// Successor marking under construction.
    next_marking: Vec<u32>,
    /// Marking-part hash of `next_marking`, maintained incrementally.
    next_hash: u64,
    /// Successor in-flight multiset under construction.
    next_inflight: Vec<(TransitionId, u64)>,
    /// Successor enabling-clock multiset under construction.
    next_enabling: Vec<(TransitionId, u64)>,
}

impl Scratch {
    fn new(places: usize) -> Self {
        Scratch {
            cur_marking: vec![0; places],
            cur_hash: 0,
            cur_inflight: Vec::new(),
            cur_enabling: Vec::new(),
            next_marking: vec![0; places],
            next_hash: 0,
            next_inflight: Vec::new(),
            next_enabling: Vec::new(),
        }
    }

    /// Load state `cur` into the scratch copies (faulting its segment
    /// in if evicted); returns its env id.
    fn load(&mut self, store: &StateStore, cur: usize) -> Result<u32, ReachError> {
        self.cur_marking
            .copy_from_slice(store.try_marking_slice(cur)?);
        self.cur_hash = StateStore::marking_hash(&self.cur_marking);
        self.cur_inflight.clear();
        self.cur_inflight
            .extend_from_slice(store.try_in_flight_slice(cur)?);
        self.cur_enabling.clear();
        self.cur_enabling
            .extend_from_slice(store.try_enabling_slice(cur)?);
        store.try_env_id(cur)
    }

    /// Whether compiled transition `ct` is marking-enabled in the
    /// current state.
    #[inline]
    fn enabled(&self, ct: &Compiled) -> bool {
        ct.needs
            .iter()
            .all(|&(p, w)| self.cur_marking[p as usize] >= w)
            && ct
                .inhib
                .iter()
                .all(|&(p, th)| self.cur_marking[p as usize] < th)
    }

    /// Reset the scratch successor to the current marking.
    #[inline]
    fn begin_next(&mut self) {
        self.next_marking.copy_from_slice(&self.cur_marking);
        self.next_hash = self.cur_hash;
    }

    /// Build the successor marking for firing `ct`: the full movement
    /// when `atomic`, inputs only otherwise (timed nets deliver outputs
    /// at end-of-firing).
    fn fire(&mut self, net: &Net, ct: &Compiled, atomic: bool) -> Result<(), ReachError> {
        self.next_marking.copy_from_slice(&self.cur_marking);
        self.next_hash = self.cur_hash;
        let delta = if atomic {
            &ct.fire_delta
        } else {
            &ct.start_delta
        };
        apply_delta(&mut self.next_marking, &mut self.next_hash, delta).map_err(|detail| {
            ReachError::MarkingCorrupt {
                transition: net.transition(ct.id).name().to_string(),
                detail,
            }
        })
    }

    /// Recompute the enabling-clock multiset of the successor under
    /// construction (`next_marking` + `next_inflight` + `env`) into
    /// `next_enabling`, mirroring the simulator's `refresh_enabling`:
    ///
    /// * a transition with a (possibly per-state) enabling delay gets
    ///   an entry iff it is *ready* in the successor (marking-enabled,
    ///   inhibitors clear, concurrency cap not reached, predicate
    ///   true) — constant-0 delays are never clocked at all;
    /// * a ready transition that was already counting down in the
    ///   current state keeps its clock, minus `elapsed` ticks for an
    ///   `Advance` edge (readiness cannot change mid-interval — the
    ///   marking only moves at the endpoints); expression delays are
    ///   *not* re-resolved while continuously ready, exactly like the
    ///   simulator;
    /// * the transition that just `fired` (if any) re-arms from a fresh
    ///   delay resolution — a firing always ends its own enabling
    ///   interval;
    /// * a newly ready transition starts a fresh clock, resolving an
    ///   expression delay against `env` — the environment at arm time.
    ///
    /// Entries come out sorted by transition id because `compiled` is
    /// iterated in id order.
    #[allow(clippy::too_many_arguments)] // bundled per-build context threads through
    fn compute_next_enabling(
        &mut self,
        net: &Net,
        compiled: &[Compiled],
        programs: &bc::CompiledNet,
        ticks: &TimedTicks,
        slots: &bc::EnvSlots,
        vm: &mut bc::Scratch,
        fired: Option<TransitionId>,
        elapsed: u64,
    ) -> Result<(), ReachError> {
        self.next_enabling.clear();
        for (ti, ct) in compiled.iter().enumerate() {
            if ticks.enabling[ti] == Some(0) {
                continue;
            }
            let ready = ct
                .needs
                .iter()
                .all(|&(p, w)| self.next_marking[p as usize] >= w)
                && ct
                    .inhib
                    .iter()
                    .all(|&(p, th)| self.next_marking[p as usize] < th)
                && ct.cap.is_none_or(|cap| {
                    (self
                        .next_inflight
                        .iter()
                        .filter(|&&(x, _)| x == ct.id)
                        .count() as u32)
                        < cap
                });
            if !ready {
                continue;
            }
            if ct.has_predicate && !predicate_holds(net, programs, ti, ct, slots, vm)? {
                continue;
            }
            let countdown = if fired == Some(ct.id) {
                enabling_delay(net, programs, ticks, ti, ct.id, slots, vm)?
            } else {
                match self.cur_enabling.iter().find(|&&(x, _)| x == ct.id) {
                    Some(&(_, k)) => k - elapsed,
                    None => enabling_delay(net, programs, ticks, ti, ct.id, slots, vm)?,
                }
            };
            self.next_enabling.push((ct.id, countdown));
        }
        Ok(())
    }

    /// Add `t`'s output tokens to the scratch successor.
    fn deliver_outputs(&mut self, t: &Transition) -> Result<(), ReachError> {
        for &(p, w) in t.outputs() {
            let p = p.index();
            let old = self.next_marking[p];
            let new = old
                .checked_add(w)
                .ok_or_else(|| ReachError::MarkingCorrupt {
                    transition: t.name().to_string(),
                    detail: "token count overflowed u32",
                })?;
            self.next_marking[p] = new;
            self.next_hash = self
                .next_hash
                .wrapping_sub(StateStore::marking_elem_hash(p, old))
                .wrapping_add(StateStore::marking_elem_hash(p, new));
        }
        Ok(())
    }
}

/// Run `ct`'s compiled predicate against the slot-form environment
/// (true when absent).
fn predicate_holds(
    net: &Net,
    programs: &bc::CompiledNet,
    ti: usize,
    ct: &Compiled,
    slots: &bc::EnvSlots,
    vm: &mut bc::Scratch,
) -> Result<bool, ReachError> {
    match &programs.transitions[ti].predicate {
        None => Ok(true),
        Some(p) => {
            let t = net.transition(ct.id);
            p.eval_pure(slots, &programs.map, vm)
                .and_then(|v| v.as_bool())
                .map_err(|e| eval_err(t, e))
        }
    }
}

/// A fresh [`Scratch`] whose `next_enabling` holds the initial state's
/// armed enabling clocks (empty for untimed builds): the simulator
/// refreshes its clocks before the first step, so every initially ready
/// transition starts with a full countdown. Shared by the sequential
/// and parallel builders so their initial states can never diverge.
fn arm_initial(
    net: &Net,
    compiled: &[Compiled],
    programs: &bc::CompiledNet,
    ticks: Option<&TimedTicks>,
    store: &StateStore,
    initial_env: u32,
) -> Result<Scratch, ReachError> {
    let mut scratch = Scratch::new(net.place_count());
    if let Some(ticks) = ticks {
        let mut slots = bc::EnvSlots::new();
        slots.load(&programs.map, store.env(initial_env));
        let mut vm = bc::Scratch::new();
        scratch
            .next_marking
            .copy_from_slice(net.initial_marking().as_slice());
        scratch.compute_next_enabling(net, compiled, programs, ticks, &slots, &mut vm, None, 0)?;
    }
    Ok(scratch)
}

/// Shared exploration machinery for the sequential timed and untimed
/// builds: the store, the paged CSR edge arena, the compiled
/// transitions, and the scratch buffers.
struct Explorer {
    max_states: usize,
    compiled: Vec<Compiled>,
    /// Bytecode programs for every transition expression, compiled once
    /// against the net's slot map.
    programs: bc::CompiledNet,
    store: StateStore,
    /// The paged edge arena, attached to the store's budget ledger.
    edges: PagedEdges,
    /// The successor row of the state under expansion, flushed into
    /// `edges` by [`Self::end_row`] (edge rows seal/spill on the state
    /// grain, so they are appended whole).
    row: Vec<Edge>,
    scratch: Scratch,
    /// Slot-form environment of the state under expansion.
    cur_slots: bc::EnvSlots,
    /// Slot-form successor environment (after an action).
    next_slots: bc::EnvSlots,
    /// Which interned env id `cur_slots` holds: consecutive states
    /// usually share an environment, so reloads are skipped.
    loaded_env: Option<u32>,
    /// Bytecode register file, shared by every program.
    vm: bc::Scratch,
}

impl Explorer {
    fn new(
        net: &Net,
        options: &ReachOptions,
        ticks: Option<&TimedTicks>,
    ) -> Result<Self, ReachError> {
        let places = net.place_count();
        let mut store = StateStore::with_config(places, &options.pager_config());
        let initial_env = store.intern_env(net.initial_env())?;
        let initial = net.initial_marking();
        let compiled = compile(net);
        let programs = bc::CompiledNet::compile(net).map_err(ReachError::Compile)?;
        let scratch = arm_initial(net, &compiled, &programs, ticks, &store, initial_env)?;
        store.intern(initial.as_slice(), initial_env, &[], &scratch.next_enabling)?;
        let edges = PagedEdges::new(
            store.seg_states(),
            store.pager_shared(),
            options.spill_dir.clone(),
        );
        Ok(Explorer {
            max_states: options.max_states,
            compiled,
            programs,
            store,
            edges,
            row: Vec::new(),
            scratch,
            cur_slots: bc::EnvSlots::new(),
            next_slots: bc::EnvSlots::new(),
            loaded_env: None,
            vm: bc::Scratch::new(),
        })
    }

    /// Load state `cur` into the scratch copies and open its CSR row.
    /// Loading may fault `cur`'s segment back in; the follow-up
    /// `maintain` evicts back under budget so the resident envelope
    /// stays at most one segment above it between interns.
    fn load(&mut self, cur: usize) -> Result<u32, ReachError> {
        self.row.clear();
        let env = self.scratch.load(&self.store, cur)?;
        self.store.maintain()?;
        if self.loaded_env != Some(env) {
            self.cur_slots.load(&self.programs.map, self.store.env(env));
            self.loaded_env = Some(env);
        }
        Ok(env)
    }

    /// Environment after `ti`'s action: runs the compiled action over
    /// `next_slots` (starting from the current state's slots) and
    /// interns the result. The common actionless path reuses the
    /// interned id without touching the environment at all.
    fn next_env(&mut self, net: &Net, ti: usize, env_id: u32) -> Result<u32, ReachError> {
        if !self.compiled[ti].has_action {
            return Ok(env_id);
        }
        let t = net.transition(self.compiled[ti].id);
        let prog = self.programs.transitions[ti]
            .action
            .as_ref()
            .expect("has_action");
        self.next_slots.copy_from(&self.cur_slots);
        prog.apply_pure(&mut self.next_slots, &self.programs.map, &mut self.vm)
            .map_err(|e| eval_err(t, e))?;
        let env = self.next_slots.to_env(&self.programs.map);
        self.store.intern_env(&env)
    }

    /// Intern the scratch successor and record an edge to it. The state
    /// cap is enforced *before* interning, so a [`ReachError::StateLimit`]
    /// leaves the store with exactly `max_states` states.
    fn link(&mut self, label: EdgeLabel, env_id: u32) -> Result<(), ReachError> {
        let (target, _) = self.store.intern_bounded(
            &self.scratch.next_marking,
            self.scratch.next_hash,
            env_id,
            &self.scratch.next_inflight,
            &self.scratch.next_enabling,
            self.max_states,
        )?;
        self.row.push((label, target as u32));
        Ok(())
    }

    /// Flush the finished successor row of the scanned state into the
    /// paged edge arena (its own `&mut` point: the arena evicts itself
    /// back under budget per row).
    fn end_row(&mut self) -> Result<(), ReachError> {
        self.edges.push_row(&self.row)
    }

    fn finish(mut self) -> Result<ReachabilityGraph, ReachError> {
        debug_assert_eq!(
            self.edges.row_count(),
            self.store.len(),
            "one edge row per state"
        );
        // Final squeeze back under budget (a no-op unless the last
        // appends left the arenas over); also the "seal" phase boundary
        // for the span hierarchy.
        let _seal = obs::span("seal");
        self.store.maintain()?;
        Ok(ReachabilityGraph {
            store: self.store,
            edges: self.edges,
        })
    }
}

// ---------------------------------------------------------------------------
// Parallel level-synchronous exploration
// ---------------------------------------------------------------------------

/// An edge target as seen during a parallel level: either a state the
/// committed store already holds, or a packed pending id into the
/// level's shards (rewritten to a dense index at the barrier).
#[derive(Debug, Clone, Copy)]
enum RawTarget {
    Committed(u32),
    Pending(u32),
}

/// Per-source edge rows produced by one worker chunk, in source order.
type Rows = Vec<Vec<(EdgeLabel, RawTarget)>>;

/// Everything a worker needs, shared read-only across the pool (the
/// pending shards carry their own lock stripes).
struct WorkerCtx<'a> {
    net: &'a Net,
    compiled: &'a [Compiled],
    /// Compiled bytecode programs, shared read-only by all workers.
    programs: &'a bc::CompiledNet,
    store: &'a StateStore,
    shards: &'a [Mutex<PendingShard>],
    /// `Some` for timed builds: constant firing and enabling delays per
    /// transition.
    ticks: Option<&'a TimedTicks>,
}

/// The discovery key of the `seq`-th edge out of state `src`: the
/// position of that edge in the sequential build's traversal order.
/// Pending states and environments are committed in ascending key order
/// at the level barrier, which is what makes the parallel build
/// bit-identical to the sequential one.
fn discovery_key(src: usize, seq: usize) -> u64 {
    ((src as u64) << 32) | seq as u64
}

/// Resolve the environment of the successor under construction: reuse
/// the source's committed id on the (common) actionless path, otherwise
/// run the compiled action over `next_slots` (starting from the
/// current state's `cur_slots`) and intern the result — into the
/// committed table if the content is already known, into a pending
/// shard otherwise. On the action path `next_slots` holds the
/// post-action environment afterwards, so the timed builder resolves
/// delays and predicates against it without re-deriving it per state.
#[allow(clippy::too_many_arguments)] // per-worker scratch threads through
fn next_env_ref(
    ctx: &WorkerCtx<'_>,
    ct: &Compiled,
    ti: usize,
    env_id: u32,
    cur_slots: &bc::EnvSlots,
    next_slots: &mut bc::EnvSlots,
    vm: &mut bc::Scratch,
    key: u64,
) -> Result<EnvRef, ReachError> {
    if !ct.has_action {
        return Ok(EnvRef::Committed(env_id));
    }
    let t = ctx.net.transition(ct.id);
    let prog = ctx.programs.transitions[ti]
        .action
        .as_ref()
        .expect("has_action");
    next_slots.copy_from(cur_slots);
    prog.apply_pure(next_slots, &ctx.programs.map, vm)
        .map_err(|e| eval_err(t, e))?;
    let env = next_slots.to_env(&ctx.programs.map);
    let hash = store::fx_hash_of(&env);
    if let Some(id) = ctx.store.find_env_hashed(&env, hash) {
        return Ok(EnvRef::Committed(id));
    }
    let shard = store::shard_index(hash, ctx.shards.len());
    let mut sh = ctx.shards[shard].lock().expect("env shard lock");
    let id = sh.intern_env(&env, hash, key)?;
    drop(sh);
    Ok(EnvRef::Pending(id))
}

/// Intern the scratch successor: a committed-table hit resolves to its
/// dense index immediately; a miss lands in the pending shard selected
/// by the top bits of its hash.
fn intern_target(
    ctx: &WorkerCtx<'_>,
    sc: &Scratch,
    env_ref: EnvRef,
    key: u64,
) -> Result<RawTarget, ReachError> {
    if let EnvRef::Committed(e) = env_ref {
        if let Some(i) = ctx.store.find_state_hashed(
            &sc.next_marking,
            sc.next_hash,
            e,
            &sc.next_inflight,
            &sc.next_enabling,
        )? {
            return Ok(RawTarget::Committed(i));
        }
    }
    let hash =
        store::pending_state_hash(sc.next_hash, env_ref, &sc.next_inflight, &sc.next_enabling);
    let shard = store::shard_index(hash, ctx.shards.len());
    let mut sh = ctx.shards[shard].lock().expect("state shard lock");
    sh.intern_state(
        &sc.next_marking,
        sc.next_hash,
        hash,
        env_ref,
        &sc.next_inflight,
        &sc.next_enabling,
        key,
    )
    .map(RawTarget::Pending)
}

/// Expand one contiguous chunk of the frontier, producing the edge rows
/// of every source in order. Mirrors the sequential loops of
/// [`build_untimed`]/[`build_timed`] exactly — same transition order,
/// same cap/predicate gating, same advance-edge placement — so the edge
/// lists concatenate to the sequential CSR. Errors carry the discovery
/// key of the edge that raised them so the barrier can report the one
/// the sequential build would have hit first.
fn explore_chunk(
    ctx: &WorkerCtx<'_>,
    chunk: std::ops::Range<usize>,
) -> Result<Rows, (u64, ReachError)> {
    let mut sc = Scratch::new(ctx.store.places());
    let mut cur_slots = bc::EnvSlots::new();
    let mut next_slots = bc::EnvSlots::new();
    let mut vm = bc::Scratch::new();
    let mut loaded_env: Option<u32> = None;
    let mut rows = Vec::with_capacity(chunk.len());
    for src in chunk {
        let env_id = sc
            .load(ctx.store, src)
            .map_err(|e| (discovery_key(src, 0), e))?;
        if loaded_env != Some(env_id) {
            cur_slots.load(&ctx.programs.map, ctx.store.env(env_id));
            loaded_env = Some(env_id);
        }
        let mut row: Vec<(EdgeLabel, RawTarget)> = Vec::new();
        let mut can_start = false;
        for (ti, ct) in ctx.compiled.iter().enumerate() {
            if !sc.enabled(ct) {
                continue;
            }
            let key = discovery_key(src, row.len());
            if ctx.ticks.is_some() {
                if let Some(cap) = ct.cap {
                    let inflight =
                        sc.cur_inflight.iter().filter(|&&(x, _)| x == ct.id).count() as u32;
                    if inflight >= cap {
                        continue;
                    }
                }
                // Enabling gate: a transition whose enabling clock is
                // still counting down cannot start. (Ready transitions
                // with a pending delay — constant or per-state
                // expression — always carry a clock entry; a missing
                // entry means the resolved delay was 0.)
                if sc.cur_enabling.iter().any(|&(x, k)| x == ct.id && k > 0) {
                    continue;
                }
            }
            if ct.has_predicate
                && !predicate_holds(ctx.net, ctx.programs, ti, ct, &cur_slots, &mut vm)
                    .map_err(|e| (key, e))?
            {
                continue;
            }
            can_start = true;
            // The successor environment is resolved first (the action
            // runs before the firing delay, as in the simulator and the
            // sequential explorer above).
            let env_ref = next_env_ref(
                ctx,
                ct,
                ti,
                env_id,
                &cur_slots,
                &mut next_slots,
                &mut vm,
                key,
            )
            .map_err(|e| (key, e))?;
            match ctx.ticks {
                None => {
                    sc.fire(ctx.net, ct, true).map_err(|e| (key, e))?;
                    sc.next_inflight.clear();
                    sc.next_enabling.clear();
                }
                Some(ticks) => {
                    // The post-action environment already sits in
                    // `next_slots`; actionless firings keep the
                    // current slots.
                    let slots = if ct.has_action {
                        &next_slots
                    } else {
                        &cur_slots
                    };
                    let ft = firing_delay(ctx.net, ctx.programs, ticks, ti, ct.id, slots, &mut vm)
                        .map_err(|e| (key, e))?;
                    sc.fire(ctx.net, ct, ft == 0).map_err(|e| (key, e))?;
                    sc.next_inflight.clear();
                    let (next, cur) = (&mut sc.next_inflight, &sc.cur_inflight);
                    next.extend_from_slice(cur);
                    if ft != 0 {
                        sc.next_inflight.push((ct.id, ft));
                        sc.next_inflight.sort_unstable();
                    }
                    sc.compute_next_enabling(
                        ctx.net,
                        ctx.compiled,
                        ctx.programs,
                        ticks,
                        slots,
                        &mut vm,
                        Some(ct.id),
                        0,
                    )
                    .map_err(|e| (key, e))?;
                }
            }
            let target = intern_target(ctx, &sc, env_ref, key).map_err(|e| (key, e))?;
            row.push((EdgeLabel::Fire(ct.id), target));
        }

        // Maximal-progress time advance: only when nothing can start and
        // something is pending (a completion or an enabling deadline).
        if let Some(ticks) = ctx.ticks {
            if !(can_start || (sc.cur_inflight.is_empty() && sc.cur_enabling.is_empty())) {
                let key = discovery_key(src, row.len());
                let dt = sc
                    .cur_inflight
                    .iter()
                    .chain(sc.cur_enabling.iter())
                    .map(|&(_, r)| r)
                    .min()
                    .expect("non-empty");
                sc.begin_next();
                sc.next_inflight.clear();
                for i in 0..sc.cur_inflight.len() {
                    let (tid, r) = sc.cur_inflight[i];
                    if r == dt {
                        sc.deliver_outputs(ctx.net.transition(tid))
                            .map_err(|e| (key, e))?;
                    } else {
                        sc.next_inflight.push((tid, r - dt));
                    }
                }
                sc.next_inflight.sort_unstable();
                sc.compute_next_enabling(
                    ctx.net,
                    ctx.compiled,
                    ctx.programs,
                    ticks,
                    &cur_slots,
                    &mut vm,
                    None,
                    dt,
                )
                .map_err(|e| (key, e))?;
                let target = intern_target(ctx, &sc, EnvRef::Committed(env_id), key)
                    .map_err(|e| (key, e))?;
                row.push((EdgeLabel::Advance(dt), target));
            }
        }
        rows.push(row);
    }
    Ok(rows)
}

/// Split `level` into at most `jobs` contiguous chunks of near-equal
/// size, in frontier order.
fn split_chunks(level: std::ops::Range<usize>, jobs: usize) -> Vec<std::ops::Range<usize>> {
    let n = level.len();
    let per = n.div_ceil(jobs);
    (0..jobs)
        .map(|w| {
            let start = level.start + (w * per).min(n);
            let end = level.start + ((w + 1) * per).min(n);
            start..end
        })
        .filter(|r| !r.is_empty())
        .collect()
}

/// Don't spawn threads for frontiers too small to amortize the spawn
/// cost; the level is explored inline instead (same code path, one
/// chunk), which keeps shallow prefixes and tails cheap.
const SPAWN_THRESHOLD_PER_JOB: usize = 48;

/// Per-level observability, shared by the sequential and parallel
/// builders (the sequential loops recover the same level boundaries
/// with a watermark, so both emit identical level metrics — the builds
/// are bit-identical). `level` is 1-based and `width` is the state
/// count of the level just completed. The heartbeat line is built from
/// deterministic quantities only, so a fixed run configuration always
/// prints the same lines.
fn note_level(store: &StateStore, level: u64, width: usize, budget: usize) {
    obs::metrics::REACH_LEVELS.inc();
    obs::metrics::REACH_FRONTIER_WIDTH.record(width as u64);
    obs::metrics::REACH_PEAK_FRONTIER.set_max(width as u64);
    obs::heartbeat(level, || {
        format!(
            "reach level {level}: {} states, frontier {width}, resident {} / {}, faults {}",
            store.len(),
            obs::bytes::format_bytes(store.resident_arena_bytes() as u64),
            obs::bytes::format_bytes(budget as u64),
            obs::metrics::PAGER_FAULTS.get(),
        )
    });
}

/// Level-synchronous parallel construction (untimed when `ticks` is
/// `None`, timed otherwise). See [`crate::store`] for the sharding
/// and barrier design; the result is bit-identical to the sequential
/// build for every job count.
fn build_parallel(
    net: &Net,
    options: &ReachOptions,
    ticks: Option<TimedTicks>,
) -> Result<ReachabilityGraph, ReachError> {
    let _span = obs::span("build");
    let jobs = options.effective_jobs();
    let places = net.place_count();
    let mut store = StateStore::with_config(places, &options.pager_config());
    let initial_env = store.intern_env(net.initial_env())?;
    let compiled = compile(net);
    let programs = bc::CompiledNet::compile(net).map_err(ReachError::Compile)?;
    let init = arm_initial(
        net,
        &compiled,
        &programs,
        ticks.as_ref(),
        &store,
        initial_env,
    )?;
    store.intern(
        net.initial_marking().as_slice(),
        initial_env,
        &[],
        &init.next_enabling,
    )?;
    let shard_count = (jobs * 4).next_power_of_two().min(64);
    let mut shards: Vec<Mutex<PendingShard>> = (0..shard_count)
        .map(|s| Mutex::new(PendingShard::new(s, places)))
        .collect();
    let mut edges = PagedEdges::new(
        store.seg_states(),
        store.pager_shared(),
        options.spill_dir.clone(),
    );
    let mut rewritten: Vec<Edge> = Vec::new();
    let mut level = 0..1;
    let mut levels = 0u64;

    while !level.is_empty() {
        let ctx = WorkerCtx {
            net,
            compiled: &compiled,
            programs: &programs,
            store: &store,
            shards: &shards,
            ticks: ticks.as_ref(),
        };
        let results: Vec<Result<Rows, (u64, ReachError)>> =
            if level.len() < jobs.max(2) * SPAWN_THRESHOLD_PER_JOB {
                vec![explore_chunk(&ctx, level.clone())]
            } else {
                let chunks = split_chunks(level.clone(), jobs);
                std::thread::scope(|scope| {
                    let handles: Vec<_> = chunks
                        .into_iter()
                        .map(|chunk| {
                            let ctx = &ctx;
                            scope.spawn(move || explore_chunk(ctx, chunk))
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("worker thread panicked"))
                        .collect()
                })
            };

        // Barrier. Everything below is single-threaded and ordered by
        // discovery key, so it is deterministic regardless of how the
        // workers interleaved.
        let min_err: Option<&(u64, ReachError)> = results
            .iter()
            .filter_map(|r| r.as_ref().err())
            .min_by_key(|(k, _)| *k);
        let mut shard_refs: Vec<&mut PendingShard> = shards
            .iter_mut()
            .map(|m| m.get_mut().expect("shard lock"))
            .collect();
        let novel = store::collect_novel_states(&shard_refs);
        let base = store.len();
        if !novel.is_empty() && base + novel.len() > options.max_states {
            // The sequential build errors at the first novel state that
            // does not fit — and never errors without an intern attempt,
            // hence the emptiness guard (a deadlocked initial state
            // builds fine even with `max_states` 0, matching sequential).
            // Report StateLimit only if that key precedes the earliest
            // worker error. (`saturating_sub` covers the degenerate
            // `max_states < base` case — only reachable with a cap below
            // the always-admitted initial state — where the first novel
            // state is already over the cap.)
            let limit_key = novel[options.max_states.saturating_sub(base)].0;
            if min_err.is_none_or(|&(k, _)| limit_key < k) {
                return Err(ReachError::StateLimit {
                    limit: options.max_states,
                });
            }
        }
        if let Some((_, e)) = min_err {
            return Err(e.clone());
        }
        let state_map = store.splice_level(&mut shard_refs, &novel)?;

        // Append this level's CSR rows in source order (worker chunks
        // are contiguous and ordered), rewriting pending targets to
        // their dense indices. `push_row` evicts the edge arena back
        // under budget as segments seal.
        for rows in results {
            for row in rows.expect("worker errors handled above") {
                rewritten.clear();
                rewritten.extend(row.into_iter().map(|(label, target)| {
                    let target = match target {
                        RawTarget::Committed(i) => i,
                        RawTarget::Pending(p) => {
                            state_map[store::pending_shard(p)][store::pending_local(p)]
                        }
                    };
                    (label, target)
                }));
                edges.push_row(&rewritten)?;
            }
        }
        // Level barrier: workers may have faulted cold state segments
        // in (read-only loads cannot evict); squeeze back under budget
        // before the next level.
        store.maintain()?;
        levels += 1;
        note_level(&store, levels, level.len(), options.mem_budget);
        level = base..store.len();
    }
    debug_assert_eq!(edges.row_count(), store.len(), "one edge row per state");
    let _seal = obs::span("seal");
    store.maintain()?;
    Ok(ReachabilityGraph { store, edges })
}

/// Build the untimed (classical occurrence semantics) reachability
/// graph: each enabled transition fires atomically.
///
/// # Errors
///
/// See [`ReachError`]; most commonly [`ReachError::StateLimit`] for
/// unbounded nets.
pub fn build_untimed(net: &Net, options: &ReachOptions) -> Result<ReachabilityGraph, ReachError> {
    check_deterministic(net)?;
    if options.effective_jobs() > 1 {
        return build_parallel(net, options, None);
    }
    let _span = obs::span("build");
    let mut ex = Explorer::new(net, options, None)?;
    let mut cur = 0;
    // Level watermark: when `cur` reaches it, a full BFS level has been
    // scanned — the exact boundary the parallel build barriers on.
    let mut level_start = 0usize;
    let mut level_end = 1usize;
    let mut levels = 0u64;
    // States are discovered in BFS order and numbered densely, so the
    // frontier is simply "indices not yet scanned" — no queue needed.
    while cur < ex.store.len() {
        let env_id = ex.load(cur)?;
        for ti in 0..ex.compiled.len() {
            if !ex.scratch.enabled(&ex.compiled[ti]) {
                continue;
            }
            if ex.compiled[ti].has_predicate
                && !predicate_holds(
                    net,
                    &ex.programs,
                    ti,
                    &ex.compiled[ti],
                    &ex.cur_slots,
                    &mut ex.vm,
                )?
            {
                continue;
            }
            ex.scratch.fire(net, &ex.compiled[ti], true)?;
            ex.scratch.next_inflight.clear();
            ex.scratch.next_enabling.clear();
            let next_env = ex.next_env(net, ti, env_id)?;
            let label = EdgeLabel::Fire(ex.compiled[ti].id);
            ex.link(label, next_env)?;
        }
        ex.end_row()?;
        cur += 1;
        if cur == level_end {
            levels += 1;
            note_level(
                &ex.store,
                levels,
                level_end - level_start,
                options.mem_budget,
            );
            level_start = level_end;
            level_end = ex.store.len();
        }
    }
    ex.finish()
}

/// Build the timed reachability graph: states extend the `[RP84]` pair
/// (marking, in-flight firings with remaining times) with **enabling
/// clocks** — one countdown per ready transition with a non-zero
/// enabling delay, mirroring the simulator's continuous-enabling rule
/// (the clock arms when the transition becomes ready, resets when
/// readiness is lost or the transition itself fires). From each state
/// either an eligible transition starts firing (marking-enabled, under
/// its concurrency cap, predicate true, enabling clock expired), or —
/// when nothing can start — time advances to the earliest pending
/// event, a firing completion or an enabling deadline.
///
/// Both delay kinds may be constants or deterministic expressions
/// (`irand` is already rejected by the determinism check): firing
/// times resolve per state against the post-action environment (the
/// paper's §3 table-driven idiom), and enabling times resolve per
/// state against the environment *at arm time* — the moment the
/// transition becomes ready — exactly as the simulator's
/// `refresh_enabling` does, so a constant-valued expression is
/// indistinguishable from the constant itself (pinned by the
/// desugaring test in `tests/semantics.rs`).
///
/// # Errors
///
/// See [`ReachError`].
pub fn build_timed(net: &Net, options: &ReachOptions) -> Result<ReachabilityGraph, ReachError> {
    check_deterministic(net)?;
    let mut firing = Vec::with_capacity(net.transition_count());
    let mut enabling = Vec::with_capacity(net.transition_count());
    for (_, t) in net.transitions() {
        match t.enabling_time() {
            pnut_core::Delay::Fixed(ticks) => enabling.push(Some(*ticks)),
            pnut_core::Delay::Expr(_) => enabling.push(None),
        }
        match t.firing_time() {
            pnut_core::Delay::Fixed(ticks) => firing.push(Some(*ticks)),
            pnut_core::Delay::Expr(_) => firing.push(None),
        }
    }
    let ticks = TimedTicks { firing, enabling };

    if options.effective_jobs() > 1 {
        return build_parallel(net, options, Some(ticks));
    }
    let _span = obs::span("build");
    let mut ex = Explorer::new(net, options, Some(&ticks))?;
    let mut cur = 0;
    // Same level watermark as the untimed loop (see `note_level`).
    let mut level_start = 0usize;
    let mut level_end = 1usize;
    let mut levels = 0u64;
    while cur < ex.store.len() {
        let env_id = ex.load(cur)?;
        let mut can_start = false;
        #[allow(clippy::needless_range_loop)] // `ti` indexes `ex.compiled` too
        for ti in 0..ex.compiled.len() {
            if !ex.scratch.enabled(&ex.compiled[ti]) {
                continue;
            }
            let tid = ex.compiled[ti].id;
            if let Some(cap) = ex.compiled[ti].cap {
                let inflight = ex
                    .scratch
                    .cur_inflight
                    .iter()
                    .filter(|&&(x, _)| x == tid)
                    .count() as u32;
                if inflight >= cap {
                    continue;
                }
            }
            // Enabling gate: a transition whose enabling clock is still
            // counting down cannot start. (Ready transitions with a
            // pending delay always carry a clock entry — the successor
            // construction maintains that invariant — so a missing
            // entry means the resolved delay was 0.)
            if ex
                .scratch
                .cur_enabling
                .iter()
                .any(|&(x, k)| x == tid && k > 0)
            {
                continue;
            }
            if ex.compiled[ti].has_predicate
                && !predicate_holds(
                    net,
                    &ex.programs,
                    ti,
                    &ex.compiled[ti],
                    &ex.cur_slots,
                    &mut ex.vm,
                )?
            {
                continue;
            }
            can_start = true;
            // The environment (and with it any table-driven firing
            // delay) is resolved before the token movement: the action
            // runs first, exactly as in the simulator. On the action
            // path `next_slots` holds the post-action environment
            // afterwards, so delay resolution and the enabling refresh
            // reuse it instead of re-deriving it from the store.
            let next_env = ex.next_env(net, ti, env_id)?;
            let slots = if ex.compiled[ti].has_action {
                &ex.next_slots
            } else {
                &ex.cur_slots
            };
            let ft = firing_delay(net, &ex.programs, &ticks, ti, tid, slots, &mut ex.vm)?;
            // Zero-delay firings are atomic: outputs appear immediately
            // and the in-flight multiset is unchanged.
            ex.scratch.fire(net, &ex.compiled[ti], ft == 0)?;
            ex.scratch.next_inflight.clear();
            let (next, cur) = (&mut ex.scratch.next_inflight, &ex.scratch.cur_inflight);
            next.extend_from_slice(cur);
            if ft != 0 {
                ex.scratch.next_inflight.push((tid, ft));
                ex.scratch.next_inflight.sort_unstable();
            }
            ex.scratch.compute_next_enabling(
                net,
                &ex.compiled,
                &ex.programs,
                &ticks,
                slots,
                &mut ex.vm,
                Some(tid),
                0,
            )?;
            ex.link(EdgeLabel::Fire(tid), next_env)?;
        }

        // Maximal-progress time advance: only when nothing can start and
        // something is pending — an in-flight completion or an enabling
        // deadline (when nothing can start, every enabling countdown is
        // positive, so `dt` is always > 0).
        if !(can_start
            || (ex.scratch.cur_inflight.is_empty() && ex.scratch.cur_enabling.is_empty()))
        {
            let dt = ex
                .scratch
                .cur_inflight
                .iter()
                .chain(ex.scratch.cur_enabling.iter())
                .map(|&(_, r)| r)
                .min()
                .expect("non-empty");
            debug_assert!(dt > 0, "zero advance would loop forever");
            ex.scratch.begin_next();
            ex.scratch.next_inflight.clear();
            for i in 0..ex.scratch.cur_inflight.len() {
                let (tid, r) = ex.scratch.cur_inflight[i];
                if r == dt {
                    ex.scratch.deliver_outputs(net.transition(tid))?;
                } else {
                    ex.scratch.next_inflight.push((tid, r - dt));
                }
            }
            ex.scratch.next_inflight.sort_unstable();
            ex.scratch.compute_next_enabling(
                net,
                &ex.compiled,
                &ex.programs,
                &ticks,
                &ex.cur_slots,
                &mut ex.vm,
                None,
                dt,
            )?;
            ex.link(EdgeLabel::Advance(dt), env_id)?;
        }
        ex.end_row()?;
        cur += 1;
        if cur == level_end {
            levels += 1;
            note_level(
                &ex.store,
                levels,
                level_end - level_start,
                options.mem_budget,
            );
            level_start = level_end;
            level_end = ex.store.len();
        }
    }
    let _ = Time::ZERO; // Time is part of the public vocabulary via labels.
    ex.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnut_core::NetBuilder;

    fn ring(tokens: u32) -> Net {
        let mut b = NetBuilder::new("ring");
        b.place("a", tokens);
        b.place("b", 0);
        b.transition("ab").input("a").output("b").add();
        b.transition("ba").input("b").output("a").add();
        b.build().unwrap()
    }

    #[test]
    fn untimed_ring_has_expected_states() {
        let net = ring(1);
        let mut g = build_untimed(&net, &ReachOptions::default()).unwrap();
        assert_eq!(g.state_count(), 2);
        assert_eq!(g.edge_count(), 2);
        assert!(g.deadlocks().unwrap().is_empty());
        assert_eq!(g.place_bounds().unwrap(), vec![1, 1]);
        assert!(g.ever_fires(net.transition_id("ab").unwrap()).unwrap());
    }

    #[test]
    fn untimed_counts_multi_token_interleavings() {
        let net = ring(2);
        let mut g = build_untimed(&net, &ReachOptions::default()).unwrap();
        // Markings: (2,0), (1,1), (0,2).
        assert_eq!(g.state_count(), 3);
        assert_eq!(g.place_bounds().unwrap(), vec![2, 2]);
    }

    #[test]
    fn deadlock_detected() {
        let mut b = NetBuilder::new("dead");
        b.place("a", 1);
        b.place("b", 0);
        b.transition("t").input("a").output("b").add();
        let net = b.build().unwrap();
        let mut g = build_untimed(&net, &ReachOptions::default()).unwrap();
        assert_eq!(g.deadlocks().unwrap().len(), 1);
        let d = g.deadlocks().unwrap()[0];
        assert_eq!(
            g.state(d)
                .unwrap()
                .marking
                .tokens(net.place_id("b").unwrap()),
            1
        );
    }

    #[test]
    fn unbounded_net_hits_state_limit() {
        let mut b = NetBuilder::new("unbounded");
        b.place("p", 0);
        b.transition("gen").output("p").add();
        let net = b.build().unwrap();
        let opts = ReachOptions {
            max_states: 50,
            ..ReachOptions::default()
        };
        let e = build_untimed(&net, &opts).unwrap_err();
        assert_eq!(e, ReachError::StateLimit { limit: 50 });
        // The parallel builder reports the same deterministic limit.
        let par = ReachOptions { jobs: 4, ..opts };
        assert_eq!(build_untimed(&net, &par).unwrap_err(), e);
        // Degenerate caps (at or below the always-admitted initial
        // state) error identically in both builders instead of
        // panicking.
        for max_states in [0, 1] {
            let tight = ReachOptions {
                max_states,
                ..ReachOptions::default()
            };
            let seq = build_untimed(&net, &tight).unwrap_err();
            assert_eq!(seq, ReachError::StateLimit { limit: max_states });
            let par = ReachOptions { jobs: 4, ..tight };
            assert_eq!(build_untimed(&net, &par).unwrap_err(), seq);
        }
        // A deadlocked initial state never attempts an intern, so even
        // `max_states: 0` succeeds — in both builders.
        let mut b = NetBuilder::new("stuck");
        b.place("p", 0);
        b.transition("t").input("p").add();
        let stuck = b.build().unwrap();
        for jobs in [1, 4] {
            let opts = ReachOptions {
                max_states: 0,
                jobs,
                ..ReachOptions::default()
            };
            let g = build_untimed(&stuck, &opts).unwrap();
            assert_eq!(g.state_count(), 1, "jobs = {jobs}");
        }
    }

    #[test]
    fn random_nets_rejected() {
        let mut b = NetBuilder::new("r");
        b.place("p", 1);
        b.var("x", 0);
        b.transition("t")
            .input("p")
            .output("p")
            .action_str("x = irand(0, 1);")
            .unwrap()
            .add();
        let net = b.build().unwrap();
        assert_eq!(
            build_untimed(&net, &ReachOptions::default()).unwrap_err(),
            ReachError::UsesRandom
        );
    }

    #[test]
    fn predicates_prune_untimed_edges() {
        let mut b = NetBuilder::new("p");
        b.place("p", 1);
        b.place("q", 0);
        b.var("gate", 0);
        b.transition("blocked")
            .input("p")
            .output("q")
            .predicate_str("gate == 1")
            .unwrap()
            .add();
        let net = b.build().unwrap();
        let mut g = build_untimed(&net, &ReachOptions::default()).unwrap();
        assert_eq!(g.state_count(), 1, "gate closed: nothing reachable");
        assert_eq!(g.deadlocks().unwrap(), vec![0]);
    }

    #[test]
    fn actions_differentiate_states() {
        // Same marking, different variable values → distinct states.
        let mut b = NetBuilder::new("v");
        b.place("p", 1);
        b.var("n", 0);
        b.transition("inc")
            .input("p")
            .output("p")
            .predicate_str("n < 3")
            .unwrap()
            .action_str("n = n + 1;")
            .unwrap()
            .add();
        let net = b.build().unwrap();
        let mut g = build_untimed(&net, &ReachOptions::default()).unwrap();
        assert_eq!(g.state_count(), 4, "n in 0..=3");
        assert_eq!(g.deadlocks().unwrap().len(), 1);
        // The four states share nothing but still intern four distinct
        // environments (n = 0..=3).
        assert_eq!(g.store().env_count(), 4);
    }

    #[test]
    fn actionless_nets_intern_one_environment() {
        let g = build_untimed(&ring(2), &ReachOptions::default()).unwrap();
        assert_eq!(g.store().env_count(), 1, "no actions → one shared env");
    }

    #[test]
    fn timed_graph_tracks_in_flight() {
        let mut b = NetBuilder::new("t");
        b.place("a", 1);
        b.place("b", 0);
        b.transition("work").input("a").output("b").firing(3).add();
        let net = b.build().unwrap();
        let g = build_timed(&net, &ReachOptions::default()).unwrap();
        // (a=1), (in flight, 3 left), (b=1).
        assert_eq!(g.state_count(), 3);
        let mid = g.state(1).unwrap();
        assert_eq!(mid.in_flight.len(), 1);
        assert_eq!(mid.in_flight[0].1, 3);
        // The advance edge carries the delay.
        assert!(g
            .successors(1)
            .unwrap()
            .iter()
            .any(|&(l, _)| l == EdgeLabel::Advance(3)));
    }

    #[test]
    fn timed_interleaves_concurrent_firings() {
        let mut b = NetBuilder::new("t2");
        b.place("a", 2);
        b.place("b", 0);
        b.transition("work").input("a").output("b").firing(2).add();
        let net = b.build().unwrap();
        let mut g = build_timed(&net, &ReachOptions::default()).unwrap();
        // Both tokens must start before time advances (maximal progress):
        // (2,0,[]) -> (1,0,[2]) -> (0,0,[2,2]) -> (0,2,[]) done.
        assert_eq!(g.state_count(), 4);
        assert!(
            g.deadlocks().unwrap().len() == 1,
            "final state is quiescent"
        );
    }

    #[test]
    fn timed_graph_respects_concurrency_caps() {
        let mut b = NetBuilder::new("cap");
        b.place("q", 2);
        b.place("done", 0);
        b.transition("serve")
            .input("q")
            .output("done")
            .firing(2)
            .max_concurrent(1)
            .add();
        let net = b.build().unwrap();
        let g = build_timed(&net, &ReachOptions::default()).unwrap();
        for i in 0..g.state_count() {
            let inflight = g.state(i).unwrap().in_flight.len();
            assert!(inflight <= 1, "state {i} has {inflight} concurrent serves");
        }
    }

    #[test]
    fn timed_enabling_delays_start_without_removing_tokens() {
        // The graph counterpart of the simulator's
        // `enabling_time_delays_start_without_removing_tokens`: the
        // token stays on `a` while the clock runs; the move is atomic
        // once the deadline passes.
        let mut b = NetBuilder::new("e");
        b.place("a", 1);
        b.place("b", 0);
        b.transition("t").input("a").output("b").enabling(4).add();
        let net = b.build().unwrap();
        let mut g = build_timed(&net, &ReachOptions::default()).unwrap();
        // (a=1, clock 4) --Advance(4)--> (a=1, clock 0) --Fire--> (b=1).
        assert_eq!(g.state_count(), 3);
        assert_eq!(
            g.state(0).unwrap().enabling,
            &[(net.transition_id("t").unwrap(), 4)]
        );
        assert_eq!(g.state(0).unwrap().marking.as_slice(), &[1, 0]);
        assert!(g
            .successors(0)
            .unwrap()
            .iter()
            .any(|&(l, _)| l == EdgeLabel::Advance(4)));
        assert_eq!(
            g.state(1).unwrap().enabling,
            &[(net.transition_id("t").unwrap(), 0)]
        );
        assert_eq!(
            g.state(1).unwrap().marking.as_slice(),
            &[1, 0],
            "token not yet moved"
        );
        assert_eq!(g.state(2).unwrap().marking.as_slice(), &[0, 1]);
        assert!(g.state(2).unwrap().enabling.is_empty());
        assert_eq!(g.deadlocks().unwrap(), vec![2]);
    }

    #[test]
    fn timed_enabling_clock_resets_when_disabled() {
        // The graph counterpart of the simulator's
        // `enabling_clock_resets_when_disabled`: `thief` (enabling 2,
        // firing 2) keeps stealing the shared token before `slow`
        // (enabling 3) ever expires, and slow's clock restarts from 3
        // each round — so `slow` never fires anywhere in the graph.
        let mut b = NetBuilder::new("steal");
        b.place("shared", 1);
        b.place("out_slow", 0);
        b.transition("thief")
            .input("shared")
            .output("shared")
            .enabling(2)
            .firing(2)
            .add();
        b.transition("slow")
            .input("shared")
            .output("out_slow")
            .enabling(3)
            .add();
        let net = b.build().unwrap();
        let mut g = build_timed(&net, &ReachOptions::default()).unwrap();
        let thief = net.transition_id("thief").unwrap();
        let slow = net.transition_id("slow").unwrap();
        // Cycle: (clocks 2/3) --A(2)--> (clocks 0/1) --Fire(thief)-->
        // (token in flight, no clocks) --A(2)--> back to the start.
        assert_eq!(g.state_count(), 3);
        assert_eq!(g.state(0).unwrap().enabling, &[(thief, 2), (slow, 3)]);
        assert_eq!(g.state(1).unwrap().enabling, &[(thief, 0), (slow, 1)]);
        assert!(
            g.state(2).unwrap().enabling.is_empty(),
            "token stolen: no clocks"
        );
        assert!(g.ever_fires(thief).unwrap());
        assert!(
            !g.ever_fires(slow).unwrap(),
            "slow's clock must reset each round"
        );
    }

    #[test]
    fn timed_enabling_advances_without_in_flight_firings() {
        // A pure enabling wait (no in-flight firing anywhere): the
        // advance rule must jump on enabling deadlines alone, and the
        // firing itself re-arms the clock for the next round.
        let mut b = NetBuilder::new("pulse");
        b.place("p", 1);
        b.transition("tick")
            .input("p")
            .output("p")
            .enabling(5)
            .add();
        let net = b.build().unwrap();
        let g = build_timed(&net, &ReachOptions::default()).unwrap();
        // (clock 5) --A(5)--> (clock 0) --Fire--> (clock 5, re-armed).
        assert_eq!(g.state_count(), 2);
        assert_eq!(g.edge_count(), 2);
        assert!(g
            .successors(0)
            .unwrap()
            .iter()
            .any(|&(l, _)| l == EdgeLabel::Advance(5)));
        assert_eq!(
            g.successors(1).unwrap(),
            &[(EdgeLabel::Fire(net.transition_id("tick").unwrap()), 0)],
            "firing re-arms the clock back to the initial state"
        );
    }

    #[test]
    fn parallel_timed_enabling_is_bit_identical_to_sequential() {
        let mut b = NetBuilder::new("mix");
        b.place("q", 3);
        b.place("done", 0);
        b.transition("serve")
            .input("q")
            .output("done")
            .enabling(2)
            .firing(3)
            .max_concurrent(2)
            .add();
        b.transition("recycle")
            .input("done")
            .output("q")
            .enabling(1)
            .firing(2)
            .add();
        let net = b.build().unwrap();
        let seq = build_timed(&net, &ReachOptions::default()).unwrap();
        assert!(
            (0..seq.state_count()).any(|i| !seq.state(i).unwrap().enabling.is_empty()),
            "the model must actually exercise enabling clocks"
        );
        for jobs in [2, 4, 8] {
            let opts = ReachOptions {
                jobs,
                ..ReachOptions::default()
            };
            assert_eq!(build_timed(&net, &opts).unwrap(), seq, "jobs = {jobs}");
        }
    }

    #[test]
    fn timed_resolves_expression_enabling_times_per_state() {
        // A table-driven enabling delay: the action advances `ty`, the
        // enabling time reads `dtab[ty]` — each re-arming must resolve
        // against the environment of the state doing the arming, so the
        // clock values 2 and 5 both appear in the reachable state
        // space (the pre-PR engine rejected this net outright).
        let mut b = NetBuilder::new("entab");
        b.place("p", 1);
        b.var("ty", 0);
        b.table("dtab", vec![2, 5]);
        b.transition("step")
            .input("p")
            .output("p")
            .predicate_str("ty < 2")
            .unwrap()
            .action_str("ty = ty + 1;")
            .unwrap()
            .enabling_expr(pnut_core::Expr::parse("dtab[ty]").unwrap())
            .add();
        let net = b.build().unwrap();
        let g = build_timed(&net, &ReachOptions::default()).unwrap();
        let step = net.transition_id("step").unwrap();
        let mut armed = std::collections::BTreeSet::new();
        for i in 0..g.state_count() {
            for &(t, k) in g.state(i).unwrap().enabling {
                assert_eq!(t, step);
                armed.insert(k);
            }
        }
        assert!(
            armed.contains(&2) && armed.contains(&5),
            "both table delays must arm: {armed:?}"
        );
        // The parallel build agrees bit-for-bit.
        let par = build_timed(
            &net,
            &ReachOptions {
                jobs: 4,
                ..ReachOptions::default()
            },
        )
        .unwrap();
        assert_eq!(par, g);
        // Nondeterministic enabling expressions are still rejected, by
        // the determinism check that guards all of reachability.
        let mut b = NetBuilder::new("rnd");
        b.place("p", 1);
        b.transition("t")
            .input("p")
            .enabling_expr(pnut_core::Expr::parse("irand(1, 3)").unwrap())
            .add();
        let net = b.build().unwrap();
        assert_eq!(
            build_timed(&net, &ReachOptions::default()).unwrap_err(),
            ReachError::UsesRandom
        );
    }

    #[test]
    fn timed_resolves_expression_firing_times_per_state() {
        // The paper's §3 idiom: the action picks a type, the firing time
        // reads a table — the resolved delay must follow the state.
        let mut b = NetBuilder::new("table");
        b.place("go", 2);
        b.place("done", 0);
        b.var("ty", 0);
        b.table("delays", vec![3, 7]);
        b.transition("work")
            .input("go")
            .output("done")
            .predicate_str("ty < 2")
            .unwrap()
            .action_str("ty = ty + 1;")
            .unwrap()
            .firing_expr(pnut_core::Expr::parse("delays[ty - 1]").unwrap())
            .add();
        let net = b.build().unwrap();
        let g = build_timed(&net, &ReachOptions::default()).unwrap();
        let work = net.transition_id("work").unwrap();
        // Both resolved delays appear as in-flight remaining times.
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..g.state_count() {
            for &(t, r) in g.state(i).unwrap().in_flight {
                assert_eq!(t, work);
                seen.insert(r);
            }
        }
        assert!(
            seen.contains(&3) && seen.contains(&7),
            "delays seen: {seen:?}"
        );
        // And the parallel build agrees bit-for-bit.
        let par = build_timed(
            &net,
            &ReachOptions {
                jobs: 4,
                ..ReachOptions::default()
            },
        )
        .unwrap();
        assert_eq!(par, g);
    }

    #[test]
    fn duplicate_input_arcs_merge_and_cannot_underflow() {
        // NetBuilder merges duplicate arcs, so two weight-1 inputs from
        // one place require 2 tokens — with only 1 the transition is
        // disabled outright (the seed checked each arc in isolation,
        // considered it enabled, then underflowed under a bare
        // debug_assert!). With 2 tokens it fires normally.
        let dup = |tokens| {
            let mut b = NetBuilder::new("dup");
            b.place("p", tokens);
            b.place("q", 0);
            b.transition("t").input("p").input("p").output("q").add();
            b.build().unwrap()
        };
        let mut g = build_untimed(&dup(1), &ReachOptions::default()).unwrap();
        assert_eq!(g.state_count(), 1, "merged arcs need 2 tokens");
        assert_eq!(g.deadlocks().unwrap(), vec![0]);

        let g = build_untimed(&dup(2), &ReachOptions::default()).unwrap();
        assert_eq!(g.state_count(), 2);
        let fired = g.state(1).unwrap();
        assert_eq!(fired.marking.as_slice(), &[0, 1]);
    }

    #[test]
    fn csr_rows_partition_the_edge_list() {
        let net = ring(2);
        let g = build_untimed(&net, &ReachOptions::default()).unwrap();
        let total: usize = (0..g.state_count())
            .map(|i| g.successors(i).unwrap().len())
            .sum();
        assert_eq!(total, g.edge_count());
        for i in 0..g.state_count() {
            for &(_, target) in g.successors(i).unwrap() {
                assert!((target as usize) < g.state_count());
            }
        }
    }

    #[test]
    fn rebuilds_are_bit_identical() {
        let net = ring(3);
        let a = build_untimed(&net, &ReachOptions::default()).unwrap();
        let b = build_untimed(&net, &ReachOptions::default()).unwrap();
        assert_eq!(a, b);
    }

    /// A net whose levels are wide in *environments*: two independent
    /// bounded counters, so level `L` holds every `(a, b)` with
    /// `a + b = L` and each level mints several environments at once —
    /// exactly the case the pending-env min-key ordering must get right.
    fn env_grid() -> Net {
        let mut b = NetBuilder::new("grid");
        b.place("p", 1);
        b.var("a", 0);
        b.var("b", 0);
        b.transition("ia")
            .input("p")
            .output("p")
            .predicate_str("a < 4")
            .unwrap()
            .action_str("a = a + 1;")
            .unwrap()
            .add();
        b.transition("ib")
            .input("p")
            .output("p")
            .predicate_str("b < 4")
            .unwrap()
            .action_str("b = b + 1;")
            .unwrap()
            .add();
        b.build().unwrap()
    }

    #[test]
    fn parallel_untimed_is_bit_identical_to_sequential() {
        for net in [ring(3), env_grid()] {
            let seq = build_untimed(&net, &ReachOptions::default()).unwrap();
            for jobs in [2, 4, 8] {
                let opts = ReachOptions {
                    jobs,
                    ..ReachOptions::default()
                };
                let par = build_untimed(&net, &opts).unwrap();
                assert_eq!(par, seq, "jobs = {jobs} diverged on `{}`", net.name());
            }
        }
    }

    #[test]
    fn parallel_timed_is_bit_identical_to_sequential() {
        let mut b = NetBuilder::new("cap");
        b.place("q", 3);
        b.place("done", 0);
        b.transition("serve")
            .input("q")
            .output("done")
            .firing(2)
            .max_concurrent(2)
            .add();
        b.transition("recycle")
            .input("done")
            .output("q")
            .firing(3)
            .add();
        let net = b.build().unwrap();
        let seq = build_timed(&net, &ReachOptions::default()).unwrap();
        for jobs in [2, 4, 8] {
            let opts = ReachOptions {
                jobs,
                ..ReachOptions::default()
            };
            assert_eq!(build_timed(&net, &opts).unwrap(), seq, "jobs = {jobs}");
        }
    }

    #[test]
    fn parallel_env_interning_matches_sequential_ids() {
        // Environment *ids* (not just contents) must line up, since the
        // store compares `env_ids` arenas for equality.
        let net = env_grid();
        let seq = build_untimed(&net, &ReachOptions::default()).unwrap();
        let par = build_untimed(
            &net,
            &ReachOptions {
                jobs: 8,
                ..ReachOptions::default()
            },
        )
        .unwrap();
        assert_eq!(seq.store().env_count(), 25, "5×5 counter grid");
        for i in 0..seq.state_count() {
            assert_eq!(
                seq.store().try_env_id(i).unwrap(),
                par.store().try_env_id(i).unwrap(),
                "state {i}"
            );
        }
    }

    #[test]
    fn jobs_zero_resolves_to_available_parallelism() {
        let opts = ReachOptions {
            jobs: 0,
            ..ReachOptions::default()
        };
        assert!(opts.effective_jobs() >= 1);
        let net = ring(2);
        let auto = build_untimed(&net, &opts).unwrap();
        assert_eq!(auto, build_untimed(&net, &ReachOptions::default()).unwrap());
    }
}
