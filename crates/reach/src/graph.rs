//! Reachability graph construction.

use pnut_core::expr::Env;
use pnut_core::{Marking, Net, Time, TransitionId};
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Limits for graph construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReachOptions {
    /// Stop with [`ReachError::StateLimit`] beyond this many states.
    pub max_states: usize,
}

impl Default for ReachOptions {
    fn default() -> Self {
        ReachOptions { max_states: 100_000 }
    }
}

/// Construction errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ReachError {
    /// The state space exceeded [`ReachOptions::max_states`] — the net
    /// may be unbounded.
    StateLimit {
        /// The limit that was hit.
        limit: usize,
    },
    /// The net uses `irand`; reachability must be deterministic.
    UsesRandom,
    /// A predicate or action failed to evaluate.
    Eval {
        /// The transition involved.
        transition: String,
        /// The underlying failure.
        source: pnut_core::EvalError,
    },
    /// Timed construction requested for a net with enabling times
    /// (unsupported: enabling clocks are not part of the `[RP84]` state).
    EnablingTimesUnsupported {
        /// The transition with a non-zero enabling time.
        transition: String,
    },
    /// Timed construction requires constant (non-expression) delays.
    NonConstantDelay {
        /// The transition with an expression-valued delay.
        transition: String,
    },
    /// Coverability analysis requires a *plain* net: no inhibitor arcs,
    /// predicates, or actions (they break the monotonicity that the
    /// Karp–Miller acceleration relies on).
    NotPlain {
        /// The offending transition.
        transition: String,
    },
}

impl fmt::Display for ReachError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReachError::StateLimit { limit } => {
                write!(f, "state space exceeds {limit} states (unbounded net?)")
            }
            ReachError::UsesRandom => write!(f, "net uses irand; reachability requires determinism"),
            ReachError::Eval { transition, source } => {
                write!(f, "evaluation failed in `{transition}`: {source}")
            }
            ReachError::EnablingTimesUnsupported { transition } => write!(
                f,
                "timed reachability does not support enabling times (`{transition}`)"
            ),
            ReachError::NonConstantDelay { transition } => write!(
                f,
                "timed reachability requires constant delays (`{transition}`)"
            ),
            ReachError::NotPlain { transition } => write!(
                f,
                "coverability requires a plain net without inhibitors/predicates/actions (`{transition}`)"
            ),
        }
    }
}

impl std::error::Error for ReachError {}

/// The data of one reachable state.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateData {
    /// Token counts.
    pub marking: Marking,
    /// Variable environment (constant for nets without actions).
    pub env: Env,
    /// In-flight firings as `(transition, remaining ticks)`, sorted —
    /// empty for untimed graphs.
    pub in_flight: Vec<(TransitionId, u64)>,
}

/// An edge label: a transition start, or the passage of time to the
/// next completion (timed graphs only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeLabel {
    /// Transition `t` started (and, untimed, completed) firing.
    Fire(TransitionId),
    /// Time advanced by the given number of ticks.
    Advance(u64),
}

/// A reachability graph: states, labeled edges, and the initial state
/// (index 0).
#[derive(Debug, Clone, PartialEq)]
pub struct ReachabilityGraph {
    states: Vec<StateData>,
    edges: Vec<Vec<(EdgeLabel, usize)>>,
}

impl ReachabilityGraph {
    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// The data of state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn state(&self, i: usize) -> &StateData {
        &self.states[i]
    }

    /// Outgoing edges of state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn successors(&self, i: usize) -> &[(EdgeLabel, usize)] {
        &self.edges[i]
    }

    /// Indices of deadlock states (no outgoing edges).
    pub fn deadlocks(&self) -> Vec<usize> {
        (0..self.states.len())
            .filter(|&i| self.edges[i].is_empty())
            .collect()
    }

    /// The bound of each place: the maximum token count over all
    /// reachable states (a net is k-bounded iff every entry ≤ k).
    pub fn place_bounds(&self) -> Vec<u32> {
        let places = self.states.first().map(|s| s.marking.len()).unwrap_or(0);
        let mut bounds = vec![0u32; places];
        for s in &self.states {
            for (p, t) in s.marking.iter() {
                bounds[p.index()] = bounds[p.index()].max(t);
            }
        }
        bounds
    }

    /// Whether `transition` fires on some edge (L1-liveness witness).
    pub fn ever_fires(&self, transition: TransitionId) -> bool {
        self.edges
            .iter()
            .flatten()
            .any(|&(l, _)| l == EdgeLabel::Fire(transition))
    }
}

fn check_deterministic(net: &Net) -> Result<(), ReachError> {
    if net.uses_random() {
        return Err(ReachError::UsesRandom);
    }
    Ok(())
}

/// Build the untimed (classical occurrence semantics) reachability
/// graph: each enabled transition fires atomically.
///
/// # Errors
///
/// See [`ReachError`]; most commonly [`ReachError::StateLimit`] for
/// unbounded nets.
pub fn build_untimed(net: &Net, options: &ReachOptions) -> Result<ReachabilityGraph, ReachError> {
    check_deterministic(net)?;
    let initial = StateData {
        marking: net.initial_marking(),
        env: net.initial_env().clone(),
        in_flight: Vec::new(),
    };
    let mut states = vec![initial.clone()];
    let mut index: HashMap<StateData, usize> = HashMap::from([(initial, 0)]);
    let mut edges: Vec<Vec<(EdgeLabel, usize)>> = vec![Vec::new()];
    let mut queue = VecDeque::from([0usize]);

    while let Some(cur) = queue.pop_front() {
        let state = states[cur].clone();
        for (tid, t) in net.transitions() {
            if !t.marking_enabled(&state.marking) {
                continue;
            }
            if let Some(p) = t.predicate() {
                let ok = p
                    .eval_pure(&state.env)
                    .and_then(|v| v.as_bool())
                    .map_err(|source| ReachError::Eval {
                        transition: t.name().to_string(),
                        source,
                    })?;
                if !ok {
                    continue;
                }
            }
            let mut marking = state.marking.clone();
            for &(p, w) in t.inputs() {
                let ok = marking.try_remove(p, w);
                debug_assert!(ok);
            }
            for &(p, w) in t.outputs() {
                marking.add(p, w);
            }
            let mut env = state.env.clone();
            if let Some(a) = t.action() {
                a.apply_pure(&mut env).map_err(|source| ReachError::Eval {
                    transition: t.name().to_string(),
                    source,
                })?;
            }
            let next = StateData {
                marking,
                env,
                in_flight: Vec::new(),
            };
            let target = match index.get(&next) {
                Some(&i) => i,
                None => {
                    let i = states.len();
                    if i >= options.max_states {
                        return Err(ReachError::StateLimit {
                            limit: options.max_states,
                        });
                    }
                    states.push(next.clone());
                    index.insert(next, i);
                    edges.push(Vec::new());
                    queue.push_back(i);
                    i
                }
            };
            edges[cur].push((EdgeLabel::Fire(tid), target));
        }
    }
    Ok(ReachabilityGraph { states, edges })
}

/// Build the timed reachability graph per `[RP84]`: states carry in-flight
/// firings with remaining times; from each state either an enabled
/// transition starts firing (consuming its inputs) or — when no
/// transition can start — time advances to the earliest completion.
///
/// Restrictions: constant delays, no enabling times (see
/// [`ReachError::EnablingTimesUnsupported`]).
///
/// # Errors
///
/// See [`ReachError`].
pub fn build_timed(net: &Net, options: &ReachOptions) -> Result<ReachabilityGraph, ReachError> {
    check_deterministic(net)?;
    let mut firing_ticks = Vec::with_capacity(net.transition_count());
    for (_, t) in net.transitions() {
        if !t.enabling_time().is_zero_constant() {
            return Err(ReachError::EnablingTimesUnsupported {
                transition: t.name().to_string(),
            });
        }
        match t.firing_time() {
            pnut_core::Delay::Fixed(ticks) => firing_ticks.push(*ticks),
            pnut_core::Delay::Expr(_) => {
                return Err(ReachError::NonConstantDelay {
                    transition: t.name().to_string(),
                });
            }
        }
    }

    let initial = StateData {
        marking: net.initial_marking(),
        env: net.initial_env().clone(),
        in_flight: Vec::new(),
    };
    let mut states = vec![initial.clone()];
    let mut index: HashMap<StateData, usize> = HashMap::from([(initial, 0)]);
    let mut edges: Vec<Vec<(EdgeLabel, usize)>> = vec![Vec::new()];
    let mut queue = VecDeque::from([0usize]);

    let mut intern = |next: StateData,
                      states: &mut Vec<StateData>,
                      edges: &mut Vec<Vec<(EdgeLabel, usize)>>,
                      queue: &mut VecDeque<usize>|
     -> Result<usize, ReachError> {
        match index.get(&next) {
            Some(&i) => Ok(i),
            None => {
                let i = states.len();
                if i >= options.max_states {
                    return Err(ReachError::StateLimit {
                        limit: options.max_states,
                    });
                }
                states.push(next.clone());
                index.insert(next, i);
                edges.push(Vec::new());
                queue.push_back(i);
                Ok(i)
            }
        }
    };

    while let Some(cur) = queue.pop_front() {
        let state = states[cur].clone();
        let mut can_start = false;
        for (tid, t) in net.transitions() {
            if !t.marking_enabled(&state.marking) {
                continue;
            }
            if let Some(cap) = t.max_concurrent() {
                let inflight = state
                    .in_flight
                    .iter()
                    .filter(|&&(x, _)| x == tid)
                    .count() as u32;
                if inflight >= cap {
                    continue;
                }
            }
            if let Some(p) = t.predicate() {
                let ok = p
                    .eval_pure(&state.env)
                    .and_then(|v| v.as_bool())
                    .map_err(|source| ReachError::Eval {
                        transition: t.name().to_string(),
                        source,
                    })?;
                if !ok {
                    continue;
                }
            }
            can_start = true;
            let mut marking = state.marking.clone();
            for &(p, w) in t.inputs() {
                let ok = marking.try_remove(p, w);
                debug_assert!(ok);
            }
            let mut env = state.env.clone();
            if let Some(a) = t.action() {
                a.apply_pure(&mut env).map_err(|source| ReachError::Eval {
                    transition: t.name().to_string(),
                    source,
                })?;
            }
            let mut in_flight = state.in_flight.clone();
            let ticks = firing_ticks[tid.index()];
            if ticks == 0 {
                // Atomic: outputs appear immediately.
                for &(p, w) in t.outputs() {
                    marking.add(p, w);
                }
            } else {
                in_flight.push((tid, ticks));
                in_flight.sort();
            }
            let next = StateData {
                marking,
                env,
                in_flight,
            };
            let target = intern(next, &mut states, &mut edges, &mut queue)?;
            edges[cur].push((EdgeLabel::Fire(tid), target));
        }

        // Maximal-progress time advance: only when nothing can start.
        if !can_start && !state.in_flight.is_empty() {
            let dt = state
                .in_flight
                .iter()
                .map(|&(_, r)| r)
                .min()
                .expect("non-empty");
            let mut marking = state.marking.clone();
            let mut in_flight = Vec::new();
            for &(tid, r) in &state.in_flight {
                if r == dt {
                    for &(p, w) in net.transition(tid).outputs() {
                        marking.add(p, w);
                    }
                } else {
                    in_flight.push((tid, r - dt));
                }
            }
            in_flight.sort();
            let next = StateData {
                marking,
                env: state.env.clone(),
                in_flight,
            };
            let target = intern(next, &mut states, &mut edges, &mut queue)?;
            edges[cur].push((EdgeLabel::Advance(dt), target));
        }
    }
    let _ = Time::ZERO; // Time is part of the public vocabulary via labels.
    Ok(ReachabilityGraph { states, edges })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnut_core::NetBuilder;

    fn ring(tokens: u32) -> Net {
        let mut b = NetBuilder::new("ring");
        b.place("a", tokens);
        b.place("b", 0);
        b.transition("ab").input("a").output("b").add();
        b.transition("ba").input("b").output("a").add();
        b.build().unwrap()
    }

    #[test]
    fn untimed_ring_has_expected_states() {
        let net = ring(1);
        let g = build_untimed(&net, &ReachOptions::default()).unwrap();
        assert_eq!(g.state_count(), 2);
        assert_eq!(g.edge_count(), 2);
        assert!(g.deadlocks().is_empty());
        assert_eq!(g.place_bounds(), vec![1, 1]);
        assert!(g.ever_fires(net.transition_id("ab").unwrap()));
    }

    #[test]
    fn untimed_counts_multi_token_interleavings() {
        let net = ring(2);
        let g = build_untimed(&net, &ReachOptions::default()).unwrap();
        // Markings: (2,0), (1,1), (0,2).
        assert_eq!(g.state_count(), 3);
        assert_eq!(g.place_bounds(), vec![2, 2]);
    }

    #[test]
    fn deadlock_detected() {
        let mut b = NetBuilder::new("dead");
        b.place("a", 1);
        b.place("b", 0);
        b.transition("t").input("a").output("b").add();
        let net = b.build().unwrap();
        let g = build_untimed(&net, &ReachOptions::default()).unwrap();
        assert_eq!(g.deadlocks().len(), 1);
        let d = g.deadlocks()[0];
        assert_eq!(g.state(d).marking.tokens(net.place_id("b").unwrap()), 1);
    }

    #[test]
    fn unbounded_net_hits_state_limit() {
        let mut b = NetBuilder::new("unbounded");
        b.place("p", 0);
        b.transition("gen").output("p").add();
        let net = b.build().unwrap();
        let e = build_untimed(&net, &ReachOptions { max_states: 50 }).unwrap_err();
        assert_eq!(e, ReachError::StateLimit { limit: 50 });
    }

    #[test]
    fn random_nets_rejected() {
        let mut b = NetBuilder::new("r");
        b.place("p", 1);
        b.var("x", 0);
        b.transition("t")
            .input("p")
            .output("p")
            .action_str("x = irand(0, 1);")
            .unwrap()
            .add();
        let net = b.build().unwrap();
        assert_eq!(
            build_untimed(&net, &ReachOptions::default()).unwrap_err(),
            ReachError::UsesRandom
        );
    }

    #[test]
    fn predicates_prune_untimed_edges() {
        let mut b = NetBuilder::new("p");
        b.place("p", 1);
        b.place("q", 0);
        b.var("gate", 0);
        b.transition("blocked")
            .input("p")
            .output("q")
            .predicate_str("gate == 1")
            .unwrap()
            .add();
        let net = b.build().unwrap();
        let g = build_untimed(&net, &ReachOptions::default()).unwrap();
        assert_eq!(g.state_count(), 1, "gate closed: nothing reachable");
        assert_eq!(g.deadlocks(), vec![0]);
    }

    #[test]
    fn actions_differentiate_states() {
        // Same marking, different variable values → distinct states.
        let mut b = NetBuilder::new("v");
        b.place("p", 1);
        b.var("n", 0);
        b.transition("inc")
            .input("p")
            .output("p")
            .predicate_str("n < 3")
            .unwrap()
            .action_str("n = n + 1;")
            .unwrap()
            .add();
        let net = b.build().unwrap();
        let g = build_untimed(&net, &ReachOptions::default()).unwrap();
        assert_eq!(g.state_count(), 4, "n in 0..=3");
        assert_eq!(g.deadlocks().len(), 1);
    }

    #[test]
    fn timed_graph_tracks_in_flight() {
        let mut b = NetBuilder::new("t");
        b.place("a", 1);
        b.place("b", 0);
        b.transition("work").input("a").output("b").firing(3).add();
        let net = b.build().unwrap();
        let g = build_timed(&net, &ReachOptions::default()).unwrap();
        // (a=1), (in flight, 3 left), (b=1).
        assert_eq!(g.state_count(), 3);
        let mid = g.state(1);
        assert_eq!(mid.in_flight.len(), 1);
        assert_eq!(mid.in_flight[0].1, 3);
        // The advance edge carries the delay.
        assert!(g
            .successors(1)
            .iter()
            .any(|&(l, _)| l == EdgeLabel::Advance(3)));
    }

    #[test]
    fn timed_interleaves_concurrent_firings() {
        let mut b = NetBuilder::new("t2");
        b.place("a", 2);
        b.place("b", 0);
        b.transition("work").input("a").output("b").firing(2).add();
        let net = b.build().unwrap();
        let g = build_timed(&net, &ReachOptions::default()).unwrap();
        // Both tokens must start before time advances (maximal progress):
        // (2,0,[]) -> (1,0,[2]) -> (0,0,[2,2]) -> (0,2,[]) done.
        assert_eq!(g.state_count(), 4);
        assert!(g.deadlocks().len() == 1, "final state is quiescent");
    }

    #[test]
    fn timed_graph_respects_concurrency_caps() {
        let mut b = NetBuilder::new("cap");
        b.place("q", 2);
        b.place("done", 0);
        b.transition("serve")
            .input("q")
            .output("done")
            .firing(2)
            .max_concurrent(1)
            .add();
        let net = b.build().unwrap();
        let g = build_timed(&net, &ReachOptions::default()).unwrap();
        for i in 0..g.state_count() {
            let inflight = g.state(i).in_flight.len();
            assert!(inflight <= 1, "state {i} has {inflight} concurrent serves");
        }
    }

    #[test]
    fn timed_rejects_enabling_and_expression_delays() {
        let mut b = NetBuilder::new("e");
        b.place("a", 1);
        b.transition("t").input("a").enabling(2).add();
        let net = b.build().unwrap();
        assert!(matches!(
            build_timed(&net, &ReachOptions::default()),
            Err(ReachError::EnablingTimesUnsupported { .. })
        ));

        let mut b = NetBuilder::new("e2");
        b.place("a", 1);
        b.var("d", 1);
        b.transition("t")
            .input("a")
            .firing_expr(pnut_core::Expr::parse("d").unwrap())
            .add();
        let net = b.build().unwrap();
        assert!(matches!(
            build_timed(&net, &ReachOptions::default()),
            Err(ReachError::NonConstantDelay { .. })
        ));
    }
}
