//! Reachability graph construction over the interned state store.
//!
//! States live in a [`StateStore`] (each distinct state exactly once, in
//! flat arenas — see [`crate::store`]); edges are kept in compressed
//! sparse row (CSR) form: one flat `Vec<(EdgeLabel, u32)>` plus an
//! `offsets` array with `offsets[i]..offsets[i + 1]` delimiting the
//! successors of state `i`. Breadth-first exploration discovers and
//! finishes states in index order, so the CSR rows are emitted directly
//! without a compaction pass, and two builds of the same net produce
//! bit-identical graphs.

use crate::store::{StateRef, StateStore};
use pnut_core::expr::Env;
use pnut_core::{Net, Time, Transition, TransitionId};
use std::fmt;

/// Limits for graph construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReachOptions {
    /// Stop with [`ReachError::StateLimit`] beyond this many states.
    pub max_states: usize,
}

impl Default for ReachOptions {
    fn default() -> Self {
        ReachOptions {
            max_states: 100_000,
        }
    }
}

/// Construction errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ReachError {
    /// The state space exceeded [`ReachOptions::max_states`] — the net
    /// may be unbounded.
    StateLimit {
        /// The limit that was hit.
        limit: usize,
    },
    /// The net uses `irand`; reachability must be deterministic.
    UsesRandom,
    /// A predicate or action failed to evaluate.
    Eval {
        /// The transition involved.
        transition: String,
        /// The underlying failure.
        source: pnut_core::EvalError,
    },
    /// Timed construction requested for a net with enabling times
    /// (unsupported: enabling clocks are not part of the `[RP84]` state).
    EnablingTimesUnsupported {
        /// The transition with a non-zero enabling time.
        transition: String,
    },
    /// Timed construction requires constant (non-expression) delays.
    NonConstantDelay {
        /// The transition with an expression-valued delay.
        transition: String,
    },
    /// Coverability analysis requires a *plain* net: no inhibitor arcs,
    /// predicates, or actions (they break the monotonicity that the
    /// Karp–Miller acceleration relies on).
    NotPlain {
        /// The offending transition.
        transition: String,
    },
    /// Firing a transition produced an inconsistent marking: a token
    /// count overflowed `u32`, or an input place underflowed despite the
    /// enablement check (unreachable unless an internal invariant is
    /// broken — `NetBuilder` merges duplicate arcs, and enablement
    /// covers the merged weight). The seed construction only
    /// `debug_assert!`-ed this; it is a hard error so release builds can
    /// never continue from a corrupted marking.
    MarkingCorrupt {
        /// The transition being fired.
        transition: String,
        /// What exactly went wrong.
        detail: &'static str,
    },
}

impl fmt::Display for ReachError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReachError::StateLimit { limit } => {
                write!(f, "state space exceeds {limit} states (unbounded net?)")
            }
            ReachError::UsesRandom => write!(f, "net uses irand; reachability requires determinism"),
            ReachError::Eval { transition, source } => {
                write!(f, "evaluation failed in `{transition}`: {source}")
            }
            ReachError::EnablingTimesUnsupported { transition } => write!(
                f,
                "timed reachability does not support enabling times (`{transition}`)"
            ),
            ReachError::NonConstantDelay { transition } => write!(
                f,
                "timed reachability requires constant delays (`{transition}`)"
            ),
            ReachError::NotPlain { transition } => write!(
                f,
                "coverability requires a plain net without inhibitors/predicates/actions (`{transition}`)"
            ),
            ReachError::MarkingCorrupt { transition, detail } => write!(
                f,
                "firing `{transition}` corrupted the marking: {detail}"
            ),
        }
    }
}

impl std::error::Error for ReachError {}

/// An edge label: a transition start, or the passage of time to the
/// next completion (timed graphs only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeLabel {
    /// Transition `t` started (and, untimed, completed) firing.
    Fire(TransitionId),
    /// Time advanced by the given number of ticks.
    Advance(u64),
}

/// One outgoing edge: the label and the target state index.
pub type Edge = (EdgeLabel, u32);

/// A reachability graph: interned states, CSR-packed labeled edges, and
/// the initial state (index 0).
#[derive(Debug, Clone, PartialEq)]
pub struct ReachabilityGraph {
    store: StateStore,
    /// CSR row boundaries; `len == state_count() + 1`.
    offsets: Vec<u32>,
    /// All edges, grouped by source state.
    edges: Vec<Edge>,
}

impl ReachabilityGraph {
    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.store.len()
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The interned state store (markings, environments, in-flight
    /// multisets).
    pub fn store(&self) -> &StateStore {
        &self.store
    }

    /// A view of state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn state(&self, i: usize) -> StateRef<'_> {
        self.store.state(i)
    }

    /// Outgoing edges of state `i` as `(label, target)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn successors(&self, i: usize) -> &[Edge] {
        &self.edges[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Indices of deadlock states (no outgoing edges).
    pub fn deadlocks(&self) -> Vec<usize> {
        (0..self.state_count())
            .filter(|&i| self.offsets[i] == self.offsets[i + 1])
            .collect()
    }

    /// The bound of each place: the maximum token count over all
    /// reachable states (a net is k-bounded iff every entry ≤ k).
    pub fn place_bounds(&self) -> Vec<u32> {
        let places = if self.store.is_empty() {
            0
        } else {
            self.store.marking_slice(0).len()
        };
        let mut bounds = vec![0u32; places];
        for i in 0..self.store.len() {
            for (b, &t) in bounds.iter_mut().zip(self.store.marking_slice(i)) {
                *b = (*b).max(t);
            }
        }
        bounds
    }

    /// Whether `transition` fires on some edge (L1-liveness witness).
    pub fn ever_fires(&self, transition: TransitionId) -> bool {
        self.edges
            .iter()
            .any(|&(l, _)| l == EdgeLabel::Fire(transition))
    }

    /// Approximate heap footprint of the graph (store arenas, intern
    /// tables, and CSR edge arrays) in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.store.approx_bytes()
            + self.offsets.capacity() * 4
            + self.edges.capacity() * std::mem::size_of::<Edge>()
    }
}

fn check_deterministic(net: &Net) -> Result<(), ReachError> {
    if net.uses_random() {
        return Err(ReachError::UsesRandom);
    }
    Ok(())
}

fn eval_err(t: &Transition, source: pnut_core::EvalError) -> ReachError {
    ReachError::Eval {
        transition: t.name().to_string(),
        source,
    }
}

/// One transition lowered to flat index/delta form for the hot loop:
/// raw place indices instead of `PlaceId`s, duplicate arcs merged, and
/// the token movement of a firing as a single signed-delta pass.
struct Compiled {
    id: TransitionId,
    /// `(place, tokens)` enablement lower bounds; duplicate input arcs
    /// are merged by summing, so multi-arc requirements are exact.
    needs: Vec<(u32, u32)>,
    /// `(place, threshold)` inhibitor bounds (duplicates merged to the
    /// tightest threshold); enabled iff tokens < threshold.
    inhib: Vec<(u32, u32)>,
    /// Net token movement of an atomic firing — inputs negative,
    /// outputs positive, zero-sum self-loops dropped.
    fire_delta: Vec<(u32, i64)>,
    /// Token movement of a timed firing *start* (inputs only; outputs
    /// are delivered at end-of-firing).
    start_delta: Vec<(u32, i64)>,
    /// Maximum concurrent firings (timed nets).
    cap: Option<u32>,
    has_predicate: bool,
    has_action: bool,
}

fn compile(net: &Net) -> Vec<Compiled> {
    use std::collections::BTreeMap;
    net.transitions()
        .map(|(id, t)| {
            let mut needs: BTreeMap<u32, u64> = BTreeMap::new();
            let mut inhib: BTreeMap<u32, u32> = BTreeMap::new();
            let mut fire: BTreeMap<u32, i64> = BTreeMap::new();
            let mut start: BTreeMap<u32, i64> = BTreeMap::new();
            for &(p, w) in t.inputs() {
                let p = p.index() as u32;
                *needs.entry(p).or_default() += u64::from(w);
                *fire.entry(p).or_default() -= i64::from(w);
                *start.entry(p).or_default() -= i64::from(w);
            }
            for &(p, th) in t.inhibitors() {
                let e = inhib.entry(p.index() as u32).or_insert(th);
                *e = (*e).min(th);
            }
            for &(p, w) in t.outputs() {
                *fire.entry(p.index() as u32).or_default() += i64::from(w);
            }
            Compiled {
                id,
                needs: needs
                    .into_iter()
                    // A summed requirement above u32::MAX is unsatisfiable
                    // in practice; saturating keeps the type small.
                    .map(|(p, w)| (p, u32::try_from(w).unwrap_or(u32::MAX)))
                    .collect(),
                inhib: inhib.into_iter().collect(),
                fire_delta: fire.into_iter().filter(|&(_, d)| d != 0).collect(),
                start_delta: start.into_iter().collect(),
                cap: t.max_concurrent(),
                has_predicate: t.predicate().is_some(),
                has_action: t.action().is_some(),
            }
        })
        .collect()
}

/// Apply merged token deltas to a scratch marking, keeping its
/// commutative hash (see [`StateStore::marking_elem_hash`]) in sync.
/// Returns the corruption detail on underflow/overflow.
#[inline]
fn apply_delta(
    marking: &mut [u32],
    hash: &mut u64,
    delta: &[(u32, i64)],
) -> Result<(), &'static str> {
    for &(p, d) in delta {
        let p = p as usize;
        let old = marking[p];
        let new = i64::from(old) + d;
        let Ok(new) = u32::try_from(new) else {
            return Err(if new < 0 {
                "input place underflow (arc weights exceed tokens)"
            } else {
                "token count overflowed u32"
            });
        };
        marking[p] = new;
        *hash = hash
            .wrapping_sub(StateStore::marking_elem_hash(p, old))
            .wrapping_add(StateStore::marking_elem_hash(p, new));
    }
    Ok(())
}

/// Shared exploration machinery for the timed and untimed builds: the
/// store, the CSR accumulators, the compiled transitions, and reusable
/// scratch buffers that make successor generation allocation-free on
/// the steady state.
struct Explorer {
    max_states: usize,
    compiled: Vec<Compiled>,
    store: StateStore,
    offsets: Vec<u32>,
    edges: Vec<Edge>,
    /// Copy of the current state's marking (stable while `store` grows).
    cur_marking: Vec<u32>,
    /// Marking-part hash of `cur_marking`.
    cur_hash: u64,
    /// Copy of the current state's in-flight multiset.
    cur_inflight: Vec<(TransitionId, u64)>,
    /// Successor marking under construction.
    next_marking: Vec<u32>,
    /// Marking-part hash of `next_marking`, maintained incrementally.
    next_hash: u64,
    /// Successor in-flight multiset under construction.
    next_inflight: Vec<(TransitionId, u64)>,
}

impl Explorer {
    fn new(net: &Net, options: &ReachOptions) -> Self {
        let places = net.place_count();
        let mut store = StateStore::new(places);
        let initial_env = store.intern_env(net.initial_env());
        let initial = net.initial_marking();
        store.intern(initial.as_slice(), initial_env, &[]);
        Explorer {
            max_states: options.max_states,
            compiled: compile(net),
            store,
            offsets: Vec::new(),
            edges: Vec::new(),
            cur_marking: vec![0; places],
            cur_hash: 0,
            cur_inflight: Vec::new(),
            next_marking: vec![0; places],
            next_hash: 0,
            next_inflight: Vec::new(),
        }
    }

    /// Load state `cur` into the scratch copies.
    fn load(&mut self, cur: usize) -> u32 {
        self.cur_marking
            .copy_from_slice(self.store.marking_slice(cur));
        self.cur_hash = StateStore::marking_hash(&self.cur_marking);
        self.cur_inflight.clear();
        self.cur_inflight
            .extend_from_slice(self.store.in_flight_slice(cur));
        self.offsets
            .push(u32::try_from(self.edges.len()).expect("more than u32::MAX edges"));
        self.store.env_id(cur)
    }

    /// Whether compiled transition `ti` is marking-enabled in the
    /// current state.
    #[inline]
    fn enabled(&self, ti: usize) -> bool {
        let ct = &self.compiled[ti];
        ct.needs
            .iter()
            .all(|&(p, w)| self.cur_marking[p as usize] >= w)
            && ct
                .inhib
                .iter()
                .all(|&(p, th)| self.cur_marking[p as usize] < th)
    }

    /// Reset the scratch successor to the current marking.
    #[inline]
    fn begin_next(&mut self) {
        self.next_marking.copy_from_slice(&self.cur_marking);
        self.next_hash = self.cur_hash;
    }

    /// Build the successor marking for firing `ti`: the full movement
    /// when `atomic`, inputs only otherwise (timed nets deliver outputs
    /// at end-of-firing).
    fn fire(&mut self, net: &Net, ti: usize, atomic: bool) -> Result<(), ReachError> {
        self.next_marking.copy_from_slice(&self.cur_marking);
        self.next_hash = self.cur_hash;
        let ct = &self.compiled[ti];
        let delta = if atomic {
            &ct.fire_delta
        } else {
            &ct.start_delta
        };
        apply_delta(&mut self.next_marking, &mut self.next_hash, delta).map_err(|detail| {
            ReachError::MarkingCorrupt {
                transition: net.transition(ct.id).name().to_string(),
                detail,
            }
        })
    }

    /// Add `t`'s output tokens to the scratch successor.
    fn deliver_outputs(&mut self, t: &Transition) -> Result<(), ReachError> {
        for &(p, w) in t.outputs() {
            let p = p.index();
            let old = self.next_marking[p];
            let new = old
                .checked_add(w)
                .ok_or_else(|| ReachError::MarkingCorrupt {
                    transition: t.name().to_string(),
                    detail: "token count overflowed u32",
                })?;
            self.next_marking[p] = new;
            self.next_hash = self
                .next_hash
                .wrapping_sub(StateStore::marking_elem_hash(p, old))
                .wrapping_add(StateStore::marking_elem_hash(p, new));
        }
        Ok(())
    }

    /// Run `ti`'s predicate against `env` (true when absent).
    fn predicate_holds(&self, net: &Net, ti: usize, env_id: u32) -> Result<bool, ReachError> {
        let t = net.transition(self.compiled[ti].id);
        match t.predicate() {
            None => Ok(true),
            Some(p) => p
                .eval_pure(self.store.env(env_id))
                .and_then(|v| v.as_bool())
                .map_err(|e| eval_err(t, e)),
        }
    }

    /// Environment after `ti`'s action (the common actionless path
    /// reuses the interned id without touching the environment at all).
    fn next_env(&mut self, net: &Net, ti: usize, env_id: u32) -> Result<u32, ReachError> {
        if !self.compiled[ti].has_action {
            return Ok(env_id);
        }
        let t = net.transition(self.compiled[ti].id);
        let a = t.action().expect("has_action");
        let mut env: Env = self.store.env(env_id).clone();
        a.apply_pure(&mut env).map_err(|e| eval_err(t, e))?;
        Ok(self.store.intern_env(&env))
    }

    /// Intern the scratch successor and record an edge to it.
    fn link(&mut self, label: EdgeLabel, env_id: u32) -> Result<(), ReachError> {
        let (target, new) = self.store.intern_hashed(
            &self.next_marking,
            self.next_hash,
            env_id,
            &self.next_inflight,
        );
        if new && target >= self.max_states {
            return Err(ReachError::StateLimit {
                limit: self.max_states,
            });
        }
        self.edges.push((label, target as u32));
        Ok(())
    }

    fn finish(mut self) -> ReachabilityGraph {
        self.offsets
            .push(u32::try_from(self.edges.len()).expect("more than u32::MAX edges"));
        ReachabilityGraph {
            store: self.store,
            offsets: self.offsets,
            edges: self.edges,
        }
    }
}

/// Build the untimed (classical occurrence semantics) reachability
/// graph: each enabled transition fires atomically.
///
/// # Errors
///
/// See [`ReachError`]; most commonly [`ReachError::StateLimit`] for
/// unbounded nets.
pub fn build_untimed(net: &Net, options: &ReachOptions) -> Result<ReachabilityGraph, ReachError> {
    check_deterministic(net)?;
    let mut ex = Explorer::new(net, options);
    let mut cur = 0;
    // States are discovered in BFS order and numbered densely, so the
    // frontier is simply "indices not yet scanned" — no queue needed.
    while cur < ex.store.len() {
        let env_id = ex.load(cur);
        for ti in 0..ex.compiled.len() {
            if !ex.enabled(ti) {
                continue;
            }
            if ex.compiled[ti].has_predicate && !ex.predicate_holds(net, ti, env_id)? {
                continue;
            }
            ex.fire(net, ti, true)?;
            ex.next_inflight.clear();
            let next_env = ex.next_env(net, ti, env_id)?;
            let label = EdgeLabel::Fire(ex.compiled[ti].id);
            ex.link(label, next_env)?;
        }
        cur += 1;
    }
    Ok(ex.finish())
}

/// Build the timed reachability graph per `[RP84]`: states carry in-flight
/// firings with remaining times; from each state either an enabled
/// transition starts firing (consuming its inputs) or — when no
/// transition can start — time advances to the earliest completion.
///
/// Restrictions: constant delays, no enabling times (see
/// [`ReachError::EnablingTimesUnsupported`]).
///
/// # Errors
///
/// See [`ReachError`].
pub fn build_timed(net: &Net, options: &ReachOptions) -> Result<ReachabilityGraph, ReachError> {
    check_deterministic(net)?;
    let mut firing_ticks = Vec::with_capacity(net.transition_count());
    for (_, t) in net.transitions() {
        if !t.enabling_time().is_zero_constant() {
            return Err(ReachError::EnablingTimesUnsupported {
                transition: t.name().to_string(),
            });
        }
        match t.firing_time() {
            pnut_core::Delay::Fixed(ticks) => firing_ticks.push(*ticks),
            pnut_core::Delay::Expr(_) => {
                return Err(ReachError::NonConstantDelay {
                    transition: t.name().to_string(),
                });
            }
        }
    }

    let mut ex = Explorer::new(net, options);
    let mut cur = 0;
    while cur < ex.store.len() {
        let env_id = ex.load(cur);
        let mut can_start = false;
        #[allow(clippy::needless_range_loop)] // `ti` indexes `ex.compiled` too
        for ti in 0..ex.compiled.len() {
            if !ex.enabled(ti) {
                continue;
            }
            let tid = ex.compiled[ti].id;
            if let Some(cap) = ex.compiled[ti].cap {
                let inflight = ex.cur_inflight.iter().filter(|&&(x, _)| x == tid).count() as u32;
                if inflight >= cap {
                    continue;
                }
            }
            if ex.compiled[ti].has_predicate && !ex.predicate_holds(net, ti, env_id)? {
                continue;
            }
            can_start = true;
            let ticks = firing_ticks[ti];
            // Zero-delay firings are atomic: outputs appear immediately
            // and the in-flight multiset is unchanged.
            ex.fire(net, ti, ticks == 0)?;
            ex.next_inflight.clear();
            ex.next_inflight.extend_from_slice(&ex.cur_inflight);
            if ticks != 0 {
                ex.next_inflight.push((tid, ticks));
                ex.next_inflight.sort_unstable();
            }
            let next_env = ex.next_env(net, ti, env_id)?;
            ex.link(EdgeLabel::Fire(tid), next_env)?;
        }

        // Maximal-progress time advance: only when nothing can start.
        if !can_start && !ex.cur_inflight.is_empty() {
            let dt = ex
                .cur_inflight
                .iter()
                .map(|&(_, r)| r)
                .min()
                .expect("non-empty");
            ex.begin_next();
            ex.next_inflight.clear();
            for i in 0..ex.cur_inflight.len() {
                let (tid, r) = ex.cur_inflight[i];
                if r == dt {
                    ex.deliver_outputs(net.transition(tid))?;
                } else {
                    ex.next_inflight.push((tid, r - dt));
                }
            }
            ex.next_inflight.sort_unstable();
            ex.link(EdgeLabel::Advance(dt), env_id)?;
        }
        cur += 1;
    }
    let _ = Time::ZERO; // Time is part of the public vocabulary via labels.
    Ok(ex.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnut_core::NetBuilder;

    fn ring(tokens: u32) -> Net {
        let mut b = NetBuilder::new("ring");
        b.place("a", tokens);
        b.place("b", 0);
        b.transition("ab").input("a").output("b").add();
        b.transition("ba").input("b").output("a").add();
        b.build().unwrap()
    }

    #[test]
    fn untimed_ring_has_expected_states() {
        let net = ring(1);
        let g = build_untimed(&net, &ReachOptions::default()).unwrap();
        assert_eq!(g.state_count(), 2);
        assert_eq!(g.edge_count(), 2);
        assert!(g.deadlocks().is_empty());
        assert_eq!(g.place_bounds(), vec![1, 1]);
        assert!(g.ever_fires(net.transition_id("ab").unwrap()));
    }

    #[test]
    fn untimed_counts_multi_token_interleavings() {
        let net = ring(2);
        let g = build_untimed(&net, &ReachOptions::default()).unwrap();
        // Markings: (2,0), (1,1), (0,2).
        assert_eq!(g.state_count(), 3);
        assert_eq!(g.place_bounds(), vec![2, 2]);
    }

    #[test]
    fn deadlock_detected() {
        let mut b = NetBuilder::new("dead");
        b.place("a", 1);
        b.place("b", 0);
        b.transition("t").input("a").output("b").add();
        let net = b.build().unwrap();
        let g = build_untimed(&net, &ReachOptions::default()).unwrap();
        assert_eq!(g.deadlocks().len(), 1);
        let d = g.deadlocks()[0];
        assert_eq!(g.state(d).marking.tokens(net.place_id("b").unwrap()), 1);
    }

    #[test]
    fn unbounded_net_hits_state_limit() {
        let mut b = NetBuilder::new("unbounded");
        b.place("p", 0);
        b.transition("gen").output("p").add();
        let net = b.build().unwrap();
        let e = build_untimed(&net, &ReachOptions { max_states: 50 }).unwrap_err();
        assert_eq!(e, ReachError::StateLimit { limit: 50 });
    }

    #[test]
    fn random_nets_rejected() {
        let mut b = NetBuilder::new("r");
        b.place("p", 1);
        b.var("x", 0);
        b.transition("t")
            .input("p")
            .output("p")
            .action_str("x = irand(0, 1);")
            .unwrap()
            .add();
        let net = b.build().unwrap();
        assert_eq!(
            build_untimed(&net, &ReachOptions::default()).unwrap_err(),
            ReachError::UsesRandom
        );
    }

    #[test]
    fn predicates_prune_untimed_edges() {
        let mut b = NetBuilder::new("p");
        b.place("p", 1);
        b.place("q", 0);
        b.var("gate", 0);
        b.transition("blocked")
            .input("p")
            .output("q")
            .predicate_str("gate == 1")
            .unwrap()
            .add();
        let net = b.build().unwrap();
        let g = build_untimed(&net, &ReachOptions::default()).unwrap();
        assert_eq!(g.state_count(), 1, "gate closed: nothing reachable");
        assert_eq!(g.deadlocks(), vec![0]);
    }

    #[test]
    fn actions_differentiate_states() {
        // Same marking, different variable values → distinct states.
        let mut b = NetBuilder::new("v");
        b.place("p", 1);
        b.var("n", 0);
        b.transition("inc")
            .input("p")
            .output("p")
            .predicate_str("n < 3")
            .unwrap()
            .action_str("n = n + 1;")
            .unwrap()
            .add();
        let net = b.build().unwrap();
        let g = build_untimed(&net, &ReachOptions::default()).unwrap();
        assert_eq!(g.state_count(), 4, "n in 0..=3");
        assert_eq!(g.deadlocks().len(), 1);
        // The four states share nothing but still intern four distinct
        // environments (n = 0..=3).
        assert_eq!(g.store().env_count(), 4);
    }

    #[test]
    fn actionless_nets_intern_one_environment() {
        let g = build_untimed(&ring(2), &ReachOptions::default()).unwrap();
        assert_eq!(g.store().env_count(), 1, "no actions → one shared env");
    }

    #[test]
    fn timed_graph_tracks_in_flight() {
        let mut b = NetBuilder::new("t");
        b.place("a", 1);
        b.place("b", 0);
        b.transition("work").input("a").output("b").firing(3).add();
        let net = b.build().unwrap();
        let g = build_timed(&net, &ReachOptions::default()).unwrap();
        // (a=1), (in flight, 3 left), (b=1).
        assert_eq!(g.state_count(), 3);
        let mid = g.state(1);
        assert_eq!(mid.in_flight.len(), 1);
        assert_eq!(mid.in_flight[0].1, 3);
        // The advance edge carries the delay.
        assert!(g
            .successors(1)
            .iter()
            .any(|&(l, _)| l == EdgeLabel::Advance(3)));
    }

    #[test]
    fn timed_interleaves_concurrent_firings() {
        let mut b = NetBuilder::new("t2");
        b.place("a", 2);
        b.place("b", 0);
        b.transition("work").input("a").output("b").firing(2).add();
        let net = b.build().unwrap();
        let g = build_timed(&net, &ReachOptions::default()).unwrap();
        // Both tokens must start before time advances (maximal progress):
        // (2,0,[]) -> (1,0,[2]) -> (0,0,[2,2]) -> (0,2,[]) done.
        assert_eq!(g.state_count(), 4);
        assert!(g.deadlocks().len() == 1, "final state is quiescent");
    }

    #[test]
    fn timed_graph_respects_concurrency_caps() {
        let mut b = NetBuilder::new("cap");
        b.place("q", 2);
        b.place("done", 0);
        b.transition("serve")
            .input("q")
            .output("done")
            .firing(2)
            .max_concurrent(1)
            .add();
        let net = b.build().unwrap();
        let g = build_timed(&net, &ReachOptions::default()).unwrap();
        for i in 0..g.state_count() {
            let inflight = g.state(i).in_flight.len();
            assert!(inflight <= 1, "state {i} has {inflight} concurrent serves");
        }
    }

    #[test]
    fn timed_rejects_enabling_and_expression_delays() {
        let mut b = NetBuilder::new("e");
        b.place("a", 1);
        b.transition("t").input("a").enabling(2).add();
        let net = b.build().unwrap();
        assert!(matches!(
            build_timed(&net, &ReachOptions::default()),
            Err(ReachError::EnablingTimesUnsupported { .. })
        ));

        let mut b = NetBuilder::new("e2");
        b.place("a", 1);
        b.var("d", 1);
        b.transition("t")
            .input("a")
            .firing_expr(pnut_core::Expr::parse("d").unwrap())
            .add();
        let net = b.build().unwrap();
        assert!(matches!(
            build_timed(&net, &ReachOptions::default()),
            Err(ReachError::NonConstantDelay { .. })
        ));
    }

    #[test]
    fn duplicate_input_arcs_merge_and_cannot_underflow() {
        // NetBuilder merges duplicate arcs, so two weight-1 inputs from
        // one place require 2 tokens — with only 1 the transition is
        // disabled outright (the seed checked each arc in isolation,
        // considered it enabled, then underflowed under a bare
        // debug_assert!). With 2 tokens it fires normally.
        let dup = |tokens| {
            let mut b = NetBuilder::new("dup");
            b.place("p", tokens);
            b.place("q", 0);
            b.transition("t").input("p").input("p").output("q").add();
            b.build().unwrap()
        };
        let g = build_untimed(&dup(1), &ReachOptions::default()).unwrap();
        assert_eq!(g.state_count(), 1, "merged arcs need 2 tokens");
        assert_eq!(g.deadlocks(), vec![0]);

        let g = build_untimed(&dup(2), &ReachOptions::default()).unwrap();
        assert_eq!(g.state_count(), 2);
        let fired = g.state(1);
        assert_eq!(fired.marking.as_slice(), &[0, 1]);
    }

    #[test]
    fn csr_rows_partition_the_edge_list() {
        let net = ring(2);
        let g = build_untimed(&net, &ReachOptions::default()).unwrap();
        let total: usize = (0..g.state_count()).map(|i| g.successors(i).len()).sum();
        assert_eq!(total, g.edge_count());
        for i in 0..g.state_count() {
            for &(_, target) in g.successors(i) {
                assert!((target as usize) < g.state_count());
            }
        }
    }

    #[test]
    fn rebuilds_are_bit_identical() {
        let net = ring(3);
        let a = build_untimed(&net, &ReachOptions::default()).unwrap();
        let b = build_untimed(&net, &ReachOptions::default()).unwrap();
        assert_eq!(a, b);
    }
}
