//! Vector clocks — the happens-before lattice of the race detector.
//!
//! Component `t` of a clock counts the instrumented operations of
//! virtual thread `t` that are *known to have happened before* the
//! clock's owner. Every instrumented operation increments the acting
//! thread's own component; synchronization edges (mutex release →
//! acquire, `Release` store → `Acquire` load, spawn, join) propagate
//! knowledge by joining clocks. An access epoch `(t, c)` happened
//! before an observer iff the observer's clock has component `t ≥ c`.

/// A vector clock over virtual-thread ids (grown on demand).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u64>);

impl VClock {
    pub(crate) fn new() -> Self {
        VClock(Vec::new())
    }

    pub(crate) fn get(&self, tid: usize) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    pub(crate) fn set(&mut self, tid: usize, v: u64) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] = v;
    }

    /// Advance the owner's own component; returns the new value (the
    /// epoch of the operation being recorded).
    pub(crate) fn inc(&mut self, tid: usize) -> u64 {
        let v = self.get(tid) + 1;
        self.set(tid, v);
        v
    }

    /// Pointwise maximum: afterwards `self` knows everything `other`
    /// knew.
    pub(crate) fn join(&mut self, other: &VClock) {
        for (t, &v) in other.0.iter().enumerate() {
            if v > self.get(t) {
                self.set(t, v);
            }
        }
    }

    /// Forget everything (a `Relaxed` store wipes the release clock of
    /// an atomic: later readers of the new value synchronize with
    /// nothing).
    pub(crate) fn clear(&mut self) {
        self.0.clear();
    }

    /// Whether epoch `(tid, c)` happened before the owner of this
    /// clock.
    pub(crate) fn knows(&self, tid: usize, c: u64) -> bool {
        self.get(tid) >= c
    }

    /// Iterate the non-zero components.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.0
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v > 0)
            .map(|(t, &v)| (t, v))
    }
}
