//! `pnut-race` — an in-tree interleaving checker and race detector.
//!
//! This module is the `race-model` personality behind [`crate::sync`]:
//! compile `pnut-reach` with `--features race-model` and every atomic,
//! mutex, and raw-pointer operation of the pager protocol runs under a
//! deterministic cooperative scheduler that explores thread
//! interleavings **exhaustively** within a preemption bound, while a
//! vector-clock happens-before detector and a generation-tagged
//! allocation registry turn data races, use-after-frees, leaks, and
//! deadlocks into deterministic failures carrying a replayable
//! schedule. It is an in-tree analogue of `loom` (the external crate
//! is unavailable in this offline build), specialized to exactly the
//! primitive vocabulary the pager uses.
//!
//! # Using it
//!
//! ```ignore
//! use pnut_reach::race;
//!
//! let stats = race::check(&race::Options::default(), || {
//!     // Build state fresh per execution, spawn virtual threads,
//!     // assert invariants. Runs once per explored interleaving.
//!     race::scope(|s| {
//!         s.spawn(|| { /* thread 1 */ });
//!         s.spawn(|| { /* thread 2 */ });
//!     });
//! })?;
//! ```
//!
//! On failure, [`Failure::schedule`] feeds [`replay`] to re-run the
//! exact interleaving — the debugging loop is deterministic end to
//! end. The pager protocol scenarios and the mutation battery live in
//! `crates/reach/tests/race_model.rs`; the formal argument the checker
//! validates is written out in `docs/CONCURRENCY.md`.
//!
//! # What it checks — and what it doesn't
//!
//! The scheduler enumerates *sequentially consistent* interleavings;
//! weak-memory effects are approximated through the happens-before
//! lens: an access must be ordered (by the declared `Ordering`s,
//! mutexes, spawn/join) after the write that produced the value it
//! reads, or the execution fails. That catches missing-`Release`/
//! `Acquire` bugs precisely, but it is a race *detector* over SC
//! executions, not an operational weak-memory simulator (no store
//! buffering, no load reordering). Preemption bounding (default 2)
//! keeps exploration tractable; it is complete for all schedules
//! within the bound, which is where almost all real concurrency bugs
//! live.

mod clock;
mod sched;
pub mod sync;

pub use sched::{check, replay, yield_now, Failure, FailureKind, JoinHandle, Options, Stats};

pub(crate) use sched::tag_active;

use std::cell::RefCell;
use std::marker::PhantomData;

/// A scope for spawning virtual threads that borrow from the enclosing
/// stack frame (the model's `std::thread::scope`).
///
/// Every spawned thread is joined when the scope closure returns; a
/// panicking closure instead aborts the whole execution (recorded as
/// [`FailureKind::Panic`]), so no spawned thread ever outlives the
/// borrows it captured.
pub struct Scope<'env> {
    handles: RefCell<Vec<JoinHandle>>,
    /// Invariant over `'env`, like `std::thread::Scope`.
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'env> {
    /// Spawn a virtual thread. Must be called under [`check`] /
    /// [`replay`]; panics otherwise.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        let boxed: Box<dyn FnOnce() + Send + 'env> = Box::new(f);
        // SAFETY: the closure only runs on a virtual thread of the
        // current execution, and every virtual thread provably ends
        // before `scope` returns: on the normal path `scope` joins all
        // handles; on the panic path the execution aborts and the
        // orchestrator (`run_once`) joins every OS thread — while the
        // scheduler guarantees no user code runs once the abort flag
        // is set. Either way the `'env` borrows outlive all use, so
        // erasing the lifetime to `'static` for `std::thread::spawn`
        // is sound (the same argument as `std::thread::scope`).
        let boxed: Box<dyn FnOnce() + Send + 'static> = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send + 'static>>(
                boxed,
            )
        };
        self.handles.borrow_mut().push(sched::spawn_virtual(boxed));
    }
}

/// Run `f` with a [`Scope`], joining every spawned virtual thread
/// before returning (join edges feed the vector clocks, so accesses
/// after the scope happen-after everything the threads did).
pub fn scope<'env, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'env>) -> R,
{
    let sc = Scope {
        handles: RefCell::new(Vec::new()),
        _env: PhantomData,
    };
    let r = f(&sc);
    for h in sc.handles.into_inner() {
        h.join();
    }
    r
}

#[cfg(test)]
mod tests {
    use super::sync::{raw, AtomicPtr, AtomicU64, Mutex};
    use super::*;
    use std::sync::atomic::Ordering;

    fn opts() -> Options {
        Options::default()
    }

    #[test]
    fn exhaustive_counter_is_deterministic() {
        let stats = check(&opts(), || {
            let counter = AtomicU64::new(0);
            scope(|s| {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            });
            assert_eq!(counter.load(Ordering::SeqCst), 2);
        })
        .expect("atomic counter has no defects");
        assert!(
            stats.executions > 1,
            "two racing increments must explore multiple interleavings, got {}",
            stats.executions
        );
    }

    #[test]
    fn mutex_protected_writes_pass() {
        check(&opts(), || {
            let cell = raw::alloc(0u64);
            let m = Mutex::new(());
            scope(|s| {
                for _ in 0..2 {
                    s.spawn(|| {
                        let _g = m.lock().expect("model lock");
                        // SAFETY: exclusive by mutual exclusion; the
                        // model verifies this claim.
                        let v = unsafe { raw::deref_mut(cell) };
                        *v += 1;
                    });
                }
            });
            // SAFETY: scope joined both writers; freed below, after
            // the last use.
            assert_eq!(*unsafe { raw::deref(cell) }, 2);
            // SAFETY: no references outlive this point.
            unsafe { raw::free(cell) };
        })
        .expect("mutex-protected counter has no defects");
    }

    #[test]
    fn unsynchronized_writes_race() {
        let err = check(&opts(), || {
            let cell = raw::alloc(0u64);
            scope(|s| {
                for _ in 0..2 {
                    s.spawn(|| {
                        // SAFETY: intentionally wrong — two threads
                        // write without synchronization; the model
                        // must catch it.
                        let v = unsafe { raw::deref_mut(cell) };
                        *v += 1;
                    });
                }
            });
            // SAFETY: scope joined the writers.
            unsafe { raw::free(cell) };
        })
        .expect_err("unsynchronized writes must race");
        assert_eq!(err.kind, FailureKind::Race, "{err}");
    }

    #[test]
    fn relaxed_publication_races_and_release_fixes_it() {
        let publish = |publish_order: Ordering| {
            move || {
                let slot = AtomicPtr::new(raw::null::<u64>());
                scope(|s| {
                    s.spawn(|| {
                        slot.store(raw::alloc(41u64), publish_order);
                    });
                    s.spawn(|| {
                        let p = slot.load(Ordering::Acquire);
                        if !p.is_null() {
                            // SAFETY: non-null ⇒ published; whether the
                            // pointee is *visible* is exactly what the
                            // model checks.
                            assert_eq!(*unsafe { raw::deref(p) }, 41);
                        }
                    });
                });
                let p = slot.load(Ordering::Acquire);
                if !p.is_null() {
                    // SAFETY: both threads joined; last use.
                    unsafe { raw::free(p) };
                }
            }
        };
        let err = check(&opts(), publish(Ordering::Relaxed))
            .expect_err("Relaxed publication must race with the consumer's deref");
        assert_eq!(err.kind, FailureKind::Race, "{err}");
        check(&opts(), publish(Ordering::Release))
            .expect("Release publication synchronizes with the Acquire load");
    }

    #[test]
    fn use_after_free_is_reported_and_replayable() {
        let scenario = || {
            let slot = AtomicPtr::new(raw::alloc(7u64));
            scope(|s| {
                s.spawn(|| {
                    let p = slot.load(Ordering::Acquire);
                    if !p.is_null() {
                        // SAFETY: intentionally unsound — the main
                        // thread frees concurrently.
                        let _ = *unsafe { raw::deref(p) };
                    }
                });
                let p = slot.swap(raw::null(), Ordering::AcqRel);
                // SAFETY: intentionally unsound (no join before free).
                unsafe { raw::free(p) };
            });
        };
        let err = check(&opts(), scenario).expect_err("freeing under a reader must fail");
        assert!(
            matches!(err.kind, FailureKind::Race | FailureKind::UseAfterFree),
            "{err}"
        );
        let replayed = replay(&opts(), &err.schedule, scenario)
            .expect("recorded schedule must reproduce the failure");
        assert_eq!(replayed.kind, err.kind, "replay diverged: {replayed}");
    }

    #[test]
    fn leaked_allocation_is_reported() {
        let err = check(&opts(), || {
            let _ = raw::alloc(3u32);
        })
        .expect_err("unfreed tracked allocation must be a leak");
        assert_eq!(err.kind, FailureKind::Leak, "{err}");
    }

    #[test]
    fn lock_order_inversion_deadlocks() {
        let err = check(&opts(), || {
            let a = Mutex::new(());
            let b = Mutex::new(());
            scope(|s| {
                s.spawn(|| {
                    let _ga = a.lock().expect("model lock");
                    let _gb = b.lock().expect("model lock");
                });
                s.spawn(|| {
                    let _gb = b.lock().expect("model lock");
                    let _ga = a.lock().expect("model lock");
                });
            });
        })
        .expect_err("ABBA locking must deadlock in some interleaving");
        assert_eq!(err.kind, FailureKind::Deadlock, "{err}");
    }

    #[test]
    fn scenario_panic_is_captured_with_schedule() {
        let flag = AtomicU64::new(0);
        let err = check(&opts(), || {
            flag.store(0, Ordering::SeqCst);
            scope(|s| {
                s.spawn(|| {
                    flag.store(1, Ordering::SeqCst);
                });
                s.spawn(|| {
                    // Fails only when the sibling ran first — the
                    // explorer must find that interleaving.
                    assert_eq!(flag.load(Ordering::SeqCst), 0, "sibling won the race");
                });
            });
        })
        .expect_err("the assert must fail in some interleaving");
        assert_eq!(err.kind, FailureKind::Panic, "{err}");
        assert!(err.message.contains("sibling won the race"), "{err}");
    }

    #[test]
    fn passing_schedule_replays_clean() {
        let outcome = replay(&opts(), &[], || {
            let c = AtomicU64::new(0);
            c.fetch_add(1, Ordering::SeqCst);
            assert_eq!(c.load(Ordering::SeqCst), 1);
        });
        assert!(outcome.is_none(), "single-threaded run cannot fail");
    }

    #[test]
    fn mutation_tags_reach_the_facade() {
        use crate::sync::mutation;
        let mut o = opts();
        o.tags = vec![mutation::RELAXED_INSTALL];
        check(&o, || {
            assert!(mutation::active(mutation::RELAXED_INSTALL));
            assert!(!mutation::active(mutation::FREE_IN_FAULT));
        })
        .expect("tag probing has no defects");
        // Outside any execution the facade reports inactive.
        assert!(!mutation::active(mutation::RELAXED_INSTALL));
    }
}
