//! The deterministic cooperative scheduler and its DFS explorer.
//!
//! # Execution model
//!
//! A *virtual thread* is a real OS thread that only runs while the
//! scheduler says it is *active*; all others are parked on a condvar.
//! Every instrumented operation (atomic access, mutex acquire/release,
//! tracked-pointer access, spawn, join) first calls [`reschedule`],
//! which is a **choice point**: the scheduler picks which ready thread
//! runs next. Exactly one thread executes user code at any instant, so
//! an execution is fully described by the sequence of choices made at
//! choice points with more than one option — the *branch string*.
//!
//! # Exploration
//!
//! [`check`] enumerates branch strings depth-first: run an execution
//! following a prescribed prefix (defaulting to choice 0 afterwards),
//! record every branch point's `(chosen, options)`, then backtrack to
//! the deepest branch point with an untried sibling and re-run with
//! that prefix. Preemption bounding keeps the tree tractable: once an
//! execution has context-switched away from a *ready* thread
//! `preemption_bound` times, the active thread runs on without further
//! branching (forced switches at blocking operations are free). This
//! explores every interleaving with at most that many preemptions —
//! the regime where real concurrency bugs overwhelmingly live.
//!
//! # Detection
//!
//! * **Races** — vector clocks ([`super::clock::VClock`]): each thread
//!   owns a clock, mutexes and atomics carry synchronization clocks,
//!   and every tracked-pointer access is checked for a happens-before
//!   edge against the cell's last write epoch and read clock.
//! * **Use-after-free / ABA** — an allocation registry keyed by address
//!   with generation counters; a dereference whose generation does not
//!   match the live cell is a deterministic failure even if the
//!   allocator reused the address.
//! * **Leaks** — live registry entries when an execution ends.
//! * **Deadlocks** — a choice point with no ready thread while
//!   unfinished threads remain.
//!
//! Every failure carries the branch string that produced it;
//! [`replay`] re-runs exactly that schedule.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

use super::clock::VClock;

/// Exploration parameters for [`check`] / [`replay`].
#[derive(Clone, Debug)]
pub struct Options {
    /// Maximum context switches away from a still-ready thread per
    /// execution. Forced switches (current thread blocked or finished)
    /// are not counted.
    pub preemption_bound: u32,
    /// Abort with [`FailureKind::ExplorationBudget`] after this many
    /// executions — a safety net against state-space blowups, not a
    /// tuning knob.
    pub max_executions: u64,
    /// Active mutation tags: [`crate::sync::mutation::active`] returns
    /// `true` inside the model exactly for tags listed here.
    pub tags: Vec<&'static str>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            preemption_bound: 2,
            max_executions: 500_000,
            tags: Vec::new(),
        }
    }
}

/// Aggregate exploration statistics returned by a passing [`check`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Stats {
    /// Number of complete executions explored.
    pub executions: u64,
    /// Deepest branch string seen.
    pub max_branch_points: usize,
}

/// What kind of defect the checker found.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// Two accesses to a tracked allocation without a happens-before
    /// edge between them.
    Race,
    /// Dereference of a freed or stale-generation pointer.
    UseAfterFree,
    /// Tracked allocations still live when the execution ended.
    Leak,
    /// No ready thread while unfinished threads remain.
    Deadlock,
    /// A virtual thread panicked (assertion failure in a scenario).
    Panic,
    /// `max_executions` exhausted before the space was covered.
    ExplorationBudget,
    /// A replayed schedule prescribed a choice that does not exist —
    /// the code under test diverged from the recorded run.
    ReplayDivergence,
}

/// A defect plus the schedule that reaches it.
#[derive(Clone, Debug)]
pub struct Failure {
    pub kind: FailureKind,
    pub message: String,
    /// Branch string reproducing the failing execution via [`replay`].
    pub schedule: Vec<u8>,
    /// Human-readable tail of the scheduling decisions that led here.
    pub trace: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{:?}: {}", self.kind, self.message)?;
        writeln!(f, "schedule: {:?}", self.schedule)?;
        write!(f, "{}", self.trace)
    }
}

impl std::error::Error for Failure {}

/// Panic payload used to tear an execution down after a failure has
/// been recorded; thread wrappers swallow it.
struct Abort;

/// Teardown panics are control flow, not errors: keep the default
/// panic hook from printing one message per aborted execution (DFS
/// aborts thousands of them). Real panics still print via the saved
/// hook.
fn silence_abort_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !info.payload().is::<Abort>() {
                prev(info);
            }
        }));
    });
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Branch {
    chosen: u8,
    options: u8,
}

struct Step {
    tid: usize,
    label: &'static str,
    ran: usize,
}

/// Runtime state of one model mutex (`sync` holds the release clock
/// accumulated across the lock's critical sections).
pub(crate) struct MutexRt {
    st: StdMutex<MutexState>,
}

struct MutexState {
    holder: Option<usize>,
    sync: VClock,
}

impl MutexRt {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(MutexRt {
            st: StdMutex::new(MutexState {
                holder: None,
                sync: VClock::new(),
            }),
        })
    }
}

/// Release clock of one model atomic.
pub(crate) struct AtomicMeta {
    sync: StdMutex<VClock>,
}

impl AtomicMeta {
    pub(crate) fn new() -> Self {
        AtomicMeta {
            sync: StdMutex::new(VClock::new()),
        }
    }
}

/// How an atomic operation participates in synchronization.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Access {
    Load,
    Store,
    Rmw,
}

/// One tracked heap allocation.
struct Cell {
    gen: u64,
    alive: bool,
    /// Epoch of the last write (allocation counts as the first write).
    write: (usize, u64),
    /// Clock of reads since the last write.
    reads: VClock,
    what: &'static str,
}

enum Status {
    Ready,
    BlockedMutex(Arc<MutexRt>),
    BlockedJoin(usize),
    Finished,
}

struct ThreadSlot {
    status: Status,
    final_clock: Option<VClock>,
}

struct ExecState {
    threads: Vec<ThreadSlot>,
    active: usize,
    preemptions: u32,
    /// Branch choices to follow (replay / DFS prefix); past the end,
    /// choice 0 is taken.
    prescribed: Vec<u8>,
    cursor: usize,
    branches: Vec<Branch>,
    steps: Vec<Step>,
    aborting: bool,
    failure: Option<Failure>,
    registry: HashMap<usize, Cell>,
    next_gen: u64,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct Execution {
    state: StdMutex<ExecState>,
    cv: Condvar,
    preemption_bound: u32,
    tags: Vec<&'static str>,
}

/// Per-OS-thread binding to the execution it belongs to.
pub(crate) struct Ctx {
    exec: Arc<Execution>,
    tid: usize,
    clock: VClock,
}

thread_local! {
    static CURRENT: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// Run `f` with the current virtual-thread context, or `None` when the
/// calling OS thread is not a virtual thread (production fallback) or
/// is unwinding (teardown must never re-enter the scheduler).
fn with_ctx<R>(f: impl FnOnce(Option<&mut Ctx>) -> R) -> R {
    if std::thread::panicking() {
        return f(None);
    }
    CURRENT.with(|c| {
        let mut b = c.borrow_mut();
        f(b.as_mut())
    })
}

/// Whether mutation `tag` is switched on for the current execution.
pub(crate) fn tag_active(tag: &str) -> bool {
    with_ctx(|ctx| ctx.is_some_and(|c| c.exec.tags.contains(&tag)))
}

fn lock_state(exec: &Execution) -> StdMutexGuard<'_, ExecState> {
    exec.state.lock().unwrap_or_else(|e| e.into_inner())
}

/// Whether `PNUT_RACE_DEBUG` is set: stream every scheduling decision
/// and DFS prefix to stderr (for debugging the checker itself).
fn debug_enabled() -> bool {
    static FLAG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FLAG.get_or_init(|| std::env::var_os("PNUT_RACE_DEBUG").is_some())
}

/// Unwind the calling virtual thread to tear the execution down.
///
/// Teardown ordering is load-bearing: scenario state (the store under
/// test) lives in **thread 0's** stack frame, and the other threads'
/// unwinding drops guards that reference into it (e.g. a fault-lock
/// guard whose `std` mutex is a field of the store). So children must
/// finish unwinding before thread 0's frames drop — thread 0 parks
/// here until every other thread reports `Finished` (set *after* its
/// user frames are fully unwound), then unwinds itself.
fn unwind_for_abort(exec: &Execution, mut st: StdMutexGuard<'_, ExecState>, tid: usize) -> ! {
    if tid == 0 {
        while !st
            .threads
            .iter()
            .enumerate()
            .all(|(i, t)| i == 0 || matches!(t.status, Status::Finished))
        {
            st = exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
    drop(st);
    std::panic::panic_any(Abort);
}

/// Record a failure (first one wins), flip the execution into abort
/// mode, wake everyone, and unwind the calling thread (children first,
/// thread 0 last — see [`unwind_for_abort`]).
fn fail(
    exec: &Execution,
    st: StdMutexGuard<'_, ExecState>,
    tid: usize,
    kind: FailureKind,
    message: String,
) -> ! {
    let mut st = st;
    if st.failure.is_none() {
        st.failure = Some(Failure {
            kind,
            message,
            schedule: st.branches.iter().map(|b| b.chosen).collect(),
            trace: render_trace(&st.steps),
        });
    }
    st.aborting = true;
    exec.cv.notify_all();
    unwind_for_abort(exec, st, tid);
}

fn render_trace(steps: &[Step]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let skip = steps.len().saturating_sub(60);
    if skip > 0 {
        let _ = writeln!(out, "  … {skip} earlier steps elided …");
    }
    for (i, s) in steps.iter().enumerate().skip(skip) {
        let _ = if s.tid == s.ran {
            writeln!(out, "  #{i:<4} t{}: {}", s.tid, s.label)
        } else {
            writeln!(
                out,
                "  #{i:<4} t{}: {} → switch to t{}",
                s.tid, s.label, s.ran
            )
        };
    }
    out
}

/// Outcome of one scheduling decision.
enum Pick {
    /// Run this thread next (already marked active, step recorded).
    Run(usize),
    /// Every thread has finished — the execution is over.
    AllDone,
    /// The decision itself found a defect; the caller (which owns the
    /// state guard) must call [`fail`].
    Defect(FailureKind, String),
}

/// Pick the next thread to run. `current` is the calling virtual
/// thread, or `None` when called from a finishing thread's epilogue.
fn pick_next(
    exec: &Execution,
    st: &mut ExecState,
    label: &'static str,
    current: Option<usize>,
) -> Pick {
    let options: Vec<usize> = st
        .threads
        .iter()
        .enumerate()
        .filter(|(_, t)| matches!(t.status, Status::Ready))
        .map(|(i, _)| i)
        .collect();
    if options.is_empty() {
        if st
            .threads
            .iter()
            .all(|t| matches!(t.status, Status::Finished))
        {
            return Pick::AllDone;
        }
        let blocked: Vec<String> = st
            .threads
            .iter()
            .enumerate()
            .filter_map(|(i, t)| match t.status {
                Status::BlockedMutex(_) => Some(format!("t{i} waiting on a mutex")),
                Status::BlockedJoin(on) => Some(format!("t{i} joining t{on}")),
                _ => None,
            })
            .collect();
        return Pick::Defect(
            FailureKind::Deadlock,
            format!("deadlock at `{label}`: {}", blocked.join(", ")),
        );
    }
    let me_ready = current.is_some_and(|tid| matches!(st.threads[tid].status, Status::Ready));
    let chosen = if me_ready && st.preemptions >= exec.preemption_bound {
        // Preemption budget spent: a ready thread keeps running.
        current.unwrap()
    } else if options.len() == 1 {
        options[0]
    } else {
        let c = if st.cursor < st.prescribed.len() {
            st.prescribed[st.cursor] as usize
        } else {
            0
        };
        st.cursor += 1;
        if c >= options.len() {
            return Pick::Defect(
                FailureKind::ReplayDivergence,
                format!(
                    "schedule prescribed option {c} of {} at `{label}` — \
                     the program diverged from the recorded run",
                    options.len()
                ),
            );
        }
        st.branches.push(Branch {
            chosen: c as u8,
            options: options.len() as u8,
        });
        options[c]
    };
    if me_ready && chosen != current.unwrap() {
        st.preemptions += 1;
    }
    if debug_enabled() {
        eprintln!(
            "  step {}: t{:?} at `{label}` -> t{chosen}",
            st.steps.len(),
            current
        );
    }
    st.steps.push(Step {
        tid: current.unwrap_or(chosen),
        label,
        ran: chosen,
    });
    st.active = chosen;
    Pick::Run(chosen)
}

/// Choice point: yield to the scheduler and return once this thread is
/// active again. The caller's status must already reflect whether it
/// can continue (`Ready`) or is blocked.
fn reschedule(ctx: &mut Ctx, label: &'static str) {
    let exec = ctx.exec.clone();
    let mut st = lock_state(&exec);
    if st.aborting {
        unwind_for_abort(&exec, st, ctx.tid);
    }
    match pick_next(&exec, &mut st, label, Some(ctx.tid)) {
        Pick::Run(tid) if tid == ctx.tid => return,
        Pick::Defect(kind, msg) => fail(&exec, st, ctx.tid, kind, msg),
        _ => exec.cv.notify_all(),
    }
    loop {
        st = exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        if st.aborting {
            unwind_for_abort(&exec, st, ctx.tid);
        }
        if st.active == ctx.tid && matches!(st.threads[ctx.tid].status, Status::Ready) {
            return;
        }
    }
}

/// Public yield: an extra interleaving point inside scenario code.
pub fn yield_now() {
    with_ctx(|ctx| {
        if let Some(ctx) = ctx {
            reschedule(ctx, "yield");
        }
    });
}

// ---------------------------------------------------------------------
// Synchronization-object hooks (called from `race::sync` model types)
// ---------------------------------------------------------------------

/// Acquire a model mutex: block (cooperatively) until it is free.
/// Outside the model this is a no-op — the caller's std mutex provides
/// real exclusion.
pub(crate) fn mutex_lock(rt: &Arc<MutexRt>) {
    with_ctx(|ctx| {
        let Some(ctx) = ctx else { return };
        loop {
            reschedule(ctx, "Mutex::lock");
            let mut ms = rt.st.lock().unwrap_or_else(|e| e.into_inner());
            match ms.holder {
                None => {
                    ms.holder = Some(ctx.tid);
                    ctx.clock.join(&ms.sync);
                    drop(ms);
                    ctx.clock.inc(ctx.tid);
                    return;
                }
                Some(_) => {
                    drop(ms);
                    let exec = ctx.exec.clone();
                    let mut st = lock_state(&exec);
                    st.threads[ctx.tid].status = Status::BlockedMutex(rt.clone());
                }
            }
        }
    });
}

/// Release a model mutex: publish the release clock and wake waiters.
pub(crate) fn mutex_unlock(rt: &Arc<MutexRt>) {
    with_ctx(|ctx| {
        let Some(ctx) = ctx else { return };
        {
            let mut ms = rt.st.lock().unwrap_or_else(|e| e.into_inner());
            debug_assert_eq!(ms.holder, Some(ctx.tid), "unlock by non-holder");
            ms.holder = None;
            ms.sync.join(&ctx.clock);
        }
        ctx.clock.inc(ctx.tid);
        {
            let exec = ctx.exec.clone();
            let mut st = lock_state(&exec);
            for t in st.threads.iter_mut() {
                if let Status::BlockedMutex(waiting_on) = &t.status {
                    if Arc::ptr_eq(waiting_on, rt) {
                        t.status = Status::Ready;
                    }
                }
            }
        }
        reschedule(ctx, "Mutex::unlock");
    });
}

fn is_acquire(order: std::sync::atomic::Ordering) -> bool {
    use std::sync::atomic::Ordering::*;
    matches!(order, Acquire | AcqRel | SeqCst)
}

fn is_release(order: std::sync::atomic::Ordering) -> bool {
    use std::sync::atomic::Ordering::*;
    matches!(order, Release | AcqRel | SeqCst)
}

/// Perform one atomic operation: a choice point, the value operation
/// `f` itself, then the clock transfer its `Ordering` justifies.
pub(crate) fn atomic_op<R>(
    meta: &AtomicMeta,
    access: Access,
    order: std::sync::atomic::Ordering,
    label: &'static str,
    f: impl FnOnce() -> R,
) -> R {
    with_ctx(|ctx| {
        let Some(ctx) = ctx else { return f() };
        reschedule(ctx, label);
        let r = f();
        let mut sync = meta.sync.lock().unwrap_or_else(|e| e.into_inner());
        match access {
            Access::Load => {
                if is_acquire(order) {
                    ctx.clock.join(&sync);
                }
            }
            Access::Store => {
                if is_release(order) {
                    *sync = ctx.clock.clone();
                } else {
                    // A relaxed store publishes a value with no
                    // ordering: readers of it synchronize with nothing.
                    sync.clear();
                }
            }
            Access::Rmw => {
                if is_acquire(order) {
                    ctx.clock.join(&sync);
                }
                if is_release(order) {
                    sync.join(&ctx.clock);
                }
                // A fully relaxed RMW leaves the release clock intact:
                // it continues the release sequence of a prior store.
            }
        }
        drop(sync);
        ctx.clock.inc(ctx.tid);
        r
    })
}

// ---------------------------------------------------------------------
// Tracked allocations
// ---------------------------------------------------------------------

/// Register a fresh allocation; returns its generation tag (0 outside
/// the model — untracked).
pub(crate) fn track_alloc(addr: usize, what: &'static str) -> u64 {
    with_ctx(|ctx| {
        let Some(ctx) = ctx else { return 0 };
        reschedule(ctx, "alloc");
        let epoch = ctx.clock.inc(ctx.tid);
        let exec = ctx.exec.clone();
        let mut st = lock_state(&exec);
        st.next_gen += 1;
        let gen = st.next_gen;
        let prev = st.registry.insert(
            addr,
            Cell {
                gen,
                alive: true,
                write: (ctx.tid, epoch),
                reads: VClock::new(),
                what,
            },
        );
        debug_assert!(
            prev.is_none_or(|c| !c.alive),
            "allocator returned a live address"
        );
        gen
    })
}

/// Check a shared (read) access to a tracked allocation.
pub(crate) fn track_read(addr: usize, gen: u64, what: &'static str) {
    track_access(addr, gen, what, false);
}

/// Check an exclusive (write) access to a tracked allocation.
pub(crate) fn track_write(addr: usize, gen: u64, what: &'static str) {
    track_access(addr, gen, what, true);
}

fn track_access(addr: usize, gen: u64, what: &'static str, exclusive: bool) {
    with_ctx(|ctx| {
        let Some(ctx) = ctx else { return };
        let label = if exclusive { "deref_mut" } else { "deref" };
        reschedule(ctx, label);
        let epoch = ctx.clock.inc(ctx.tid);
        let exec = ctx.exec.clone();
        let mut st = lock_state(&exec);
        // Copy the cell's verdict-relevant fields out so `fail` can
        // borrow the state mutably.
        let (alive, cell_gen, write, racy_read) = match st.registry.get(&addr) {
            // Allocated outside the model (or never tracked): nothing
            // to check against.
            None => return,
            Some(cell) => (
                cell.alive,
                cell.gen,
                cell.write,
                if exclusive {
                    cell.reads.iter().find(|&(t, c)| !ctx.clock.knows(t, c))
                } else {
                    None
                },
            ),
        };
        if !alive || cell_gen != gen {
            let msg = format!(
                "t{} dereferenced a dangling `{what}` pointer \
                 (allocation {}, pointer generation {gen})",
                ctx.tid,
                if alive { "recycled" } else { "freed" },
            );
            fail(&exec, st, ctx.tid, FailureKind::UseAfterFree, msg);
        }
        let (wt, wc) = write;
        if !ctx.clock.knows(wt, wc) {
            let msg = format!(
                "t{} read `{what}` without a happens-before edge from \
                 t{wt}'s initializing write — the reader may observe a \
                 partially constructed value",
                ctx.tid
            );
            fail(&exec, st, ctx.tid, FailureKind::Race, msg);
        }
        if let Some((rt, _)) = racy_read {
            let msg = format!(
                "t{} wrote `{what}` concurrently with t{rt}'s read \
                 — no happens-before edge orders them",
                ctx.tid
            );
            fail(&exec, st, ctx.tid, FailureKind::Race, msg);
        }
        let cell = st.registry.get_mut(&addr).expect("checked above");
        if exclusive {
            cell.write = (ctx.tid, epoch);
            cell.reads.clear();
        } else {
            let prev = cell.reads.get(ctx.tid);
            cell.reads.set(ctx.tid, prev.max(epoch));
        }
    });
}

/// Check and record a free.
///
/// A free is *stricter* than a write. A tracked access is an event,
/// but the reference a `deref` hands out lives on invisibly afterwards
/// (it is a plain `&T`, not a guard) — an epoch-level happens-before
/// edge to the recorded access does **not** prove the borrow has
/// ended. (Concretely: a reader can deref inside a critical section,
/// release the lock, and still be using the borrow when the freeing
/// thread — ordered after it by the lock — reclaims the memory. The
/// model would deadlock-free "pass" while the real execution reads
/// freed memory.) A borrow cannot outlive its thread, though, so the
/// sound requirement is: every other thread that ever touched the
/// allocation has *terminated*, and its termination happens-before the
/// free. That is exactly the discipline the pager encodes with `&mut
/// self` frees — the borrow checker grants `&mut` only once every
/// reader thread has been joined.
pub(crate) fn track_free(addr: usize, gen: u64, what: &'static str) {
    with_ctx(|ctx| {
        let Some(ctx) = ctx else { return };
        reschedule(ctx, "free");
        ctx.clock.inc(ctx.tid);
        let exec = ctx.exec.clone();
        let mut st = lock_state(&exec);
        let (alive, cell_gen, accessors) = match st.registry.get(&addr) {
            None => return,
            Some(cell) => {
                let mut acc: Vec<usize> = cell.reads.iter().map(|(t, _)| t).collect();
                acc.push(cell.write.0);
                (cell.alive, cell.gen, acc)
            }
        };
        if !alive || cell_gen != gen {
            let msg = format!("t{} double-freed `{what}`", ctx.tid);
            fail(&exec, st, ctx.tid, FailureKind::UseAfterFree, msg);
        }
        for t in accessors {
            if t == ctx.tid {
                continue;
            }
            let slot = &st.threads[t];
            let ended = matches!(slot.status, Status::Finished)
                && slot
                    .final_clock
                    .as_ref()
                    .is_some_and(|fc| ctx.clock.knows(t, fc.get(t)));
            if !ended {
                let msg = format!(
                    "t{} freed `{what}` while t{t} may still hold a \
                     borrow of it — a free must happen-after the \
                     accessing thread's termination (join it first; \
                     the pager grants frees only under `&mut self`)",
                    ctx.tid
                );
                fail(&exec, st, ctx.tid, FailureKind::Race, msg);
            }
        }
        let cell = st.registry.get_mut(&addr).expect("checked above");
        cell.alive = false;
    });
}

// ---------------------------------------------------------------------
// Virtual threads
// ---------------------------------------------------------------------

/// Handle to a spawned virtual thread (see [`super::Scope::spawn`]).
pub struct JoinHandle {
    tid: usize,
}

impl JoinHandle {
    /// Cooperatively wait for the thread and absorb its final clock
    /// (the join edge).
    pub fn join(self) {
        let target = self.tid;
        with_ctx(|ctx| {
            let Some(ctx) = ctx else { return };
            loop {
                {
                    let exec = ctx.exec.clone();
                    let mut st = lock_state(&exec);
                    match &st.threads[target].status {
                        Status::Finished => {
                            let fc = st.threads[target]
                                .final_clock
                                .clone()
                                .expect("finished thread has a final clock");
                            drop(st);
                            ctx.clock.join(&fc);
                            ctx.clock.inc(ctx.tid);
                            return;
                        }
                        _ => {
                            st.threads[ctx.tid].status = Status::BlockedJoin(target);
                        }
                    }
                }
                reschedule(ctx, "join");
            }
        });
    }
}

/// Epilogue run by every virtual thread's OS wrapper: mark finished,
/// wake joiners, record any non-`Abort` panic as a failure, and hand
/// the schedule to the next thread (or the orchestrator).
fn finish_thread(
    exec: &Arc<Execution>,
    tid: usize,
    clock: VClock,
    outcome: Result<(), Box<dyn std::any::Any + Send>>,
) {
    let mut st = lock_state(exec);
    st.threads[tid].status = Status::Finished;
    st.threads[tid].final_clock = Some(clock);
    for t in st.threads.iter_mut() {
        if matches!(t.status, Status::BlockedJoin(on) if on == tid) {
            t.status = Status::Ready;
        }
    }
    if let Err(payload) = outcome {
        if !payload.is::<Abort>() {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            if st.failure.is_none() {
                st.failure = Some(Failure {
                    kind: FailureKind::Panic,
                    message: format!("t{tid} panicked: {msg}"),
                    schedule: st.branches.iter().map(|b| b.chosen).collect(),
                    trace: render_trace(&st.steps),
                });
            }
            st.aborting = true;
        }
    }
    if st.aborting {
        exec.cv.notify_all();
        return;
    }
    // The finishing thread performs one last scheduling decision; a
    // deadlock here is recorded via `fail`, whose Abort unwind the
    // wrapper swallows (catch below in `os_wrapper`). The finishing
    // thread's user frames are already unwound, so `fail` with its own
    // tid is safe even for thread 0 (it waits for the children, whose
    // frames may still borrow scenario state).
    if let Pick::Defect(kind, msg) = pick_next(exec, &mut st, "thread exit", None) {
        fail(exec, st, tid, kind, msg);
    }
    exec.cv.notify_all();
}

fn os_wrapper(exec: Arc<Execution>, tid: usize, body: Box<dyn FnOnce() + Send>) {
    // Park until first scheduled (or the execution aborts before we
    // ever run).
    {
        let mut st = lock_state(&exec);
        loop {
            if st.aborting {
                drop(st);
                finish_thread(&exec, tid, VClock::new(), Ok(()));
                return;
            }
            if st.active == tid && matches!(st.threads[tid].status, Status::Ready) {
                break;
            }
            st = exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
    let outcome = catch_unwind(AssertUnwindSafe(body));
    let clock = CURRENT
        .with(|c| c.borrow_mut().take())
        .map(|ctx| ctx.clock)
        .unwrap_or_default();
    // `finish_thread` may itself unwind (deadlock detected at exit);
    // swallow the Abort so the OS thread dies quietly.
    let _ = catch_unwind(AssertUnwindSafe(|| {
        finish_thread(&exec, tid, clock, outcome)
    }));
}

/// Spawn a virtual thread. Panics outside a [`check`] execution — the
/// model's `scope` is only meaningful under the scheduler.
pub(crate) fn spawn_virtual(body: Box<dyn FnOnce() + Send + 'static>) -> JoinHandle {
    with_ctx(|ctx| {
        let ctx = ctx.expect("race::spawn outside race::check/replay");
        let exec = ctx.exec.clone();
        ctx.clock.inc(ctx.tid);
        let child_clock = ctx.clock.clone();
        let tid = {
            let mut st = lock_state(&exec);
            st.threads.push(ThreadSlot {
                status: Status::Ready,
                final_clock: None,
            });
            st.threads.len() - 1
        };
        let exec2 = exec.clone();
        let handle = std::thread::Builder::new()
            .name(format!("pnut-race-t{tid}"))
            .spawn(move || {
                let mut clock = child_clock;
                clock.inc(tid);
                CURRENT.with(|c| {
                    *c.borrow_mut() = Some(Ctx {
                        exec: exec2.clone(),
                        tid,
                        clock,
                    });
                });
                os_wrapper(exec2, tid, body);
            })
            .expect("spawn model thread");
        lock_state(&exec).os_handles.push(handle);
        // Choice point: the child may run immediately.
        reschedule(ctx, "spawn");
        JoinHandle { tid }
    })
}

// ---------------------------------------------------------------------
// Orchestration
// ---------------------------------------------------------------------

/// Run `f` once under the scheduler following `prescribed`; returns the
/// branch record on success.
fn run_once<F>(opts: &Options, prescribed: Vec<u8>, f: &F) -> Result<Vec<Branch>, Failure>
where
    F: Fn() + Send + Sync,
{
    silence_abort_panics();
    let exec = Arc::new(Execution {
        state: StdMutex::new(ExecState {
            threads: vec![ThreadSlot {
                status: Status::Ready,
                final_clock: None,
            }],
            active: 0,
            preemptions: 0,
            prescribed,
            cursor: 0,
            branches: Vec::new(),
            steps: Vec::new(),
            aborting: false,
            failure: None,
            registry: HashMap::new(),
            next_gen: 0,
            os_handles: Vec::new(),
        }),
        cv: Condvar::new(),
        preemption_bound: opts.preemption_bound,
        tags: opts.tags.clone(),
    });

    std::thread::scope(|s| {
        let exec0 = exec.clone();
        s.spawn(move || {
            let mut clock = VClock::new();
            clock.inc(0);
            CURRENT.with(|c| {
                *c.borrow_mut() = Some(Ctx {
                    exec: exec0.clone(),
                    tid: 0,
                    clock,
                });
            });
            // Thread 0 is active from the start; run the scenario body
            // directly (no initial park).
            let outcome = catch_unwind(AssertUnwindSafe(f));
            let clock = CURRENT
                .with(|c| c.borrow_mut().take())
                .map(|ctx| ctx.clock)
                .unwrap_or_default();
            let _ = catch_unwind(AssertUnwindSafe(|| {
                finish_thread(&exec0, 0, clock, outcome)
            }));
        });
        // Orchestrator: wait until every virtual thread has finished
        // (normally or via abort), then join the raw OS threads.
        let handles = {
            let mut st = lock_state(&exec);
            // Every thread reaches `Finished` even under abort: parked
            // threads are woken by `notify_all`, observe `aborting`,
            // unwind, and their wrappers run `finish_thread`.
            while !st
                .threads
                .iter()
                .all(|t| matches!(t.status, Status::Finished))
            {
                st = exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            std::mem::take(&mut st.os_handles)
        };
        for h in handles {
            let _ = h.join();
        }
    });

    let mut st = lock_state(&exec);
    if let Some(f) = st.failure.take() {
        return Err(f);
    }
    let leaked: Vec<&'static str> = st
        .registry
        .values()
        .filter(|c| c.alive)
        .map(|c| c.what)
        .collect();
    if !leaked.is_empty() {
        return Err(Failure {
            kind: FailureKind::Leak,
            message: format!(
                "{} tracked allocation(s) still live at execution end: {}",
                leaked.len(),
                leaked.join(", ")
            ),
            schedule: st.branches.iter().map(|b| b.chosen).collect(),
            trace: render_trace(&st.steps),
        });
    }
    Ok(std::mem::take(&mut st.branches))
}

/// Exhaustively explore every interleaving of `f` within the
/// preemption bound. `f` runs once per execution; it must be
/// self-contained (build its own state, spawn via [`super::scope`],
/// assert its own invariants).
pub fn check<F>(opts: &Options, f: F) -> Result<Stats, Failure>
where
    F: Fn() + Send + Sync,
{
    let mut prescribed: Vec<u8> = Vec::new();
    let mut stats = Stats::default();
    loop {
        if stats.executions >= opts.max_executions {
            return Err(Failure {
                kind: FailureKind::ExplorationBudget,
                message: format!(
                    "exploration budget of {} executions exhausted",
                    opts.max_executions
                ),
                schedule: prescribed,
                trace: String::new(),
            });
        }
        stats.executions += 1;
        if debug_enabled() {
            eprintln!("run {}: prefix {:?}", stats.executions, prescribed);
        }
        let branches = run_once(opts, prescribed.clone(), &f)?;
        stats.max_branch_points = stats.max_branch_points.max(branches.len());
        // Backtrack: deepest branch point with an untried sibling.
        let mut next = None;
        for (i, b) in branches.iter().enumerate().rev() {
            if u16::from(b.chosen) + 1 < u16::from(b.options) {
                next = Some(i);
                break;
            }
        }
        match next {
            None => return Ok(stats),
            Some(i) => {
                prescribed = branches[..i].iter().map(|b| b.chosen).collect();
                prescribed.push(branches[i].chosen + 1);
            }
        }
    }
}

/// Re-run exactly one schedule (from [`Failure::schedule`]); returns
/// the failure it reproduces, or `None` if the run passes (which for a
/// recorded failing schedule means the defect is *not* reproducible —
/// a checker bug).
pub fn replay<F>(opts: &Options, schedule: &[u8], f: F) -> Option<Failure>
where
    F: Fn() + Send + Sync,
{
    run_once(opts, schedule.to_vec(), &f).err()
}
