//! Model synchronization types — the `race-model` personality of
//! [`crate::sync`].
//!
//! Each type mirrors the `std` API surface the pager uses, but routes
//! every operation through the scheduler ([`super::sched`]): the
//! operation is a choice point, the value itself lives behind a real
//! `std` mutex (so the types stay genuinely thread-safe even when no
//! scheduler is active — ordinary tests compiled with the feature
//! still pass), and the declared `Ordering` drives the vector-clock
//! transfer that the race detector checks against.
//!
//! Raw pointers become [`TrackedPtr`]: an address plus the
//! *generation* of the allocation it was created from. The registry
//! in the scheduler checks every dereference and free against the
//! live generation, so a use-after-free — or an ABA reuse of the same
//! address — is a deterministic failure instead of silent corruption.

use std::marker::PhantomData;
use std::sync::{LockResult, Mutex as StdMutex, MutexGuard as StdMutexGuard};

use super::sched::{self, Access, AtomicMeta, MutexRt};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A generation-tagged heap pointer (the model's [`crate::sync::Ptr`]).
pub struct TrackedPtr<T> {
    pub(super) addr: usize,
    pub(super) gen: u64,
    /// `fn(T) -> T` keeps `TrackedPtr` `Send + Sync` irrespective of
    /// `T`, matching `*mut T` inside a `std` `AtomicPtr` (the atomic
    /// cell is what's shared, not the pointee).
    pub(super) _marker: PhantomData<fn(T) -> T>,
}

impl<T> Clone for TrackedPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for TrackedPtr<T> {}

impl<T> PartialEq for TrackedPtr<T> {
    fn eq(&self, other: &Self) -> bool {
        self.addr == other.addr && self.gen == other.gen
    }
}
impl<T> Eq for TrackedPtr<T> {}

impl<T> std::fmt::Debug for TrackedPtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TrackedPtr({:#x}@g{})", self.addr, self.gen)
    }
}

impl<T> TrackedPtr<T> {
    pub fn is_null(&self) -> bool {
        self.addr == 0
    }
}

/// The model pointer type exported through the facade.
pub type Ptr<T> = TrackedPtr<T>;

/// Raw-pointer operations, generation-checked. Signatures (including
/// the `unsafe` contracts) match the production `sync::prod::raw`
/// exactly — the model merely *also* verifies the contract at runtime.
pub mod raw {
    use super::*;

    /// Move `value` to the heap, register the allocation, and return
    /// its tagged handle.
    pub fn alloc<T>(value: T) -> Ptr<T> {
        let p = Box::into_raw(Box::new(value));
        let gen = sched::track_alloc(p as usize, std::any::type_name::<T>());
        TrackedPtr {
            addr: p as usize,
            gen,
            _marker: PhantomData,
        }
    }

    /// The null pointer (generation 0, never registered).
    pub fn null<T>() -> Ptr<T> {
        TrackedPtr {
            addr: 0,
            gen: 0,
            _marker: PhantomData,
        }
    }

    /// Shared-reference a pointer from [`alloc`].
    ///
    /// # Safety
    ///
    /// Same contract as the production `raw::deref`: `p` must come
    /// from [`alloc`], not yet freed, no live `&mut` to the pointee.
    /// The model additionally *checks* the contract and fails the
    /// execution instead of exhibiting undefined behavior.
    pub unsafe fn deref<'a, T>(p: Ptr<T>) -> &'a T {
        sched::track_read(p.addr, p.gen, std::any::type_name::<T>());
        // SAFETY: forwarded from the function contract; the registry
        // check above turns a violated contract into a model failure
        // before this executes (within the model's schedule coverage).
        unsafe { &*(p.addr as *const T) }
    }

    /// Exclusive-reference a pointer from [`alloc`].
    ///
    /// # Safety
    ///
    /// As [`deref`], and additionally no other reference to the
    /// pointee may be live at all.
    pub unsafe fn deref_mut<'a, T>(p: Ptr<T>) -> &'a mut T {
        sched::track_write(p.addr, p.gen, std::any::type_name::<T>());
        // SAFETY: forwarded from the function contract (checked, as in
        // `deref`).
        unsafe { &mut *(p.addr as *mut T) }
    }

    /// Reclaim and drop a pointer from [`alloc`].
    ///
    /// # Safety
    ///
    /// `p` must come from [`alloc`], not yet have been freed, and no
    /// reference to the pointee may be live.
    pub unsafe fn free<T>(p: Ptr<T>) {
        sched::track_free(p.addr, p.gen, std::any::type_name::<T>());
        // SAFETY: forwarded from the function contract (checked).
        drop(unsafe { Box::from_raw(p.addr as *mut T) });
    }
}

macro_rules! model_int_atomic {
    ($name:ident, $int:ty) => {
        /// Model integer atomic: the value lives behind a `std` mutex
        /// (real thread safety even outside the scheduler); each
        /// operation is a scheduler choice point plus the vector-clock
        /// transfer its `Ordering` justifies.
        pub struct $name {
            v: StdMutex<$int>,
            meta: AtomicMeta,
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                // Debug must not schedule (it is not a protocol
                // operation); peek the raw value.
                let v = self.v.lock().unwrap_or_else(|e| e.into_inner());
                write!(f, concat!(stringify!($name), "({:?})"), *v)
            }
        }

        impl $name {
            pub fn new(v: $int) -> Self {
                $name {
                    v: StdMutex::new(v),
                    meta: AtomicMeta::new(),
                }
            }

            fn with<R>(&self, f: impl FnOnce(&mut $int) -> R) -> R {
                let mut g = self.v.lock().unwrap_or_else(|e| e.into_inner());
                f(&mut g)
            }

            pub fn load(&self, order: Ordering) -> $int {
                sched::atomic_op(
                    &self.meta,
                    Access::Load,
                    order,
                    concat!(stringify!($name), "::load"),
                    || self.with(|v| *v),
                )
            }

            pub fn store(&self, val: $int, order: Ordering) {
                sched::atomic_op(
                    &self.meta,
                    Access::Store,
                    order,
                    concat!(stringify!($name), "::store"),
                    || self.with(|v| *v = val),
                )
            }

            pub fn fetch_add(&self, val: $int, order: Ordering) -> $int {
                sched::atomic_op(
                    &self.meta,
                    Access::Rmw,
                    order,
                    concat!(stringify!($name), "::fetch_add"),
                    || {
                        self.with(|v| {
                            let old = *v;
                            *v = old.wrapping_add(val);
                            old
                        })
                    },
                )
            }

            pub fn fetch_sub(&self, val: $int, order: Ordering) -> $int {
                sched::atomic_op(
                    &self.meta,
                    Access::Rmw,
                    order,
                    concat!(stringify!($name), "::fetch_sub"),
                    || {
                        self.with(|v| {
                            let old = *v;
                            *v = old.wrapping_sub(val);
                            old
                        })
                    },
                )
            }

            pub fn fetch_max(&self, val: $int, order: Ordering) -> $int {
                sched::atomic_op(
                    &self.meta,
                    Access::Rmw,
                    order,
                    concat!(stringify!($name), "::fetch_max"),
                    || {
                        self.with(|v| {
                            let old = *v;
                            *v = old.max(val);
                            old
                        })
                    },
                )
            }

            pub fn get_mut(&mut self) -> &mut $int {
                // `&mut self` proves exclusivity — no choice point, no
                // clock traffic, exactly like `std`.
                self.v.get_mut().unwrap_or_else(|e| e.into_inner())
            }
        }
    };
}

model_int_atomic!(AtomicU64, u64);
model_int_atomic!(AtomicUsize, usize);

/// Model pointer atomic over [`TrackedPtr`].
pub struct AtomicPtr<T> {
    v: StdMutex<TrackedPtr<T>>,
    meta: AtomicMeta,
}

impl<T> std::fmt::Debug for AtomicPtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let v = self.v.lock().unwrap_or_else(|e| e.into_inner());
        write!(f, "AtomicPtr({:?})", *v)
    }
}

impl<T> AtomicPtr<T> {
    pub fn new(p: TrackedPtr<T>) -> Self {
        AtomicPtr {
            v: StdMutex::new(p),
            meta: AtomicMeta::new(),
        }
    }

    fn with<R>(&self, f: impl FnOnce(&mut TrackedPtr<T>) -> R) -> R {
        let mut g = self.v.lock().unwrap_or_else(|e| e.into_inner());
        f(&mut g)
    }

    pub fn load(&self, order: Ordering) -> TrackedPtr<T> {
        sched::atomic_op(&self.meta, Access::Load, order, "AtomicPtr::load", || {
            self.with(|v| *v)
        })
    }

    pub fn store(&self, p: TrackedPtr<T>, order: Ordering) {
        sched::atomic_op(&self.meta, Access::Store, order, "AtomicPtr::store", || {
            self.with(|v| *v = p)
        })
    }

    pub fn swap(&self, p: TrackedPtr<T>, order: Ordering) -> TrackedPtr<T> {
        sched::atomic_op(&self.meta, Access::Rmw, order, "AtomicPtr::swap", || {
            self.with(|v| std::mem::replace(v, p))
        })
    }

    pub fn get_mut(&mut self) -> &mut TrackedPtr<T> {
        self.v.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Model mutex: real `std` exclusion underneath (correct outside the
/// scheduler), cooperative blocking plus release-clock transfer inside
/// it.
pub struct Mutex<T> {
    rt: Arc<MutexRt>,
    inner: StdMutex<T>,
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Mutex({:?})", self.inner)
    }
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            rt: MutexRt::new(),
            inner: StdMutex::new(value),
        }
    }

    /// Always returns `Ok` (the model never poisons — a panicking
    /// execution is torn down wholesale), but keeps the `LockResult`
    /// shape so call sites are identical to `std`.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        sched::mutex_lock(&self.rt);
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        Ok(MutexGuard {
            rt: self.rt.clone(),
            inner: Some(g),
        })
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        Ok(self.inner.get_mut().unwrap_or_else(|e| e.into_inner()))
    }
}

/// Guard for the model [`Mutex`]; releases the model lock (waking
/// cooperative waiters) after the real one.
pub struct MutexGuard<'a, T> {
    rt: Arc<MutexRt>,
    inner: Option<StdMutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard live until drop")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard live until drop")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real mutex first so the waiter the scheduler
        // picks next can take it without blocking the OS thread.
        drop(self.inner.take());
        sched::mutex_unlock(&self.rt);
    }
}
