//! The synchronization facade of the pager protocol — every atomic,
//! lock, and raw-pointer operation that `pager.rs` and `graph.rs` use
//! for cross-thread coordination goes through this module.
//!
//! # Two personalities
//!
//! * **Production** (the default): every item is a zero-cost re-export
//!   of the `std` primitive or an `#[inline(always)]` passthrough to
//!   the raw-pointer operation it names. The compiled code is
//!   bit-identical to writing `std::sync::atomic::AtomicPtr` and
//!   `Box::into_raw` directly — the golden tests and the bench-diff
//!   trend gates pin that down.
//! * **`race-model`** (a cargo feature, never enabled by production
//!   builds): the same names resolve to the model types of
//!   `crate::race`, which route every operation through a
//!   deterministic cooperative scheduler that explores thread
//!   interleavings exhaustively (preemption-bounded DFS), tracks
//!   happens-before with vector clocks, and tags every raw pointer
//!   with the generation of its allocation so a use-after-free or a
//!   racing access is a deterministic failure with a replayable
//!   schedule — an in-tree analogue of `loom`.
//!
//! The protocol being checked is documented in `docs/CONCURRENCY.md`;
//! the checker itself lives in `crate::race` (compiled only with
//! `--features race-model`).
//!
//! # The raw-pointer vocabulary
//!
//! The pager publishes heap segments through an [`AtomicPtr`]. Under
//! the model, a bare `*mut T` cannot carry the allocation-generation
//! tag, so the facade owns the pointer vocabulary:
//!
//! * [`Ptr<T>`](Ptr) — `*mut T` in production, a generation-tagged
//!   handle under the model. `Copy`, has `.is_null()`.
//! * [`raw::alloc`] / [`raw::free`] — `Box::into_raw` /
//!   `drop(Box::from_raw(..))`.
//! * [`raw::deref`] / [`raw::deref_mut`] — `&*p` / `&mut *p`, with the
//!   caller still responsible for the aliasing argument (the `unsafe`
//!   contract is identical to the bare dereference).
//! * [`raw::null`] — `std::ptr::null_mut`.

pub use std::sync::atomic::Ordering;

#[cfg(not(feature = "race-model"))]
pub use prod::{raw, AtomicPtr, AtomicU64, AtomicUsize, Mutex, Ptr};

#[cfg(feature = "race-model")]
pub use crate::race::sync::{raw, AtomicPtr, AtomicU64, AtomicUsize, Mutex, Ptr};

/// The production personality: straight re-exports and inlined
/// passthroughs. Kept in a named module (rather than scattered
/// `cfg`s) so the two personalities are diffable side by side.
#[cfg(not(feature = "race-model"))]
mod prod {
    pub use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize};
    pub use std::sync::Mutex;

    /// A raw heap pointer as published through an [`AtomicPtr`]. In
    /// production this *is* `*mut T`; under the race model it is a
    /// generation-tagged handle (see [`crate::sync`] module docs).
    pub type Ptr<T> = *mut T;

    /// Raw-pointer operations, named so the race model can observe
    /// them. Each is an `#[inline(always)]` passthrough in production.
    pub mod raw {
        /// Move `value` to the heap and leak it as a raw pointer
        /// (`Box::into_raw`). Ownership transfers to the caller, to be
        /// reclaimed with [`free`].
        #[inline(always)]
        pub fn alloc<T>(value: T) -> super::Ptr<T> {
            Box::into_raw(Box::new(value))
        }

        /// The null pointer.
        #[inline(always)]
        pub fn null<T>() -> super::Ptr<T> {
            std::ptr::null_mut()
        }

        /// Shared-reference a pointer from [`alloc`].
        ///
        /// # Safety
        ///
        /// `p` must come from [`alloc`], not yet passed to [`free`],
        /// and no `&mut` to the pointee may be live. The returned
        /// lifetime is unconstrained — the caller ties it to whatever
        /// guarantees the pointee stays allocated.
        #[inline(always)]
        pub unsafe fn deref<'a, T>(p: super::Ptr<T>) -> &'a T {
            // SAFETY: forwarded verbatim from the function contract.
            unsafe { &*p }
        }

        /// Exclusive-reference a pointer from [`alloc`].
        ///
        /// # Safety
        ///
        /// As [`deref()`], and additionally no other reference to the
        /// pointee may be live at all.
        #[inline(always)]
        pub unsafe fn deref_mut<'a, T>(p: super::Ptr<T>) -> &'a mut T {
            // SAFETY: forwarded verbatim from the function contract.
            unsafe { &mut *p }
        }

        /// Reclaim and drop a pointer from [`alloc`].
        ///
        /// # Safety
        ///
        /// `p` must come from [`alloc`], not yet have been freed, and
        /// no reference to the pointee may be live.
        #[inline(always)]
        pub unsafe fn free<T>(p: super::Ptr<T>) {
            // SAFETY: forwarded verbatim from the function contract.
            drop(unsafe { Box::from_raw(p) });
        }
    }
}

/// Seeded protocol mutations for the race-model mutation battery.
///
/// Each constant names one deliberate way to break the pager protocol;
/// [`active`](mutation::active) reports whether the currently running
/// model execution requested it (via `race::Options::tags`). In
/// production builds [`active`](mutation::active) is a constant
/// `false`, so every mutant arm is
/// statically dead and the protocol code compiles exactly as written.
///
/// The battery in `tests/race_model.rs` asserts the checker kills
/// every one of these mutants with a replayable schedule.
pub mod mutation {
    /// Skip the double-check of the segment pointer after acquiring
    /// the fault lock — two concurrent faults then both install, the
    /// first installation leaks, and the ledger double-counts.
    pub const DROP_FAULT_RECHECK: &str = "drop-fault-recheck";
    /// Install the faulted segment pointer with `Relaxed` instead of
    /// `Release` — readers that acquire the pointer no longer
    /// happen-after the segment's initialization.
    pub const RELAXED_INSTALL: &str = "relaxed-install";
    /// Free a cold segment inside `fault()` (under `&self`) instead
    /// of waiting for the `&mut` eviction point — a concurrent reader
    /// may hold a borrow into the freed segment.
    pub const FREE_IN_FAULT: &str = "free-in-fault";

    /// Whether mutation `tag` is active in the current model
    /// execution. Constant `false` in production builds.
    #[cfg(not(feature = "race-model"))]
    #[inline(always)]
    pub fn active(_tag: &'static str) -> bool {
        false
    }

    /// Whether mutation `tag` is active in the current model
    /// execution (set through `race::Options::tags`).
    #[cfg(feature = "race-model")]
    pub fn active(tag: &'static str) -> bool {
        crate::race::tag_active(tag)
    }
}
