//! Branching-time temporal logic over reachability graphs (`[MR87]`).
//!
//! "The P-NUT reachability graph analyzer allows users to enter
//! high-level specification of the expected behavior of a system in
//! first-order predicate calculus and in branching time temporal logic.
//! The analyzer then determines if all possible behaviors of the system
//! meet the high level specification." (paper §4.4)
//!
//! Formulas are CTL with atomic propositions comparing linear
//! combinations of place token counts (and, for timed graphs, in-flight
//! transition counts):
//!
//! ```text
//! AG (Bus_free + Bus_busy = 1)       -- invariant
//! EF (Empty_I_buffers = 0)           -- the buffer can fill up
//! AG (req = 1 -> AF (ack = 1))       -- response property
//! E [ idle = 1 U busy = 1 ]          -- until
//! ```
//!
//! Deadlock states are treated as having an implicit self-loop, the
//! usual convention for CTL over finite graphs with terminal states.
//!
//! # Memory: fixpoints sweep the graph segment-at-a-time
//!
//! Every sweep — atom evaluation, `EX`/`AX`, and the `EU`/`EG`
//! fixpoint iterations — walks the graph in segment order through
//! [`crate::graph::SegmentGuard`]s, calling
//! [`ReachabilityGraph::maintain`] between segments (which is why
//! [`check`] takes `&mut`: eviction needs exclusive access). On a
//! budgeted graph ([`crate::graph::ReachOptions::mem_budget`]) the
//! checker therefore runs in `budget + one pinned guard` resident
//! bytes plus the `O(states)` satisfaction bit-vectors, instead of
//! faulting the whole store resident — model checking, not just graph
//! construction, scales past RAM.

use crate::graph::{ReachError, ReachabilityGraph};
use crate::store::StateRef;
use pnut_core::Net;
use pnut_obs as obs;
use std::fmt;

/// Error from parsing or checking a CTL formula.
#[derive(Debug, Clone, PartialEq)]
pub enum CtlError {
    /// Malformed formula text.
    Parse {
        /// Description of the problem.
        message: String,
        /// Byte offset.
        position: usize,
    },
    /// An atomic proposition referenced an unknown place/transition.
    UnknownName(String),
    /// A sweep failed to page a graph segment ([`ReachError::Spill`]:
    /// the spill file vanished, the disk errored, or a reloaded image
    /// was rejected as corrupt). The graph stays usable; a retry
    /// re-faults from scratch.
    Reach(ReachError),
}

impl fmt::Display for CtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtlError::Parse { message, position } => write!(f, "{message} at byte {position}"),
            CtlError::UnknownName(n) => {
                write!(f, "`{n}` is neither a place nor a transition of the net")
            }
            CtlError::Reach(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CtlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CtlError::Reach(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ReachError> for CtlError {
    fn from(e: ReachError) -> Self {
        CtlError::Reach(e)
    }
}

/// Comparison operators in atoms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Arithmetic terms in atoms.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    Int(i64),
    Name(String),
    Add(Box<Term>, Box<Term>),
    Sub(Box<Term>, Box<Term>),
    Mul(Box<Term>, Box<Term>),
}

/// A CTL formula.
#[derive(Debug, Clone, PartialEq)]
pub enum Formula {
    /// Constant truth.
    True,
    /// Constant falsehood.
    False,
    /// Comparison of two terms in the current state.
    #[doc(hidden)]
    Atom(Term, CmpOp, Term),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Implication.
    Implies(Box<Formula>, Box<Formula>),
    /// Some successor satisfies the operand.
    Ex(Box<Formula>),
    /// All successors satisfy the operand.
    Ax(Box<Formula>),
    /// Some path eventually satisfies the operand.
    Ef(Box<Formula>),
    /// All paths eventually satisfy the operand.
    Af(Box<Formula>),
    /// Some path globally satisfies the operand.
    Eg(Box<Formula>),
    /// All paths globally satisfy the operand.
    Ag(Box<Formula>),
    /// `E[f U g]`.
    Eu(Box<Formula>, Box<Formula>),
    /// `A[f U g]`.
    Au(Box<Formula>, Box<Formula>),
}

impl Formula {
    /// Parse a formula from text.
    ///
    /// # Errors
    ///
    /// Returns [`CtlError::Parse`] on malformed input.
    pub fn parse(src: &str) -> Result<Self, CtlError> {
        let mut p = Parser::new(src)?;
        let f = p.implies()?;
        if p.pos != p.toks.len() {
            return Err(p.err("unexpected trailing input"));
        }
        Ok(f)
    }
}

/// Result of checking a formula over a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckOutcome {
    /// Whether the initial state satisfies the formula.
    pub holds_initially: bool,
    /// Per-state satisfaction (index = state id).
    pub satisfying: Vec<bool>,
}

impl CheckOutcome {
    /// Number of states satisfying the formula.
    pub fn count(&self) -> usize {
        self.satisfying.iter().filter(|&&b| b).count()
    }
}

/// Model-check `formula` on `graph` (which must have been built from
/// `net`, used for name resolution).
///
/// Takes `&mut` because every sweep evicts cold segments between
/// pinned ones ([`ReachabilityGraph::maintain`]), which keeps the
/// checker inside the graph's byte budget; the graph itself is never
/// modified, and the result is identical at any budget.
///
/// # Errors
///
/// Returns [`CtlError::UnknownName`] for unresolved atom names, and
/// [`CtlError::Reach`] if any sweep fails to page a graph segment
/// (wrapping the [`ReachError::Spill`] from the pager) — the process
/// never aborts on a bad spill reload, the one check does.
pub fn check(
    graph: &mut ReachabilityGraph,
    net: &Net,
    formula: &Formula,
) -> Result<CheckOutcome, CtlError> {
    let _span = obs::span("ctl.check");
    let sat = sat_set(graph, net, formula)?;
    Ok(CheckOutcome {
        holds_initially: sat.first().copied().unwrap_or(false),
        satisfying: sat,
    })
}

fn eval_term(term: &Term, state: StateRef<'_>, net: &Net) -> Result<i64, CtlError> {
    match term {
        Term::Int(v) => Ok(*v),
        Term::Name(n) => {
            if let Some(p) = net.place_id(n) {
                return Ok(i64::from(state.marking.tokens(p)));
            }
            if let Some(t) = net.transition_id(n) {
                return Ok(state.in_flight.iter().filter(|&&(x, _)| x == t).count() as i64);
            }
            Err(CtlError::UnknownName(n.clone()))
        }
        Term::Add(a, b) => Ok(eval_term(a, state, net)? + eval_term(b, state, net)?),
        Term::Sub(a, b) => Ok(eval_term(a, state, net)? - eval_term(b, state, net)?),
        Term::Mul(a, b) => Ok(eval_term(a, state, net)? * eval_term(b, state, net)?),
    }
}

/// One segment-ordered pass over the graph: pin each segment, hand
/// `f(state index, guard)` every state, evict between segments. The
/// memory discipline of every sweep below lives here. A mid-sweep
/// paging failure — a row accessor inside `f` or the eviction between
/// segments — propagates as `E` (every sweep error type absorbs
/// [`ReachError`]); it never aborts the process.
fn sweep<E: From<ReachError>>(
    graph: &mut ReachabilityGraph,
    mut f: impl FnMut(usize, &crate::graph::SegmentGuard<'_>) -> Result<(), E>,
) -> Result<(), E> {
    obs::metrics::CTL_SWEEPS.inc();
    for seg in 0..graph.segment_count() {
        {
            let guard = graph.pin_segment(seg);
            for i in guard.range() {
                f(i, &guard)?;
            }
        }
        graph.maintain().map_err(E::from)?;
    }
    Ok(())
}

/// Whether some successor of `i` (deadlock self-loop convention) is in
/// `set`.
fn any_succ(
    guard: &crate::graph::SegmentGuard<'_>,
    i: usize,
    set: &[bool],
) -> Result<bool, ReachError> {
    let succs = guard.successors(i)?;
    Ok(if succs.is_empty() {
        set[i]
    } else {
        succs.iter().any(|&(_, j)| set[j as usize])
    })
}

/// Whether all successors of `i` (deadlock self-loop convention) are
/// in `set`.
fn all_succ(
    guard: &crate::graph::SegmentGuard<'_>,
    i: usize,
    set: &[bool],
) -> Result<bool, ReachError> {
    let succs = guard.successors(i)?;
    Ok(if succs.is_empty() {
        set[i]
    } else {
        succs.iter().all(|&(_, j)| set[j as usize])
    })
}

fn sat_set(
    graph: &mut ReachabilityGraph,
    net: &Net,
    formula: &Formula,
) -> Result<Vec<bool>, CtlError> {
    let n = graph.state_count();
    let all = |v: bool| vec![v; n];
    Ok(match formula {
        Formula::True => all(true),
        Formula::False => all(false),
        Formula::Atom(a, op, b) => {
            let mut sat = all(false);
            sweep(graph, |i, guard| -> Result<(), CtlError> {
                let state = guard.state(i)?;
                let x = eval_term(a, state, net)?;
                let y = eval_term(b, state, net)?;
                sat[i] = match op {
                    CmpOp::Eq => x == y,
                    CmpOp::Ne => x != y,
                    CmpOp::Lt => x < y,
                    CmpOp::Le => x <= y,
                    CmpOp::Gt => x > y,
                    CmpOp::Ge => x >= y,
                };
                Ok(())
            })?;
            sat
        }
        Formula::Not(f) => {
            let mut sat = sat_set(graph, net, f)?;
            for s in &mut sat {
                *s = !*s;
            }
            sat
        }
        Formula::And(a, b) => {
            let sa = sat_set(graph, net, a)?;
            let sb = sat_set(graph, net, b)?;
            sa.iter().zip(sb).map(|(&x, y)| x && y).collect()
        }
        Formula::Or(a, b) => {
            let sa = sat_set(graph, net, a)?;
            let sb = sat_set(graph, net, b)?;
            sa.iter().zip(sb).map(|(&x, y)| x || y).collect()
        }
        Formula::Implies(a, b) => {
            let sa = sat_set(graph, net, a)?;
            let sb = sat_set(graph, net, b)?;
            sa.iter().zip(sb).map(|(&x, y)| !x || y).collect()
        }
        Formula::Ex(f) => {
            let sf = sat_set(graph, net, f)?;
            let mut sat = all(false);
            sweep(graph, |i, guard| -> Result<(), CtlError> {
                sat[i] = any_succ(guard, i, &sf)?;
                Ok(())
            })?;
            sat
        }
        Formula::Ax(f) => {
            let sf = sat_set(graph, net, f)?;
            let mut sat = all(false);
            sweep(graph, |i, guard| -> Result<(), CtlError> {
                sat[i] = all_succ(guard, i, &sf)?;
                Ok(())
            })?;
            sat
        }
        Formula::Ef(f) => {
            let sf = sat_set(graph, net, f)?;
            eu(graph, &vec![true; n], &sf)?
        }
        Formula::Eu(a, b) => {
            let sa = sat_set(graph, net, a)?;
            let sb = sat_set(graph, net, b)?;
            eu(graph, &sa, &sb)?
        }
        Formula::Eg(f) => {
            let sf = sat_set(graph, net, f)?;
            eg(graph, &sf)?
        }
        Formula::Af(f) => {
            // AF f = ¬EG ¬f
            let mut nf = sat_set(graph, net, f)?;
            for s in &mut nf {
                *s = !*s;
            }
            let mut sat = eg(graph, &nf)?;
            for s in &mut sat {
                *s = !*s;
            }
            sat
        }
        Formula::Ag(f) => {
            // AG f = ¬EF ¬f
            let mut nf = sat_set(graph, net, f)?;
            for s in &mut nf {
                *s = !*s;
            }
            let mut sat = eu(graph, &vec![true; n], &nf)?;
            for s in &mut sat {
                *s = !*s;
            }
            sat
        }
        Formula::Au(a, b) => {
            // A[a U b] = ¬( E[¬b U (¬a ∧ ¬b)] ∨ EG ¬b )
            let sa = sat_set(graph, net, a)?;
            let sb = sat_set(graph, net, b)?;
            let not_b: Vec<bool> = sb.iter().map(|&x| !x).collect();
            let not_a_and_not_b: Vec<bool> = sa.iter().zip(&sb).map(|(&x, &y)| !x && !y).collect();
            let e1 = eu(graph, &not_b, &not_a_and_not_b)?;
            let e2 = eg(graph, &not_b)?;
            e1.iter().zip(e2).map(|(&x, y)| !(x || y)).collect()
        }
    })
}

/// Least fixpoint for `E[a U b]`. Each iteration is one segment-ordered
/// sweep; iterating until no sweep changes anything.
///
/// # Errors
///
/// [`ReachError::Spill`] if any sweep fails to page a segment.
fn eu(graph: &mut ReachabilityGraph, sa: &[bool], sb: &[bool]) -> Result<Vec<bool>, ReachError> {
    let mut sat: Vec<bool> = sb.to_vec();
    loop {
        obs::metrics::CTL_EU_ITERATIONS.inc();
        let mut changed = false;
        sweep(graph, |i, guard| -> Result<(), ReachError> {
            if !sat[i] && sa[i] && any_succ(guard, i, &sat)? {
                sat[i] = true;
                changed = true;
            }
            Ok(())
        })?;
        if !changed {
            return Ok(sat);
        }
    }
}

/// Greatest fixpoint for `EG a`, segment-ordered like [`eu`].
///
/// # Errors
///
/// [`ReachError::Spill`] if any sweep fails to page a segment.
fn eg(graph: &mut ReachabilityGraph, sa: &[bool]) -> Result<Vec<bool>, ReachError> {
    let mut sat: Vec<bool> = sa.to_vec();
    loop {
        obs::metrics::CTL_EG_ITERATIONS.inc();
        let mut changed = false;
        sweep(graph, |i, guard| -> Result<(), ReachError> {
            if sat[i] && !any_succ(guard, i, &sat)? {
                sat[i] = false;
                changed = true;
            }
            Ok(())
        })?;
        if !changed {
            return Ok(sat);
        }
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Plus,
    Minus,
    Star,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Arrow,
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Self, CtlError> {
        let bytes = src.as_bytes();
        let mut toks = Vec::new();
        let mut i = 0;
        while i < bytes.len() {
            let pos = i;
            match bytes[i] as char {
                ' ' | '\t' | '\n' | '\r' => i += 1,
                '(' => {
                    toks.push((Tok::LParen, pos));
                    i += 1;
                }
                ')' => {
                    toks.push((Tok::RParen, pos));
                    i += 1;
                }
                '[' => {
                    toks.push((Tok::LBracket, pos));
                    i += 1;
                }
                ']' => {
                    toks.push((Tok::RBracket, pos));
                    i += 1;
                }
                '+' => {
                    toks.push((Tok::Plus, pos));
                    i += 1;
                }
                '*' => {
                    toks.push((Tok::Star, pos));
                    i += 1;
                }
                '-' => {
                    if bytes.get(i + 1) == Some(&b'>') {
                        toks.push((Tok::Arrow, pos));
                        i += 2;
                    } else {
                        toks.push((Tok::Minus, pos));
                        i += 1;
                    }
                }
                '=' => {
                    i += if bytes.get(i + 1) == Some(&b'=') {
                        2
                    } else {
                        1
                    };
                    toks.push((Tok::Eq, pos));
                }
                '!' => {
                    if bytes.get(i + 1) == Some(&b'=') {
                        toks.push((Tok::Ne, pos));
                        i += 2;
                    } else {
                        return Err(CtlError::Parse {
                            message: "expected `!=` (use `not` for negation)".into(),
                            position: pos,
                        });
                    }
                }
                '<' => {
                    if bytes.get(i + 1) == Some(&b'=') {
                        toks.push((Tok::Le, pos));
                        i += 2;
                    } else {
                        toks.push((Tok::Lt, pos));
                        i += 1;
                    }
                }
                '>' => {
                    if bytes.get(i + 1) == Some(&b'=') {
                        toks.push((Tok::Ge, pos));
                        i += 2;
                    } else {
                        toks.push((Tok::Gt, pos));
                        i += 1;
                    }
                }
                '0'..='9' => {
                    let start = i;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let v = src[start..i].parse().map_err(|_| CtlError::Parse {
                        message: "integer out of range".into(),
                        position: start,
                    })?;
                    toks.push((Tok::Int(v), pos));
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let start = i;
                    while i < bytes.len()
                        && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    toks.push((Tok::Ident(src[start..i].to_string()), pos));
                }
                other => {
                    return Err(CtlError::Parse {
                        message: format!("unexpected character `{other}`"),
                        position: pos,
                    });
                }
            }
        }
        Ok(Parser { toks, pos: 0 })
    }

    fn err(&self, message: &str) -> CtlError {
        CtlError::Parse {
            message: message.to_string(),
            position: self
                .toks
                .get(self.pos)
                .map(|&(_, p)| p)
                .unwrap_or_else(|| self.toks.last().map(|&(_, p)| p + 1).unwrap_or(0)),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), CtlError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {what}")))
        }
    }

    fn implies(&mut self) -> Result<Formula, CtlError> {
        let lhs = self.disj()?;
        if self.eat(&Tok::Arrow) {
            let rhs = self.implies()?; // right associative
            Ok(Formula::Implies(Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn disj(&mut self) -> Result<Formula, CtlError> {
        let mut lhs = self.conj()?;
        while matches!(self.peek(), Some(Tok::Ident(s)) if s == "or") {
            self.pos += 1;
            let rhs = self.conj()?;
            lhs = Formula::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn conj(&mut self) -> Result<Formula, CtlError> {
        let mut lhs = self.unary()?;
        while matches!(self.peek(), Some(Tok::Ident(s)) if s == "and") {
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Formula::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Formula, CtlError> {
        if let Some(Tok::Ident(s)) = self.peek().cloned() {
            match s.as_str() {
                "not" => {
                    self.pos += 1;
                    return Ok(Formula::Not(Box::new(self.unary()?)));
                }
                "true" => {
                    self.pos += 1;
                    return Ok(Formula::True);
                }
                "false" => {
                    self.pos += 1;
                    return Ok(Formula::False);
                }
                "EX" | "AX" | "EF" | "AF" | "EG" | "AG" => {
                    self.pos += 1;
                    let f = Box::new(self.unary()?);
                    return Ok(match s.as_str() {
                        "EX" => Formula::Ex(f),
                        "AX" => Formula::Ax(f),
                        "EF" => Formula::Ef(f),
                        "AF" => Formula::Af(f),
                        "EG" => Formula::Eg(f),
                        _ => Formula::Ag(f),
                    });
                }
                "E" | "A" => {
                    let exist = s == "E";
                    self.pos += 1;
                    self.expect(&Tok::LBracket, "`[`")?;
                    let a = self.implies()?;
                    match self.peek() {
                        Some(Tok::Ident(u)) if u == "U" => self.pos += 1,
                        _ => return Err(self.err("expected `U`")),
                    }
                    let b = self.implies()?;
                    self.expect(&Tok::RBracket, "`]`")?;
                    return Ok(if exist {
                        Formula::Eu(Box::new(a), Box::new(b))
                    } else {
                        Formula::Au(Box::new(a), Box::new(b))
                    });
                }
                _ => {}
            }
        }
        if self.peek() == Some(&Tok::LParen) {
            // Parenthesized formula or parenthesized term in an atom.
            let save = self.pos;
            self.pos += 1;
            if let Ok(f) = self.implies() {
                if self.eat(&Tok::RParen) && !self.peek_is_arith_or_relop() {
                    return Ok(f);
                }
            }
            self.pos = save;
        }
        self.atom()
    }

    fn peek_is_arith_or_relop(&self) -> bool {
        matches!(
            self.peek(),
            Some(
                Tok::Plus
                    | Tok::Minus
                    | Tok::Star
                    | Tok::Eq
                    | Tok::Ne
                    | Tok::Lt
                    | Tok::Le
                    | Tok::Gt
                    | Tok::Ge
            )
        )
    }

    fn atom(&mut self) -> Result<Formula, CtlError> {
        let lhs = self.term()?;
        let op = match self.peek() {
            Some(Tok::Eq) => CmpOp::Eq,
            Some(Tok::Ne) => CmpOp::Ne,
            Some(Tok::Lt) => CmpOp::Lt,
            Some(Tok::Le) => CmpOp::Le,
            Some(Tok::Gt) => CmpOp::Gt,
            Some(Tok::Ge) => CmpOp::Ge,
            // Bare `P` means `P > 0`.
            _ => return Ok(Formula::Atom(lhs, CmpOp::Gt, Term::Int(0))),
        };
        self.pos += 1;
        let rhs = self.term()?;
        Ok(Formula::Atom(lhs, op, rhs))
    }

    fn term(&mut self) -> Result<Term, CtlError> {
        let mut lhs = self.factor()?;
        loop {
            if self.eat(&Tok::Plus) {
                lhs = Term::Add(Box::new(lhs), Box::new(self.factor()?));
            } else if self.eat(&Tok::Minus) {
                lhs = Term::Sub(Box::new(lhs), Box::new(self.factor()?));
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<Term, CtlError> {
        let mut lhs = self.primary()?;
        while self.eat(&Tok::Star) {
            lhs = Term::Mul(Box::new(lhs), Box::new(self.primary()?));
        }
        Ok(lhs)
    }

    fn primary(&mut self) -> Result<Term, CtlError> {
        match self.peek().cloned() {
            Some(Tok::Int(v)) => {
                self.pos += 1;
                Ok(Term::Int(v))
            }
            Some(Tok::Ident(n)) => {
                self.pos += 1;
                Ok(Term::Name(n))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let t = self.term()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(t)
            }
            _ => Err(self.err("expected a term")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{build_untimed, ReachOptions};
    use pnut_core::NetBuilder;

    fn mutex_net() -> pnut_core::Net {
        let mut b = NetBuilder::new("mutex");
        b.place("free", 1);
        b.place("a_cs", 0);
        b.place("b_cs", 0);
        b.transition("a_enter").input("free").output("a_cs").add();
        b.transition("a_exit").input("a_cs").output("free").add();
        b.transition("b_enter").input("free").output("b_cs").add();
        b.transition("b_exit").input("b_cs").output("free").add();
        b.build().unwrap()
    }

    fn holds(net: &pnut_core::Net, f: &str) -> bool {
        let mut g = build_untimed(net, &ReachOptions::default()).unwrap();
        let formula = Formula::parse(f).unwrap();
        check(&mut g, net, &formula).unwrap().holds_initially
    }

    #[test]
    fn mutual_exclusion_invariant() {
        let net = mutex_net();
        assert!(holds(&net, "AG (a_cs + b_cs <= 1)"));
        assert!(!holds(&net, "AG (a_cs = 0)"));
    }

    #[test]
    fn reachability_formulas() {
        let net = mutex_net();
        assert!(holds(&net, "EF (a_cs = 1)"));
        assert!(holds(&net, "EF (b_cs = 1)"));
        assert!(!holds(&net, "EF (a_cs = 1 and b_cs = 1)"));
    }

    #[test]
    fn next_state_operators() {
        let net = mutex_net();
        assert!(holds(&net, "EX (a_cs = 1)"));
        assert!(!holds(&net, "AX (a_cs = 1)"), "b_enter is an alternative");
        assert!(holds(&net, "AX (a_cs + b_cs = 1)"));
    }

    #[test]
    fn until_operators() {
        let net = mutex_net();
        assert!(holds(&net, "E [ free = 1 U a_cs = 1 ]"));
        // Not all paths reach a_cs (the b loop avoids it forever).
        assert!(!holds(&net, "A [ true U a_cs = 1 ]"));
        assert!(!holds(&net, "AF (a_cs = 1)"));
    }

    #[test]
    fn eg_on_cycles() {
        let net = mutex_net();
        // There is an infinite path avoiding a_cs (loop through b).
        assert!(holds(&net, "EG (a_cs = 0)"));
        assert!(!holds(&net, "EG (free = 1)"), "every state must move");
    }

    #[test]
    fn implication_and_response() {
        let net = mutex_net();
        // Whenever a is in its critical section, it can eventually leave.
        assert!(holds(&net, "AG (a_cs = 1 -> EF (free = 1))"));
        assert!(holds(&net, "AG (a_cs = 1 -> AF (free = 1))"));
    }

    #[test]
    fn deadlock_self_loop_semantics() {
        let mut b = NetBuilder::new("dead");
        b.place("a", 1);
        b.place("b", 0);
        b.transition("t").input("a").output("b").add();
        let net = b.build().unwrap();
        // The final state (deadlock) satisfies EG (b = 1) via self-loop.
        assert!(holds(&net, "EF EG (b = 1)"));
        assert!(holds(&net, "AF (b = 1)"));
    }

    #[test]
    fn bare_names_mean_nonzero() {
        let net = mutex_net();
        assert!(holds(&net, "AG (a_cs -> not b_cs)"));
    }

    #[test]
    fn unknown_name_reported() {
        let net = mutex_net();
        let mut g = build_untimed(&net, &ReachOptions::default()).unwrap();
        let f = Formula::parse("AG (ghost = 0)").unwrap();
        assert_eq!(
            check(&mut g, &net, &f).unwrap_err(),
            CtlError::UnknownName("ghost".into())
        );
    }

    #[test]
    fn parse_errors() {
        for bad in ["AG", "E [ a = 1 ]", "a = ", "AG (a = 1))", "! a"] {
            assert!(Formula::parse(bad).is_err(), "should fail: {bad}");
        }
    }
}
