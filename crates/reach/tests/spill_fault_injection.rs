//! Spill-file fault injection: a failing reload or spill write must
//! surface as [`ReachError::Spill`] — never a panic, never a deadlock,
//! never a corrupted store — and the store must keep working once the
//! fault clears (a retryable I/O error is retryable end to end).
//!
//! The hooks ([`pnut_reach::pager::fail`]) are process-global
//! countdowns, so every test here serializes on one mutex.

use std::sync::Mutex;

use pnut_core::expr::Env;
use pnut_core::NetBuilder;
use pnut_reach::graph::{build_untimed, ReachOptions};
use pnut_reach::pager::fail::{fail_nth_spill_read, fail_nth_spill_write, reset_spill_failures};
use pnut_reach::{PagerConfig, ReachError, StateStore};

/// Serializes the tests (the injection counters are process-global)
/// and guarantees they are disarmed afterwards even if a test panics.
static HOOKS: Mutex<()> = Mutex::new(());

struct Armed<'a>(#[allow(dead_code)] std::sync::MutexGuard<'a, ()>);

fn arm<'a>() -> Armed<'a> {
    Armed(HOOKS.lock().unwrap_or_else(|e| e.into_inner()))
}

impl Drop for Armed<'_> {
    fn drop(&mut self) {
        reset_spill_failures();
        pnut_obs::uninstall();
    }
}

/// A store whose first two segments are spilled (grain 64, 140 states).
fn spilled_store() -> StateStore {
    let cfg = PagerConfig {
        mem_budget: 512,
        spill_dir: None,
    };
    let mut s = StateStore::with_config(2, &cfg);
    let env = s.intern_env(&Env::new()).expect("env");
    for i in 0..140u32 {
        s.intern(&[i, 0], env, &[], &[]).expect("intern");
    }
    s.maintain().expect("seal + evict");
    assert!(s.spilled_bytes() > 0, "setup must actually spill");
    s
}

fn expect_spill(err: ReachError, op: &str) {
    match err {
        ReachError::Spill(e) => assert_eq!(e.op, op, "wrong failing op: {e}"),
        other => panic!("expected ReachError::Spill({op}), got {other:?}"),
    }
}

#[test]
fn reload_failure_surfaces_as_spill_error_and_is_retryable() {
    let _g = arm();
    let store = spilled_store();
    // Install the obs recorder *after* setup so the pager counters see
    // exactly the injected fault sequence below.
    pnut_obs::install();

    fail_nth_spill_read(1);
    expect_spill(
        store.try_marking_slice(0).expect_err("injected read fails"),
        "read",
    );
    let snap = pnut_obs::snapshot();
    assert_eq!(snap.counter("pager.faults"), 1, "one reload attempted");
    assert_eq!(snap.counter("pager.fault_failures"), 1, "and it failed");
    assert_eq!(snap.counter("pager.reloads"), 0, "no successful reload");

    // The failed fault left the store consistent: the segment is still
    // spilled, nothing double-accounted, and the same probe succeeds
    // once the fault clears.
    reset_spill_failures();
    assert_eq!(store.try_marking_slice(0).expect("retry"), &[0, 0]);
    let snap = pnut_obs::snapshot();
    assert_eq!(snap.counter("pager.faults"), 2, "exactly one retry");
    assert_eq!(snap.counter("pager.fault_failures"), 1);
    assert_eq!(snap.counter("pager.reloads"), 1, "the retry reloaded");
    assert!(
        snap.counter("pager.spill_read_bytes") > 0,
        "the successful reload read the spilled image"
    );
    assert_eq!(
        store.try_marking_slice(70).expect("other segment"),
        &[70, 0]
    );
}

#[test]
fn second_read_failing_spares_the_first_fault() {
    let _g = arm();
    let store = spilled_store();

    // N-th semantics: arm the *second* read; the first fault succeeds,
    // the next one fails.
    fail_nth_spill_read(2);
    assert_eq!(store.try_marking_slice(0).expect("first fault"), &[0, 0]);
    expect_spill(
        store.try_marking_slice(70).expect_err("second fault fails"),
        "read",
    );
}

#[test]
fn spill_write_failure_surfaces_during_eviction_and_is_retryable() {
    let _g = arm();
    let cfg = PagerConfig {
        mem_budget: 512,
        spill_dir: None,
    };
    let mut s = StateStore::with_config(2, &cfg);
    let env = s.intern_env(&Env::new()).expect("env");

    // Spilling is eager: `append` seals a full tail and evicts back
    // under budget inline, so the first spill write happens mid-intern,
    // not in a later explicit `maintain()`. Arm before interning.
    fail_nth_spill_write(1);
    let mut failed_at = None;
    for i in 0..140u32 {
        match s.intern(&[i, 0], env, &[], &[]) {
            Ok(_) => {}
            Err(e) => {
                expect_spill(e, "write");
                failed_at = Some(i);
                break;
            }
        }
    }
    let failed_at = failed_at.expect("a seal-time eviction must hit the injected write failure");
    assert_eq!(s.spilled_bytes(), 0, "the failed eviction wrote nothing");

    // The aborted eviction lost no data: the whole interned prefix —
    // including the state whose append triggered the eviction — is
    // still readable (the store is merely over budget).
    for i in 0..=failed_at {
        assert_eq!(
            s.try_marking_slice(i as usize).expect("still readable"),
            &[i, 0]
        );
    }

    // Once the fault clears, an explicit maintain() retries the same
    // eviction cleanly...
    reset_spill_failures();
    s.maintain().expect("retry spills");
    assert!(s.spilled_bytes() > 0);

    // ...and the store keeps working end to end: finish interning,
    // spill, and fault the evicted segments back in.
    for i in failed_at + 1..140u32 {
        s.intern(&[i, 0], env, &[], &[]).expect("intern resumes");
    }
    s.maintain().expect("steady state");
    assert_eq!(s.try_marking_slice(0).expect("faults back in"), &[0, 0]);
    assert_eq!(s.try_marking_slice(139).expect("tail stays"), &[139, 0]);
}

/// A chain net with a marking wide enough (64 places × 4 bytes) that a
/// few hundred states outgrow a 64 KiB budget: `step` moves one token
/// at a time from `src` to `dst`, and the filler places never change, so
/// `src + dst = 800` is invariant and `dst = 800` is the single deadlock.
fn wide_chain_net() -> pnut_core::Net {
    let mut b = NetBuilder::new("wide_chain");
    b.place("src", 800);
    b.place("dst", 0);
    for p in 0..62 {
        b.place(format!("w{p}"), 1);
    }
    b.transition("step").input("src").output("dst").add();
    b.build().expect("builds")
}

/// Sweep every segment once so the pager's residency (and therefore
/// the fault sequence of whatever runs next) depends only on the sweep
/// order, not on build history or worker timing.
fn normalize(g: &mut pnut_reach::ReachabilityGraph) {
    g.for_each_state_in_segments(|_, _, _| {})
        .expect("normalization sweep");
}

fn faults() -> u64 {
    pnut_obs::snapshot().counter("pager.faults")
}

/// One cell of the injection matrix. Runs `op` three times on two
/// identically-built graphs: a clean metering run (counts the phase's
/// faults, checks the paged answer against the resident `expected`),
/// an injected run arming the *last* of those faults — deep inside the
/// phase, e.g. a late fixpoint iteration for CTL — which must return
/// `Err`, and an uninjected retry that must again match `expected`
/// bit for bit. Returns the injected error for a typed assertion.
fn assert_phase<T, E, F>(
    label: &str,
    g_meter: &mut pnut_reach::ReachabilityGraph,
    g_inject: &mut pnut_reach::ReachabilityGraph,
    expected: &T,
    mut op: F,
) -> E
where
    T: PartialEq + std::fmt::Debug,
    E: std::fmt::Debug,
    F: FnMut(&mut pnut_reach::ReachabilityGraph) -> Result<T, E>,
{
    normalize(g_meter);
    normalize(g_inject);
    let before = faults();
    let clean = op(g_meter).expect("clean metering run");
    let n = faults() - before;
    assert!(
        n >= 1,
        "{label}: the phase must fault under a 64 KiB budget"
    );
    assert_eq!(&clean, expected, "{label}: paged result != resident");

    fail_nth_spill_read(n);
    let err = op(g_inject).expect_err("injected mid-phase read must fail");
    reset_spill_failures();

    let retry = op(g_inject).expect("uninjected retry");
    assert_eq!(
        &retry, expected,
        "{label}: retry after the fault cleared is not bit-identical"
    );
    err
}

/// The analysis-phase matrix of the issue: fail a spill read *inside*
/// `deadlocks`, `place_bounds`, `ever_fires`, a CTL `EU` fixpoint, and
/// a CTL `EG` fixpoint, at budget 64 KiB × jobs {1, 4}. Every phase
/// must surface a typed `Spill` error (the process stays alive — this
/// test keeps running), and the uninjected retry on the very graph
/// that faulted must match the fully resident run bit for bit.
#[test]
fn every_analysis_phase_survives_an_injected_reload_failure() {
    use pnut_reach::ctl;
    use pnut_reach::CtlError;

    let _g = arm();
    let net = wide_chain_net();
    let step = net.transition_id("step").expect("exists");
    let eu = ctl::Formula::parse("E [ src + dst = 800 U dst = 800 ]").expect("parses");
    let eg = ctl::Formula::parse("EG (src + dst = 800)").expect("parses");

    // Fully resident reference run.
    let mut resident = build_untimed(&net, &ReachOptions::default()).expect("builds");
    let ref_deadlocks = resident.deadlocks().expect("resident");
    let ref_bounds = resident.place_bounds().expect("resident");
    let ref_fires = resident.ever_fires(step).expect("resident");
    let ref_eu = ctl::check(&mut resident, &net, &eu)
        .expect("resident")
        .satisfying;
    let ref_eg = ctl::check(&mut resident, &net, &eg)
        .expect("resident")
        .satisfying;
    assert!(
        ref_fires && !ref_deadlocks.is_empty(),
        "matrix is not vacuous"
    );

    pnut_obs::install();
    for jobs in [1, 4] {
        let opts = ReachOptions {
            jobs,
            mem_budget: 64 * 1024,
            ..ReachOptions::default()
        };
        // Two identical builds: fault counts metered on one graph
        // transfer to the other (construction is deterministic and
        // `assert_phase` normalizes residency before each run).
        let mut g_meter = build_untimed(&net, &opts).expect("bounded build");
        let mut g_inject = build_untimed(&net, &opts).expect("bounded build");
        assert!(g_inject.spilled_bytes() > 0, "jobs={jobs}: must spill");

        let label = format!("deadlocks (jobs={jobs})");
        let err = assert_phase(&label, &mut g_meter, &mut g_inject, &ref_deadlocks, |g| {
            g.deadlocks()
        });
        expect_spill(err, "read");

        let label = format!("place_bounds (jobs={jobs})");
        let err = assert_phase(&label, &mut g_meter, &mut g_inject, &ref_bounds, |g| {
            g.place_bounds()
        });
        expect_spill(err, "read");

        let label = format!("ever_fires (jobs={jobs})");
        let err = assert_phase(&label, &mut g_meter, &mut g_inject, &ref_fires, |g| {
            g.ever_fires(step)
        });
        expect_spill(err, "read");

        for (what, formula, reference) in [("EU", &eu, &ref_eu), ("EG", &eg, &ref_eg)] {
            let label = format!("CTL {what} (jobs={jobs})");
            let err = assert_phase(&label, &mut g_meter, &mut g_inject, reference, |g| {
                ctl::check(g, &net, formula).map(|o| o.satisfying)
            });
            match err {
                CtlError::Reach(e) => expect_spill(e, "read"),
                other => panic!("{label}: expected CtlError::Reach, got {other:?}"),
            }
        }
    }
}

#[test]
fn mid_sweep_reload_failure_in_a_parallel_paged_graph() {
    let _g = arm();
    // A 201-state chain, built in parallel with a budget small enough
    // that segments spill during construction and the sweep must fault
    // them back in.
    let mut b = NetBuilder::new("chain");
    b.place("src", 200);
    b.place("dst", 0);
    b.transition("step").input("src").output("dst").add();
    let net = b.build().expect("builds");
    let opts = ReachOptions {
        jobs: 4,
        mem_budget: 512,
        ..ReachOptions::default()
    };
    let mut g = build_untimed(&net, &opts).expect("bounded build");
    let total = g.state_count();
    assert_eq!(total, 201);

    // Fail a reload somewhere mid-sweep: the analysis returns the error
    // (no panic, no deadlock, no partial visit presented as complete).
    fail_nth_spill_read(2);
    let mut visited = 0usize;
    let err = g
        .for_each_state_in_segments(|_, _, _| visited += 1)
        .expect_err("injected mid-sweep read fails");
    expect_spill(err, "read");
    assert!(
        visited < total,
        "sweep must stop at the failed segment, visited {visited}/{total}"
    );

    // Once the fault clears the same graph sweeps to completion.
    reset_spill_failures();
    let mut revisited = 0usize;
    g.for_each_state_in_segments(|_, _, _| revisited += 1)
        .expect("clean sweep");
    assert_eq!(revisited, total);
}
