//! The pager fault/evict protocol under the in-tree interleaving
//! checker (`pnut_reach::race`), plus the mutation battery that proves
//! the checker actually *kills* seeded protocol bugs.
//!
//! Compiled only with `--features race-model` (the CI `soundness` job);
//! an ordinary `cargo test` sees an empty file. Every scenario builds a
//! real spilled [`StateStore`] through the public API and probes it
//! from virtual threads, so the code being explored is the production
//! fault path itself — not a model of it.
#![cfg(feature = "race-model")]

use pnut_core::expr::Env;
use pnut_reach::race::{self, FailureKind, Options};
use pnut_reach::sync::mutation;
use pnut_reach::{PagerConfig, StateStore};

/// States interned per scenario store: three segments at the minimum
/// paging grain of 64 — two sealed (indices 0..64 and 64..128, both
/// evicted by the byte budget) and a resident tail.
const STATES: u32 = 140;
const SEG1_FIRST: usize = 64;

/// A store whose sealed segments are all spilled: marking of state `i`
/// is `[i, 0]`, so probes can verify bytes end to end.
fn spilled_store() -> StateStore {
    let cfg = PagerConfig {
        // Far below one segment: every sealed segment is evicted the
        // moment it seals, and faults never trigger eviction (eviction
        // needs `&mut`, which the scenarios deliberately do not hold).
        mem_budget: 512,
        spill_dir: None,
    };
    let mut s = StateStore::with_config(2, &cfg);
    let env = s.intern_env(&Env::new()).expect("env");
    for i in 0..STATES {
        s.intern(&[i, 0], env, &[], &[]).expect("intern");
    }
    s.maintain().expect("seal + evict");
    assert!(s.spilled_bytes() > 0, "setup must actually spill");
    s
}

fn expected(i: usize) -> [u32; 2] {
    [i as u32, 0]
}

/// A reusable two-prober scenario: optionally pre-fault one segment
/// single-threaded, then two virtual threads probe states `a` and `b`
/// concurrently and check the bytes they get back.
fn probe_two(a: usize, b: usize, prefault: Option<usize>) -> impl Fn() + Send + Sync {
    move || {
        let store = spilled_store();
        if let Some(p) = prefault {
            // Make this segment resident *and* imaged before the
            // threads start (it faulted once already).
            assert_eq!(store.try_marking_slice(p).expect("prefault"), &expected(p));
        }
        race::scope(|s| {
            s.spawn(|| {
                assert_eq!(store.try_marking_slice(a).expect("probe a"), &expected(a));
            });
            s.spawn(|| {
                assert_eq!(store.try_marking_slice(b).expect("probe b"), &expected(b));
            });
        });
        // Post-join reads see exactly the same bytes.
        assert_eq!(store.try_marking_slice(a).expect("reread a"), &expected(a));
        assert_eq!(store.try_marking_slice(b).expect("reread b"), &expected(b));
    }
}

#[test]
fn double_fault_on_one_segment_is_sound() {
    // Both probers hit segment 0 (states 0 and 1): one faults, the
    // other either blocks on the fault lock or takes the fast path on
    // the freshly installed pointer — in every interleaving.
    let stats = race::check(&Options::default(), probe_two(0, 1, None))
        .expect("double fault on one segment has no defects");
    assert!(
        stats.executions > 10,
        "expected a real interleaving space, got {} executions",
        stats.executions
    );
}

#[test]
fn concurrent_faults_on_distinct_segments_are_sound() {
    race::check(&Options::default(), probe_two(0, SEG1_FIRST, None))
        .expect("concurrent faults on distinct segments have no defects");
}

#[test]
fn fault_racing_a_fast_path_probe_is_sound() {
    // Segment 1 is resident (pre-faulted); thread B reads it on the
    // fast path while thread A faults segment 0 in.
    race::check(
        &Options::default(),
        probe_two(0, SEG1_FIRST + 1, Some(SEG1_FIRST)),
    )
    .expect("fault racing a fast-path probe has no defects");
}

#[test]
fn ledger_accounts_each_fault_exactly_once() {
    race::check(&Options::default(), || {
        let store = spilled_store();
        let before = store.resident_arena_bytes();
        race::scope(|s| {
            s.spawn(|| {
                store.try_marking_slice(0).expect("fault seg 0");
            });
            s.spawn(|| {
                store.try_marking_slice(SEG1_FIRST).expect("fault seg 1");
            });
        });
        let after = store.resident_arena_bytes();
        assert!(after > before, "two faults must grow the resident ledger");
        assert!(
            store.peak_resident_arena_bytes() >= after,
            "peak envelopes resident"
        );
        // Re-probing resident segments must not account again.
        race::scope(|s| {
            s.spawn(|| {
                store.try_marking_slice(1).expect("fast path seg 0");
            });
            s.spawn(|| {
                store
                    .try_marking_slice(SEG1_FIRST + 1)
                    .expect("fast path seg 1");
            });
        });
        assert_eq!(
            store.resident_arena_bytes(),
            after,
            "fast-path probes double-accounted the ledger"
        );
    })
    .expect("ledger contention has no defects");
}

#[test]
fn probe_seal_probe_phases_stay_sound() {
    // The protocol's phase structure: concurrent probes, then an
    // exclusive seal/evict point (`maintain` under `&mut`, which the
    // borrow checker proves cannot overlap any probe), then more
    // concurrent probes re-faulting what the eviction pushed out.
    race::check(&Options::default(), || {
        let mut store = spilled_store();
        race::scope(|s| {
            s.spawn(|| {
                store.try_marking_slice(0).expect("probe");
            });
            s.spawn(|| {
                store.try_marking_slice(1).expect("probe");
            });
        });
        store.maintain().expect("evict the faulted segment again");
        race::scope(|s| {
            s.spawn(|| {
                assert_eq!(store.try_marking_slice(0).expect("refault"), &expected(0));
            });
            s.spawn(|| {
                assert_eq!(
                    store.try_marking_slice(SEG1_FIRST).expect("refault"),
                    &expected(SEG1_FIRST)
                );
            });
        });
    })
    .expect("probe/seal/probe phases have no defects");
}

/// The mutation battery: each seeded protocol bug (see
/// `pnut_reach::sync::mutation`) must be killed by the checker — with
/// the expected failure kind — and the recorded schedule must replay
/// to the same verdict. The unmutated protocol passing *exhaustively*
/// is the other half of the argument (the tests above).
#[test]
fn mutation_battery_kills_every_mutant() {
    struct Mutant {
        tag: &'static str,
        expect: &'static [FailureKind],
        scenario: Box<dyn Fn() + Send + Sync>,
    }
    let battery = [
        Mutant {
            // No recheck after taking the fault lock: the second
            // faulter re-installs over the first installation, leaking
            // it (and double-accounting the ledger).
            tag: mutation::DROP_FAULT_RECHECK,
            expect: &[FailureKind::Leak],
            scenario: Box::new(probe_two(0, 1, None)),
        },
        Mutant {
            // Relaxed install: a fast-path reader acquires the pointer
            // but not the deserialized bytes behind it.
            tag: mutation::RELAXED_INSTALL,
            expect: &[FailureKind::Race],
            scenario: Box::new(probe_two(0, 1, None)),
        },
        Mutant {
            // Freeing a cold segment inside `fault()` (under `&self`)
            // rips memory out from under the concurrent fast-path
            // reader of segment 1.
            tag: mutation::FREE_IN_FAULT,
            expect: &[FailureKind::Race, FailureKind::UseAfterFree],
            scenario: Box::new(probe_two(0, SEG1_FIRST + 1, Some(SEG1_FIRST))),
        },
    ];
    for m in &battery {
        eprintln!("battery: exploring mutant `{}`", m.tag);
        let opts = Options {
            tags: vec![m.tag],
            ..Options::default()
        };
        let err = match race::check(&opts, &*m.scenario) {
            Err(e) => e,
            Ok(stats) => panic!(
                "mutant `{}` survived {} explored executions",
                m.tag, stats.executions
            ),
        };
        assert!(
            m.expect.contains(&err.kind),
            "mutant `{}` was killed as {:?}, expected one of {:?}:\n{err}",
            m.tag,
            err.kind,
            m.expect
        );
        assert!(!err.schedule.is_empty() || !err.message.is_empty());
        let replayed = race::replay(&opts, &err.schedule, &*m.scenario)
            .unwrap_or_else(|| panic!("mutant `{}` schedule did not replay", m.tag));
        assert_eq!(
            replayed.kind, err.kind,
            "mutant `{}` replay diverged:\n{replayed}",
            m.tag
        );
    }
}
