//! Finding-by-finding coverage of the lint passes on purpose-built
//! nets.

use pnut_analysis::{lint, Severity};
use pnut_core::{Expr, Net, NetBuilder, NetError};

fn codes(net: &Net) -> Vec<&'static str> {
    lint(net).findings.iter().map(|f| f.code).collect()
}

fn has(net: &Net, code: &str, subject: &str) -> bool {
    lint(net)
        .findings
        .iter()
        .any(|f| f.code == code && f.subject == subject)
}

/// The §4.4 bus net: fully covered, no findings at all.
fn bus() -> Result<Net, NetError> {
    let mut b = NetBuilder::new("bus");
    b.place("Bus_free", 1);
    b.place("Bus_busy", 0);
    b.transition("seize")
        .input("Bus_free")
        .output("Bus_busy")
        .add();
    b.transition("release")
        .input("Bus_busy")
        .output("Bus_free")
        .add();
    b.build()
}

#[test]
fn clean_net_has_no_findings() -> Result<(), NetError> {
    let report = lint(&bus()?);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.bounds, vec![Some(1), Some(1)]);
    assert_eq!(report.errors(), 0);
    Ok(())
}

#[test]
fn uncovered_place_warns() -> Result<(), NetError> {
    let mut b = NetBuilder::new("mint");
    b.place("u", 1);
    // `mint` adds a token per firing: no semi-positive invariant can
    // cover `u`.
    b.transition("mint")
        .input("u")
        .output_weighted("u", 2)
        .add();
    b.transition("burn")
        .input_weighted("u", 2)
        .output("u")
        .add();
    let net = b.build()?;
    assert!(has(&net, "unbounded-place", "u"));
    assert_eq!(lint(&net).bounds, vec![None]);
    Ok(())
}

#[test]
fn bound_zero_input_is_dead() -> Result<(), NetError> {
    let mut b = NetBuilder::new("z");
    b.place("z", 0);
    // Self-loop keeps `z` out of the source/sink report while the
    // invariant `z = 0` proves the bound.
    b.transition("dead_t").input("z").output("z").add();
    let net = b.build()?;
    let report = lint(&net);
    assert!(has(&net, "dead-transition", "dead_t"));
    assert_eq!(report.dead_transitions.len(), 1);
    let why = &report.findings[0].why;
    assert!(
        why.contains("z = 0"),
        "why should name the invariant: {why}"
    );
    Ok(())
}

#[test]
fn starved_unproduced_input_is_dead() -> Result<(), NetError> {
    let mut b = NetBuilder::new("starved");
    b.place("src", 0);
    b.place("dst", 0);
    b.transition("t").input("src").output("dst").add();
    let net = b.build()?;
    // `src` empty with no producer: dead without any invariant proof.
    assert!(has(&net, "dead-transition", "t"));
    Ok(())
}

#[test]
fn constant_false_predicate_is_dead() -> Result<(), NetError> {
    let mut b = NetBuilder::new("predfalse");
    b.place("a", 1);
    b.transition("t")
        .input("a")
        .output("a")
        .predicate(Expr::parse("1 > 2").expect("parses"))
        .add();
    let net = b.build()?;
    let report = lint(&net);
    assert!(has(&net, "dead-transition", "t"));
    assert!(report.findings[0].why.contains("constantly false"));
    Ok(())
}

#[test]
fn always_marked_inhibitor_is_dead() -> Result<(), NetError> {
    let mut b = NetBuilder::new("inhib");
    b.place("c", 1);
    b.place("x", 1);
    b.place("y", 0);
    // `c` is conserved at exactly 1 token (invariant `c = 1`), so an
    // inhibitor with threshold 1 can never unblock.
    b.transition("keep").input("c").output("c").add();
    b.transition("blocked")
        .input("x")
        .output("y")
        .inhibitor("c")
        .add();
    b.transition("back").input("y").output("x").add();
    let net = b.build()?;
    let report = lint(&net);
    assert!(
        has(&net, "dead-transition", "blocked"),
        "{:?}",
        report.findings
    );
    assert!(report.findings[0].why.contains("inhibitor"));
    Ok(())
}

#[test]
fn structural_dead_ends_are_reported() -> Result<(), NetError> {
    let mut b = NetBuilder::new("ends");
    b.place("lonely", 0);
    b.place("drain", 2);
    b.place("pile", 0);
    b.transition("t").input("drain").output("pile").add();
    b.transition("free").output("pile").add();
    let net = b.build()?;
    let cs = codes(&net);
    assert!(cs.contains(&"isolated-place"));
    assert!(cs.contains(&"never-produced-place"));
    assert!(cs.contains(&"never-consumed-place"));
    assert!(cs.contains(&"input-free-transition"));
    Ok(())
}

#[test]
fn disconnected_components_warn() -> Result<(), NetError> {
    let mut b = NetBuilder::new("split");
    b.place("a", 1);
    b.place("b", 0);
    b.place("c", 1);
    b.place("d", 0);
    b.transition("ab").input("a").output("b").add();
    b.transition("ba").input("b").output("a").add();
    b.transition("cd").input("c").output("d").add();
    b.transition("dc").input("d").output("c").add();
    let net = b.build()?;
    assert!(has(&net, "disconnected-net", "split"));
    Ok(())
}

#[test]
fn transition_outside_t_invariants_is_flagged() -> Result<(), NetError> {
    let mut b = NetBuilder::new("oneshot");
    b.place("a", 1);
    b.place("b", 0);
    b.place("go", 1);
    b.place("gone", 0);
    b.transition("ab").input("a").output("b").add();
    b.transition("ba").input("b").output("a").add();
    // `once` consumes `go` forever: it is in no T-invariant support.
    b.transition("once").input("go").output("gone").add();
    b.transition("gone_spin").input("gone").output("gone").add();
    let net = b.build()?;
    assert!(has(&net, "acyclic-transition", "once"));
    Ok(())
}

#[test]
fn net_without_cycles_gets_one_info() -> Result<(), NetError> {
    let mut b = NetBuilder::new("toggle");
    b.place("u", 1);
    b.place("d", 0);
    b.transition("flip").input("u").output("d").add();
    let net = b.build()?;
    let report = lint(&net);
    assert!(has(&net, "no-cycles", "toggle"));
    assert!(!codes(&net).contains(&"acyclic-transition"));
    assert_eq!(report.errors(), 0);
    Ok(())
}

#[test]
fn expression_lint_flags_variable_hazards() -> Result<(), NetError> {
    let mut b = NetBuilder::new("vars");
    b.place("a", 1);
    b.var("declared", 0);
    b.transition("t")
        .input("a")
        .output("a")
        .predicate(Expr::parse("declared + ghost + late > 0").expect("parses"))
        .action_str("late = 1; sink = 2;")?
        .add();
    let net = b.build()?;
    let report = lint(&net);
    let find = |code: &str, subject: &str| {
        report
            .findings
            .iter()
            .find(|f| f.code == code && f.subject == subject)
    };
    // `ghost`: read, never declared, never written — guaranteed error.
    assert!(
        find("undefined-var", "ghost").is_some(),
        "{:?}",
        report.findings
    );
    assert_eq!(
        find("undefined-var", "ghost").expect("present").severity,
        Severity::Error
    );
    // `late`: read, not declared, but written by the action.
    assert!(find("read-before-write", "late").is_some());
    // `sink`: written, never read anywhere.
    assert!(find("unread-var", "sink").is_some());
    // `declared` is fine.
    assert!(!report.findings.iter().any(|f| f.subject == "declared"));
    Ok(())
}

#[test]
fn expression_lint_flags_table_hazards() -> Result<(), NetError> {
    let mut b = NetBuilder::new("tables");
    b.place("a", 1);
    b.var("v", 0);
    b.table("tab", vec![1, 2, 3]);
    b.transition("read_oob")
        .input("a")
        .output("a")
        .predicate(Expr::parse("tab[3] > 0").expect("parses"))
        .add();
    b.transition("write_oob")
        .input("a")
        .output("a")
        .action_str("tab[0 - 1] = v;")?
        .add();
    b.transition("ghost_table")
        .input("a")
        .output("a")
        .action_str("v = phantom[0];")?
        .add();
    let net = b.build()?;
    let report = lint(&net);
    let oob: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.code == "const-table-index")
        .collect();
    assert_eq!(oob.len(), 2, "{:?}", report.findings);
    assert!(report
        .findings
        .iter()
        .any(|f| f.code == "undefined-table" && f.subject == "phantom"));
    Ok(())
}

#[test]
fn guaranteed_eval_errors_are_flagged() -> Result<(), NetError> {
    let mut b = NetBuilder::new("consterr");
    b.place("a", 1);
    b.var("v", 0);
    b.transition("div")
        .input("a")
        .output("a")
        .action_str("v = 1 / 0;")?
        .add();
    b.transition("intpred")
        .input("a")
        .output("a")
        .predicate(Expr::parse("1 + 2").expect("parses"))
        .add();
    let net = b.build()?;
    let report = lint(&net);
    let errs: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.code == "const-error")
        .collect();
    assert_eq!(errs.len(), 2, "{:?}", report.findings);
    assert!(errs.iter().any(|f| f.why.contains("division")));
    assert!(errs.iter().any(|f| f.why.contains("boolean")));
    Ok(())
}

#[test]
fn findings_sort_errors_first() -> Result<(), NetError> {
    let mut b = NetBuilder::new("order");
    b.place("z", 0);
    b.place("u", 1);
    b.transition("dead_t").input("z").output("z").add();
    b.transition("mint")
        .input("u")
        .output_weighted("u", 2)
        .add();
    b.transition("burn")
        .input_weighted("u", 2)
        .output("u")
        .add();
    let net = b.build()?;
    let report = lint(&net);
    let sev: Vec<Severity> = report.findings.iter().map(|f| f.severity).collect();
    let mut sorted = sev.clone();
    sorted.sort();
    assert_eq!(sev, sorted);
    assert!(report.errors() >= 1 && report.warnings() >= 1);
    Ok(())
}

#[test]
fn json_rendering_is_schema_shaped() -> Result<(), NetError> {
    let net = bus()?;
    let report = lint(&net);
    let mut out = String::new();
    report.render_json("models/bus \"x\".pn", &mut out);
    for line in out.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"type\":\""), "{line}");
        // The quote in the path must be escaped, never bare.
        assert!(!line.contains("bus \"x\""), "{line}");
    }
    assert!(out.contains("\"type\":\"summary\""));
    assert!(pnut_analysis::json_meta_line().contains("\"version\":1"));
    Ok(())
}
