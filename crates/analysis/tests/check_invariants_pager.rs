//! `check_invariants` through the pager: clean paged sweeps agree with
//! the in-memory graph at any budget × job count, and a *silently*
//! corrupted spill reload — one that passes the image format's
//! structural validation — trips the invariant check.
//!
//! The corruption hooks are process-global, so this file is its own
//! test binary and serializes its tests on a mutex (same discipline as
//! `pnut-reach/tests/spill_fault_injection.rs`).

use std::sync::Mutex;

use pnut_analysis::{check_invariants, InvariantCheckError};
use pnut_bench::workloads;
use pnut_reach::pager::fail;
use pnut_reach::{graph, ReachOptions, ReachabilityGraph};

static HOOKS: Mutex<()> = Mutex::new(());

/// Serialize on [`HOOKS`], shrugging off poisoning: a failed test must
/// not cascade into the others.
fn serialize() -> std::sync::MutexGuard<'static, ()> {
    HOOKS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Disarm-on-drop so a failing assert can't leak an armed hook into
/// the next test.
struct Armed;

impl Drop for Armed {
    fn drop(&mut self) {
        fail::reset_spill_failures();
    }
}

const CELLS: u32 = 13; // 2^13 = 8192 states, 13 invariants u_i + d_i = 1
const BUDGET: usize = 64 * 1024;

fn build(jobs: usize, mem_budget: usize) -> ReachabilityGraph {
    let net = workloads::wide_toggle(CELLS);
    let options = ReachOptions {
        max_states: 10_000,
        jobs,
        mem_budget,
        ..ReachOptions::default()
    };
    graph::build_untimed(&net, &options).expect("wide_toggle builds")
}

#[test]
fn clean_paged_check_is_identical_across_jobs() {
    let _serial = serialize();
    let net = workloads::wide_toggle(CELLS);

    // Unpaged reference.
    let mut reference = build(1, usize::MAX);
    let ref_check = check_invariants(&net, &mut reference).expect("reference check passes");
    assert_eq!(ref_check.invariants, CELLS as usize);
    assert_eq!(ref_check.states_checked, 1 << CELLS);
    assert_eq!(ref_check.states_skipped, 0);

    for jobs in [1, 4] {
        let mut g = build(jobs, BUDGET);
        assert!(
            g.spilled_bytes() > 0,
            "64 KiB budget must force spilling, or the test is vacuous"
        );
        let check = check_invariants(&net, &mut g).expect("paged check passes");
        // Same summary as the unpaged graph: the sweep reads identical
        // data through the pager.
        assert_eq!(check, ref_check, "jobs={jobs}");
        assert_eq!(g.state_count(), reference.state_count(), "jobs={jobs}");
        assert_eq!(g.edge_count(), reference.edge_count(), "jobs={jobs}");
        assert_eq!(
            g.place_bounds(),
            reference.place_bounds(),
            "jobs={jobs}: paged graph must stay bit-identical"
        );
    }
}

#[test]
fn corrupted_spill_reload_trips_the_check() {
    let _serial = serialize();
    let net = workloads::wide_toggle(CELLS);

    for jobs in [1, 4] {
        let mut g = build(jobs, BUDGET);
        assert!(g.spilled_bytes() > 0);

        let _armed = Armed;
        fail::corrupt_nth_spill_read(1);
        let err = check_invariants(&net, &mut g)
            .expect_err("a flipped marking byte must violate an invariant");
        assert!(err.to_string().contains("violates P-invariant"), "{err}");
        match &err {
            InvariantCheckError::Violation { expected, got, .. } => {
                // u_i + d_i = 1 with one bit flipped reads 0 or 2.
                assert_eq!(*expected, 1, "jobs={jobs}");
                assert!(*got == 0 || *got == 2, "jobs={jobs}: got {got}");
            }
            other => panic!("jobs={jobs}: expected a violation, got: {other}"),
        }
        // The flipped image stays resident after the reload, so the
        // corruption is sticky for this graph — rebuild to recover
        // (which `clean_paged_check_is_identical_across_jobs` covers).
    }
}

#[test]
fn injected_read_failure_surfaces_as_reach_error() {
    let _serial = serialize();
    let net = workloads::wide_toggle(CELLS);
    let mut g = build(1, BUDGET);
    assert!(g.spilled_bytes() > 0);

    let _armed = Armed;
    fail::fail_nth_spill_read(1);
    let err = check_invariants(&net, &mut g).expect_err("injected I/O failure propagates");
    assert!(
        matches!(err, InvariantCheckError::Reach(_)),
        "expected a reach error, got: {err}"
    );
}
