//! Static-vs-dynamic cross-check battery: the left-curve discipline.
//!
//! On the golden paper models and a 40-seed `random_net` sweep, the
//! static analyzer and the reachability engine must agree:
//! every structural bound is `>=` the exact dynamic bound, every
//! lint-dead transition really never fires, and no firing transition
//! is ever called dead.

use pnut_analysis::lint;
use pnut_bench::workloads;
use pnut_core::Net;
use pnut_pipeline::{sequential, ThreeStageConfig};
use pnut_reach::{graph, ReachOptions};

/// Assert the agreement contract on one fully-explored net.
fn cross_check(net: &Net, max_states: usize) -> bool {
    let report = lint(net);
    let options = ReachOptions {
        max_states,
        ..ReachOptions::default()
    };
    let Ok(mut g) = graph::build_untimed(net, &options) else {
        // State-limit or evaluation failure: the exact bounds are
        // unknowable, nothing to compare (the generator's contract —
        // see `workloads::random_net`).
        return false;
    };

    let exact = g.place_bounds().expect("paged sweep");
    for (p, bound) in report.bounds.iter().enumerate() {
        if let Some(b) = bound {
            assert!(
                *b >= i64::from(exact[p]),
                "{}: static bound {b} for `{}` below exact bound {}",
                net.name(),
                report.place_names[p],
                exact[p]
            );
        }
    }

    for &t in &report.dead_transitions {
        assert!(
            !g.ever_fires(t).expect("paged sweep"),
            "{}: lint called `{}` dead but it fires",
            net.name(),
            net.transition(t).name()
        );
    }
    // The other direction of "no false dead verdicts": every
    // dynamically firing transition must be absent from the dead list.
    for (tid, tr) in net.transitions() {
        if g.ever_fires(tid).expect("paged sweep") {
            assert!(
                !report.dead_transitions.contains(&tid),
                "{}: `{}` fires yet was reported dead",
                net.name(),
                tr.name()
            );
        }
    }
    true
}

#[test]
fn golden_models_agree() {
    let three_stage = workloads::three_stage_net();
    let interpreted = workloads::interpreted_net();
    let sequential = sequential::build(&ThreeStageConfig::default()).expect("paper config builds");
    for net in [&three_stage, &interpreted, &sequential] {
        assert!(
            cross_check(net, 200_000),
            "{} hit the state cap",
            net.name()
        );
        // The paper models are live: zero error findings.
        assert_eq!(lint(net).errors(), 0, "{}", net.name());
    }
}

#[test]
fn random_net_sweep_agrees() {
    let mut checked = 0;
    for seed in 0..40 {
        let net = workloads::random_net(seed);
        if cross_check(&net, 2_000) {
            checked += 1;
        }
    }
    // Guard against generator drift starving the sweep.
    assert!(
        checked >= 20,
        "only {checked}/40 random nets were explorable"
    );
}
