//! Structural static analysis of P-NUT nets (`pnut lint`).
//!
//! Classical incidence-matrix analysis (\[RH80\], \[Pet81\] — see
//! `pnut_core::invariant`) applied as a linter: prove place bounds from
//! semi-positive P-invariants, find statically dead transitions and
//! structural dead ends, and lint the expression layer for guaranteed
//! runtime errors — all *before* a `reach` or `sim` run spends time on
//! a meaningless model. [`check_invariants`] closes the loop with the
//! dynamic engine: every explored state must satisfy every proven
//! invariant, which doubles as a semantic integrity check on pager
//! spill reloads.
//!
//! See `docs/STATIC_ANALYSIS.md` for the pass-by-pass description,
//! soundness caveats, and the `--json` schema.
//!
//! # Example
//!
//! ```
//! use pnut_core::NetBuilder;
//!
//! # fn main() -> Result<(), pnut_core::NetError> {
//! let mut b = NetBuilder::new("bus");
//! b.place("Bus_free", 1);
//! b.place("Bus_busy", 0);
//! b.transition("seize").input("Bus_free").output("Bus_busy").add();
//! b.transition("release").input("Bus_busy").output("Bus_free").add();
//! let net = b.build()?;
//! let report = pnut_analysis::lint(&net);
//! assert_eq!(report.errors(), 0);
//! assert_eq!(report.bounds, vec![Some(1), Some(1)]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod check;
mod lint;
mod report;

pub use check::{check_invariants, InvariantCheck, InvariantCheckError};
pub use lint::{lint, structural_bounds, StructuralBounds};
pub use report::{json_meta_line, Finding, LintReport, Severity};
