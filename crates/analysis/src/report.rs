//! Lint findings and their human/JSON renderings.

use std::fmt;

use pnut_core::TransitionId;

/// How bad a finding is.
///
/// `Error` findings are defects the dynamic engine will surface as a
/// failure or a provably useless run (a dead transition, a guaranteed
/// `EvalError`); `Warn` findings mean a guarantee is missing (an
/// unbounded place, a read of a variable that may not exist yet);
/// `Info` findings are structural observations worth knowing before a
/// `markov` or `sim` run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Provable defect.
    Error,
    /// Missing guarantee.
    Warn,
    /// Structural observation.
    Info,
}

impl Severity {
    /// The lowercase label used in both text and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
            Severity::Info => "info",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One lint finding: a severity, a stable machine-readable code, the
/// place/transition/variable it is about, and a one-line "why" naming
/// the proving invariant or folded constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Severity class.
    pub severity: Severity,
    /// Stable kebab-case code (part of the JSON schema).
    pub code: &'static str,
    /// The place, transition, variable, or net the finding is about.
    pub subject: String,
    /// One-line justification.
    pub why: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.subject, self.why
        )
    }
}

/// The result of [`lint`](crate::lint()): findings plus the structural
/// place bounds the analysis derived along the way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintReport {
    /// Net name, as declared in the model.
    pub net_name: String,
    /// Place names in place-id order (parallel to `bounds`).
    pub place_names: Vec<String>,
    /// Number of transitions in the net.
    pub transition_count: usize,
    /// Structural bound per place: `Some(b)` when a semi-positive
    /// P-invariant proves the place never exceeds `b` tokens, `None`
    /// when no such invariant covers it (bound unknown, **not** proven
    /// unbounded).
    pub bounds: Vec<Option<i64>>,
    /// Transitions proven statically dead (every `dead-transition`
    /// finding's subject, as an id).
    pub dead_transitions: Vec<TransitionId>,
    /// All findings, errors first, stable order within a severity.
    pub findings: Vec<Finding>,
}

impl LintReport {
    /// Number of `error` findings.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of `warn` findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warn)
    }

    /// Number of `info` findings.
    pub fn infos(&self) -> usize {
        self.count(Severity::Info)
    }

    fn count(&self, s: Severity) -> usize {
        self.findings.iter().filter(|f| f.severity == s).count()
    }

    /// Render the human-readable report for a model loaded from `path`.
    pub fn render_text(&self, path: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "model `{}` ({}): {} places, {} transitions\n",
            self.net_name,
            path,
            self.place_names.len(),
            self.transition_count
        ));
        for f in &self.findings {
            out.push_str(&format!("  {f}\n"));
        }
        out.push_str("structural bounds:\n");
        for (name, b) in self.place_names.iter().zip(&self.bounds) {
            match b {
                Some(b) => out.push_str(&format!("  bound({name}) = {b}\n")),
                None => out.push_str(&format!("  bound({name}) = unknown\n")),
            }
        }
        out.push_str(&format!(
            "summary: {} error(s), {} warning(s), {} info(s)\n",
            self.errors(),
            self.warnings(),
            self.infos()
        ));
        out
    }

    /// Append the NDJSON body lines for this model to `out` (the
    /// caller emits the shared [`json_meta_line`] header once).
    ///
    /// Schema (one JSON object per line, `version` 1):
    /// - `{"type":"model","path":…,"net":…,"places":N,"transitions":N}`
    /// - `{"type":"finding","path":…,"severity":…,"code":…,"subject":…,"why":…}`
    /// - `{"type":"bound","path":…,"place":…,"bound":N}` or
    ///   `{"type":"bound","path":…,"place":…,"known":false}`
    /// - `{"type":"summary","path":…,"errors":N,"warnings":N,"infos":N}`
    pub fn render_json(&self, path: &str, out: &mut String) {
        let path = json_escape(path);
        out.push_str(&format!(
            "{{\"type\":\"model\",\"path\":\"{}\",\"net\":\"{}\",\"places\":{},\"transitions\":{}}}\n",
            path,
            json_escape(&self.net_name),
            self.place_names.len(),
            self.transition_count
        ));
        for f in &self.findings {
            out.push_str(&format!(
                "{{\"type\":\"finding\",\"path\":\"{}\",\"severity\":\"{}\",\"code\":\"{}\",\"subject\":\"{}\",\"why\":\"{}\"}}\n",
                path,
                f.severity,
                f.code,
                json_escape(&f.subject),
                json_escape(&f.why)
            ));
        }
        for (name, b) in self.place_names.iter().zip(&self.bounds) {
            match b {
                Some(b) => out.push_str(&format!(
                    "{{\"type\":\"bound\",\"path\":\"{}\",\"place\":\"{}\",\"bound\":{}}}\n",
                    path,
                    json_escape(name),
                    b
                )),
                None => out.push_str(&format!(
                    "{{\"type\":\"bound\",\"path\":\"{}\",\"place\":\"{}\",\"known\":false}}\n",
                    path,
                    json_escape(name)
                )),
            }
        }
        out.push_str(&format!(
            "{{\"type\":\"summary\",\"path\":\"{}\",\"errors\":{},\"warnings\":{},\"infos\":{}}}\n",
            path,
            self.errors(),
            self.warnings(),
            self.infos()
        ));
    }
}

/// The NDJSON meta header: the first line of every `pnut lint --json`
/// stream.
pub fn json_meta_line() -> &'static str {
    "{\"type\":\"meta\",\"version\":1,\"tool\":\"lint\"}"
}

/// Minimal JSON string escaping (the only special characters our
/// identifiers and messages can contain).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
