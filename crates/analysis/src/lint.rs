//! The lint passes: structural bounds, dead-net detection, expression
//! lint.

use std::collections::BTreeMap;

use pnut_core::expr::{Env, Expr, Target, Value};
use pnut_core::{analysis, invariant, Delay, Net, PlaceId};

use crate::report::{Finding, LintReport, Severity};

/// Structural place bounds derived from semi-positive P-invariants.
#[derive(Debug, Clone)]
pub struct StructuralBounds {
    /// The semi-positive invariants used (see
    /// [`invariant::semi_positive_p_invariants`]).
    pub invariants: Vec<invariant::PInvariant>,
    /// Conserved token sum per invariant, at the initial marking.
    pub sums: Vec<i64>,
    /// `bounds[p]`: tightest bound any invariant proves for place `p`,
    /// or `None` if no semi-positive invariant covers it.
    pub bounds: Vec<Option<i64>>,
    /// Index into `invariants` of the proving invariant, per place.
    pub proof: Vec<Option<usize>>,
}

/// Derive structural bounds for every place:
/// `bound(p) = min over covering invariants of token_sum / weight[p]`.
pub fn structural_bounds(net: &Net) -> StructuralBounds {
    let invariants = invariant::semi_positive_p_invariants(net);
    let m0 = net.initial_marking();
    let sums: Vec<i64> = invariants.iter().map(|inv| inv.token_sum(&m0)).collect();
    let mut bounds = vec![None; net.place_count()];
    let mut proof = vec![None; net.place_count()];
    for (k, inv) in invariants.iter().enumerate() {
        for (p, &w) in inv.weights.iter().enumerate() {
            if w > 0 {
                let b = sums[k] / w;
                if bounds[p].is_none_or(|prev| b < prev) {
                    bounds[p] = Some(b);
                    proof[p] = Some(k);
                }
            }
        }
    }
    StructuralBounds {
        invariants,
        sums,
        bounds,
        proof,
    }
}

impl StructuralBounds {
    /// A provable *lower* bound on the tokens in `p`, from any covering
    /// invariant whose other support places are all bounded:
    /// `w·m(p) = sum − Σ w_q·m(q) ≥ sum − Σ w_q·bound(q)`.
    ///
    /// Valid at quiescent instants (under firing-time semantics a
    /// mid-firing dip can go below it — see `docs/STATIC_ANALYSIS.md`).
    fn lower_bound(&self, p: usize) -> Option<(i64, usize)> {
        let mut best: Option<(i64, usize)> = None;
        'inv: for (k, inv) in self.invariants.iter().enumerate() {
            let w = inv.weights[p];
            if w <= 0 {
                continue;
            }
            let mut others = 0i64;
            for (q, &wq) in inv.weights.iter().enumerate() {
                if q == p || wq == 0 {
                    continue;
                }
                match self.bounds[q] {
                    Some(b) => others += wq.saturating_mul(b),
                    None => continue 'inv,
                }
            }
            let lb = (self.sums[k] - others).div_euclid(w).max(0);
            if best.is_none_or(|(prev, _)| lb > prev) {
                best = Some((lb, k));
            }
        }
        best
    }

    /// Render invariant `k` as an equation, e.g. `u0 + d0 = 1`.
    fn describe(&self, k: usize, place_name: impl Fn(usize) -> String) -> String {
        let mut lhs = String::new();
        for (p, &w) in self.invariants[k].weights.iter().enumerate() {
            if w == 0 {
                continue;
            }
            if !lhs.is_empty() {
                lhs.push_str(" + ");
            }
            if w != 1 {
                lhs.push_str(&format!("{w}*"));
            }
            lhs.push_str(&place_name(p));
        }
        format!("{lhs} = {}", self.sums[k])
    }
}

/// Run every static pass over `net` and collect the findings.
///
/// See `docs/STATIC_ANALYSIS.md` for what each pass proves and, just as
/// importantly, the soundness caveats: bounds are conservative upper
/// bounds (inhibitors and predicates only *remove* reachable markings),
/// dead verdicts assume untimed/quiescent observation, and an uncovered
/// place is *unknown*, not proven unbounded.
pub fn lint(net: &Net) -> LintReport {
    let _span = pnut_obs::span("analysis.lint");

    let bounds = structural_bounds(net);
    let mut findings = Vec::new();
    let mut dead = Vec::new();

    let pname = |p: usize| net.place(PlaceId::new(p)).name().to_string();

    // Pass 1: coverage — places no semi-positive invariant bounds.
    for (p, b) in bounds.bounds.iter().enumerate() {
        if b.is_none() {
            findings.push(Finding {
                severity: Severity::Warn,
                code: "unbounded-place",
                subject: pname(p),
                why: "no semi-positive P-invariant covers this place; its bound is unknown, so \
                      `reach --max-states` is load-bearing"
                    .into(),
            });
        }
    }

    // Pass 2: statically dead transitions (one finding per transition,
    // first proven cause wins) and guaranteed-failing constants.
    let structure = analysis::structural_report(net);
    for (tid, t) in net.transitions() {
        let mut dead_why: Option<String> = None;

        if structure.structurally_dead_transitions.contains(&tid) {
            let starved = t
                .inputs()
                .iter()
                .find(|&&(p, w)| net.initial_marking().tokens(p) < w && net.producers(p).is_empty())
                .map(|&(p, _)| net.place(p).name().to_string())
                .unwrap_or_default();
            dead_why = Some(format!(
                "input place `{starved}` starts short of tokens and no transition produces it"
            ));
        }

        if dead_why.is_none() {
            for &(p, w) in t.inputs() {
                let (Some(b), Some(k)) = (bounds.bounds[p.index()], bounds.proof[p.index()]) else {
                    continue;
                };
                if b < i64::from(w) {
                    dead_why = Some(format!(
                        "input place `{}` can never hold {w} token(s): bound {b} by P-invariant \
                         {}",
                        net.place(p).name(),
                        bounds.describe(k, pname)
                    ));
                    break;
                }
            }
        }

        if dead_why.is_none() {
            if let Some(pred) = t.predicate() {
                match pred.const_eval() {
                    Some(Ok(Value::Bool(false))) => {
                        dead_why = Some(format!("predicate `{pred}` is constantly false"));
                    }
                    Some(Ok(Value::Bool(true))) | Some(Ok(Value::Int(_))) | Some(Err(_)) | None => {
                    }
                }
            }
        }

        if dead_why.is_none() {
            for &(p, th) in t.inhibitors() {
                let Some((lb, k)) = bounds.lower_bound(p.index()) else {
                    continue;
                };
                if lb >= i64::from(th) {
                    dead_why = Some(format!(
                        "inhibitor arc on `{}` is always blocking: at least {lb} token(s) \
                         present (threshold {th}) by P-invariant {}",
                        net.place(p).name(),
                        bounds.describe(k, pname)
                    ));
                    break;
                }
            }
        }

        if let Some(why) = dead_why {
            dead.push(tid);
            findings.push(Finding {
                severity: Severity::Error,
                code: "dead-transition",
                subject: t.name().to_string(),
                why,
            });
        }
    }

    // Pass 3: structural dead ends.
    for &p in &structure.isolated_places {
        findings.push(Finding {
            severity: Severity::Warn,
            code: "isolated-place",
            subject: net.place(p).name().to_string(),
            why: "connected to no transition at all".into(),
        });
    }
    for &p in &structure.source_only_places {
        findings.push(Finding {
            severity: Severity::Info,
            code: "never-produced-place",
            subject: net.place(p).name().to_string(),
            why: "no transition produces it; its tokens can only drain".into(),
        });
    }
    for &p in &structure.sink_only_places {
        findings.push(Finding {
            severity: Severity::Info,
            code: "never-consumed-place",
            subject: net.place(p).name().to_string(),
            why: "no transition consumes it; its tokens only accumulate".into(),
        });
    }
    for &t in &structure.sourceless_transitions {
        findings.push(Finding {
            severity: Severity::Info,
            code: "input-free-transition",
            subject: net.transition(t).name().to_string(),
            why: "has no input arcs, so it is always marking-enabled".into(),
        });
    }
    if let Some(why) = disconnected(net) {
        findings.push(Finding {
            severity: Severity::Warn,
            code: "disconnected-net",
            subject: net.name().to_string(),
            why,
        });
    }

    // Pass 4: steady-state relevance. Every T-invariant is an integer
    // combination of the basis, so a transition outside every basis
    // support has firing-count 0 in *all* of them — it cannot be part
    // of any reproducing cycle `markov` could weight.
    let t_basis = invariant::t_invariants(net);
    if t_basis.is_empty() && net.transition_count() > 0 {
        findings.push(Finding {
            severity: Severity::Info,
            code: "no-cycles",
            subject: net.name().to_string(),
            why: "the net has no T-invariant: no firing sequence reproduces a marking, so \
                  steady-state (`markov`) analysis is inapplicable"
                .into(),
        });
    } else {
        for (tid, t) in net.transitions() {
            if dead.contains(&tid) {
                continue; // already reported as dead; acyclicity is implied
            }
            if t_basis.iter().all(|inv| inv.weights[tid.index()] == 0) {
                findings.push(Finding {
                    severity: Severity::Info,
                    code: "acyclic-transition",
                    subject: t.name().to_string(),
                    why: "appears in no T-invariant support: it can fire only transiently, \
                          never as part of a steady-state cycle"
                        .into(),
                });
            }
        }
    }

    // Pass 5: expression lint over predicates, actions, and delays.
    expression_lint(net, &mut findings);

    findings.sort_by_key(|f| f.severity);
    pnut_obs::metrics::ANALYSIS_LINT_FINDINGS.add(findings.len() as u64);
    pnut_obs::metrics::ANALYSIS_LINT_ERRORS.add(
        findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count() as u64,
    );

    LintReport {
        net_name: net.name().to_string(),
        place_names: net.places().map(|(_, p)| p.name().to_string()).collect(),
        transition_count: net.transition_count(),
        bounds: bounds.bounds,
        dead_transitions: dead,
        findings,
    }
}

/// If the net's places and transitions split into more than one
/// connected component (ignoring fully isolated places, which get their
/// own finding), describe the split.
fn disconnected(net: &Net) -> Option<String> {
    let np = net.place_count();
    let n = np + net.transition_count();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    let union = |parent: &mut [usize], a: usize, b: usize| {
        let (ra, rb) = (find(parent, a), find(parent, b));
        parent[ra] = rb;
    };
    let mut touched = vec![false; n];
    for (tid, t) in net.transitions() {
        let tn = np + tid.index();
        touched[tn] = true;
        for &(p, _) in t.inputs().iter().chain(t.outputs()).chain(t.inhibitors()) {
            touched[p.index()] = true;
            union(&mut parent, p.index(), tn);
        }
    }
    let mut roots: Vec<usize> = Vec::new();
    for (i, &t) in touched.iter().enumerate() {
        if !t {
            continue; // isolated place (or impossible arc-free node)
        }
        let r = find(&mut parent, i);
        if !roots.contains(&r) {
            roots.push(r);
        }
    }
    if roots.len() < 2 {
        return None;
    }
    let describe = |r: usize| -> String {
        for (i, &t) in touched.iter().enumerate() {
            if t && find(&mut parent.clone(), i) == r {
                return if i < np {
                    format!("`{}`", net.place(PlaceId::new(i)).name())
                } else {
                    format!(
                        "`{}`",
                        net.transition(pnut_core::TransitionId::new(i - np)).name()
                    )
                };
            }
        }
        String::from("?")
    };
    Some(format!(
        "the net splits into {} disconnected components (e.g. {} and {} share no arcs)",
        roots.len(),
        describe(roots[0]),
        describe(roots[1])
    ))
}

/// Where an expression appears, for messages.
fn site(kind: &str, transition: &str) -> String {
    format!("{kind} of `{transition}`")
}

/// Per-net usage tally built while scanning expressions: identifier ->
/// first site that uses it (`BTreeMap` for stable finding order).
#[derive(Default)]
struct Usage {
    var_reads: BTreeMap<String, String>,
    var_writes: BTreeMap<String, String>,
    table_uses: BTreeMap<String, String>,
}

impl Usage {
    /// Record every variable read and table access inside `e`, flagging
    /// constant out-of-bounds indices along the way.
    fn scan(&mut self, e: &Expr, at: &str, env: &Env, findings: &mut Vec<Finding>) {
        walk_expr(e, &mut |sub| match sub {
            Expr::Var(name) => {
                self.var_reads
                    .entry(name.clone())
                    .or_insert_with(|| at.to_string());
            }
            Expr::Index(table, idx) => {
                self.table_uses
                    .entry(table.clone())
                    .or_insert_with(|| at.to_string());
                check_const_index(env, table, idx, at, findings);
            }
            _ => {}
        });
    }
}

fn expression_lint(net: &Net, findings: &mut Vec<Finding>) {
    let env = net.initial_env();
    let mut usage = Usage::default();

    for (_, t) in net.transitions() {
        let tname = t.name();
        if let Some(pred) = t.predicate() {
            let at = site("predicate", tname);
            usage.scan(pred, &at, env, findings);
            match pred.const_eval() {
                Some(Err(e)) => findings.push(Finding {
                    severity: Severity::Error,
                    code: "const-error",
                    subject: tname.to_string(),
                    why: format!("predicate `{pred}` always fails to evaluate: {e}"),
                }),
                Some(Ok(Value::Int(_))) => findings.push(Finding {
                    severity: Severity::Error,
                    code: "const-error",
                    subject: tname.to_string(),
                    why: format!(
                        "predicate `{pred}` is constantly an integer; a predicate must be boolean"
                    ),
                }),
                _ => {}
            }
        }
        if let Some(action) = t.action() {
            let at = site("action", tname);
            for a in action.assignments() {
                usage.scan(&a.expr, &at, env, findings);
                if let Some(Err(e)) = a.expr.const_eval() {
                    findings.push(Finding {
                        severity: Severity::Error,
                        code: "const-error",
                        subject: tname.to_string(),
                        why: format!("action `{a}` always fails to evaluate: {e}"),
                    });
                }
                match &a.target {
                    Target::Var(name) => {
                        usage
                            .var_writes
                            .entry(name.clone())
                            .or_insert_with(|| at.clone());
                    }
                    Target::TableElem(table, idx) => {
                        usage
                            .table_uses
                            .entry(table.clone())
                            .or_insert_with(|| at.clone());
                        usage.scan(idx, &at, env, findings);
                        check_const_index(env, table, idx, &at, findings);
                    }
                }
            }
        }
        for (kind, delay) in [
            ("firing delay", t.firing_time()),
            ("enabling delay", t.enabling_time()),
        ] {
            let Delay::Expr(e) = delay else { continue };
            let at = site(kind, tname);
            usage.scan(e, &at, env, findings);
            match e.const_eval() {
                Some(Err(err)) => findings.push(Finding {
                    severity: Severity::Error,
                    code: "const-error",
                    subject: tname.to_string(),
                    why: format!("{kind} `{e}` always fails to evaluate: {err}"),
                }),
                Some(Ok(Value::Bool(_))) => findings.push(Finding {
                    severity: Severity::Error,
                    code: "const-error",
                    subject: tname.to_string(),
                    why: format!("{kind} `{e}` is constantly boolean; a delay must be an integer"),
                }),
                _ => {}
            }
        }
    }
    let Usage {
        var_reads,
        var_writes,
        table_uses,
    } = usage;

    // Aggregate variable verdicts.
    for (name, at) in &var_reads {
        if env.var(name).is_some() {
            continue; // declared with an initial value: always readable
        }
        if let Some(written_at) = var_writes.get(name) {
            findings.push(Finding {
                severity: Severity::Warn,
                code: "read-before-write",
                subject: name.clone(),
                why: format!(
                    "read by {at} but not declared; it only exists after {written_at} runs"
                ),
            });
        } else {
            findings.push(Finding {
                severity: Severity::Error,
                code: "undefined-var",
                subject: name.clone(),
                why: format!(
                    "read by {at} but never declared nor written: guaranteed `unknown \
                     variable` error"
                ),
            });
        }
    }
    for (name, at) in &var_writes {
        if !var_reads.contains_key(name) {
            findings.push(Finding {
                severity: Severity::Warn,
                code: "unread-var",
                subject: name.clone(),
                why: format!("written by {at} but never read by any expression"),
            });
        }
    }
    for (name, at) in &table_uses {
        if env.table(name).is_none() {
            findings.push(Finding {
                severity: Severity::Error,
                code: "undefined-table",
                subject: name.clone(),
                why: format!("used by {at} but never declared: guaranteed `unknown table` error"),
            });
        }
    }
}

/// Flag a table access whose index folds to a constant outside the
/// table, a guaranteed `index out of bounds` error.
fn check_const_index(env: &Env, table: &str, idx: &Expr, at: &str, findings: &mut Vec<Finding>) {
    let Some(len) = env.table(table).map(<[i64]>::len) else {
        return; // undeclared table gets its own finding
    };
    let Some(Ok(Value::Int(i))) = idx.const_eval() else {
        return;
    };
    if i < 0 || i as usize >= len {
        findings.push(Finding {
            severity: Severity::Error,
            code: "const-table-index",
            subject: format!("{table}[{idx}]"),
            why: format!(
                "constant index {i} is out of bounds for table `{table}` of length {len} \
                 (in {at}): guaranteed error"
            ),
        });
    }
}

fn walk_expr(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match e {
        Expr::Int(_) | Expr::Bool(_) | Expr::Var(_) => {}
        Expr::Index(_, i) => walk_expr(i, f),
        Expr::Unary(_, a) => walk_expr(a, f),
        Expr::Binary(_, a, b) => {
            walk_expr(a, f);
            walk_expr(b, f);
        }
        Expr::Call(_, args) => {
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::If(c, a, b) => {
            walk_expr(c, f);
            walk_expr(a, f);
            walk_expr(b, f);
        }
    }
}
