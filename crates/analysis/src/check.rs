//! Dynamic cross-check: every spliced state of a built reachability
//! graph must satisfy every semi-positive P-invariant token sum.
//!
//! This closes the loop between the static analyzer and the engine in
//! both directions — a violation means either the structural proof or
//! the dynamic exploration is wrong — and doubles as a cheap semantic
//! integrity check on pager spill reloads: a corrupted state image that
//! slips past the format's structural validation still changes a token
//! count, which the invariant sum catches.

use std::fmt;

use pnut_core::{invariant, Net};
use pnut_reach::{ReachError, ReachabilityGraph};

/// Summary of a clean [`check_invariants`] sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvariantCheck {
    /// Number of semi-positive P-invariants verified per state.
    pub invariants: usize,
    /// States whose sums were checked.
    pub states_checked: u64,
    /// Timed mid-firing states skipped: with tokens in transit inside a
    /// transition, the sum is legitimately below its quiescent value.
    pub states_skipped: u64,
}

/// Why a [`check_invariants`] sweep stopped.
#[derive(Debug)]
pub enum InvariantCheckError {
    /// The underlying paged sweep failed (e.g. a spill I/O error).
    Reach(ReachError),
    /// A state's weighted token sum differs from the conserved value —
    /// engine bug or corrupted spill reload.
    Violation {
        /// Index of the offending state.
        state: usize,
        /// The invariant's place weights.
        weights: Vec<i64>,
        /// The invariant rendered as an equation over place names.
        invariant: String,
        /// The conserved sum (at the initial marking).
        expected: i64,
        /// The sum actually observed in the state.
        got: i64,
    },
}

impl fmt::Display for InvariantCheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantCheckError::Reach(e) => write!(f, "{e}"),
            InvariantCheckError::Violation {
                state,
                invariant,
                expected,
                got,
                ..
            } => write!(
                f,
                "state {state} violates P-invariant {invariant}: expected sum {expected}, got \
                 {got} (engine bug or corrupted spill reload)"
            ),
        }
    }
}

impl std::error::Error for InvariantCheckError {}

impl From<ReachError> for InvariantCheckError {
    fn from(e: ReachError) -> Self {
        InvariantCheckError::Reach(e)
    }
}

/// Assert every state of `graph` satisfies every semi-positive
/// P-invariant of `net`, sweeping segment-at-a-time (pin → scan →
/// maintain) so the pager's resident budget is respected.
///
/// Timed states with tokens in flight are skipped (see
/// [`InvariantCheck::states_skipped`]); untimed graphs have none.
///
/// # Errors
///
/// [`InvariantCheckError::Violation`] on the first failing state,
/// [`InvariantCheckError::Reach`] if the sweep itself fails.
pub fn check_invariants(
    net: &Net,
    graph: &mut ReachabilityGraph,
) -> Result<InvariantCheck, InvariantCheckError> {
    let _span = pnut_obs::span("analysis.check_invariants");
    let invariants = invariant::semi_positive_p_invariants(net);
    if invariants.is_empty() {
        return Ok(InvariantCheck {
            invariants: 0,
            states_checked: 0,
            states_skipped: 0,
        });
    }
    let m0 = net.initial_marking();
    let expected: Vec<i64> = invariants.iter().map(|inv| inv.token_sum(&m0)).collect();

    let mut checked = 0u64;
    let mut skipped = 0u64;
    for seg in 0..graph.segment_count() {
        {
            let guard = graph.pin_segment(seg);
            for i in guard.range() {
                let state = guard.state(i)?;
                if !state.in_flight.is_empty() {
                    skipped += 1;
                    continue;
                }
                let marking = state.marking.as_slice();
                for (k, inv) in invariants.iter().enumerate() {
                    let got: i64 = inv
                        .weights
                        .iter()
                        .zip(marking)
                        .map(|(&w, &m)| w * i64::from(m))
                        .sum();
                    if got != expected[k] {
                        return Err(InvariantCheckError::Violation {
                            state: i,
                            weights: inv.weights.clone(),
                            invariant: describe_invariant(net, &inv.weights, expected[k]),
                            expected: expected[k],
                            got,
                        });
                    }
                }
                checked += 1;
            }
        }
        graph.maintain()?;
    }
    pnut_obs::metrics::ANALYSIS_INVARIANT_STATES.add(checked);
    Ok(InvariantCheck {
        invariants: invariants.len(),
        states_checked: checked,
        states_skipped: skipped,
    })
}

/// Render a P-invariant as an equation over place names, e.g.
/// `Bus_free + Bus_busy = 1`.
fn describe_invariant(net: &Net, weights: &[i64], sum: i64) -> String {
    let mut lhs = String::new();
    for (p, &w) in weights.iter().enumerate() {
        if w == 0 {
            continue;
        }
        if !lhs.is_empty() {
            lhs.push_str(" + ");
        }
        if w != 1 {
            lhs.push_str(&format!("{w}*"));
        }
        lhs.push_str(net.place(pnut_core::PlaceId::new(p)).name());
    }
    format!("{lhs} = {sum}")
}
