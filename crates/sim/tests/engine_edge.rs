//! Edge-case integration tests for the simulation engine: semantics at
//! run boundaries, combined delays, runtime errors, and step atomicity.

use pnut_core::{Expr, NetBuilder, Time};
use pnut_sim::{SimError, Simulator};
use pnut_trace::{CountingSink, DeltaKind, Recorder};

#[test]
fn enabling_clock_survives_run_boundary() {
    // `slow` needs 10 continuously-enabled ticks; split the run at 6.
    // The clock must not reset at the boundary: the firing happens at
    // t=10, not t=16.
    let mut b = NetBuilder::new("n");
    b.place("p", 1);
    b.place("q", 0);
    b.transition("slow")
        .input("p")
        .output("q")
        .enabling(10)
        .add();
    let net = b.build().unwrap();

    let mut sim = Simulator::new(&net, 0).unwrap();
    let mut r1 = Recorder::new();
    sim.run(Time::from_ticks(6), &mut r1).unwrap();
    assert_eq!(sim.marking().tokens(net.place_id("q").unwrap()), 0);

    let mut r2 = Recorder::new();
    sim.run(Time::from_ticks(20), &mut r2).unwrap();
    let t2 = r2.into_trace().unwrap();
    let fire = t2
        .deltas()
        .iter()
        .find(|d| matches!(d.kind, DeltaKind::Start { .. }))
        .expect("slow fires in the second run");
    assert_eq!(fire.time, Time::from_ticks(10));
}

#[test]
fn in_flight_firing_completes_after_run_boundary() {
    let mut b = NetBuilder::new("n");
    b.place("p", 1);
    b.place("q", 0);
    b.transition("work").input("p").output("q").firing(10).add();
    let net = b.build().unwrap();

    let mut sim = Simulator::new(&net, 0).unwrap();
    let mut sink = CountingSink::new();
    let s1 = sim.run(Time::from_ticks(4), &mut sink).unwrap();
    assert_eq!(s1.events_started, 1);
    assert_eq!(s1.events_finished, 0);
    assert_eq!(sim.in_flight(net.transition_id("work").unwrap()), 1);

    let s2 = sim.run(Time::from_ticks(20), &mut sink).unwrap();
    assert_eq!(s2.events_started, 0);
    assert_eq!(s2.events_finished, 1, "completion lands at t=10 in run 2");
    assert_eq!(sim.marking().tokens(net.place_id("q").unwrap()), 1);
}

#[test]
fn combined_enabling_and_firing_times() {
    // enabling 3 then firing 4: token leaves p at 3, arrives q at 7.
    let mut b = NetBuilder::new("n");
    b.place("p", 1);
    b.place("q", 0);
    b.transition("t")
        .input("p")
        .output("q")
        .enabling(3)
        .firing(4)
        .add();
    let net = b.build().unwrap();
    let trace = pnut_sim::simulate(&net, 0, Time::from_ticks(10)).unwrap();
    let start = trace
        .deltas()
        .iter()
        .find(|d| matches!(d.kind, DeltaKind::Start { .. }))
        .unwrap();
    assert_eq!(start.time, Time::from_ticks(3));
    let finish = trace
        .deltas()
        .iter()
        .find(|d| matches!(d.kind, DeltaKind::Finish { .. }))
        .unwrap();
    assert_eq!(finish.time, Time::from_ticks(7));
}

#[test]
fn inhibitor_threshold_above_one() {
    // Disabled only while the place holds >= 3 tokens.
    let mut b = NetBuilder::new("n");
    b.place("load", 3);
    b.place("go", 1);
    b.place("done", 0);
    b.place("drained", 0);
    b.transition("drain")
        .input("load")
        .output("drained")
        .firing(2)
        .add();
    b.transition("fire_when_light")
        .input("go")
        .inhibitor_at("load", 3)
        .output("done")
        .add();
    let net = b.build().unwrap();
    let trace = pnut_sim::simulate(&net, 0, Time::from_ticks(10)).unwrap();
    // drain starts at 0 (removing one token -> load=2), so
    // fire_when_light becomes enabled at t=0 right after.
    let done = trace.header().place_id("done").unwrap();
    let first = trace
        .states()
        .find(|s| s.marking.tokens(done) == 1)
        .expect("fires");
    assert_eq!(first.time, Time::ZERO);
}

#[test]
fn max_concurrent_two_allows_exactly_two() {
    let mut b = NetBuilder::new("n");
    b.place("q", 5);
    b.place("out", 0);
    b.transition("serve")
        .input("q")
        .output("out")
        .firing(10)
        .max_concurrent(2)
        .add();
    let net = b.build().unwrap();
    let mut sim = Simulator::new(&net, 0).unwrap();
    let mut sink = CountingSink::new();
    sim.run(Time::from_ticks(5), &mut sink).unwrap();
    assert_eq!(sim.in_flight(net.transition_id("serve").unwrap()), 2);
}

#[test]
fn expression_enabling_time_reads_variables() {
    // `setup` sets d=7 at t=0 (firing 1); `wait` has enabling time `d`.
    // The wait clock is armed when `wait` becomes enabled (t=1, when
    // the gate token arrives), reading d=7 then: fires at 8.
    let mut b = NetBuilder::new("n");
    b.var("d", 100);
    b.place("start", 1);
    b.place("gate", 0);
    b.place("end", 0);
    b.transition("setup")
        .input("start")
        .output("gate")
        .action_str("d = 7;")
        .unwrap()
        .firing(1)
        .add();
    b.transition("wait")
        .input("gate")
        .output("end")
        .enabling_expr(Expr::parse("d").unwrap())
        .add();
    let net = b.build().unwrap();
    let trace = pnut_sim::simulate(&net, 0, Time::from_ticks(20)).unwrap();
    let end = trace.header().place_id("end").unwrap();
    let arrival = trace
        .states()
        .find(|s| s.marking.tokens(end) == 1)
        .expect("wait fires");
    assert_eq!(arrival.time, Time::from_ticks(8));
}

#[test]
fn runtime_action_error_reports_transition_and_closes_trace() {
    let mut b = NetBuilder::new("n");
    b.place("p", 1);
    b.table("t", vec![1, 2]);
    b.transition("bad")
        .input("p")
        .action_str("x = t[9];")
        .unwrap()
        .add();
    let net = b.build().unwrap();
    let mut sim = Simulator::new(&net, 0).unwrap();
    let mut sink = CountingSink::new();
    let e = sim.run(Time::from_ticks(5), &mut sink).unwrap_err();
    match e {
        SimError::Eval { transition, .. } => assert_eq!(transition, "bad"),
        other => panic!("expected eval error, got {other}"),
    }
    assert_eq!(sink.begins, 1);
    assert_eq!(sink.ends, 1, "trace closed even on failure");
}

#[test]
fn zero_horizon_run_is_valid() {
    let mut b = NetBuilder::new("n");
    b.place("p", 1);
    b.transition("t").input("p").output("p").firing(1).add();
    let net = b.build().unwrap();
    let mut sim = Simulator::new(&net, 0).unwrap();
    let mut rec = Recorder::new();
    let s = sim.run(Time::ZERO, &mut rec).unwrap();
    // The instant t=0 is processed: the firing starts (and its
    // completion at t=1 is left in flight).
    assert_eq!(s.events_started, 1);
    assert_eq!(s.events_finished, 0);
    assert_eq!(s.end_time, Time::ZERO);
    assert!(rec.into_trace().is_some());
}

#[test]
fn zero_time_firing_is_one_atomic_step() {
    let mut b = NetBuilder::new("n");
    b.place("a", 1);
    b.place("b", 0);
    b.transition("mv").input("a").output("b").add();
    let net = b.build().unwrap();
    let trace = pnut_sim::simulate(&net, 0, Time::from_ticks(1)).unwrap();
    let steps: std::collections::BTreeSet<u64> = trace.deltas().iter().map(|d| d.step).collect();
    assert_eq!(steps.len(), 1, "start+finish+both moves share one step");
    // And the intermediate "token nowhere" state is never observable.
    for s in trace.states() {
        let sum = s.marking.tokens(trace.header().place_id("a").unwrap())
            + s.marking.tokens(trace.header().place_id("b").unwrap());
        assert_eq!(sum, 1);
    }
}

#[test]
fn var_deltas_record_only_scalar_assignments() {
    let mut b = NetBuilder::new("n");
    b.place("p", 1);
    b.var("x", 0);
    b.table("tab", vec![0, 0]);
    b.transition("t")
        .input("p")
        .action_str("x = 5; tab[0] = 9;")
        .unwrap()
        .add();
    let net = b.build().unwrap();
    let trace = pnut_sim::simulate(&net, 0, Time::from_ticks(1)).unwrap();
    let var_sets: Vec<&str> = trace
        .deltas()
        .iter()
        .filter_map(|d| match &d.kind {
            DeltaKind::VarSet { name, .. } => Some(name.as_str()),
            _ => None,
        })
        .collect();
    assert_eq!(
        var_sets,
        vec!["x"],
        "table writes are applied but not logged"
    );
}

#[test]
fn competing_weighted_consumers_never_go_negative() {
    // Two consumers want 3 and 2 tokens from a place holding 4: only
    // one can win; the loser must see consistent state.
    let mut b = NetBuilder::new("n");
    b.place("pool", 4);
    b.place("a_done", 0);
    b.place("b_done", 0);
    b.transition("takes3")
        .input_weighted("pool", 3)
        .output("a_done")
        .firing(1)
        .add();
    b.transition("takes2")
        .input_weighted("pool", 2)
        .output("b_done")
        .firing(1)
        .add();
    let net = b.build().unwrap();
    for seed in 0..20 {
        let trace = pnut_sim::simulate(&net, seed, Time::from_ticks(10)).unwrap();
        let report = pnut_stat::analyze(&trace);
        let a = report.place("a_done").unwrap().max_tokens;
        let b_ = report.place("b_done").unwrap().max_tokens;
        // Possible outcomes: 3+nothing? No — after takes3, 1 token left,
        // nothing enabled. After takes2, 2 left, takes2 again.
        assert!(
            (a == 1 && b_ == 0) || (a == 0 && b_ == 2),
            "seed {seed}: a={a} b={b_}"
        );
    }
}
