//! Simulation errors.

use pnut_core::{CompileError, EvalError, Time};
use std::fmt;

/// Error produced while constructing or running a [`crate::Simulator`].
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A predicate uses `irand`. Predicates gate *enabledness*, which the
    /// engine re-checks many times per instant; random predicates would
    /// make enabledness unstable and the semantics ill-defined.
    PredicateUsesRandom {
        /// The offending transition.
        transition: String,
    },
    /// A transition expression failed to lower to bytecode at
    /// construction time. Names the transition and the expression.
    Compile(CompileError),
    /// An expression failed to evaluate during the run.
    Eval {
        /// The transition whose predicate/action/delay failed.
        transition: String,
        /// The underlying failure.
        source: EvalError,
    },
    /// More than [`crate::SimOptions::max_firings_per_instant`] firings
    /// occurred without time advancing — almost always a zero-delay cycle
    /// in the model (a modeling bug, not an engine limit).
    InstantLivelock {
        /// The instant at which the livelock was detected.
        time: Time,
        /// The configured cap that was exceeded.
        cap: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::PredicateUsesRandom { transition } => {
                write!(f, "predicate of transition `{transition}` uses irand")
            }
            SimError::Compile(e) => write!(f, "{e}"),
            SimError::Eval { transition, source } => {
                write!(
                    f,
                    "evaluation failed in transition `{transition}`: {source}"
                )
            }
            SimError::InstantLivelock { time, cap } => write!(
                f,
                "more than {cap} firings at time {time} without time advancing (zero-delay cycle?)"
            ),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Eval { source, .. } => Some(source),
            SimError::Compile(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_transition() {
        let e = SimError::PredicateUsesRandom {
            transition: "Decode".into(),
        };
        assert!(e.to_string().contains("Decode"));
        let e = SimError::InstantLivelock {
            time: Time::from_ticks(5),
            cap: 100,
        };
        assert!(e.to_string().contains('5'));
    }

    #[test]
    fn eval_errors_chain() {
        use std::error::Error;
        let e = SimError::Eval {
            transition: "t".into(),
            source: EvalError::DivisionByZero,
        };
        assert!(e.source().is_some());
    }
}
