//! The discrete-event engine.

use crate::error::SimError;
use crate::rng::SeededRandomness;
use pnut_core::expr::compile as bc;
use pnut_core::expr::Env;
use pnut_core::{Delay, EvalError, Marking, Net, Randomness, Time, TransitionId};
use pnut_obs as obs;
use pnut_trace::{Delta, DeltaKind, TraceHeader, TraceSink};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Tunable engine limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOptions {
    /// Abort with [`SimError::InstantLivelock`] if more than this many
    /// firings happen without simulation time advancing. Catches
    /// zero-delay cycles, a classic modeling bug.
    pub max_firings_per_instant: u64,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            max_firings_per_instant: 1_000_000,
        }
    }
}

/// The paper's Figure-5 "RUN STATISTICS" block: what happened during one
/// simulation experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Clock value when the run began.
    pub initial_clock: Time,
    /// Clock value when the run ended.
    pub end_time: Time,
    /// Firings started ("Events started").
    pub events_started: u64,
    /// Firings completed ("Events finished"). May trail `events_started`
    /// by the number of firings still in flight at the horizon.
    pub events_finished: u64,
    /// True if the run stopped early because no event could ever occur
    /// again (deadlock / quiescence) rather than at the time horizon.
    pub quiescent: bool,
}

/// A pending firing completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Completion {
    finish: Time,
    order: u64,
    transition: TransitionId,
    firing: u64,
}

/// The simulation engine. See the [crate documentation](crate) for the
/// semantics and an example.
#[derive(Debug)]
pub struct Simulator<'n> {
    net: &'n Net,
    rng: SeededRandomness,
    options: SimOptions,
    time: Time,
    marking: Marking,
    /// Mirror of the slot state, kept bit-identical by replaying the
    /// write log of every fired action. Serves [`Simulator::env`] and
    /// the trace header; all hot-path evaluation runs on `slots`.
    env: Env,
    programs: bc::CompiledNet,
    slots: bc::EnvSlots,
    vm: bc::Scratch,
    writes: Vec<bc::Write>,
    firing_counts: Vec<u32>,
    firing_seq: Vec<u64>,
    enabled_since: Vec<Option<Time>>,
    deadline: Vec<Option<Time>>,
    completions: BinaryHeap<Reverse<Completion>>,
    step: u64,
    started: u64,
    finished: u64,
    completion_order: u64,
}

impl<'n> Simulator<'n> {
    /// Create a simulator over `net` seeded with `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::PredicateUsesRandom`] if any transition's
    /// predicate calls `irand`.
    pub fn new(net: &'n Net, seed: u64) -> Result<Self, SimError> {
        Self::with_options(net, seed, SimOptions::default())
    }

    /// Create a simulator with explicit [`SimOptions`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::new`].
    pub fn with_options(net: &'n Net, seed: u64, options: SimOptions) -> Result<Self, SimError> {
        for (_, t) in net.transitions() {
            if t.predicate().is_some_and(|p| p.uses_random()) {
                return Err(SimError::PredicateUsesRandom {
                    transition: t.name().to_string(),
                });
            }
        }
        let programs = bc::CompiledNet::compile(net).map_err(SimError::Compile)?;
        let env = net.initial_env().clone();
        let mut slots = bc::EnvSlots::new();
        slots.load(&programs.map, &env);
        let n = net.transition_count();
        Ok(Simulator {
            net,
            rng: SeededRandomness::new(seed),
            options,
            time: Time::ZERO,
            marking: net.initial_marking(),
            env,
            programs,
            slots,
            vm: bc::Scratch::new(),
            writes: Vec::new(),
            firing_counts: vec![0; n],
            firing_seq: vec![0; n],
            enabled_since: vec![None; n],
            deadline: vec![None; n],
            completions: BinaryHeap::new(),
            step: 0,
            started: 0,
            finished: 0,
            completion_order: 0,
        })
    }

    /// Current simulation time.
    pub fn time(&self) -> Time {
        self.time
    }

    /// Current marking.
    pub fn marking(&self) -> &Marking {
        &self.marking
    }

    /// Current variable environment.
    pub fn env(&self) -> &Env {
        &self.env
    }

    /// In-flight firings of `transition`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range for the net.
    pub fn in_flight(&self, transition: TransitionId) -> u32 {
        self.firing_counts[transition.index()]
    }

    /// Run until the clock reaches `until` (processing events *at*
    /// `until`), streaming the trace into `sink`. May be called again to
    /// continue the experiment; each call emits a complete trace whose
    /// header describes the state at the start of the call.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on expression failures or instant livelock;
    /// the sink will have received `end` with the failure time, so
    /// partial traces remain well-formed.
    pub fn run<S: TraceSink>(&mut self, until: Time, sink: &mut S) -> Result<RunSummary, SimError> {
        let _span = obs::span("sim.run");
        let initial_clock = self.time;
        let started_before = self.started;
        let finished_before = self.finished;
        sink.begin(&self.header());

        let outcome = self.run_inner(until, sink);
        let quiescent = match outcome {
            Ok(q) => q,
            Err(e) => {
                sink.end(self.time);
                return Err(e);
            }
        };
        // Even when the net goes quiescent early, the experiment ran to
        // its horizon: the final state persists and time-weighted
        // statistics must account for it (the paper's "Length of
        // Simulation" is the horizon).
        self.time = until;
        sink.end(self.time);
        Ok(RunSummary {
            initial_clock,
            end_time: self.time,
            events_started: self.started - started_before,
            events_finished: self.finished - finished_before,
            quiescent,
        })
    }

    fn header(&self) -> TraceHeader {
        let mut h = TraceHeader::new(
            self.net.name(),
            self.net
                .places()
                .map(|(_, p)| p.name().to_string())
                .collect(),
            self.net
                .transitions()
                .map(|(_, t)| t.name().to_string())
                .collect(),
        )
        .with_initial_marking(self.marking.as_slice().to_vec())
        .with_initial_env(self.env.clone());
        h.start_time = self.time;
        h
    }

    /// Returns `Ok(true)` if the run ended in quiescence before `until`.
    fn run_inner<S: TraceSink>(&mut self, until: Time, sink: &mut S) -> Result<bool, SimError> {
        self.refresh_enabling()?;
        loop {
            // Fire everything eligible at the current instant.
            let mut fired_this_instant = 0u64;
            while let Some(choice) = self.choose_eligible() {
                self.fire(choice, sink)?;
                fired_this_instant += 1;
                if fired_this_instant > self.options.max_firings_per_instant {
                    return Err(SimError::InstantLivelock {
                        time: self.time,
                        cap: self.options.max_firings_per_instant,
                    });
                }
                self.refresh_enabling()?;
            }

            // Advance to the next event.
            let next_completion = self.completions.peek().map(|Reverse(c)| c.finish);
            let next_deadline = self
                .deadline
                .iter()
                .flatten()
                .copied()
                .filter(|&d| d > self.time)
                .min();
            let next = match (next_completion, next_deadline) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => return Ok(true),
            };
            if next > until {
                return Ok(false);
            }
            self.time = next;
            while let Some(Reverse(c)) = self.completions.peek().copied() {
                if c.finish > self.time {
                    break;
                }
                self.completions.pop();
                self.finish_firing(c.transition, c.firing, sink);
            }
            self.refresh_enabling()?;
        }
    }

    /// Whether `tid` is instantaneously ready: marking-enabled, predicate
    /// true, concurrency cap not reached.
    fn is_ready(&mut self, tid: TransitionId) -> Result<bool, SimError> {
        let t = self.net.transition(tid);
        if let Some(cap) = t.max_concurrent() {
            if self.firing_counts[tid.index()] >= cap {
                return Ok(false);
            }
        }
        if !t.marking_enabled(&self.marking) {
            return Ok(false);
        }
        match &self.programs.transitions[tid.index()].predicate {
            Some(p) => p
                .eval_pure(&self.slots, &self.programs.map, &mut self.vm)
                .and_then(|v| v.as_bool())
                .map_err(|source| SimError::Eval {
                    transition: t.name().to_string(),
                    source,
                }),
            None => Ok(true),
        }
    }

    /// Resolve a delay against the current slot state, drawing `irand`
    /// from the engine RNG. `prog` is the compiled form of the delay's
    /// expression when it has one. Mirrors [`Delay::resolve`].
    fn resolve_delay(
        &mut self,
        tid: TransitionId,
        delay: &Delay,
        compiled: fn(&bc::CompiledTransition) -> Option<&bc::Program>,
    ) -> Result<Time, SimError> {
        match delay {
            Delay::Fixed(t) => Ok(Time::from_ticks(*t)),
            Delay::Expr(_) => {
                let prog = compiled(&self.programs.transitions[tid.index()])
                    .expect("expression delays always compile to a program");
                prog.eval(&self.slots, &self.programs.map, &mut self.vm, &mut self.rng)
                    .and_then(|v| v.as_int())
                    .and_then(|v| {
                        u64::try_from(v)
                            .map(Time::from_ticks)
                            .map_err(|_| EvalError::Overflow)
                    })
                    .map_err(|source| SimError::Eval {
                        transition: self.net.transition(tid).name().to_string(),
                        source,
                    })
            }
        }
    }

    /// Maintain the continuous-enabling clocks: start the clock (and
    /// resolve the enabling delay) when a transition becomes ready,
    /// reset it whenever readiness is lost.
    fn refresh_enabling(&mut self) -> Result<(), SimError> {
        for i in 0..self.net.transition_count() {
            let tid = TransitionId::new(i);
            let ready = self.is_ready(tid)?;
            if ready && self.enabled_since[i].is_none() {
                self.enabled_since[i] = Some(self.time);
                let enabling = self.net.transition(tid).enabling_time();
                let d = self.resolve_delay(tid, enabling, |ct| ct.enabling.as_ref())?;
                self.deadline[i] = Some(self.time + d);
            } else if !ready {
                self.enabled_since[i] = None;
                self.deadline[i] = None;
            }
        }
        Ok(())
    }

    /// Among transitions whose enabling deadline has passed, choose one
    /// with probability proportional to firing frequency.
    fn choose_eligible(&mut self) -> Option<TransitionId> {
        let eligible: Vec<(TransitionId, f64)> = (0..self.net.transition_count())
            .filter(|&i| self.deadline[i].is_some_and(|d| d <= self.time))
            .map(|i| {
                let tid = TransitionId::new(i);
                (tid, self.net.transition(tid).frequency())
            })
            .collect();
        match eligible.len() {
            0 => None,
            1 => Some(eligible[0].0),
            _ => {
                let total: f64 = eligible.iter().map(|(_, f)| f).sum();
                let mut draw = self.rng.unit_f64() * total;
                for &(tid, f) in &eligible {
                    draw -= f;
                    if draw <= 0.0 {
                        return Some(tid);
                    }
                }
                Some(eligible[eligible.len() - 1].0)
            }
        }
    }

    fn emit<S: TraceSink>(&self, sink: &mut S, kind: DeltaKind) {
        sink.delta(&Delta::new(self.time, self.step, kind));
    }

    fn fire<S: TraceSink>(&mut self, tid: TransitionId, sink: &mut S) -> Result<(), SimError> {
        let t = self.net.transition(tid);
        let firing = self.firing_seq[tid.index()];
        self.firing_seq[tid.index()] += 1;
        self.step += 1;

        self.emit(
            sink,
            DeltaKind::Start {
                transition: tid,
                firing,
            },
        );
        for &(p, w) in t.inputs() {
            let removed = self.marking.try_remove(p, w);
            debug_assert!(removed, "eligible transition must have its input tokens");
            self.emit(
                sink,
                DeltaKind::PlaceDelta {
                    place: p,
                    delta: -i64::from(w),
                },
            );
        }

        if let Some(prog) = &self.programs.transitions[tid.index()].action {
            self.writes.clear();
            prog.apply_logged(
                &mut self.slots,
                &self.programs.map,
                &mut self.vm,
                &mut self.rng,
                &mut self.writes,
            )
            .map_err(|source| SimError::Eval {
                transition: t.name().to_string(),
                source,
            })?;
            // Replay the write log into the `Env` mirror (keeping
            // `env()` and the trace header exact) and surface scalar
            // assignments as trace deltas, in execution order.
            for w in &self.writes {
                match w {
                    bc::Write::Var { slot, value } => {
                        let name = self.programs.map.var_name(*slot);
                        self.env.set_var(name, *value);
                        self.emit(
                            sink,
                            DeltaKind::VarSet {
                                name: name.to_string(),
                                value: *value,
                            },
                        );
                    }
                    bc::Write::Elem {
                        table,
                        index,
                        value,
                    } => {
                        let name = self.programs.map.table_name(*table);
                        self.env
                            .set_table_elem(name, *index, *value)
                            .expect("slot write succeeded, mirror must too");
                    }
                }
            }
        }

        // The action runs before the delay is resolved so table-driven
        // models can compute their own firing times (paper §3).
        let duration = self.resolve_delay(tid, t.firing_time(), |ct| ct.firing.as_ref())?;

        self.started += 1;
        obs::metrics::SIM_EVENTS.inc();
        obs::heartbeat(self.started, || {
            format!(
                "sim: {} events started at t={}",
                self.started,
                self.time.ticks()
            )
        });
        if duration == Time::ZERO {
            // Atomic firing: finish within the same step so invariants
            // like Bus_free + Bus_busy = 1 hold in every observable state.
            self.emit(
                sink,
                DeltaKind::Finish {
                    transition: tid,
                    firing,
                },
            );
            for &(p, w) in t.outputs() {
                self.marking.add(p, w);
                self.emit(
                    sink,
                    DeltaKind::PlaceDelta {
                        place: p,
                        delta: i64::from(w),
                    },
                );
            }
            self.finished += 1;
        } else {
            self.firing_counts[tid.index()] += 1;
            self.completions.push(Reverse(Completion {
                finish: self.time + duration,
                order: self.completion_order,
                transition: tid,
                firing,
            }));
            self.completion_order += 1;
        }

        // A firing ends the transition's current enabling interval; if it
        // is still ready the clock restarts (refresh re-arms it at the
        // current instant).
        self.enabled_since[tid.index()] = None;
        self.deadline[tid.index()] = None;
        Ok(())
    }

    fn finish_firing<S: TraceSink>(&mut self, tid: TransitionId, firing: u64, sink: &mut S) {
        let t = self.net.transition(tid);
        self.step += 1;
        self.emit(
            sink,
            DeltaKind::Finish {
                transition: tid,
                firing,
            },
        );
        for &(p, w) in t.outputs() {
            self.marking.add(p, w);
            self.emit(
                sink,
                DeltaKind::PlaceDelta {
                    place: p,
                    delta: i64::from(w),
                },
            );
        }
        self.firing_counts[tid.index()] -= 1;
        self.finished += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnut_core::NetBuilder;
    use pnut_trace::{CountingSink, Recorder};

    fn run_recorded(net: &Net, seed: u64, until: u64) -> pnut_trace::RecordedTrace {
        let mut sim = Simulator::new(net, seed).unwrap();
        let mut rec = Recorder::new();
        sim.run(Time::from_ticks(until), &mut rec).unwrap();
        rec.into_trace().unwrap()
    }

    #[test]
    fn firing_time_delays_outputs() {
        let mut b = NetBuilder::new("n");
        b.place("a", 1);
        b.place("b", 0);
        b.transition("t").input("a").output("b").firing(5).add();
        let net = b.build().unwrap();
        let trace = run_recorded(&net, 0, 10);
        // Token leaves `a` at 0, arrives on `b` at 5.
        let states: Vec<_> = trace.states().collect();
        let a = trace.header().place_id("a").unwrap();
        let bb = trace.header().place_id("b").unwrap();
        assert_eq!(states[1].marking.tokens(a), 0);
        assert_eq!(states[1].marking.tokens(bb), 0, "in flight");
        assert_eq!(states[1].time, Time::ZERO);
        let last = states.last().unwrap();
        assert_eq!(last.marking.tokens(bb), 1);
        assert_eq!(last.time, Time::from_ticks(5));
    }

    #[test]
    fn enabling_time_delays_start_without_removing_tokens() {
        let mut b = NetBuilder::new("n");
        b.place("a", 1);
        b.place("b", 0);
        b.transition("t").input("a").output("b").enabling(4).add();
        let net = b.build().unwrap();
        let trace = run_recorded(&net, 0, 10);
        let states: Vec<_> = trace.states().collect();
        let a = trace.header().place_id("a").unwrap();
        // Until time 4, token stays on `a`.
        assert_eq!(states[0].marking.tokens(a), 1);
        let fire_state = &states[1];
        assert_eq!(fire_state.time, Time::from_ticks(4));
        // Zero firing time: atomic move in one step.
        let bb = trace.header().place_id("b").unwrap();
        assert_eq!(fire_state.marking.tokens(bb), 1);
    }

    #[test]
    fn enabling_clock_resets_when_disabled() {
        // `thief` (enabling 2) steals the shared token before `slow`
        // (enabling 3) ever fires; the token returns at t=4 via firing
        // time, and slow must wait a *full* 3 ticks again (fires at 7 if
        // not stolen again — but thief re-arms earlier and keeps winning).
        let mut b = NetBuilder::new("n");
        b.place("shared", 1);
        b.place("out_slow", 0);
        b.transition("thief")
            .input("shared")
            .output("shared")
            .enabling(2)
            .firing(2)
            .add();
        b.transition("slow")
            .input("shared")
            .output("out_slow")
            .enabling(3)
            .add();
        let net = b.build().unwrap();
        let trace = run_recorded(&net, 0, 20);
        let out = trace.header().place_id("out_slow").unwrap();
        let last = trace.states().last().unwrap();
        assert_eq!(
            last.marking.tokens(out),
            0,
            "slow's enabling clock must reset each time the token is stolen"
        );
    }

    #[test]
    fn concurrent_firings_allowed_without_cap() {
        // Two tokens, server with firing time 10: both should be in
        // flight simultaneously (the paper's queueing-server pattern).
        let mut b = NetBuilder::new("n");
        b.place("q", 2);
        b.place("done", 0);
        b.transition("serve")
            .input("q")
            .output("done")
            .firing(10)
            .add();
        let net = b.build().unwrap();
        let mut sim = Simulator::new(&net, 0).unwrap();
        let mut rec = Recorder::new();
        sim.run(Time::from_ticks(5), &mut rec).unwrap();
        let serve = net.transition_id("serve").unwrap();
        assert_eq!(sim.in_flight(serve), 2);
    }

    #[test]
    fn max_concurrent_caps_in_flight() {
        let mut b = NetBuilder::new("n");
        b.place("q", 2);
        b.place("done", 0);
        b.transition("serve")
            .input("q")
            .output("done")
            .firing(10)
            .max_concurrent(1)
            .add();
        let net = b.build().unwrap();
        let mut sim = Simulator::new(&net, 0).unwrap();
        let mut rec = Recorder::new();
        sim.run(Time::from_ticks(25), &mut rec).unwrap();
        let serve = net.transition_id("serve").unwrap();
        assert_eq!(sim.in_flight(serve), 0);
        // Serialized: 0-10 and 10-20.
        assert_eq!(sim.marking().tokens(net.place_id("done").unwrap()), 2);
    }

    #[test]
    fn quiescence_detected() {
        let mut b = NetBuilder::new("n");
        b.place("a", 1);
        b.place("b", 0);
        b.transition("t").input("a").output("b").firing(2).add();
        let net = b.build().unwrap();
        let mut sim = Simulator::new(&net, 0).unwrap();
        let mut sink = CountingSink::new();
        let s = sim.run(Time::from_ticks(1000), &mut sink).unwrap();
        assert!(s.quiescent);
        assert_eq!(
            s.end_time,
            Time::from_ticks(1000),
            "horizon, not last event"
        );
        assert_eq!(s.events_started, 1);
        assert_eq!(s.events_finished, 1);
    }

    #[test]
    fn zero_delay_cycle_reports_livelock() {
        let mut b = NetBuilder::new("n");
        b.place("a", 1);
        b.transition("spin").input("a").output("a").add();
        let net = b.build().unwrap();
        let mut sim = Simulator::with_options(
            &net,
            0,
            SimOptions {
                max_firings_per_instant: 100,
            },
        )
        .unwrap();
        let mut sink = CountingSink::new();
        let e = sim.run(Time::from_ticks(10), &mut sink).unwrap_err();
        assert!(matches!(e, SimError::InstantLivelock { .. }));
        assert_eq!(sink.ends, 1, "trace is closed even on failure");
    }

    #[test]
    fn random_predicate_rejected_at_construction() {
        let mut b = NetBuilder::new("n");
        b.place("a", 1);
        b.transition("t")
            .input("a")
            .predicate_str("irand(0, 1) == 1")
            .unwrap()
            .add();
        let net = b.build().unwrap();
        assert!(matches!(
            Simulator::new(&net, 0),
            Err(SimError::PredicateUsesRandom { .. })
        ));
    }

    #[test]
    fn frequencies_bias_conflict_resolution() {
        // One token, two competitors with frequencies 0.9 / 0.1; count
        // wins over many instants.
        let mut b = NetBuilder::new("n");
        b.place("tok", 1);
        b.place("won_a", 0);
        b.place("won_b", 0);
        b.transition("a")
            .input("tok")
            .output("won_a")
            .output("tok")
            .frequency(0.9)
            .firing(1)
            .add();
        b.transition("bt")
            .input("tok")
            .output("won_b")
            .output("tok")
            .frequency(0.1)
            .firing(1)
            .add();
        let net = b.build().unwrap();
        let mut sim = Simulator::new(&net, 42).unwrap();
        let mut sink = CountingSink::new();
        sim.run(Time::from_ticks(2000), &mut sink).unwrap();
        let wa = sim.marking().tokens(net.place_id("won_a").unwrap()) as f64;
        let wb = sim.marking().tokens(net.place_id("won_b").unwrap()) as f64;
        let share = wa / (wa + wb);
        assert!(
            (0.85..=0.95).contains(&share),
            "expected ~0.9 share for the frequent transition, got {share}"
        );
    }

    #[test]
    fn actions_set_variables_and_drive_delays() {
        // Table-driven delay: action picks type, firing time reads table.
        let mut b = NetBuilder::new("n");
        b.place("go", 1);
        b.place("done", 0);
        b.var("ty", 0);
        b.table("delays", vec![0, 3, 7]);
        b.transition("work")
            .input("go")
            .output("done")
            .action_str("ty = 2;")
            .unwrap()
            .firing_expr(pnut_core::Expr::parse("delays[ty]").unwrap())
            .add();
        let net = b.build().unwrap();
        let trace = run_recorded(&net, 0, 100);
        let last = trace.states().last().unwrap();
        assert_eq!(last.time, Time::from_ticks(7));
        assert_eq!(last.env.int("ty").unwrap(), 2);
        // VarSet delta must appear in the trace.
        assert!(trace
            .deltas()
            .iter()
            .any(|d| matches!(&d.kind, DeltaKind::VarSet { name, .. } if name == "ty")));
    }

    #[test]
    fn predicate_gates_firing() {
        let mut b = NetBuilder::new("n");
        b.place("a", 1);
        b.place("b", 0);
        b.var("allowed", 0);
        b.transition("blocked")
            .input("a")
            .output("b")
            .predicate_str("allowed == 1")
            .unwrap()
            .add();
        let net = b.build().unwrap();
        let mut sim = Simulator::new(&net, 0).unwrap();
        let mut sink = CountingSink::new();
        let s = sim.run(Time::from_ticks(50), &mut sink).unwrap();
        assert!(s.quiescent);
        assert_eq!(s.events_started, 0);
    }

    #[test]
    fn same_seed_reproduces_trace_exactly() {
        let mut b = NetBuilder::new("n");
        b.place("tok", 1);
        b.places_empty(["x", "y"]);
        b.transition("tx")
            .input("tok")
            .output("x")
            .output("tok")
            .frequency(0.5)
            .firing(1)
            .add();
        b.transition("ty")
            .input("tok")
            .output("y")
            .output("tok")
            .frequency(0.5)
            .firing(2)
            .add();
        let net = b.build().unwrap();
        let t1 = run_recorded(&net, 99, 500);
        let t2 = run_recorded(&net, 99, 500);
        assert_eq!(t1, t2);
        let t3 = run_recorded(&net, 100, 500);
        assert_ne!(t1, t3, "different seed should diverge");
    }

    #[test]
    fn run_can_continue_from_previous_state() {
        let mut b = NetBuilder::new("n");
        b.place("p", 1);
        b.transition("t").input("p").output("p").firing(3).add();
        let net = b.build().unwrap();
        let mut sim = Simulator::new(&net, 0).unwrap();
        let mut rec1 = Recorder::new();
        sim.run(Time::from_ticks(4), &mut rec1).unwrap();
        let mut rec2 = Recorder::new();
        let s2 = sim.run(Time::from_ticks(10), &mut rec2).unwrap();
        assert_eq!(s2.initial_clock, Time::from_ticks(4));
        let tr2 = rec2.into_trace().unwrap();
        assert_eq!(tr2.header().start_time, Time::from_ticks(4));
        // Continuation trace carries the in-flight state implicitly:
        // first event is the completion at t=6.
        assert_eq!(tr2.deltas()[0].time, Time::from_ticks(6));
    }

    #[test]
    fn weighted_arcs_consume_in_bulk() {
        let mut b = NetBuilder::new("n");
        b.place("buf", 6);
        b.place("fetched", 0);
        b.transition("prefetch")
            .input_weighted("buf", 2)
            .output_weighted("fetched", 2)
            .firing(1)
            .add();
        let net = b.build().unwrap();
        let mut sim = Simulator::new(&net, 0).unwrap();
        let mut sink = CountingSink::new();
        let s = sim.run(Time::from_ticks(100), &mut sink).unwrap();
        assert_eq!(s.events_started, 3, "6 tokens / 2 per firing");
        assert_eq!(sim.marking().tokens(net.place_id("fetched").unwrap()), 6);
    }

    #[test]
    fn inhibitor_blocks_until_cleared() {
        let mut b = NetBuilder::new("n");
        b.place("a", 1);
        b.place("blocker", 1);
        b.place("out", 0);
        b.place("sink_p", 0);
        b.transition("clear")
            .input("blocker")
            .output("sink_p")
            .firing(5)
            .add();
        b.transition("go")
            .input("a")
            .inhibitor("blocker")
            .output("out")
            .add();
        let net = b.build().unwrap();
        let trace = run_recorded(&net, 0, 20);
        let out = trace.header().place_id("out").unwrap();
        // `go` can only fire once `clear` started (t=0 removes blocker).
        // clear starts at 0 and removes its token then, so go fires at 0.
        let first_out = trace.states().find(|s| s.marking.tokens(out) == 1).unwrap();
        assert_eq!(first_out.time, Time::ZERO);
    }
}
