//! Seeded randomness for the simulator, implementing
//! [`pnut_core::Randomness`].
//!
//! Implemented on a self-contained xoshiro256++ generator (public-domain
//! algorithm by Blackman & Vigna, the same family the `rand` crate's
//! `SmallRng` uses) so the simulator has no external dependencies and a
//! `(net, seed, duration)` triple determines the trace bit-for-bit on
//! every platform, forever — external generators may change streams
//! between versions.

use pnut_core::Randomness;

/// A seeded, reproducible randomness source.
///
/// All stochastic behaviour of a simulation run — conflict resolution by
/// firing frequency and `irand` in actions — flows through one instance,
/// so a `(net, seed, duration)` triple fully determines the trace.
///
/// # Example
///
/// ```
/// use pnut_core::Randomness;
/// use pnut_sim::SeededRandomness;
///
/// let mut a = SeededRandomness::new(7);
/// let mut b = SeededRandomness::new(7);
/// assert_eq!(a.int_in_range(0, 100), b.int_in_range(0, 100));
/// ```
#[derive(Debug, Clone)]
pub struct SeededRandomness {
    state: [u64; 4],
}

/// SplitMix64 step, used to expand the seed into generator state (the
/// initialization recommended by the xoshiro authors).
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeededRandomness {
    /// Create from a seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SeededRandomness { state }
    }

    /// The next raw 64-bit output (xoshiro256++).
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl Randomness for SeededRandomness {
    fn int_in_range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi, "int_in_range requires lo <= hi");
        let span = (hi as i128 - lo as i128 + 1) as u128;
        // Rejection sampling for an unbiased draw over `span` values.
        let zone = u64::MAX - ((u128::from(u64::MAX) + 1) % span) as u64;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return (i128::from(lo) + (u128::from(v) % span) as i128) as i64;
            }
        }
    }

    fn unit_f64(&mut self) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnut_core::Randomness;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRandomness::new(123);
        let mut b = SeededRandomness::new(123);
        for _ in 0..100 {
            assert_eq!(a.int_in_range(-5, 5), b.int_in_range(-5, 5));
            assert!((a.unit_f64() - b.unit_f64()).abs() < f64::EPSILON);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SeededRandomness::new(1);
        let mut b = SeededRandomness::new(2);
        let sa: Vec<i64> = (0..20).map(|_| a.int_in_range(0, 1000)).collect();
        let sb: Vec<i64> = (0..20).map(|_| b.int_in_range(0, 1000)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn ranges_respected() {
        let mut r = SeededRandomness::new(9);
        for _ in 0..1000 {
            let v = r.int_in_range(3, 7);
            assert!((3..=7).contains(&v));
            let f = r.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn extreme_ranges_do_not_overflow() {
        let mut r = SeededRandomness::new(42);
        for _ in 0..100 {
            let v = r.int_in_range(i64::MIN, i64::MAX);
            let _ = v; // any value is in range; just must not panic
            assert_eq!(r.int_in_range(5, 5), 5);
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = SeededRandomness::new(7);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[r.int_in_range(0, 3) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed: {counts:?}");
        }
    }
}
