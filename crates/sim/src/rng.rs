//! Adapter from the `rand` crate onto [`pnut_core::Randomness`].

use pnut_core::Randomness;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded, reproducible randomness source.
///
/// All stochastic behaviour of a simulation run — conflict resolution by
/// firing frequency and `irand` in actions — flows through one instance,
/// so a `(net, seed, duration)` triple fully determines the trace.
///
/// # Example
///
/// ```
/// use pnut_core::Randomness;
/// use pnut_sim::SeededRandomness;
///
/// let mut a = SeededRandomness::new(7);
/// let mut b = SeededRandomness::new(7);
/// assert_eq!(a.int_in_range(0, 100), b.int_in_range(0, 100));
/// ```
#[derive(Debug, Clone)]
pub struct SeededRandomness {
    rng: SmallRng,
}

impl SeededRandomness {
    /// Create from a seed.
    pub fn new(seed: u64) -> Self {
        SeededRandomness {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Randomness for SeededRandomness {
    fn int_in_range(&mut self, lo: i64, hi: i64) -> i64 {
        self.rng.gen_range(lo..=hi)
    }

    fn unit_f64(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnut_core::Randomness;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRandomness::new(123);
        let mut b = SeededRandomness::new(123);
        for _ in 0..100 {
            assert_eq!(a.int_in_range(-5, 5), b.int_in_range(-5, 5));
            assert!((a.unit_f64() - b.unit_f64()).abs() < f64::EPSILON);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SeededRandomness::new(1);
        let mut b = SeededRandomness::new(2);
        let sa: Vec<i64> = (0..20).map(|_| a.int_in_range(0, 1000)).collect();
        let sb: Vec<i64> = (0..20).map(|_| b.int_in_range(0, 1000)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn ranges_respected() {
        let mut r = SeededRandomness::new(9);
        for _ in 0..1000 {
            let v = r.int_in_range(3, 7);
            assert!((3..=7).contains(&v));
            let f = r.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
