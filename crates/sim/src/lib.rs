#![forbid(unsafe_code)]

//! # pnut-sim — the P-NUT simulation engine
//!
//! "The P-NUT simulator is a simple simulation engine which *pushes*
//! tokens around a Timed Petri Net. [...] The simulator simply generates
//! a trace." (paper §4.1)
//!
//! This crate implements the extended-timed-Petri-net semantics of the
//! paper as a deterministic, seeded discrete-event simulator writing into
//! any [`pnut_trace::TraceSink`]:
//!
//! * **firing times** — at start-of-firing input tokens are removed and
//!   the action runs; output tokens appear when the firing completes
//!   (tokens are "inside" the transition meanwhile);
//! * **enabling times** — a transition must be *continuously* enabled
//!   (marking + predicate) for its enabling delay before it may fire;
//!   any disabling resets the clock;
//! * **conflict resolution** — among the transitions eligible at an
//!   instant, one is chosen with probability proportional to its
//!   relative firing frequency `[WPS86]`; the marking is re-examined after
//!   every firing and the instant only ends when no transition is
//!   eligible;
//! * **predicates and actions** — predicates gate enabling (and must be
//!   `irand`-free so that enabledness is stable); actions run at
//!   start-of-firing and may set the variables that expression-valued
//!   delays read (the paper's table-driven models, §3).
//!
//! # Example
//!
//! ```
//! use pnut_core::{NetBuilder, Time};
//! use pnut_sim::Simulator;
//! use pnut_trace::Recorder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = NetBuilder::new("pingpong");
//! b.place("ping", 1);
//! b.place("pong", 0);
//! b.transition("serve").input("ping").output("pong").firing(2).add();
//! b.transition("return").input("pong").output("ping").firing(3).add();
//! let net = b.build()?;
//!
//! let mut sim = Simulator::new(&net, 42)?;
//! let mut rec = Recorder::new();
//! let summary = sim.run(Time::from_ticks(9), &mut rec)?;
//! assert_eq!(summary.events_started, 4); // serve@0, return@2, serve@5, return@7
//! # Ok(())
//! # }
//! ```

mod engine;
mod error;
mod rng;

pub use engine::{RunSummary, SimOptions, Simulator};
pub use error::SimError;
pub use rng::SeededRandomness;

use pnut_core::{Net, Time};
use pnut_trace::{RecordedTrace, Recorder};

/// One-call convenience: simulate `net` for `duration` with `seed` and
/// return the recorded trace.
///
/// # Errors
///
/// Propagates [`SimError`] from the run.
///
/// # Example
///
/// ```
/// use pnut_core::{NetBuilder, Time};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetBuilder::new("n");
/// b.place("p", 1);
/// b.transition("loop").input("p").output("p").firing(1).add();
/// let net = b.build()?;
/// let trace = pnut_sim::simulate(&net, 7, Time::from_ticks(5))?;
/// assert!(trace.deltas().len() > 0);
/// # Ok(())
/// # }
/// ```
pub fn simulate(net: &Net, seed: u64, duration: Time) -> Result<RecordedTrace, SimError> {
    let mut sim = Simulator::new(net, seed)?;
    let mut rec = Recorder::new();
    sim.run(duration, &mut rec)?;
    Ok(rec
        .into_trace()
        .expect("recorder saw begin and end during run"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnut_core::NetBuilder;

    #[test]
    fn simulate_convenience_produces_trace() {
        let mut b = NetBuilder::new("n");
        b.place("p", 1);
        b.transition("t").input("p").output("p").firing(2).add();
        let net = b.build().unwrap();
        let trace = simulate(&net, 1, Time::from_ticks(9)).unwrap();
        // Firings at 0,2,4,6,8 → 5 starts; finishes at 2,4,6,8.
        let starts = trace
            .deltas()
            .iter()
            .filter(|d| matches!(d.kind, pnut_trace::DeltaKind::Start { .. }))
            .count();
        assert_eq!(starts, 5);
    }
}
