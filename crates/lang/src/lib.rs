#![forbid(unsafe_code)]

//! # pnut-lang — the textual net description language
//!
//! The paper notes that the complete pipelined-processor model "can be
//! expressed ... textually (for some of our textually based tools) in
//! roughly 25 lines". This crate provides that textual format: a
//! line-oriented language for describing extended timed Petri nets, a
//! parser producing [`pnut_core::Net`], and a pretty-printer whose
//! output parses back to an equivalent net (round-trip tested).
//!
//! # Format
//!
//! ```text
//! net prefetch
//! var max_type = 5
//! table operands = 0 1 2 2 3
//! place Bus_free = 1
//! place Empty_I_buffers = 6
//! place pre_fetching = 0
//! place Operand_fetch_pending = 0
//! trans Start_prefetch
//!   in Bus_free Empty_I_buffers*2
//!   inhibit Operand_fetch_pending
//!   out pre_fetching
//!   firing 0
//!   freq 1
//! end
//! ```
//!
//! Directives inside a `trans` block:
//!
//! | line | meaning |
//! |---|---|
//! | `in P` / `in P*w` | input arc (weight `w`, default 1) |
//! | `out P` / `out P*w` | output arc |
//! | `inhibit P` / `inhibit P@t` | inhibitor arc (threshold `t`, default 1) |
//! | `firing N` / `firing expr E` | firing time (ticks or expression) |
//! | `enabling N` / `enabling expr E` | enabling time |
//! | `freq F` | relative firing frequency |
//! | `maxconc N` | concurrent-firing cap |
//! | `pred E` | predicate (rest of line is the expression) |
//! | `act A` | action (rest of line; `;`-separated assignments) |
//!
//! `#` starts a comment; blank lines are ignored.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), pnut_lang::LangError> {
//! let src = "
//! net tiny
//! place a = 1
//! place b = 0
//! trans go
//!   in a
//!   out b
//!   firing 2
//! end
//! ";
//! let net = pnut_lang::parse(src)?;
//! assert_eq!(net.name(), "tiny");
//! let printed = pnut_lang::print(&net);
//! let again = pnut_lang::parse(&printed)?;
//! assert_eq!(net, again);
//! # Ok(())
//! # }
//! ```

use pnut_core::{Delay, Expr, Net, NetBuilder, TransitionBuilder};
use std::fmt;

/// Error from parsing net description text.
#[derive(Debug, Clone, PartialEq)]
pub struct LangError {
    /// 1-based line number of the problem.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LangError {}

fn err(line: usize, message: impl Into<String>) -> LangError {
    LangError {
        line,
        message: message.into(),
    }
}

/// Parse a net description.
///
/// # Errors
///
/// Returns [`LangError`] with the offending line number for syntax
/// errors, and for net-level inconsistencies (duplicate names, unknown
/// places) detected at build time.
pub fn parse(src: &str) -> Result<Net, LangError> {
    let mut builder: Option<NetBuilder> = None;
    let mut lines = src.lines().enumerate().peekable();

    while let Some((idx, raw)) = lines.next() {
        let line_no = idx + 1;
        let line = strip_comment(raw);
        if line.is_empty() {
            continue;
        }
        let (word, rest) = split_word(line);
        match word {
            "net" => {
                if builder.is_some() {
                    return Err(err(line_no, "duplicate `net` directive"));
                }
                if rest.is_empty() {
                    return Err(err(line_no, "expected a net name"));
                }
                builder = Some(NetBuilder::new(rest));
            }
            "place" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err(line_no, "`place` before `net`"))?;
                let (name, tokens) = parse_assign(rest, line_no)?;
                let tokens: u32 = tokens
                    .trim()
                    .parse()
                    .map_err(|_| err(line_no, "expected an integer token count"))?;
                b.place(name, tokens);
            }
            "var" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err(line_no, "`var` before `net`"))?;
                let (name, value) = parse_assign(rest, line_no)?;
                let value: i64 = value
                    .trim()
                    .parse()
                    .map_err(|_| err(line_no, "expected an integer value"))?;
                b.var(name, value);
            }
            "table" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err(line_no, "`table` before `net`"))?;
                let (name, values) = parse_assign(rest, line_no)?;
                let values: Result<Vec<i64>, _> =
                    values.split_whitespace().map(str::parse).collect();
                let values =
                    values.map_err(|_| err(line_no, "expected whitespace-separated integers"))?;
                b.table(name, values);
            }
            "trans" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err(line_no, "`trans` before `net`"))?;
                if rest.is_empty() {
                    return Err(err(line_no, "expected a transition name"));
                }
                let mut t = b.transition(rest);
                let mut closed = false;
                for (tidx, traw) in lines.by_ref() {
                    let tline_no = tidx + 1;
                    let tline = strip_comment(traw);
                    if tline.is_empty() {
                        continue;
                    }
                    if tline == "end" {
                        closed = true;
                        break;
                    }
                    t = transition_directive(t, tline, tline_no)?;
                }
                if !closed {
                    return Err(err(line_no, "unterminated `trans` block (missing `end`)"));
                }
                t.add();
            }
            other => {
                return Err(err(line_no, format!("unknown directive `{other}`")));
            }
        }
    }

    let builder = builder.ok_or_else(|| err(1, "missing `net` directive"))?;
    builder
        .build()
        .map_err(|e| err(src.lines().count().max(1), e.to_string()))
}

fn transition_directive<'a>(
    t: TransitionBuilder<'a>,
    line: &str,
    line_no: usize,
) -> Result<TransitionBuilder<'a>, LangError> {
    let (word, rest) = split_word(line);
    match word {
        "in" | "out" => {
            let mut t = t;
            if rest.is_empty() {
                return Err(err(line_no, format!("`{word}` needs at least one place")));
            }
            for spec in rest.split_whitespace() {
                let (place, weight) = parse_weighted(spec, '*', line_no)?;
                t = if word == "in" {
                    t.input_weighted(place, weight)
                } else {
                    t.output_weighted(place, weight)
                };
            }
            Ok(t)
        }
        "inhibit" => {
            let mut t = t;
            if rest.is_empty() {
                return Err(err(line_no, "`inhibit` needs at least one place"));
            }
            for spec in rest.split_whitespace() {
                let (place, threshold) = parse_weighted(spec, '@', line_no)?;
                t = t.inhibitor_at(place, threshold);
            }
            Ok(t)
        }
        "firing" | "enabling" => {
            let delay = parse_delay(rest, line_no)?;
            Ok(match (word, delay) {
                ("firing", Delay::Fixed(n)) => t.firing(n),
                ("firing", Delay::Expr(e)) => t.firing_expr(e),
                (_, Delay::Fixed(n)) => t.enabling(n),
                (_, Delay::Expr(e)) => t.enabling_expr(e),
            })
        }
        "freq" => {
            let f: f64 = rest
                .trim()
                .parse()
                .map_err(|_| err(line_no, "expected a number after `freq`"))?;
            Ok(t.frequency(f))
        }
        "maxconc" => {
            let n: u32 = rest
                .trim()
                .parse()
                .map_err(|_| err(line_no, "expected an integer after `maxconc`"))?;
            Ok(t.max_concurrent(n))
        }
        "pred" => t
            .predicate_str(rest)
            .map_err(|e| err(line_no, e.to_string())),
        "act" => t.action_str(rest).map_err(|e| err(line_no, e.to_string())),
        other => Err(err(
            line_no,
            format!("unknown transition directive `{other}`"),
        )),
    }
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => line[..i].trim(),
        None => line.trim(),
    }
}

fn split_word(line: &str) -> (&str, &str) {
    match line.split_once(char::is_whitespace) {
        Some((w, rest)) => (w, rest.trim()),
        None => (line, ""),
    }
}

fn parse_assign(rest: &str, line_no: usize) -> Result<(&str, &str), LangError> {
    rest.split_once('=')
        .map(|(n, v)| (n.trim(), v.trim()))
        .filter(|(n, _)| !n.is_empty())
        .ok_or_else(|| err(line_no, "expected `name = value`"))
}

fn parse_weighted(spec: &str, sep: char, line_no: usize) -> Result<(&str, u32), LangError> {
    match spec.split_once(sep) {
        Some((place, w)) => {
            let w = w
                .parse()
                .map_err(|_| err(line_no, format!("bad weight in `{spec}`")))?;
            Ok((place, w))
        }
        None => Ok((spec, 1)),
    }
}

fn parse_delay(rest: &str, line_no: usize) -> Result<Delay, LangError> {
    let rest = rest.trim();
    if let Some(expr_src) = rest.strip_prefix("expr ") {
        let e = Expr::parse(expr_src).map_err(|e| err(line_no, e.to_string()))?;
        Ok(Delay::Expr(e))
    } else {
        let n: u64 = rest
            .parse()
            .map_err(|_| err(line_no, "expected ticks or `expr <expression>`"))?;
        Ok(Delay::Fixed(n))
    }
}

/// Pretty-print a net in the textual format; the output parses back to
/// an equal net.
pub fn print(net: &Net) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "net {}", net.name());
    for (name, value) in net.initial_env().vars() {
        let _ = writeln!(out, "var {name} = {value}");
    }
    for (name, values) in net.initial_env().tables() {
        let _ = write!(out, "table {name} =");
        for v in values {
            let _ = write!(out, " {v}");
        }
        let _ = writeln!(out);
    }
    for (_, p) in net.places() {
        let _ = writeln!(out, "place {} = {}", p.name(), p.initial_tokens());
    }
    for (_, t) in net.transitions() {
        let _ = writeln!(out, "trans {}", t.name());
        let arcs = |out: &mut String, kw: &str, list: &[(pnut_core::PlaceId, u32)], sep: char| {
            if !list.is_empty() {
                let _ = write!(out, "  {kw}");
                for &(p, w) in list {
                    let pname = net.place(p).name();
                    if w == 1 {
                        let _ = write!(out, " {pname}");
                    } else {
                        let _ = write!(out, " {pname}{sep}{w}");
                    }
                }
                let _ = writeln!(out);
            }
        };
        arcs(&mut out, "in", t.inputs(), '*');
        arcs(&mut out, "out", t.outputs(), '*');
        arcs(&mut out, "inhibit", t.inhibitors(), '@');
        let delay = |out: &mut String, kw: &str, d: &Delay| match d {
            Delay::Fixed(0) => {}
            Delay::Fixed(n) => {
                let _ = writeln!(out, "  {kw} {n}");
            }
            Delay::Expr(e) => {
                let _ = writeln!(out, "  {kw} expr {e}");
            }
        };
        delay(&mut out, "firing", t.firing_time());
        delay(&mut out, "enabling", t.enabling_time());
        if (t.frequency() - 1.0).abs() > f64::EPSILON {
            let _ = writeln!(out, "  freq {}", t.frequency());
        }
        if let Some(cap) = t.max_concurrent() {
            let _ = writeln!(out, "  maxconc {cap}");
        }
        if let Some(p) = t.predicate() {
            let _ = writeln!(out, "  pred {p}");
        }
        if let Some(a) = t.action() {
            let _ = writeln!(out, "  act {a}");
        }
        let _ = writeln!(out, "end");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "
# The Figure 1 prefetch fragment.
net prefetch
place Bus_free = 1
place Empty_I_buffers = 6
place pre_fetching = 0
place Operand_fetch_pending = 0
trans Start_prefetch
  in Bus_free Empty_I_buffers*2
  inhibit Operand_fetch_pending
  out pre_fetching
end
trans End_prefetch
  in pre_fetching
  out Bus_free
  enabling 5
  freq 2.5
end
";

    #[test]
    fn parses_sample() {
        let net = parse(SAMPLE).unwrap();
        assert_eq!(net.name(), "prefetch");
        assert_eq!(net.place_count(), 4);
        assert_eq!(net.transition_count(), 2);
        let sp = net.transition(net.transition_id("Start_prefetch").unwrap());
        assert_eq!(sp.inputs().len(), 2);
        assert_eq!(sp.inputs()[1].1, 2, "weighted arc parsed");
        assert_eq!(sp.inhibitors().len(), 1);
        let ep = net.transition(net.transition_id("End_prefetch").unwrap());
        assert_eq!(*ep.enabling_time(), Delay::Fixed(5));
        assert!((ep.frequency() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn roundtrip_sample() {
        let net = parse(SAMPLE).unwrap();
        let printed = print(&net);
        let again = parse(&printed).unwrap();
        assert_eq!(net, again);
    }

    #[test]
    fn roundtrip_with_predicates_actions_tables() {
        let src = "
net interp
var max_type = 3
table operands = 0 1 2 2
place p = 1
trans Decode
  in p
  out p
  firing expr operands[ty]
  pred ops_needed == 0
  act ty = irand(1, max_type); ops_needed = operands[ty];
  maxconc 1
end
";
        let net = parse(src).unwrap();
        let printed = print(&net);
        let again = parse(&printed).unwrap();
        assert_eq!(net, again);
    }

    #[test]
    fn roundtrip_the_paper_pipeline_model() {
        let net =
            pnut_pipeline::three_stage::build(&pnut_pipeline::ThreeStageConfig::default()).unwrap();
        let printed = print(&net);
        let again = parse(&printed).unwrap();
        assert_eq!(net, again);
    }

    #[test]
    fn inhibitor_thresholds_roundtrip() {
        let src = "
net n
place p = 5
place q = 1
trans t
  in q
  out q
  inhibit p@3
end
";
        let net = parse(src).unwrap();
        let t = net.transition(net.transition_id("t").unwrap());
        assert_eq!(t.inhibitors()[0].1, 3);
        let again = parse(&print(&net)).unwrap();
        assert_eq!(net, again);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("place a = 1").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("before `net`"));

        let e = parse("net n\nplace a = x").unwrap_err();
        assert_eq!(e.line, 2);

        let e = parse("net n\ntrans t\n  in").unwrap_err();
        assert_eq!(e.line, 3);

        let e = parse("net n\ntrans t\n  in a").unwrap_err();
        assert!(e.message.contains("unterminated"));

        let e = parse("net n\nbogus x").unwrap_err();
        assert!(e.message.contains("unknown directive"));

        let e = parse("net n\ntrans t\n  sideways a\nend").unwrap_err();
        assert!(e.message.contains("unknown transition directive"));
    }

    #[test]
    fn build_errors_surface() {
        let e = parse("net n\ntrans t\n  in ghost\nend").unwrap_err();
        assert!(e.message.contains("unknown place"));
    }

    #[test]
    fn comments_and_blank_lines_ignored_everywhere() {
        let src = "
net n  # trailing comment is part of the name? no: comments strip first
place a = 1
trans t
  # full-line comment inside a block
  in a
end
";
        // Note: `#` strips before parsing, so the net name is `n`.
        let net = parse(src).unwrap();
        assert_eq!(net.name(), "n");
    }
}

/// Render a net as a Graphviz `dot` digraph — the modern substitute for
/// the paper's graphical editor views (Figures 1–4): places as circles
/// (labelled with their initial tokens), transitions as boxes (labelled
/// with delays/frequencies), inhibitor arcs with dot arrowheads.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), pnut_lang::LangError> {
/// let net = pnut_lang::parse("net n\nplace p = 1\ntrans t\n  in p\nend")?;
/// let dot = pnut_lang::to_dot(&net);
/// assert!(dot.starts_with("digraph"));
/// assert!(dot.contains("p [shape=circle"));
/// # Ok(())
/// # }
/// ```
pub fn to_dot(net: &Net) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", net.name());
    let _ = writeln!(out, "  rankdir=LR;");
    for (_, p) in net.places() {
        let label = if p.initial_tokens() > 0 {
            format!("{}\\n●×{}", p.name(), p.initial_tokens())
        } else {
            p.name().to_string()
        };
        let _ = writeln!(out, "  {} [shape=circle label=\"{label}\"];", p.name());
    }
    for (_, t) in net.transitions() {
        let mut label = t.name().to_string();
        if !t.firing_time().is_zero_constant() {
            label.push_str(&format!("\\nfiring {}", t.firing_time()));
        }
        if !t.enabling_time().is_zero_constant() {
            label.push_str(&format!("\\nenabling {}", t.enabling_time()));
        }
        if (t.frequency() - 1.0).abs() > f64::EPSILON {
            label.push_str(&format!("\\nfreq {}", t.frequency()));
        }
        if t.predicate().is_some() {
            label.push_str("\\n[pred]");
        }
        if t.action().is_some() {
            label.push_str("\\n[act]");
        }
        let _ = writeln!(out, "  {} [shape=box label=\"{label}\"];", t.name());
        for &(p, w) in t.inputs() {
            let attr = if w > 1 {
                format!(" [label=\"{w}\"]")
            } else {
                String::new()
            };
            let _ = writeln!(out, "  {} -> {}{attr};", net.place(p).name(), t.name());
        }
        for &(p, w) in t.outputs() {
            let attr = if w > 1 {
                format!(" [label=\"{w}\"]")
            } else {
                String::new()
            };
            let _ = writeln!(out, "  {} -> {}{attr};", t.name(), net.place(p).name());
        }
        for &(p, th) in t.inhibitors() {
            let attr = if th > 1 {
                format!(" [arrowhead=dot style=dashed label=\"≥{th}\"]")
            } else {
                " [arrowhead=dot style=dashed]".to_string()
            };
            let _ = writeln!(out, "  {} -> {}{attr};", net.place(p).name(), t.name());
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod dot_tests {
    #[test]
    fn dot_contains_all_elements() {
        let net =
            pnut_pipeline::three_stage::build(&pnut_pipeline::ThreeStageConfig::default()).unwrap();
        let dot = super::to_dot(&net);
        assert!(dot.starts_with("digraph \"three_stage_pipeline\""));
        assert!(dot.contains("Bus_free [shape=circle"));
        assert!(dot.contains("Start_prefetch [shape=box"));
        assert!(dot.contains("arrowhead=dot"), "inhibitor arcs rendered");
        assert!(dot.contains("[label=\"2\"]"), "weighted arcs labelled");
        assert!(dot.contains("enabling 5"), "memory delay shown");
        assert!(dot.contains("freq 0.7"), "frequencies shown");
        assert!(dot.ends_with("}\n"));
        // Balanced braces.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }

    #[test]
    fn interpreted_net_marks_predicates_and_actions() {
        let net = pnut_pipeline::interpreted::build(
            &pnut_pipeline::interpreted::InterpretedConfig::default(),
        )
        .unwrap();
        let dot = super::to_dot(&net);
        assert!(dot.contains("[pred]"));
        assert!(dot.contains("[act]"));
    }
}
